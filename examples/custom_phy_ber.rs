//! Using the PHY directly: SoftPHY hints estimate BER *without knowing the
//! transmitted bits* — even on error-free frames (§3.1, Figure 7).
//!
//! Sweeps SNR on an AWGN channel, and for each reception compares the
//! hint-based BER estimate `mean(1/(1+e^{s_k}))` with the ground truth
//! (which this example knows because it generated the payload).
//!
//! Run with: `cargo run --release --example custom_phy_ber`

use softrate::channel::link::{Link, LinkConfig};
use softrate::core::hints::FrameHints;
use softrate::phy::ofdm::SIMULATION;
use softrate::phy::rates::PAPER_RATES;

fn main() {
    let rate = PAPER_RATES[3]; // QPSK 3/4
    println!("rate: {}, 400-byte frames, AWGN channel", rate.label());
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>10}",
        "SNR dB", "est BER", "true BER", "|log err|", "CRC ok"
    );
    for snr_x2 in 10..=26 {
        let snr = snr_x2 as f64 / 2.0;
        let mut cfg = LinkConfig::new(SIMULATION);
        cfg.noise_power_db = -snr;
        cfg.seed = snr_x2 as u64;
        let mut link = Link::new(cfg);

        // Average a few frames per point.
        let mut est_acc = 0.0;
        let mut true_acc = 0.0;
        let mut n = 0;
        let mut crc_ok = 0;
        for k in 0..8 {
            let (_, obs) = link.probe(rate, 400, k as f64 * 0.01, &[], false);
            if let Some(rx) = &obs.rx {
                if rx.header.is_some() && !rx.llrs.is_empty() {
                    let hints = FrameHints::from_llrs(&rx.llrs, rx.info_bits_per_symbol);
                    est_acc += hints.frame_ber();
                    true_acc += obs.true_ber.unwrap_or(0.0);
                    n += 1;
                    crc_ok += rx.crc_ok as usize;
                }
            }
        }
        if n == 0 {
            println!(
                "{snr:>8.1} {:>12} {:>12} {:>12} {:>10}",
                "-", "-", "-", "0/8"
            );
            continue;
        }
        let est = est_acc / n as f64;
        let truth = true_acc / n as f64;
        let log_err = (est.max(1e-9).log10() - truth.max(1e-9).log10()).abs();
        println!(
            "{snr:>8.1} {est:>12.2e} {truth:>12.2e} {log_err:>12.2} {:>7}/8",
            crc_ok
        );
    }
    println!("\nNote the rows where true BER is 0 (error-free frames) but the");
    println!("estimate still distinguishes 1e-5 from 1e-8 — the property that");
    println!("lets SoftRate adapt *upward* without probing (paper §1).");
}
