//! Walking-speed mobility: the paper's headline scenario (§6.2).
//!
//! Generates a short walking trace (Table 4), then runs one TCP upload over
//! it with SoftRate, RRAA and SampleRate, printing the goodput each
//! achieves — a miniature Figure 13.
//!
//! Run with: `cargo run --release --example walking_mobility`

use std::sync::Arc;

use softrate::sim::config::{AdapterKind, SimConfig};
use softrate::sim::netsim::NetSim;
use softrate::trace::generate::walking_trace;
use softrate::trace::recipes::WalkingRecipe;
use softrate::trace::snr_training::{observations_from_trace, train_snr_table};

fn main() {
    // A 3-second walk away from the receiver: SNR ramps down ~20 dB with
    // 40 Hz Rayleigh fading on top.
    let recipe = WalkingRecipe { duration: 3.0, ..Default::default() };
    println!("generating walking traces (runs the full PHY per probe; ~tens of seconds)...");
    let up = Arc::new(walking_trace(0, &recipe));
    let down = Arc::new(walking_trace(1, &recipe));
    println!(
        "trace: {} steps x {} rates over {:.0} s",
        up.n_steps(),
        up.n_rates(),
        up.duration
    );

    let mut obs = observations_from_trace(&up);
    obs.extend(observations_from_trace(&down));
    let table = train_snr_table(&obs);

    println!("\n{:>20} {:>12}", "algorithm", "goodput");
    for kind in [
        AdapterKind::Omniscient,
        AdapterKind::SoftRate,
        AdapterKind::Snr(table.clone()),
        AdapterKind::Rraa,
        AdapterKind::SampleRate,
    ] {
        let mut cfg = SimConfig::new(kind.clone(), 1);
        cfg.duration = recipe.duration;
        let report = NetSim::new(cfg, vec![Arc::clone(&up), Arc::clone(&down)]).run();
        println!(
            "{:>20} {:>9.2} Mbps  (audit: {:.0}%/{:.0}%/{:.0}% over/acc/under)",
            report.adapter_name,
            report.aggregate_goodput_bps / 1e6,
            report.audit.fractions().0 * 100.0,
            report.audit.fractions().1 * 100.0,
            report.audit.fractions().2 * 100.0,
        );
    }
    println!("\nSoftRate should approach the omniscient bound; the frame-level");
    println!("protocols lag because they need tens of frames to detect each fade.");
}
