//! Walking-speed mobility: the paper's headline scenario (§6.2).
//!
//! A sender walks away from its receiver — large-scale attenuation ramps
//! ~20 dB down over the run with walking-speed Rayleigh fading on top —
//! while SoftRate, the frame-level baselines, and a self-trained SNR
//! protocol race the omniscient oracle: a miniature Figure 13.
//!
//! A thin wrapper over the scenario engine's built-in `walk-away`
//! scenario — the setup lives in
//! `crates/scenario/scenarios/walk-away.toml`, not in this file.
//!
//! Run with: `cargo run --release --example walking_mobility`

use softrate::scenario::builtin;
use softrate::scenario::engine::run_spec;

fn main() {
    let spec = builtin::get("walk-away").expect("built-in scenario parses");
    println!(
        "{}: {}\n",
        spec.name,
        spec.description.as_deref().unwrap_or("")
    );
    let results = run_spec(&spec, None).expect("scenario runs");

    println!("{:>20} {:>12}", "algorithm", "goodput");
    for r in &results {
        println!(
            "{:>20} {:>9.2} Mbps  (audit: {:.0}%/{:.0}%/{:.0}% over/acc/under)",
            r.adapter,
            r.goodput_bps / 1e6,
            r.overselect * 100.0,
            r.accurate * 100.0,
            r.underselect * 100.0,
        );
    }
    println!("\nSoftRate should approach the omniscient bound; the frame-level");
    println!("protocols lag because they need tens of frames to detect each fade.");
    println!("\nFor the paper's full-PHY version of this experiment, see the");
    println!("`softrate-bench` binary fig13_tcp_slow_fading.");
}
