//! Hidden terminals: why rate adaptation must not confuse collisions with
//! fading (§3.2, §6.4).
//!
//! Three clients upload through an AP but only carrier-sense each other
//! 20 % of the time, so collisions are constant. A protocol that reads
//! collisions as channel losses (RRAA; SoftRate with its detector disabled)
//! drops its rate and loses throughput; SoftRate's interference detection
//! keeps the rate up.
//!
//! A thin wrapper over the scenario engine's built-in `hidden-terminal`
//! scenario — the setup lives in
//! `crates/scenario/scenarios/hidden-terminal.toml`, not in this file.
//!
//! Run with: `cargo run --release --example hidden_terminal`

use softrate::scenario::builtin;
use softrate::scenario::engine::run_spec;

fn main() {
    let spec = builtin::get("hidden-terminal").expect("built-in scenario parses");
    println!(
        "{}: {}\n",
        spec.name,
        spec.description.as_deref().unwrap_or("")
    );
    let results = run_spec(&spec, None).expect("scenario runs");

    println!(
        "{:>24} {:>12} {:>12} {:>14}",
        "algorithm", "goodput", "collisions", "underselect %"
    );
    for r in &results {
        println!(
            "{:>24} {:>9.2} Mbps {:>12} {:>13.1}%",
            r.adapter,
            r.goodput_bps / 1e6,
            r.collisions,
            r.underselect * 100.0,
        );
    }
    println!("\nThe channel itself is static and clean: every loss here is a");
    println!("collision. Watch the underselect column — protocols without");
    println!("interference detection flee to low rates for no benefit.");
    println!("\nTweak the scenario with e.g.:");
    println!("  softrate-scenarios show hidden-terminal > my.toml");
    println!("  softrate-scenarios run --file my.toml");
}
