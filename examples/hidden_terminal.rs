//! Hidden terminals: why rate adaptation must not confuse collisions with
//! fading (§3.2, §6.4).
//!
//! Three clients upload through an AP but only carrier-sense each other
//! 20 % of the time, so collisions are constant. A protocol that reads
//! collisions as channel losses (RRAA; SoftRate with its detector disabled)
//! drops its rate and loses throughput; SoftRate's interference detection
//! keeps the rate up.
//!
//! Run with: `cargo run --release --example hidden_terminal`

use std::sync::Arc;

use softrate::sim::config::{AdapterKind, SimConfig};
use softrate::sim::netsim::NetSim;
use softrate::trace::generate::static_short_trace;
use softrate::trace::recipes::StaticShortRecipe;

fn main() {
    let recipe = StaticShortRecipe { duration: 2.0, ..Default::default() };
    println!("generating static traces (full PHY per probe; ~tens of seconds)...");
    let traces: Vec<Arc<_>> =
        (0..6).map(|run| Arc::new(static_short_trace(run, &recipe))).collect();

    println!("\n3 uploading clients, Pr[carrier sense] = 0.2 between clients\n");
    println!(
        "{:>24} {:>12} {:>12} {:>14}",
        "algorithm", "goodput", "collisions", "underselect %"
    );
    for kind in [
        AdapterKind::SoftRateIdeal,
        AdapterKind::SoftRate,
        AdapterKind::SoftRateNoDetect,
        AdapterKind::Rraa,
        AdapterKind::SampleRate,
    ] {
        let mut cfg = SimConfig::new(kind.clone(), 3);
        cfg.duration = recipe.duration;
        cfg.carrier_sense_prob = 0.2;
        let report = NetSim::new(cfg, traces.iter().map(Arc::clone).collect()).run();
        println!(
            "{:>24} {:>9.2} Mbps {:>12} {:>13.1}%",
            report.adapter_name,
            report.aggregate_goodput_bps / 1e6,
            report.collisions,
            report.audit.fractions().2 * 100.0,
        );
    }
    println!("\nThe channel itself is static and clean: every loss here is a");
    println!("collision. Watch the underselect column — protocols without");
    println!("interference detection flee to low rates for no benefit.");
}
