//! Quickstart: the whole SoftRate loop in one file.
//!
//! Builds a frame, pushes it through a fading channel, computes SoftPHY
//! hints and the BER estimate at the receiver, runs the interference
//! detector, and feeds the result to a SoftRate sender — the full
//! cross-layer path of Figure 2.
//!
//! Run with: `cargo run --release --example quickstart`

use softrate::channel::link::{Link, LinkConfig};
use softrate::channel::model::FadingSpec;
use softrate::core::adapter::{RateAdapter, TxOutcome};
use softrate::core::collision::CollisionDetector;
use softrate::core::hints::FrameHints;
use softrate::core::softrate::SoftRate;
use softrate::phy::ofdm::SIMULATION;
use softrate::phy::rates::PAPER_RATES;

fn main() {
    // --- A wireless link: 20 MHz OFDM, Rayleigh fading at walking speed.
    let mut cfg = LinkConfig::new(SIMULATION);
    cfg.noise_power_db = -16.0; // mean SNR 16 dB
    cfg.fading = FadingSpec::Flat { doppler_hz: 40.0 };
    cfg.seed = 42;
    let mut link = Link::new(cfg);

    // --- A SoftRate sender with the paper's defaults (frame ARQ,
    //     2-level jumps, 3-silent-loss fallback).
    let mut sender = SoftRate::with_defaults();
    let detector = CollisionDetector::default();

    println!(
        "{:>6} {:>12} {:>10} {:>12} {:>10}",
        "frame", "rate", "delivered", "BER est", "true BER"
    );
    let mut t = 0.0;
    for frame in 0..40 {
        // 1. The sender picks a rate.
        let attempt = sender.next_attempt(t);
        let rate = PAPER_RATES[attempt.rate_idx];

        // 2. The frame crosses the channel (100-byte payload here).
        let (tx, obs) = link.probe(rate, 100, t, &[], false);
        t += 0.005;

        // 3. The receiver computes SoftPHY hints -> per-frame BER, and runs
        //    the interference detector (paper Eq. 3/4 and §3.2).
        let outcome = match &obs.rx {
            Some(rx) if rx.header.is_some() && !rx.llrs.is_empty() => {
                let hints = FrameHints::from_llrs(&rx.llrs, rx.info_bits_per_symbol);
                let verdict = detector.detect(&hints);
                println!(
                    "{frame:>6} {:>12} {:>10} {:>12.2e} {:>10.2e}",
                    rate.label(),
                    rx.crc_ok,
                    verdict.interference_free_ber,
                    obs.true_ber.unwrap_or(f64::NAN),
                );
                TxOutcome {
                    rate_idx: attempt.rate_idx,
                    acked: rx.crc_ok,
                    feedback_received: true,
                    ber_feedback: Some(verdict.interference_free_ber),
                    interference_flagged: verdict.collision_detected,
                    postamble_ack: false,
                    snr_feedback_db: Some(rx.snr_db),
                    airtime: tx.airtime(),
                    now: t,
                }
            }
            _ => {
                println!(
                    "{frame:>6} {:>12} {:>10} {:>12} {:>10}",
                    rate.label(),
                    "SILENT",
                    "-",
                    "-"
                );
                TxOutcome {
                    rate_idx: attempt.rate_idx,
                    acked: false,
                    feedback_received: false,
                    ber_feedback: None,
                    interference_flagged: false,
                    postamble_ack: false,
                    snr_feedback_db: None,
                    airtime: tx.airtime(),
                    now: t,
                }
            }
        };

        // 4. The feedback drives the next rate decision.
        sender.on_outcome(&outcome);
    }
    println!("\nfinal rate: {}", sender.current_rate().label());
    println!("(the sender should have climbed while the channel was good and");
    println!(" backed off through fades — all from per-frame BER feedback)");
}
