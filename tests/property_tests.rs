//! Property-based tests (proptest) on the core invariants, spanning crates.

use proptest::prelude::*;

use softrate::core::hints::{error_prob_from_hint, FrameHints};
use softrate::core::prediction::{clamp_ber, predict_ber, BER_CEIL, BER_FLOOR};
use softrate::core::recovery::{ChunkedHarq, ErrorRecovery, FrameArq};
use softrate::core::thresholds::select_rate;
use softrate::phy::bcjr::BcjrDecoder;
use softrate::phy::bits::{bit_error_rate, bits_to_bytes, bytes_to_bits, deterministic_payload};
use softrate::phy::convolutional::{coded_len, depuncture, encode, puncture, TAIL_BITS};
use softrate::phy::crc::{append_crc32, check_crc32};
use softrate::phy::interleaver::Interleaver;
use softrate::phy::rates::{CodeRate, PAPER_RATES};
use softrate::trace::schema::hash_uniform;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bits_bytes_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let bits = bytes_to_bits(&data);
        prop_assert_eq!(bits_to_bytes(&bits), data);
    }

    #[test]
    fn crc_roundtrip_and_detects_flip(
        data in proptest::collection::vec(any::<u8>(), 1..128),
        flip in any::<u16>(),
    ) {
        let mut framed = data.clone();
        append_crc32(&mut framed);
        prop_assert_eq!(check_crc32(&framed), Some(&data[..]));
        let bit = flip as usize % (framed.len() * 8);
        framed[bit / 8] ^= 1 << (bit % 8);
        prop_assert_eq!(check_crc32(&framed), None);
    }

    #[test]
    fn encode_decode_identity_under_no_noise(
        seed in any::<u64>(),
        len in 4usize..64,
        rate_sel in 0usize..3,
    ) {
        let rate = [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters][rate_sel];
        let info = bytes_to_bits(&deterministic_payload(seed, len));
        let tx = puncture(&encode(&info), rate);
        prop_assert_eq!(tx.len(), coded_len(info.len(), rate));
        let llrs: Vec<f64> = tx.iter().map(|&b| if b == 1 { 6.0 } else { -6.0 }).collect();
        let mother = depuncture(&llrs, rate, 2 * (info.len() + TAIL_BITS));
        let out = BcjrDecoder::new().decode(&mother);
        prop_assert_eq!(out.bits, info);
    }

    #[test]
    fn interleaver_is_bijective(
        sel in 0usize..4,
        seed in any::<u64>(),
    ) {
        let (ncbps, nbpsc) = [(96, 1), (192, 2), (384, 4), (576, 6)][sel];
        let il = Interleaver::new(ncbps, nbpsc);
        let bits = bytes_to_bits(&deterministic_payload(seed, ncbps / 8));
        prop_assert_eq!(il.deinterleave_bits(&il.interleave(&bits)), bits);
    }

    #[test]
    fn error_prob_is_half_at_zero_and_decreasing(h in 0.0f64..40.0) {
        let p = error_prob_from_hint(h);
        prop_assert!(p > 0.0 && p <= 0.5);
        prop_assert!(error_prob_from_hint(h + 0.5) < p);
    }

    #[test]
    fn frame_hints_ber_bounded(
        llrs in proptest::collection::vec(-30.0f64..30.0, 1..256),
        bps in 1usize..64,
    ) {
        let hints = FrameHints::from_llrs(&llrs, bps);
        let ber = hints.frame_ber();
        prop_assert!((0.0..=0.5).contains(&ber));
        // Per-symbol BERs average back to the frame BER.
        let sym = hints.symbol_bers();
        let weighted: f64 = sym
            .iter()
            .enumerate()
            .map(|(j, p)| {
                let n = (llrs.len() - j * bps).min(bps);
                p * n as f64
            })
            .sum::<f64>() / llrs.len() as f64;
        prop_assert!((weighted - ber).abs() < 1e-9);
    }

    #[test]
    fn prediction_monotone_and_clamped(
        ber in 1e-12f64..1.0,
        from in 0usize..6,
        to in 0usize..6,
    ) {
        let p = predict_ber(ber, from, to);
        prop_assert!((BER_FLOOR..=BER_CEIL).contains(&p));
        if to > from {
            prop_assert!(p >= clamp_ber(ber));
        } else if to < from {
            prop_assert!(p <= clamp_ber(ber));
        }
    }

    #[test]
    fn goodput_monotone_in_ber(ber in 0.0f64..0.4, bump in 1e-6f64..0.1) {
        let r = PAPER_RATES[3];
        for rec in [&FrameArq as &dyn ErrorRecovery, &ChunkedHarq::default()] {
            let g1 = rec.goodput(r, 10_000, ber);
            let g2 = rec.goodput(r, 10_000, (ber + bump).min(0.5));
            prop_assert!(g2 <= g1 + 1e-9);
        }
    }

    #[test]
    fn select_rate_stays_in_window(
        current in 0usize..6,
        ber in 1e-9f64..0.5,
        jump in 1usize..3,
    ) {
        let sel = select_rate(current, ber, PAPER_RATES, 11_520, &FrameArq, jump);
        prop_assert!(sel <= current + jump);
        prop_assert!(sel + jump >= current);
        prop_assert!(sel < PAPER_RATES.len());
    }

    #[test]
    fn hash_uniform_in_range(words in proptest::collection::vec(any::<u64>(), 1..6)) {
        let u = hash_uniform(&words);
        prop_assert!((0.0..1.0).contains(&u));
        prop_assert_eq!(u, hash_uniform(&words), "must be deterministic");
    }

    #[test]
    fn ground_truth_ber_survives_decoding_floor(
        seed in any::<u64>(),
        len in 8usize..48,
    ) {
        // A clean loopback must decode with zero BER for any payload.
        let info = bytes_to_bits(&deterministic_payload(seed, len));
        let tx = puncture(&encode(&info), CodeRate::ThreeQuarters);
        let llrs: Vec<f64> = tx.iter().map(|&b| if b == 1 { 8.0 } else { -8.0 }).collect();
        let mother = depuncture(&llrs, CodeRate::ThreeQuarters, 2 * (info.len() + TAIL_BITS));
        let out = BcjrDecoder::new().decode(&mother);
        prop_assert_eq!(bit_error_rate(&info, &out.bits), 0.0);
    }
}

// ---- TCP NewReno sender invariants ------------------------------------

use softrate::sim::tcp::{TcpConfig, TcpSender};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // The NewReno sender's structural invariants hold under arbitrary
    // interleavings of sends, cumulative ACKs, duplicate ACKs, and
    // timeouts: `cwnd >= 1`, new data respects
    // `in_flight <= floor(cwnd.min(rcv_wnd))` (retransmissions are
    // exempt — they re-send below `snd_una + wnd` by construction),
    // `delivered` is monotone and never exceeds what was sent, and
    // `snd_una <= next_new`.
    #[test]
    fn tcp_sender_invariants_under_random_interleavings(
        init_cwnd in 1u32..16,
        ops in proptest::collection::vec(any::<u8>(), 1..300),
        randoms in proptest::collection::vec(any::<u16>(), 1..64),
    ) {
        let cfg = TcpConfig {
            initial_cwnd: init_cwnd as f64,
            rcv_wnd: 12.0,
            ..Default::default()
        };
        let mut s = TcpSender::new(cfg);
        let mut prev_delivered = 0u64;
        for (i, &op) in ops.iter().enumerate() {
            let now = i as f64 * 0.01;
            let r = randoms[i % randoms.len()] as u64;
            match op % 4 {
                0 => {
                    let before_next = s.next_new();
                    if let Some(seq) = s.next_segment(now) {
                        if seq == before_next {
                            // New data obeys the send window at send time.
                            let wnd = (s.cwnd().min(s.rcv_wnd()).floor() as u64).max(1);
                            prop_assert!(
                                s.in_flight() <= wnd,
                                "in_flight {} > window {}",
                                s.in_flight(),
                                wnd
                            );
                        }
                    }
                }
                1 => {
                    // A plausible cumulative ACK: somewhere in (snd_una,
                    // next_new].
                    if s.in_flight() > 0 {
                        let cum = s.snd_una() + 1 + r % s.in_flight();
                        s.on_ack(cum, now);
                    }
                }
                2 => {
                    // Duplicate ACK.
                    s.on_ack(s.snd_una(), now);
                }
                _ => {
                    // RTO expiry (the plumbing only fires it with data
                    // outstanding; mirror that guard).
                    if s.in_flight() > 0 {
                        s.on_timeout();
                    }
                }
            }
            prop_assert!(s.cwnd() >= 1.0, "cwnd {} < 1", s.cwnd());
            prop_assert!(s.snd_una() <= s.next_new(), "snd_una past next_new");
            prop_assert!(
                s.delivered >= prev_delivered,
                "delivered must be monotone"
            );
            prop_assert!(
                s.delivered <= s.next_new(),
                "cannot deliver unsent data: {} > {}",
                s.delivered,
                s.next_new()
            );
            prev_delivered = s.delivered;
        }
    }
}

// ---- Batched channel kernels (contiguous-lane SoA hot path) ------------
//
// The batched Jakes (`gain_many`/`gain_x4`) and BER/success
// (`ber_success_many`/`eval_many`) kernels must be *bit-identical* to
// their scalar counterparts over arbitrary inputs — that is the whole
// argument for why cohort-batched dispatch cannot move a result byte.
// The generated SNRs deliberately include the oracle guard-band edges
// (`snr_star ± {0, 1, 2} µdB`, the thresholds `OracleBands` pads by
// `ORACLE_GUARD_DB = 1e-6`), where an almost-right kernel would diverge
// first.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gain_many_matches_scalar_gain_bit_for_bit(
        seed in any::<u64>(),
        doppler in 0.0f64..500.0,
        ts in proptest::collection::vec(0.0f64..100.0, 0..24),
    ) {
        use softrate::channel::jakes::JakesFading;
        use softrate::phy::complex::Complex;
        let j = JakesFading::new(doppler, seed);
        let mut out = vec![Complex::new(0.0, 0.0); ts.len()];
        j.gain_many(&ts, &mut out);
        for (t, o) in ts.iter().zip(&out) {
            let s = j.gain(*t);
            prop_assert_eq!(o.re.to_bits(), s.re.to_bits(), "re at t={}", t);
            prop_assert_eq!(o.im.to_bits(), s.im.to_bits(), "im at t={}", t);
            prop_assert!(o.re.is_finite() && o.im.is_finite());
        }
    }

    #[test]
    fn gain_x4_matches_scalar_gain_bit_for_bit(
        seeds in proptest::collection::vec(any::<u64>(), 4..5),
        doppler in 0.0f64..500.0,
        ts in proptest::collection::vec(0.0f64..50.0, 4..5),
    ) {
        use softrate::channel::jakes::JakesFading;
        let js: Vec<JakesFading> =
            seeds.iter().map(|&s| JakesFading::new(doppler, s)).collect();
        let ts = [ts[0], ts[1], ts[2], ts[3]];
        let g = JakesFading::gain_x4([&js[0], &js[1], &js[2], &js[3]], ts);
        for l in 0..4 {
            let s = js[l].gain(ts[l]);
            prop_assert_eq!(g[l].re.to_bits(), s.re.to_bits(), "lane {}", l);
            prop_assert_eq!(g[l].im.to_bits(), s.im.to_bits(), "lane {}", l);
        }
    }

    #[test]
    fn batched_ber_kernels_match_scalar_bit_for_bit_including_guard_bands(
        raw in proptest::collection::vec(any::<u64>(), 0..24),
        edges in proptest::collection::vec(any::<u64>(), 0..12),
    ) {
        use softrate::channel::analytic::{
            analytic_ber, ber_success_many, frame_success_prob, FrameSuccessMemo,
            HEADER_FAIL_BER, REQUIRED_SNR_DB,
        };
        const FRAME_BITS: [usize; 3] = [8_000, 11_520, 12_256];
        let mut snrs = Vec::new();
        let mut rates = Vec::new();
        let mut bits = Vec::new();
        // Each word packs one lane: a millidecibel SNR in [-10, 40], a
        // rate index, and a frame-size choice.
        for &w in &raw {
            let snr = -10.0 + (w % 50_001) as f64 * 1e-3;
            let r = ((w >> 20) % 6) as usize;
            let b = ((w >> 40) % 3) as usize;
            snrs.push(snr);
            rates.push(r as u32);
            bits.push(FRAME_BITS[b] as u64);
        }
        // The oracle guard-band edges: exact thresholds and ±1/±2 µdB —
        // the 1e-6 dB pads OracleBands uses. NaN-free by construction
        // (finite req, finite blim > 1e-9).
        for &w in &edges {
            let r = (w % 6) as usize;
            let k = ((w >> 8) % 5) as usize;
            let fb = 11_520usize;
            let blim =
                HEADER_FAIL_BER.min(1.0 - 0.95f64.powf(1.0 / fb as f64));
            if blim <= 1e-9 {
                continue;
            }
            let snr_star = REQUIRED_SNR_DB[r] + (-blim.log10() - 6.0) / 1.5;
            let snr = snr_star + [0.0, 1e-6, -1e-6, 2e-6, -2e-6][k];
            prop_assert!(snr.is_finite());
            snrs.push(snr);
            rates.push(r as u32);
            bits.push(fb as u64);
        }
        // The free batched kernel against the scalar kernels.
        let mut out = vec![(0.0, 0.0); snrs.len()];
        ber_success_many(&snrs, &rates, &bits, &mut out);
        for i in 0..snrs.len() {
            let ber = analytic_ber(snrs[i], rates[i] as usize);
            let p = frame_success_prob(ber, bits[i] as usize);
            prop_assert_eq!(out[i].0.to_bits(), ber.to_bits(), "ber lane {}", i);
            prop_assert_eq!(out[i].1.to_bits(), p.to_bits(), "success lane {}", i);
            prop_assert!(out[i].0.is_finite() && out[i].1.is_finite());
        }
        // The memoized batch probe against both the scalar kernels and a
        // scalar memo walked over the same keys in order.
        let mut batch_memo = FrameSuccessMemo::new();
        let mut batch_out = vec![(0.0, 0.0); snrs.len()];
        batch_memo.eval_many(&snrs, &rates, &bits, &mut batch_out);
        let mut scalar_memo = FrameSuccessMemo::new();
        for i in 0..snrs.len() {
            let scalar =
                scalar_memo.ber_and_success(snrs[i], rates[i] as usize, bits[i] as usize);
            prop_assert_eq!(batch_out[i].0.to_bits(), scalar.0.to_bits(), "memo ber {}", i);
            prop_assert_eq!(batch_out[i].1.to_bits(), scalar.1.to_bits(), "memo p {}", i);
            prop_assert_eq!(batch_out[i].0.to_bits(), out[i].0.to_bits());
            prop_assert_eq!(batch_out[i].1.to_bits(), out[i].1.to_bits());
        }
    }
}
