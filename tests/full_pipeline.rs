//! Cross-crate integration tests: frame → channel → SoftPHY hints →
//! SoftRate decisions, exercising the full Figure 2 loop.

use softrate::channel::interference::{interferer_frame, Interferer};
use softrate::channel::link::{Link, LinkConfig};
use softrate::channel::model::{ChannelInstance, FadingSpec};
use softrate::channel::pathloss::Attenuation;
use softrate::core::adapter::{RateAdapter, TxOutcome};
use softrate::core::collision::CollisionDetector;
use softrate::core::hints::FrameHints;
use softrate::core::softrate::SoftRate;
use softrate::phy::ofdm::SIMULATION;
use softrate::phy::rates::PAPER_RATES;

/// Drives a SoftRate sender over a live (non-trace) link for `frames`
/// probes and returns the chosen rate indices.
fn drive_softrate(link: &mut Link, frames: usize, payload: usize) -> Vec<usize> {
    let mut sender = SoftRate::with_defaults();
    let detector = CollisionDetector::default();
    let mut rates = Vec::new();
    let mut t = 0.0;
    for _ in 0..frames {
        let attempt = sender.next_attempt(t);
        rates.push(attempt.rate_idx);
        let rate = PAPER_RATES[attempt.rate_idx];
        let (tx, obs) = link.probe(rate, payload, t, &[], false);
        t += 0.005;
        let outcome = match &obs.rx {
            Some(rx) if rx.header.is_some() && !rx.llrs.is_empty() => {
                let hints = FrameHints::from_llrs(&rx.llrs, rx.info_bits_per_symbol);
                let v = detector.detect(&hints);
                TxOutcome {
                    rate_idx: attempt.rate_idx,
                    acked: rx.crc_ok,
                    feedback_received: true,
                    ber_feedback: Some(v.interference_free_ber),
                    interference_flagged: v.collision_detected,
                    postamble_ack: false,
                    snr_feedback_db: Some(rx.snr_db),
                    airtime: tx.airtime(),
                    now: t,
                }
            }
            _ => TxOutcome {
                rate_idx: attempt.rate_idx,
                acked: false,
                feedback_received: false,
                ber_feedback: None,
                interference_flagged: false,
                postamble_ack: false,
                snr_feedback_db: None,
                airtime: tx.airtime(),
                now: t,
            },
        };
        sender.on_outcome(&outcome);
    }
    rates
}

#[test]
fn softrate_climbs_on_a_strong_channel() {
    let mut cfg = LinkConfig::new(SIMULATION);
    cfg.noise_power_db = -25.0; // 25 dB SNR: every paper rate works
    cfg.seed = 1;
    let mut link = Link::new(cfg);
    let rates = drive_softrate(&mut link, 12, 100);
    assert_eq!(rates[0], 0, "starts at the base rate");
    assert_eq!(
        *rates.last().unwrap(),
        5,
        "must reach the top rate: {rates:?}"
    );
}

#[test]
fn softrate_settles_midtable_on_a_mid_channel() {
    // ~9 dB: QPSK 3/4 (idx 3) works, QAM16 1/2 is marginal, QAM16 3/4 dead.
    let mut cfg = LinkConfig::new(SIMULATION);
    cfg.noise_power_db = -9.0;
    cfg.seed = 2;
    let mut link = Link::new(cfg);
    let rates = drive_softrate(&mut link, 30, 100);
    let tail = &rates[10..];
    let mean: f64 = tail.iter().map(|&r| r as f64).sum::<f64>() / tail.len() as f64;
    assert!(
        (2.0..=4.5).contains(&mean),
        "should hover around QPSK3/4-QAM16: mean {mean:.2}, rates {rates:?}"
    );
    // SoftRate keeps re-probing upward whenever the measured BER sits at
    // the floor (its documented ±2-jump behaviour, §3.3), but a dead rate
    // must never be *kept*: no two consecutive picks of QAM16 3/4.
    assert!(
        tail.windows(2).all(|w| !(w[0] == 5 && w[1] == 5)),
        "QAM16 3/4 is dead at 9 dB and must not persist: {rates:?}"
    );
}

#[test]
fn softrate_tracks_a_fading_channel_downward() {
    // Strong channel that ramps down 25 dB over the run.
    let mut cfg = LinkConfig::new(SIMULATION);
    cfg.noise_power_db = -28.0;
    cfg.attenuation = Attenuation::RampDb {
        t_start: 0.0,
        db_start: 0.0,
        t_end: 0.4,
        db_end: -25.0,
    };
    cfg.seed = 3;
    let mut link = Link::new(cfg);
    let rates = drive_softrate(&mut link, 80, 100);
    let early: f64 = rates[5..15].iter().map(|&r| r as f64).sum::<f64>() / 10.0;
    let late: f64 = rates[70..].iter().map(|&r| r as f64).sum::<f64>() / 10.0;
    assert!(
        early - late >= 2.0,
        "rate must fall with the channel: early {early:.1}, late {late:.1}"
    );
}

#[test]
fn interference_free_feedback_keeps_rate_through_collisions() {
    // A clean 25 dB channel where every second frame is hit by an equal-
    // power interferer mid-frame. The detector should excise it and the
    // sender should stay high.
    let mut cfg = LinkConfig::new(SIMULATION);
    cfg.noise_power_db = -25.0;
    cfg.seed = 4;
    let mut link = Link::new(cfg);
    let mut sender = SoftRate::with_defaults();
    let detector = CollisionDetector::default();
    let mut t = 0.0;
    let mut flagged = 0;
    // Long victim frames (700 B) so the short interferer hits the middle
    // of the payload, leaving clean symbols on both sides for the jump
    // detector.
    for k in 0..24 {
        let attempt = sender.next_attempt(t);
        let rate = PAPER_RATES[attempt.rate_idx];
        let interferers: Vec<Interferer> = if k % 2 == 0 && k > 6 {
            let n = softrate::phy::frame::frame_symbol_count(&SIMULATION, rate, 700, false);
            vec![Interferer {
                symbols: interferer_frame(&SIMULATION, PAPER_RATES[1], 80, k),
                start_symbol: (n / 2) as isize,
                // Clearly above the victim: the overlap is unambiguous at
                // every victim rate (at 0 dB relative, BPSK 1/2 decodes
                // through the collision and there is nothing to detect).
                power_db: 3.0,
                channel: ChannelInstance::new(
                    FadingSpec::None,
                    Attenuation::NONE,
                    SIMULATION.n_used(),
                    k,
                ),
            }]
        } else {
            Vec::new()
        };
        let (tx, obs) = link.probe(rate, 700, t, &interferers, false);
        t += 0.005;
        if let Some(rx) = &obs.rx {
            if rx.header.is_some() && !rx.llrs.is_empty() {
                let hints = FrameHints::from_llrs(&rx.llrs, rx.info_bits_per_symbol);
                let v = detector.detect(&hints);
                if v.collision_detected {
                    flagged += 1;
                }
                sender.on_outcome(&TxOutcome {
                    rate_idx: attempt.rate_idx,
                    acked: rx.crc_ok,
                    feedback_received: true,
                    ber_feedback: Some(v.interference_free_ber),
                    interference_flagged: v.collision_detected,
                    postamble_ack: false,
                    snr_feedback_db: Some(rx.snr_db),
                    airtime: tx.airtime(),
                    now: t,
                });
            }
        }
    }
    // The paper's own detector catches ~80 % of collision-errored frames;
    // expect at least half here.
    assert!(
        flagged >= 4,
        "detector must catch most mid-frame collisions, got {flagged}"
    );
    assert!(
        sender.current_rate_idx() >= 4,
        "collisions must not drag the rate down on a clean channel (at {})",
        sender.current_rate_idx()
    );
}

#[test]
fn ber_estimate_matches_truth_within_half_decade() {
    // Across a range of SNRs, the SoftPHY estimate should stay within
    // about half a decade of the truth whenever the truth is measurable
    // (paper Fig. 7a: "error variance below one-tenth of one order of
    // magnitude" for binned means; individual frames are noisier).
    let mut errs = Vec::new();
    for snr_x2 in 8..20 {
        let mut cfg = LinkConfig::new(SIMULATION);
        cfg.noise_power_db = -(snr_x2 as f64) / 2.0 - 2.0;
        cfg.seed = 100 + snr_x2;
        let mut link = Link::new(cfg);
        for k in 0..6 {
            for &rate in &PAPER_RATES[2..] {
                let (_, obs) = link.probe(rate, 400, k as f64 * 0.01, &[], false);
                if let (Some(rx), Some(truth)) = (&obs.rx, obs.true_ber) {
                    if rx.header.is_some() && !rx.llrs.is_empty() && truth > 3e-4 {
                        let est =
                            FrameHints::from_llrs(&rx.llrs, rx.info_bits_per_symbol).frame_ber();
                        errs.push((est.log10() - truth.log10()).abs());
                    }
                }
            }
        }
    }
    assert!(
        errs.len() > 20,
        "need measurable-BER frames ({} found)",
        errs.len()
    );
    let mean_err = errs.iter().sum::<f64>() / errs.len() as f64;
    assert!(
        mean_err < 0.5,
        "mean |log10 est/truth| = {mean_err:.2} (want < 0.5)"
    );
}
