//! Integration: trace generation → network simulation, asserting the
//! paper's qualitative orderings on small configurations.

use std::sync::Arc;

use softrate::sim::config::{AdapterKind, SimConfig};
use softrate::sim::netsim::NetSim;
use softrate::trace::generate::{static_short_trace, walking_trace};
use softrate::trace::recipes::{StaticShortRecipe, WalkingRecipe};
use softrate::trace::schema::LinkTrace;
use softrate::trace::snr_training::{observations_from_trace, train_snr_table};

fn short_walking_pair() -> (Arc<LinkTrace>, Arc<LinkTrace>) {
    let recipe = WalkingRecipe {
        duration: 1.5,
        ..Default::default()
    };
    (
        Arc::new(walking_trace(0, &recipe)),
        Arc::new(walking_trace(1, &recipe)),
    )
}

#[test]
fn walking_trace_drives_tcp() {
    let (up, down) = short_walking_pair();
    let mut cfg = SimConfig::new(AdapterKind::Omniscient, 1);
    cfg.duration = 1.5;
    let r = NetSim::new(cfg, vec![up, down]).run();
    assert!(
        r.aggregate_goodput_bps > 1e6,
        "omniscient TCP over a walking trace must move megabits: {}",
        r.aggregate_goodput_bps
    );
}

#[test]
fn softrate_competitive_with_omniscient_on_walking_trace() {
    let (up, down) = short_walking_pair();
    let run = |kind: AdapterKind| {
        let mut cfg = SimConfig::new(kind, 1);
        cfg.duration = 1.5;
        NetSim::new(cfg, vec![Arc::clone(&up), Arc::clone(&down)]).run()
    };
    let omni = run(AdapterKind::Omniscient);
    let soft = run(AdapterKind::SoftRate);
    let sample = run(AdapterKind::SampleRate);
    assert!(
        soft.aggregate_goodput_bps > 0.5 * omni.aggregate_goodput_bps,
        "SoftRate {} vs omniscient {}",
        soft.aggregate_goodput_bps,
        omni.aggregate_goodput_bps
    );
    // The paper's headline: SoftRate beats SampleRate in mobile channels.
    assert!(
        soft.aggregate_goodput_bps > sample.aggregate_goodput_bps,
        "SoftRate {} must beat SampleRate {}",
        soft.aggregate_goodput_bps,
        sample.aggregate_goodput_bps
    );
}

#[test]
fn snr_trained_table_is_usable() {
    let (up, down) = short_walking_pair();
    let mut obs = observations_from_trace(&up);
    obs.extend(observations_from_trace(&down));
    let table = train_snr_table(&obs);
    // Thresholds must be finite, ordered, and in a plausible dB range.
    for w in table.min_snr_db.windows(2) {
        assert!(w[1] >= w[0]);
    }
    assert!(table.min_snr_db[0] > -5.0 && table.min_snr_db[0] < 40.0);

    let mut cfg = SimConfig::new(AdapterKind::Snr(table), 1);
    cfg.duration = 1.5;
    let r = NetSim::new(cfg, vec![up, down]).run();
    assert!(
        r.aggregate_goodput_bps > 5e5,
        "trained SNR protocol too slow: {}",
        r.aggregate_goodput_bps
    );
}

#[test]
fn interference_detection_pays_under_hidden_terminals() {
    let recipe = StaticShortRecipe {
        duration: 1.5,
        ..Default::default()
    };
    let traces: Vec<Arc<LinkTrace>> = (0..6)
        .map(|r| Arc::new(static_short_trace(r, &recipe)))
        .collect();
    // cs = 0.2: heavy but not total hidden-terminal interference. (At
    // cs = 0.0 the blind variant can *starve* all flows but one, which
    // inflates the aggregate while destroying fairness — an emergent
    // TCP-capture effect; the controlled comparison lives here.)
    let run = |kind: AdapterKind| {
        let mut cfg = SimConfig::new(kind, 3);
        cfg.duration = 1.5;
        cfg.carrier_sense_prob = 0.2;
        NetSim::new(cfg, traces.iter().map(Arc::clone).collect()).run()
    };
    let ideal = run(AdapterKind::SoftRateIdeal);
    let blind = run(AdapterKind::SoftRateNoDetect);
    assert!(ideal.collisions > 0, "hidden terminals must collide");
    assert!(
        ideal.aggregate_goodput_bps >= blind.aggregate_goodput_bps,
        "interference detection should not hurt: ideal {} vs blind {}",
        ideal.aggregate_goodput_bps,
        blind.aggregate_goodput_bps
    );
    // The blind variant reads collisions as fades and underselects more.
    let (_, _, under_blind) = blind.audit.fractions();
    let (_, _, under_ideal) = ideal.audit.fractions();
    assert!(
        under_blind >= under_ideal,
        "blind SoftRate should underselect at least as much ({under_blind:.2} vs {under_ideal:.2})"
    );
}

#[test]
fn simulation_is_deterministic_end_to_end() {
    let (up, down) = short_walking_pair();
    let run = || {
        let mut cfg = SimConfig::new(AdapterKind::SoftRate, 1);
        cfg.duration = 1.0;
        NetSim::new(cfg, vec![Arc::clone(&up), Arc::clone(&down)]).run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.aggregate_goodput_bps, b.aggregate_goodput_bps);
    assert_eq!(a.frames_sent, b.frames_sent);
    assert_eq!(a.audit, b.audit);
}
