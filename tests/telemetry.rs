//! Integration tests of the telemetry seam through the facade crate.
//!
//! The hard invariants of the observability PR, end to end:
//!
//! * disabled path — a run with `telemetry: None` is byte-identical to
//!   one that never heard of the recorder, and enabling the recorder
//!   changes neither the results JSONL nor `events_processed`;
//! * enabled path — the metrics and trace streams are byte-identical
//!   across thread counts at acceptance scale (>= 100 stations);
//! * attribution — every failed attempt carries exactly one loss cause,
//!   so per-station `retries == collision + fading + capture`;
//! * the emitted streams validate against the checked-in schema.

use softrate::net::mobility::MobilitySpec;
use softrate::net::sim::{SpatialConfig, SpatialSim};
use softrate::net::spatial::SpatialSpec;
use softrate::scenario::builtin;
use softrate::scenario::engine::{
    expand, run_all, run_all_with_telemetry, telemetry_metrics_jsonl, telemetry_trace_jsonl,
    to_jsonl,
};
use softrate::sim::config::AdapterKind;
use softrate::telemetry::inspect::Schema;
use softrate::telemetry::{RecorderConfig, TelemetryReport};

/// A shortened builtin: the spec's topology and adapters, test runtime.
fn short(name: &str, duration: f64) -> softrate::scenario::spec::ScenarioSpec {
    let mut spec = builtin::get(name).expect("builtin exists");
    spec.duration = duration;
    spec
}

/// Runs a builtin with the recorder on and returns `(results_jsonl,
/// metrics_jsonl, trace_jsonl, reports)`.
fn run_with_recorder(
    name: &str,
    duration: f64,
    threads: usize,
    cfg: RecorderConfig,
) -> (String, String, String, Vec<Option<TelemetryReport>>) {
    let plans = expand(&short(name, duration)).expect("expands");
    let with = run_all_with_telemetry(&plans, Some(threads), Some(cfg));
    let results: Vec<_> = with.iter().map(|(r, _)| r.clone()).collect();
    let reports = with.iter().map(|(_, t)| t.clone()).collect();
    (
        to_jsonl(&results),
        telemetry_metrics_jsonl(&with),
        telemetry_trace_jsonl(&with),
        reports,
    )
}

#[test]
fn recorder_does_not_change_results_on_either_medium() {
    // fast-fading exercises the trace-backed path, dense-enterprise the
    // spatial path; both must produce byte-identical results JSONL with
    // the recorder on, off, and tracing.
    for name in ["fast-fading", "dense-enterprise"] {
        let plans = expand(&short(name, 0.5)).expect("expands");
        let off = to_jsonl(&run_all(&plans, Some(2)));
        let cfg = RecorderConfig {
            trace: true,
            ..RecorderConfig::default()
        };
        let with = run_all_with_telemetry(&plans, Some(2), Some(cfg));
        let on = to_jsonl(&with.iter().map(|(r, _)| r.clone()).collect::<Vec<_>>());
        assert!(!off.is_empty());
        assert_eq!(off, on, "{name}: recorder must not perturb results");
        assert!(
            with.iter().all(|(_, t)| t.is_some()),
            "{name}: every run must yield a telemetry report"
        );
    }
}

/// A small two-cell deployment driven through `SpatialSim` directly, so
/// the test can compare `events_processed` (the scenario engine's
/// results rows do not carry it).
fn two_cell_cfg(telemetry: Option<RecorderConfig>) -> SpatialConfig {
    let spec = SpatialSpec {
        ap_cols: 2,
        ap_rows: 1,
        ap_spacing_m: 25.0,
        n_stations: 16,
        snr_ref_db: None,
        path_loss_exp: None,
        sense_snr_db: None,
        capture_sir_db: None,
        doppler_hz: None,
        mobility: MobilitySpec::Static,
        roaming: None,
    };
    let mut cfg = SpatialConfig::new(AdapterKind::SoftRate, spec);
    cfg.duration = 1.0;
    cfg.telemetry = telemetry;
    cfg
}

#[test]
fn recorder_does_not_change_events_processed() {
    let off = SpatialSim::new(two_cell_cfg(None)).expect("valid").run();
    let on = SpatialSim::new(two_cell_cfg(Some(RecorderConfig::default())))
        .expect("valid")
        .run();
    assert_eq!(off.events_processed, on.events_processed);
    assert_eq!(off.aggregate_goodput_bps, on.aggregate_goodput_bps);
    assert_eq!(off.frames_sent, on.frames_sent);
    assert_eq!(off.frames_delivered, on.frames_delivered);
    assert_eq!(off.collisions, on.collisions);
    assert!(
        off.telemetry.is_none(),
        "disabled path must carry no report"
    );
    let report = on.telemetry.expect("enabled path must carry a report");
    assert!(!report.totals.is_empty());
}

#[test]
fn metrics_jsonl_is_byte_identical_across_thread_counts() {
    // Acceptance scale: dense-enterprise is the >= 100-station builtin.
    let cfg = RecorderConfig {
        trace: true,
        ..RecorderConfig::default()
    };
    let (_, m1, t1, _) = run_with_recorder("dense-enterprise", 0.5, 1, cfg.clone());
    let (_, m2, t2, _) = run_with_recorder("dense-enterprise", 0.5, 2, cfg.clone());
    let (_, m8, t8, _) = run_with_recorder("dense-enterprise", 0.5, 8, cfg);
    assert!(!m1.is_empty());
    assert_eq!(m1, m2, "metrics must not depend on thread count");
    assert_eq!(m2, m8, "metrics must not depend on thread count");
    assert!(!t1.is_empty());
    assert_eq!(t1, t2, "trace must not depend on thread count");
    assert_eq!(t2, t8, "trace must not depend on thread count");
}

#[test]
fn every_failed_attempt_has_exactly_one_cause() {
    // hidden-terminal manufactures same-cell collisions on the
    // trace-backed medium; dense-enterprise loses frames to fading and
    // inter-cell capture on the spatial medium.
    for (name, duration) in [("hidden-terminal", 1.0), ("dense-enterprise", 0.5)] {
        let (_, _, _, reports) = run_with_recorder(name, duration, 2, RecorderConfig::default());
        let mut retries = 0u64;
        let mut attributed = 0u64;
        for report in reports.iter().flatten() {
            for row in &report.totals {
                let causes = row.loss_collision + row.loss_fading + row.loss_capture;
                assert_eq!(
                    row.retries, causes,
                    "{name} run {} station {}: every failure needs one cause",
                    row.run_idx, row.station
                );
                retries += row.retries;
                attributed += causes;
            }
            for row in &report.intervals {
                assert_eq!(
                    row.retries,
                    row.loss_collision + row.loss_fading + row.loss_capture,
                    "{name}: interval rows must balance too"
                );
            }
        }
        assert!(
            retries > 0,
            "{name}: the scenario must actually lose frames"
        );
        assert_eq!(retries, attributed);
    }
}

#[test]
fn hidden_terminal_losses_are_attributed_to_collisions() {
    let (_, _, _, reports) =
        run_with_recorder("hidden-terminal", 1.0, 2, RecorderConfig::default());
    let collision: u64 = reports
        .iter()
        .flatten()
        .flat_map(|r| &r.totals)
        .map(|t| t.loss_collision)
        .sum();
    assert!(
        collision > 0,
        "hidden terminals must produce collision-attributed losses"
    );
}

#[test]
fn emitted_streams_validate_against_the_checked_in_schema() {
    let schema = Schema::parse(include_str!("schemas/telemetry.schema.json")).expect("schema");
    let cfg = RecorderConfig {
        trace: true,
        ..RecorderConfig::default()
    };
    let (_, metrics, trace, _) = run_with_recorder("fast-fading", 0.5, 2, cfg);
    let n = schema.validate_stream(&metrics).expect("metrics validate");
    assert!(n > 0, "metrics stream must not be empty");
    let n = schema.validate_stream(&trace).expect("trace validates");
    assert!(n > 0, "trace stream must not be empty");
}
