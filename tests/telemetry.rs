//! Integration tests of the telemetry seam through the facade crate.
//!
//! The hard invariants of the observability PR, end to end:
//!
//! * disabled path — a run with `telemetry: None` is byte-identical to
//!   one that never heard of the recorder, and enabling the recorder
//!   changes neither the results JSONL nor `events_processed`;
//! * enabled path — the metrics and trace streams are byte-identical
//!   across thread counts at acceptance scale (>= 100 stations);
//! * attribution — every failed attempt carries exactly one loss cause,
//!   so per-station `retries == collision + fading + capture`;
//! * the decision ledger — byte-identical across thread counts, every
//!   rate change observed in the metrics stream has a matching ledger
//!   row, and the ledger stream is empty (and everything else unchanged)
//!   when `decisions` is off;
//! * the flight recorder replays its ring exactly once on a retry storm,
//!   deterministically across thread counts;
//! * the emitted streams validate against the checked-in schema.

use softrate::net::mobility::MobilitySpec;
use softrate::net::sim::{SpatialConfig, SpatialSim};
use softrate::net::spatial::SpatialSpec;
use softrate::scenario::builtin;
use softrate::scenario::engine::{
    expand, run_all, run_all_with_telemetry, telemetry_decisions_jsonl, telemetry_metrics_jsonl,
    telemetry_trace_jsonl, to_jsonl,
};
use softrate::sim::config::AdapterKind;
use softrate::telemetry::inspect::Schema;
use softrate::telemetry::{RecorderConfig, TelemetryReport};

/// A shortened builtin: the spec's topology and adapters, test runtime.
fn short(name: &str, duration: f64) -> softrate::scenario::spec::ScenarioSpec {
    let mut spec = builtin::get(name).expect("builtin exists");
    spec.duration = duration;
    spec
}

/// Runs a builtin with the recorder on and returns `(results_jsonl,
/// metrics_jsonl, trace_jsonl, reports)`.
fn run_with_recorder(
    name: &str,
    duration: f64,
    threads: usize,
    cfg: RecorderConfig,
) -> (String, String, String, Vec<Option<TelemetryReport>>) {
    let plans = expand(&short(name, duration)).expect("expands");
    let with = run_all_with_telemetry(&plans, Some(threads), Some(cfg));
    let results: Vec<_> = with.iter().map(|(r, _)| r.clone()).collect();
    let reports = with.iter().map(|(_, t)| t.clone()).collect();
    (
        to_jsonl(&results),
        telemetry_metrics_jsonl(&with),
        telemetry_trace_jsonl(&with),
        reports,
    )
}

#[test]
fn recorder_does_not_change_results_on_either_medium() {
    // fast-fading exercises the trace-backed path, dense-enterprise the
    // spatial path; both must produce byte-identical results JSONL with
    // the recorder on, off, and tracing.
    for name in ["fast-fading", "dense-enterprise"] {
        let plans = expand(&short(name, 0.5)).expect("expands");
        let off = to_jsonl(&run_all(&plans, Some(2)));
        let cfg = RecorderConfig {
            trace: true,
            ..RecorderConfig::default()
        };
        let with = run_all_with_telemetry(&plans, Some(2), Some(cfg));
        let on = to_jsonl(&with.iter().map(|(r, _)| r.clone()).collect::<Vec<_>>());
        assert!(!off.is_empty());
        assert_eq!(off, on, "{name}: recorder must not perturb results");
        assert!(
            with.iter().all(|(_, t)| t.is_some()),
            "{name}: every run must yield a telemetry report"
        );
    }
}

/// A small two-cell deployment driven through `SpatialSim` directly, so
/// the test can compare `events_processed` (the scenario engine's
/// results rows do not carry it).
fn two_cell_cfg(telemetry: Option<RecorderConfig>) -> SpatialConfig {
    let spec = SpatialSpec {
        ap_cols: 2,
        ap_rows: 1,
        ap_spacing_m: 25.0,
        n_stations: 16,
        snr_ref_db: None,
        path_loss_exp: None,
        sense_snr_db: None,
        capture_sir_db: None,
        doppler_hz: None,
        mobility: MobilitySpec::Static,
        roaming: None,
    };
    let mut cfg = SpatialConfig::new(AdapterKind::SoftRate, spec);
    cfg.duration = 1.0;
    cfg.telemetry = telemetry;
    cfg
}

#[test]
fn recorder_does_not_change_events_processed() {
    let off = SpatialSim::new(two_cell_cfg(None)).expect("valid").run();
    let on = SpatialSim::new(two_cell_cfg(Some(RecorderConfig::default())))
        .expect("valid")
        .run();
    assert_eq!(off.events_processed, on.events_processed);
    assert_eq!(off.aggregate_goodput_bps, on.aggregate_goodput_bps);
    assert_eq!(off.frames_sent, on.frames_sent);
    assert_eq!(off.frames_delivered, on.frames_delivered);
    assert_eq!(off.collisions, on.collisions);
    assert!(
        off.telemetry.is_none(),
        "disabled path must carry no report"
    );
    let report = on.telemetry.expect("enabled path must carry a report");
    assert!(!report.totals.is_empty());
}

#[test]
fn metrics_jsonl_is_byte_identical_across_thread_counts() {
    // Acceptance scale: dense-enterprise is the >= 100-station builtin.
    let cfg = RecorderConfig {
        trace: true,
        ..RecorderConfig::default()
    };
    let (_, m1, t1, _) = run_with_recorder("dense-enterprise", 0.5, 1, cfg.clone());
    let (_, m2, t2, _) = run_with_recorder("dense-enterprise", 0.5, 2, cfg.clone());
    let (_, m8, t8, _) = run_with_recorder("dense-enterprise", 0.5, 8, cfg);
    assert!(!m1.is_empty());
    assert_eq!(m1, m2, "metrics must not depend on thread count");
    assert_eq!(m2, m8, "metrics must not depend on thread count");
    assert!(!t1.is_empty());
    assert_eq!(t1, t2, "trace must not depend on thread count");
    assert_eq!(t2, t8, "trace must not depend on thread count");
}

#[test]
fn every_failed_attempt_has_exactly_one_cause() {
    // hidden-terminal manufactures same-cell collisions on the
    // trace-backed medium; dense-enterprise loses frames to fading and
    // inter-cell capture on the spatial medium.
    for (name, duration) in [("hidden-terminal", 1.0), ("dense-enterprise", 0.5)] {
        let (_, _, _, reports) = run_with_recorder(name, duration, 2, RecorderConfig::default());
        let mut retries = 0u64;
        let mut attributed = 0u64;
        for report in reports.iter().flatten() {
            for row in &report.totals {
                let causes = row.loss_collision
                    + row.loss_fading
                    + row.loss_capture
                    + row.loss_outage
                    + row.loss_jamming;
                assert_eq!(
                    row.retries, causes,
                    "{name} run {} station {}: every failure needs one cause",
                    row.run_idx, row.station
                );
                retries += row.retries;
                attributed += causes;
            }
            for row in &report.intervals {
                assert_eq!(
                    row.retries,
                    row.loss_collision
                        + row.loss_fading
                        + row.loss_capture
                        + row.loss_outage
                        + row.loss_jamming,
                    "{name}: interval rows must balance too"
                );
            }
        }
        assert!(
            retries > 0,
            "{name}: the scenario must actually lose frames"
        );
        assert_eq!(retries, attributed);
    }
}

#[test]
fn hidden_terminal_losses_are_attributed_to_collisions() {
    let (_, _, _, reports) =
        run_with_recorder("hidden-terminal", 1.0, 2, RecorderConfig::default());
    let collision: u64 = reports
        .iter()
        .flatten()
        .flat_map(|r| &r.totals)
        .map(|t| t.loss_collision)
        .sum();
    assert!(
        collision > 0,
        "hidden terminals must produce collision-attributed losses"
    );
}

#[test]
fn emitted_streams_validate_against_the_checked_in_schema() {
    let schema = Schema::parse(include_str!("schemas/telemetry.schema.json")).expect("schema");
    let cfg = RecorderConfig {
        trace: true,
        decisions: true,
        ..RecorderConfig::default()
    };
    let plans = expand(&short("fast-fading", 0.5)).expect("expands");
    let with = run_all_with_telemetry(&plans, Some(2), Some(cfg));
    let (metrics, trace, decisions) = (
        telemetry_metrics_jsonl(&with),
        telemetry_trace_jsonl(&with),
        telemetry_decisions_jsonl(&with),
    );
    let n = schema.validate_stream(&metrics).expect("metrics validate");
    assert!(n > 0, "metrics stream must not be empty");
    let n = schema.validate_stream(&trace).expect("trace validates");
    assert!(n > 0, "trace stream must not be empty");
    let n = schema
        .validate_stream(&decisions)
        .expect("ledger validates");
    assert!(n > 0, "decision ledger must not be empty");
}

#[test]
fn decision_ledger_is_byte_identical_across_thread_counts() {
    // Acceptance scale: dense-enterprise is the >= 100-station builtin.
    let cfg = RecorderConfig {
        decisions: true,
        ..RecorderConfig::default()
    };
    let run = |threads| {
        let plans = expand(&short("dense-enterprise", 0.5)).expect("expands");
        let with = run_all_with_telemetry(&plans, Some(threads), Some(cfg.clone()));
        telemetry_decisions_jsonl(&with)
    };
    let (d1, d2, d8) = (run(1), run(2), run(8));
    assert!(!d1.is_empty(), "the ledger must not be empty");
    assert_eq!(d1, d2, "ledger must not depend on thread count");
    assert_eq!(d2, d8, "ledger must not depend on thread count");
}

#[test]
fn decisions_off_leaves_every_other_stream_unchanged() {
    // Turning the ledger on must not perturb results, metrics, or trace
    // (the recorder hooks share one code path either way); turning it
    // off must leave the ledger stream empty.
    let base = RecorderConfig {
        trace: true,
        ..RecorderConfig::default()
    };
    let with_ledger = RecorderConfig {
        decisions: true,
        ..base.clone()
    };
    for name in ["fast-fading", "dense-enterprise"] {
        let plans = expand(&short(name, 0.5)).expect("expands");
        let off = run_all_with_telemetry(&plans, Some(2), Some(base.clone()));
        let on = run_all_with_telemetry(&plans, Some(2), Some(with_ledger.clone()));
        let results =
            |w: &[(
                softrate::scenario::engine::RunResult,
                Option<TelemetryReport>,
            )]| { to_jsonl(&w.iter().map(|(r, _)| r.clone()).collect::<Vec<_>>()) };
        assert_eq!(results(&off), results(&on), "{name}: results perturbed");
        assert_eq!(
            telemetry_metrics_jsonl(&off),
            telemetry_metrics_jsonl(&on),
            "{name}: metrics perturbed by the ledger"
        );
        assert_eq!(
            telemetry_trace_jsonl(&off),
            telemetry_trace_jsonl(&on),
            "{name}: trace perturbed by the ledger"
        );
        assert!(
            telemetry_decisions_jsonl(&off).is_empty(),
            "{name}: ledger must be empty when decisions is off"
        );
        assert!(
            !telemetry_decisions_jsonl(&on).is_empty(),
            "{name}: ledger must be populated when decisions is on"
        );
    }
}

#[test]
fn every_observed_rate_change_has_a_matching_ledger_row() {
    // The reconciliation invariant, pinned: whenever the metrics stream's
    // per-interval rate gauge moves, the ledger explains it with a row
    // landing no later than the end of the interval that first shows the
    // new rate. Covers both media (udp-vehicular: per-frame SNR traces;
    // dense-enterprise: the spatial medium with its oracle overrides).
    // Both are uplink-only UDP builtins: the gauge is per *station*, so
    // on TCP scenarios it interleaves the data port with the reverse-path
    // ACK port and gauge moves stop mapping 1:1 onto port decisions.
    let cfg = RecorderConfig {
        decisions: true,
        ..RecorderConfig::default()
    };
    for name in ["udp-vehicular", "dense-enterprise"] {
        let plans = expand(&short(name, 0.5)).expect("expands");
        let with = run_all_with_telemetry(&plans, Some(2), Some(cfg.clone()));
        let mut checked = 0usize;
        for (_, report) in &with {
            let report = report.as_ref().expect("telemetry on");
            // (station -> (previous gauge, start of its interval)). The
            // gauge is sampled at outcome time, so the decision behind a
            // move can precede the first interval showing the new rate
            // (the station may simply not have transmitted since); it
            // can never precede the interval that last showed the old
            // rate, nor follow the one that first shows the new.
            let mut prev: std::collections::BTreeMap<u64, (u64, f64)> =
                std::collections::BTreeMap::new();
            for row in &report.intervals {
                let Some(rate) = row.rate_idx else { continue };
                if let Some((old, t_prev)) = prev.insert(row.station, (rate, row.t0)) {
                    if old != rate {
                        let t0_us = (t_prev * 1e6).round() as u64;
                        let t1_us = (row.t1 * 1e6).round() as u64;
                        let explained = report.decisions.iter().any(|d| {
                            d.station == row.station
                                && d.new_rate == rate
                                && d.t_us >= t0_us
                                && d.t_us <= t1_us
                        });
                        assert!(
                            explained,
                            "{name} run {} station {}: gauge moved {old} -> {rate} \
                             in [{t0_us}us, {t1_us}us] with no matching ledger row",
                            row.run_idx, row.station
                        );
                        checked += 1;
                    }
                }
            }
        }
        assert!(
            checked > 0,
            "{name}: the scenario must actually change rates"
        );
    }
}

#[test]
fn retry_storm_replays_the_flight_recorder_ring_exactly_once() {
    // hidden-terminal manufactures collision storms; a lowered trigger
    // threshold makes the anomaly fire deterministically. The ring must
    // be replayed (dump=true rows present), each ring record must appear
    // exactly once, and the stream must not depend on the thread count.
    let cfg = RecorderConfig {
        trace: true,
        retry_storm: 8,
        ..RecorderConfig::default()
    };
    let (_, m1, t1, reports) = run_with_recorder("hidden-terminal", 1.0, 1, cfg.clone());
    let (_, m2, t2, _) = run_with_recorder("hidden-terminal", 1.0, 2, cfg.clone());
    let (_, m8, t8, _) = run_with_recorder("hidden-terminal", 1.0, 8, cfg);
    assert_eq!(m1, m2, "metrics must not depend on thread count");
    assert_eq!(m2, m8, "metrics must not depend on thread count");
    assert_eq!(t1, t2, "trace must not depend on thread count");
    assert_eq!(t2, t8, "trace must not depend on thread count");
    let storms: usize = reports
        .iter()
        .flatten()
        .flat_map(|r| &r.anomalies)
        .filter(|a| a.anomaly == "retry-storm")
        .count();
    assert!(storms > 0, "the lowered threshold must trip a retry storm");
    let mut dump_rows = 0usize;
    for report in reports.iter().flatten() {
        let dumped: Vec<_> = report.trace.iter().filter(|t| t.dump).collect();
        dump_rows += dumped.len();
        // Exactly once: the ring drains on replay, so no attempt-bearing
        // record (each `(ev, tx_id, attempt)` names a unique MAC event)
        // may be dumped twice. Attempt-less rows (enqueue/defer) can
        // legitimately collide — e.g. repeated enqueues at a capped
        // queue depth — so they are excluded from the key.
        let mut seen = std::collections::BTreeSet::new();
        for d in dumped.iter().filter(|d| d.tx_id.is_some()) {
            assert!(
                seen.insert((d.ev.clone(), d.tx_id, d.attempt)),
                "run {}: ring row replayed twice: {d:?}",
                report.trace.first().map(|r| r.run_idx).unwrap_or(0)
            );
        }
    }
    assert!(dump_rows > 0, "the storm must dump the flight recorder");
}
