//! Integration tests of the multi-cell spatial subsystem through the
//! facade crate: determinism of the JSONL sink across thread counts at
//! acceptance scale, handoff invariants, and collision-domain isolation.

use softrate::net::mobility::MobilitySpec;
use softrate::net::sim::{SpatialConfig, SpatialSim};
use softrate::net::spatial::{HandoffPolicy, RoamingSpec, SpatialSpec};
use softrate::scenario::builtin;
use softrate::scenario::engine::{
    expand, run_all, run_all_with_options, telemetry_decisions_jsonl, telemetry_metrics_jsonl,
    to_jsonl, RunOptions,
};
use softrate::sim::config::AdapterKind;
use softrate::telemetry::RecorderConfig;

/// The acceptance-scale scenario: >= 100 stations, >= 3 APs, streaming
/// channels only (the spatial path never materializes a `LinkTrace`).
/// Shortened for test runtime; the station/AP shape is the builtin's.
fn dense() -> softrate::scenario::spec::ScenarioSpec {
    let mut spec = builtin::get("dense-enterprise").expect("builtin exists");
    assert!(spec.topology.spatial.as_ref().unwrap().n_stations >= 100);
    assert!({
        let s = spec.topology.spatial.as_ref().unwrap();
        s.ap_cols * s.ap_rows >= 3
    });
    spec.duration = 1.0;
    spec
}

#[test]
fn dense_enterprise_jsonl_is_byte_identical_across_threads_and_repeats() {
    let plans = expand(&dense()).expect("expands");
    let a = to_jsonl(&run_all(&plans, Some(1)));
    let b = to_jsonl(&run_all(&plans, Some(4)));
    let c = to_jsonl(&run_all(&plans, Some(4)));
    assert!(!a.is_empty());
    assert_eq!(a, b, "thread count must not change spatial results");
    assert_eq!(b, c, "repeat runs must be byte-identical");
}

#[test]
fn dense_enterprise_moves_data_at_scale() {
    let results = run_all(&expand(&dense()).unwrap(), None);
    for r in &results {
        assert_eq!(r.per_flow_goodput_bps.len(), 120, "one entry per station");
        assert!(
            r.goodput_bps > 10e6,
            "{}: a 9-cell floor must aggregate > 10 Mbit/s, got {}",
            r.adapter,
            r.goodput_bps
        );
        assert!(r.frames_sent > 1000);
    }
}

#[test]
fn roaming_walkabout_reports_handoffs_through_the_engine() {
    let mut spec = builtin::get("roaming-walkabout").expect("builtin exists");
    spec.duration = 6.0;
    let results = run_all(&expand(&spec).unwrap(), None);
    assert_eq!(results.len(), 4, "2 adapters x 2 handoff policies");
    let total: u64 = results.iter().map(|r| r.handoffs).sum();
    assert!(total > 0, "walking stations must hand off somewhere");
    // The handoff sweep axis is recorded in params.
    assert!(results
        .iter()
        .any(|r| r.params.iter().any(|(k, _)| k.contains("handoff"))));
}

#[test]
fn handoff_log_proves_single_association_at_all_times() {
    let spec = SpatialSpec {
        ap_cols: 3,
        ap_rows: 1,
        ap_spacing_m: 30.0,
        n_stations: 12,
        snr_ref_db: None,
        path_loss_exp: None,
        sense_snr_db: None,
        capture_sir_db: None,
        doppler_hz: None,
        mobility: MobilitySpec::RandomWaypoint {
            speed_mps: 10.0,
            pause_s: 0.0,
        },
        roaming: Some(RoamingSpec {
            hysteresis_db: 1.0,
            check_interval_s: Some(0.1),
            handoff: HandoffPolicy::Reset,
        }),
    };
    let mut cfg = SpatialConfig::new(AdapterKind::SoftRate, spec);
    cfg.duration = 5.0;
    let r = SpatialSim::new(cfg).expect("valid").run();
    assert_eq!(r.initial_assoc.len(), 12);
    assert!(r.handoffs > 0, "fast walkers over 3 cells must roam");
    // Replay the log: every handoff leaves from the station's current AP,
    // so at every instant each station is associated to exactly one AP.
    let mut assoc = r.initial_assoc.clone();
    let mut last_t = 0.0;
    for h in &r.handoff_log {
        assert!(h.t >= last_t, "log must be time-ordered");
        last_t = h.t;
        assert_eq!(assoc[h.station], h.from, "chain broken for {}", h.station);
        assert_ne!(h.from, h.to);
        assert!(h.to < 3);
        assoc[h.station] = h.to;
    }
}

#[test]
fn non_overlapping_domains_never_exchange_interference() {
    // 300 m cells: every cross-cell transmitter is >= 150 m from the
    // foreign AP, below the noise floor at the default path loss.
    let spec = SpatialSpec {
        ap_cols: 2,
        ap_rows: 1,
        ap_spacing_m: 300.0,
        n_stations: 30,
        snr_ref_db: None,
        path_loss_exp: None,
        sense_snr_db: None,
        capture_sir_db: None,
        doppler_hz: None,
        mobility: MobilitySpec::Static,
        roaming: None,
    };
    let mut cfg = SpatialConfig::new(AdapterKind::SoftRate, spec);
    cfg.duration = 2.0;
    let r = SpatialSim::new(cfg).expect("valid").run();
    assert_eq!(
        r.inter_cell_corruptions, 0,
        "disjoint collision domains must not corrupt each other"
    );
    // Every delivery happened inside a domain (structurally: stations only
    // ever transmit to their associated AP), and both domains were live.
    let aps: std::collections::HashSet<usize> = r.initial_assoc.iter().copied().collect();
    assert_eq!(aps.len(), 2);
    assert!(r.frames_delivered > 0);
}

// ---- Spatial flow traffic (the pluggable transport layer) --------------

/// Acceptance: `dense-enterprise-tcp` completes deterministically across
/// thread counts — the spatial-TCP analogue of the UDP determinism pin.
#[test]
fn dense_enterprise_tcp_jsonl_is_byte_identical_across_threads() {
    let mut spec = builtin::get("dense-enterprise-tcp").expect("builtin exists");
    spec.duration = 1.0;
    let plans = expand(&spec).expect("expands");
    let a = to_jsonl(&run_all(&plans, Some(1)));
    let b = to_jsonl(&run_all(&plans, Some(4)));
    let c = to_jsonl(&run_all(&plans, Some(4)));
    assert!(!a.is_empty());
    assert_eq!(a, b, "thread count must not change spatial-TCP results");
    assert_eq!(b, c, "repeat runs must be byte-identical");
}

/// Acceptance: roaming scenarios deliver TCP segments across >= 1 handoff
/// under both Preserve and Reset policies — through the scenario engine,
/// on the shipped `roaming-tcp-download` builtin (whose sweep covers both
/// policies).
#[test]
fn roaming_tcp_download_delivers_across_handoffs_under_both_policies() {
    let mut spec = builtin::get("roaming-tcp-download").expect("builtin exists");
    spec.duration = 6.0;
    let results = run_all(&expand(&spec).unwrap(), None);
    assert_eq!(results.len(), 2, "one run per handoff policy");
    for r in &results {
        let policy: String = r
            .params
            .iter()
            .find(|(k, _)| k.contains("handoff"))
            .map(|(_, v)| format!("{v:?}"))
            .expect("handoff policy is a sweep axis");
        assert!(r.handoffs > 0, "{policy}: walking stations must roam");
        assert!(
            r.goodput_bps > 1e6,
            "{policy}: TCP download must keep delivering across handoffs, got {}",
            r.goodput_bps
        );
        // Delivery is spread over stations, not carried by survivors of a
        // stalled majority: at least half the flows make real progress.
        let alive = r.per_flow_goodput_bps.iter().filter(|&&g| g > 1e4).count();
        assert!(
            alive * 2 >= r.per_flow_goodput_bps.len(),
            "{policy}: too many stalled flows ({alive}/{})",
            r.per_flow_goodput_bps.len()
        );
    }
}

// ---- Shard invariance (the conservative parallel scheduler) ------------

/// Runs a scenario at a given domain count with the full telemetry
/// recorder attached and returns every observable byte stream: results
/// JSONL, interval-metrics JSONL, and the rate-decision ledger JSONL.
fn all_streams(spec: &softrate::scenario::spec::ScenarioSpec, shards: usize) -> [String; 3] {
    all_streams_opts(spec, shards, false)
}

/// [`all_streams`] with the cohort-batching escape hatch exposed, so the
/// batched-vs-unbatched equality tests share the exact harness the
/// shard-invariance tests run under.
fn all_streams_opts(
    spec: &softrate::scenario::spec::ScenarioSpec,
    shards: usize,
    batch_off: bool,
) -> [String; 3] {
    let plans = expand(spec).expect("expands");
    let opts = RunOptions {
        threads: Some(1),
        telemetry: Some(RecorderConfig {
            decisions: true,
            ..RecorderConfig::default()
        }),
        shards,
        shard_workers: None,
        batch_off,
    };
    let results = run_all_with_options(&plans, &opts);
    let jsonl = to_jsonl(&results.iter().map(|(r, _)| r.clone()).collect::<Vec<_>>());
    [
        jsonl,
        telemetry_metrics_jsonl(&results),
        telemetry_decisions_jsonl(&results),
    ]
}

/// Acceptance: the conservative parallel scheduler is output-invariant on
/// the dense UDP builtin — results, interval metrics, and the decision
/// ledger are byte-identical for `--shards 1/2/4`.
#[test]
fn dense_enterprise_is_byte_identical_across_shard_counts() {
    let mut spec = dense();
    spec.duration = 0.5;
    let base = all_streams(&spec, 1);
    assert!(base.iter().all(|s| !s.is_empty()));
    for shards in [2, 4] {
        let got = all_streams(&spec, shards);
        for (i, name) in ["results", "metrics", "decisions"].iter().enumerate() {
            assert_eq!(
                base[i], got[i],
                "{name} JSONL must be byte-identical at {shards} shards"
            );
        }
    }
}

/// Acceptance: shard invariance holds under flow traffic too — the
/// roaming TCP download (mobility + handoffs + NewReno timers) produces
/// identical streams for `--shards 1/2/4`.
#[test]
fn roaming_tcp_download_is_byte_identical_across_shard_counts() {
    let mut spec = builtin::get("roaming-tcp-download").expect("builtin exists");
    spec.duration = 3.0;
    let base = all_streams(&spec, 1);
    assert!(base.iter().all(|s| !s.is_empty()));
    for shards in [2, 4] {
        let got = all_streams(&spec, shards);
        for (i, name) in ["results", "metrics", "decisions"].iter().enumerate() {
            assert_eq!(
                base[i], got[i],
                "{name} JSONL must be byte-identical at {shards} shards"
            );
        }
    }
}

/// Acceptance: `--batch off` — cohort width 1 through the identical
/// dispatch path, no memo prewarm — is byte-identical to the default
/// batched dispatch on the dense UDP builtin, across every observable
/// stream, sequential and sharded alike. This is the escape hatch's
/// contract: batching is a wall-clock lever, never a results lever.
#[test]
fn dense_enterprise_is_byte_identical_with_batching_off() {
    let mut spec = dense();
    spec.duration = 0.5;
    let batched = all_streams_opts(&spec, 1, false);
    assert!(batched.iter().all(|s| !s.is_empty()));
    let unbatched = all_streams_opts(&spec, 1, true);
    let sharded_unbatched = all_streams_opts(&spec, 2, true);
    for (i, name) in ["results", "metrics", "decisions"].iter().enumerate() {
        assert_eq!(
            batched[i], unbatched[i],
            "{name} JSONL must be byte-identical with --batch off"
        );
        assert_eq!(
            batched[i], sharded_unbatched[i],
            "{name} JSONL must be byte-identical with --batch off at 2 shards"
        );
    }
}

/// A station roaming between APs owned by *different* shards: a 3x1 AP
/// strip split into 3 x-strip domains puts every AP in its own domain,
/// so every handoff crosses a domain boundary. The sharded run must see
/// the same handoffs (and everything else) as the sequential engine.
#[test]
fn cross_domain_handoff_is_shard_invariant() {
    let spec = SpatialSpec {
        ap_cols: 3,
        ap_rows: 1,
        ap_spacing_m: 30.0,
        n_stations: 12,
        snr_ref_db: None,
        path_loss_exp: None,
        sense_snr_db: None,
        capture_sir_db: None,
        doppler_hz: None,
        mobility: MobilitySpec::RandomWaypoint {
            speed_mps: 10.0,
            pause_s: 0.0,
        },
        roaming: Some(RoamingSpec {
            hysteresis_db: 1.0,
            check_interval_s: Some(0.1),
            handoff: HandoffPolicy::Reset,
        }),
    };
    let run = |shards: usize| {
        let mut cfg = SpatialConfig::new(AdapterKind::SoftRate, spec.clone());
        cfg.duration = 4.0;
        cfg.shards = shards;
        SpatialSim::new(cfg).expect("valid").run()
    };
    let seq = run(1);
    assert!(seq.handoffs > 0, "fast walkers over 3 cells must roam");
    // In a 1-row strip the AP index is the column, and with 3 domains over
    // 3 columns every from->to pair changes column, hence domain.
    assert!(seq.handoff_log.iter().all(|h| h.from != h.to));
    for shards in [2, 3] {
        let par = run(shards);
        assert_eq!(
            seq.events_processed, par.events_processed,
            "{shards} shards: event count must match sequential"
        );
        assert_eq!(
            seq.handoff_log, par.handoff_log,
            "{shards} shards: cross-domain handoffs must replay identically"
        );
        assert_eq!(seq.frames_sent, par.frames_sent);
        assert_eq!(seq.frames_delivered, par.frames_delivered);
        assert_eq!(seq.collisions, par.collisions);
        assert_eq!(seq.per_flow_goodput_bps, par.per_flow_goodput_bps);
    }
}

/// The bursty on-off builtin is source-limited: offered load, not link
/// capacity, bounds its goodput (per station: 200 pkt/s x 50% duty x
/// 1400-byte payloads = 1.12 Mbit/s).
#[test]
fn bursty_onoff_cell_edge_is_source_limited() {
    let mut spec = builtin::get("bursty-onoff-cell-edge").expect("builtin exists");
    spec.duration = 3.0;
    let results = run_all(&expand(&spec).unwrap(), None);
    assert!(!results.is_empty());
    let n = spec.topology.spatial.as_ref().unwrap().n_stations as f64;
    let offered = n * 100.0 * 1400.0 * 8.0; // per-station mean offered bits/s
    for r in &results {
        assert!(r.goodput_bps > 0.0);
        assert!(
            r.goodput_bps < offered,
            "{}: goodput {} cannot exceed offered {offered}",
            r.adapter,
            r.goodput_bps
        );
    }
}
