//! Integration tests of the scenario engine through the facade crate:
//! schema round-trips, sweep expansion, end-to-end runs, and the
//! determinism guarantee on the JSON-lines sink.

use softrate::scenario::builtin;
use softrate::scenario::engine::{expand, run_all, run_spec, to_jsonl};
use softrate::scenario::spec::{AdapterSpec, ScenarioSpec};

/// A fast 2-axis sweep spec (analytic channel, sub-second runs).
fn small_sweep() -> ScenarioSpec {
    ScenarioSpec::from_toml(
        r#"
name = "it-sweep"
duration = 0.5
seed = 4242
adapters = ["SoftRate", "Omniscient"]

[topology]
n_clients = 1

[channel]
model = "Analytic"
snr_db = 16.0

[channel.fading.Flat]
doppler_hz = 50.0

[traffic]
kind = "Tcp"

[sweep]
"channel.snr_db" = [10.0, 16.0, 22.0]
"channel.fading.Flat.doppler_hz" = [10.0, 200.0]
"#,
    )
    .expect("spec parses")
}

#[test]
fn toml_roundtrip_through_facade() {
    let spec = small_sweep();
    let back = ScenarioSpec::from_toml(&spec.to_toml()).unwrap();
    assert_eq!(back, spec);
}

#[test]
fn sweep_expansion_cardinality() {
    // 3 SNRs x 2 Dopplers x 2 adapters.
    let plans = expand(&small_sweep()).unwrap();
    assert_eq!(plans.len(), 12);
    // Every plan carries both axis assignments.
    assert!(plans.iter().all(|p| p.params.len() == 2));
}

#[test]
fn jsonl_is_deterministic_across_runs_and_thread_counts() {
    let plans = expand(&small_sweep()).unwrap();
    let first = to_jsonl(&run_all(&plans, Some(1)));
    let again = to_jsonl(&run_all(&plans, Some(1)));
    let parallel = to_jsonl(&run_all(&plans, Some(8)));
    assert_eq!(first, again, "repeat runs must be byte-identical");
    assert_eq!(first, parallel, "thread count must not leak into results");
    assert_eq!(first.lines().count(), 12);
}

#[test]
fn builtin_library_is_browsable_and_runs() {
    assert!(builtin::names().len() >= 10);
    // Run the cheapest built-in end to end.
    let mut spec = builtin::get("static-office").unwrap();
    spec.duration = 0.5;
    spec.adapters = Some(vec![AdapterSpec::SoftRate, AdapterSpec::Omniscient]);
    let results = run_spec(&spec, Some(2)).unwrap();
    assert_eq!(results.len(), 2);
    for r in &results {
        assert!(
            r.goodput_bps > 5e6,
            "{} only moved {} bps on a 25 dB static link",
            r.adapter,
            r.goodput_bps
        );
    }
}

#[test]
fn softrate_beats_no_detect_under_hidden_terminals() {
    // The paper's §6.4 headline, through the whole stack: same scenario,
    // detector on vs off. Aggregate goodput under hidden terminals has
    // high variance (capture effects), so average a few seeds.
    let mut spec = builtin::get("hidden-terminal").unwrap();
    spec.adapters = Some(vec![AdapterSpec::SoftRate, AdapterSpec::SoftRateNoDetect]);
    let (mut sr_goodput, mut nd_goodput) = (0.0, 0.0);
    let (mut sr_under, mut nd_under) = (0.0, 0.0);
    let mut collisions = 0;
    for seed in 1..=4 {
        spec.seed = seed;
        let results = run_spec(&spec, Some(2)).unwrap();
        sr_goodput += results[0].goodput_bps;
        sr_under += results[0].underselect;
        nd_goodput += results[1].goodput_bps;
        nd_under += results[1].underselect;
        collisions += results[0].collisions;
    }
    assert!(collisions > 0, "hidden terminals must collide");
    assert!(
        sr_goodput > nd_goodput,
        "interference detection must pay: {sr_goodput} vs {nd_goodput}"
    );
    assert!(
        nd_under > sr_under,
        "disabling the detector must cause underselection ({nd_under:.2} vs {sr_under:.2})"
    );
}
