//! Integration tests of baseline-adapter behaviour against live PHY links
//! (not traces): each protocol's characteristic failure mode from the
//! paper, demonstrated end to end.

use softrate::adapt::misc::FixedRate;
use softrate::adapt::rraa::Rraa;
use softrate::adapt::samplerate::SampleRate;
use softrate::adapt::snr::{SnrAdapter, SnrTable};
use softrate::channel::link::{Link, LinkConfig};
use softrate::channel::model::FadingSpec;
use softrate::channel::pathloss::Attenuation;
use softrate::core::adapter::{RateAdapter, TxOutcome};
use softrate::phy::ofdm::SIMULATION;
use softrate::phy::rates::PAPER_RATES;
use softrate::sim::timing::{attempt_airtime, lossless_airtimes};

/// Drives any adapter over a live link; returns (rates chosen, deliveries).
fn drive(adapter: &mut dyn RateAdapter, link: &mut Link, frames: usize) -> (Vec<usize>, usize) {
    let mut rates = Vec::new();
    let mut delivered = 0;
    let mut t = 0.0;
    for _ in 0..frames {
        let attempt = adapter.next_attempt(t);
        rates.push(attempt.rate_idx);
        let rate = PAPER_RATES[attempt.rate_idx];
        let (_tx, obs) = link.probe(rate, 100, t, &[], false);
        t += 0.005;
        let ok = obs.delivered();
        delivered += ok as usize;
        let snr = obs.rx.as_ref().map(|r| r.snr_db);
        adapter.on_outcome(&TxOutcome {
            rate_idx: attempt.rate_idx,
            acked: ok,
            feedback_received: obs.feedback_possible(),
            ber_feedback: None,
            interference_flagged: false,
            postamble_ack: false,
            snr_feedback_db: snr,
            // MAC-level attempt airtime (frame + overhead), matching what
            // the simulator feeds adapters — SampleRate compares windowed
            // averages against `lossless_airtimes`, which includes the
            // same overhead; feeding bare `tx.airtime()` here would let a
            // slow rate's frame-only average undercut every faster rate's
            // lossless airtime and permanently starve sampling.
            airtime: attempt_airtime(rate, 104, false, attempt.use_rts),
            now: t,
        });
    }
    (rates, delivered)
}

fn strong_link(seed: u64) -> Link {
    let mut cfg = LinkConfig::new(SIMULATION);
    cfg.noise_power_db = -25.0;
    cfg.seed = seed;
    Link::new(cfg)
}

#[test]
fn rraa_climbs_a_clean_channel() {
    let mut link = strong_link(1);
    let mut rraa = Rraa::new(lossless_airtimes(104));
    let (rates, delivered) = drive(&mut rraa, &mut link, 400);
    assert_eq!(*rates.last().unwrap(), 5, "RRAA must reach the top rate");
    assert!(delivered > 350);
    // But it takes many frames (window-driven): count frames to first
    // reach the top rate.
    let first_top = rates.iter().position(|&r| r == 5).unwrap();
    assert!(
        first_top > 30,
        "RRAA needs multiple windows to climb (took {first_top} frames)"
    );
}

#[test]
fn samplerate_finds_the_working_rate() {
    // 8.5 dB: QPSK 3/4 and below work, QAM16+ fail.
    let mut cfg = LinkConfig::new(SIMULATION);
    cfg.noise_power_db = -8.5;
    cfg.seed = 2;
    let mut link = Link::new(cfg);
    let mut sr = SampleRate::new(lossless_airtimes(104), 1.0, 7);
    let (rates, _) = drive(&mut sr, &mut link, 300);
    let tail = &rates[200..];
    let at_3 = tail.iter().filter(|&&r| r == 3).count();
    assert!(
        at_3 * 10 >= tail.len() * 6,
        "SampleRate should mostly sit at QPSK 3/4: {:?}",
        &tail[..20.min(tail.len())]
    );
}

#[test]
fn snr_adapter_follows_the_channel_without_probing() {
    // Thresholds from our calibration sweep (crates/trace/src/bin/calibrate.rs).
    let table = SnrTable::new(vec![2.5, 4.5, 5.5, 8.5, 12.5, 14.0]);
    let mut link = strong_link(3);
    let mut snr = SnrAdapter::rbar(table);
    let (rates, delivered) = drive(&mut snr, &mut link, 40);
    // After the first feedback the adapter should sit at the top.
    assert!(rates[5..].iter().all(|&r| r == 5), "{rates:?}");
    assert!(delivered > 35);
}

#[test]
fn snr_adapter_overselects_in_fast_fading_with_stale_table() {
    // The fig16 mechanism in miniature: a table trained for static
    // conditions applied at 2 kHz Doppler. The preamble SNR is often high
    // while mid-frame fades kill the payload, so the adapter overselects
    // and loses frames that a fixed mid rate would deliver.
    let table = SnrTable::new(vec![2.5, 4.5, 5.5, 8.5, 12.5, 14.0]);
    let mk_link = |seed| {
        let mut cfg = LinkConfig::new(SIMULATION);
        cfg.noise_power_db = -14.0;
        cfg.fading = FadingSpec::Flat { doppler_hz: 2000.0 };
        cfg.seed = seed;
        Link::new(cfg)
    };
    let mut snr = SnrAdapter::rbar(table);
    let (_, snr_delivered) = drive(&mut snr, &mut mk_link(4), 200);
    let mut fixed = FixedRate::new(1, 6);
    let (_, fixed_delivered) = drive(&mut fixed, &mut mk_link(4), 200);
    assert!(
        fixed_delivered > snr_delivered,
        "BPSK 3/4 fixed ({fixed_delivered}) should out-deliver the stale SNR table ({snr_delivered}) in fast fading"
    );
}

#[test]
fn walking_away_forces_every_adapter_down() {
    // 25 dB -> 2 dB ramp: by the end only the lowest rates deliver. Every
    // adapter must end below rate 2.
    let mk_link = |seed| {
        let mut cfg = LinkConfig::new(SIMULATION);
        cfg.noise_power_db = -26.0;
        // Ramp completes at t = 1.0 s (frame ~200 of 300), leaving the
        // adapters a hundred frames to converge on the degraded channel.
        cfg.attenuation = Attenuation::RampDb {
            t_start: 0.0,
            db_start: 0.0,
            t_end: 1.0,
            db_end: -23.0,
        };
        cfg.seed = seed;
        Link::new(cfg)
    };
    let table = SnrTable::new(vec![2.5, 4.5, 5.5, 8.5, 12.5, 14.0]);
    let mut adapters: Vec<Box<dyn RateAdapter>> = vec![
        Box::new(Rraa::new(lossless_airtimes(104))),
        Box::new(SampleRate::new(lossless_airtimes(104), 1.0, 9)),
        Box::new(SnrAdapter::rbar(table)),
    ];
    for (i, adapter) in adapters.iter_mut().enumerate() {
        let mut link = mk_link(40 + i as u64);
        let (rates, _) = drive(adapter.as_mut(), &mut link, 300);
        let tail_mean: f64 = rates[280..].iter().map(|&r| r as f64).sum::<f64>() / 20.0;
        assert!(
            tail_mean < 2.5,
            "{} ended at mean rate {tail_mean:.1} on a dying channel",
            adapter.name()
        );
    }
}
