//! Integration tests of the fault-injection subsystem (`softrate-faults`).
//!
//! The hard invariants, end to end through the facade crate:
//!
//! * determinism — a faulted run's results, metrics, trace, and decision
//!   streams are byte-identical across `--threads 1/2/8` and
//!   `--shards 1/2/4`, including under proptest-generated fault
//!   schedules mixing all five fault classes;
//! * invisibility when off — a spec with an empty `[faults]` table
//!   produces byte-identical streams to the same spec without the
//!   table, on both media;
//! * graceful degradation — the `ap-blackout` builtin panics nowhere,
//!   re-homes stations off the dead AP (`reassoc` rows with measured
//!   `outage_s`), attributes every outage loss, and recovers (the
//!   `resilience` report's exit-status contract);
//! * attribution balance — jammer losses land in the `jamming` bucket
//!   and the five-cause per-station balance still holds;
//! * the fault-era streams validate against the checked-in schema.

use proptest::prelude::*;

use softrate::scenario::builtin;
use softrate::scenario::engine::{
    expand, run_all_with_options, telemetry_decisions_jsonl, telemetry_metrics_jsonl,
    telemetry_trace_jsonl, to_jsonl, RunOptions,
};
use softrate::scenario::spec::{
    AdapterSpec, ApOutageSpec, ChurnSpec, FaultsSpec, HintFaultsSpec, JammerSpec, NoiseStepSpec,
    ScenarioSpec,
};
use softrate::telemetry::inspect::{resilience, summarize_with, Schema};
use softrate::telemetry::RecorderConfig;

/// The all-streams-on recorder every test here uses.
fn full_recorder() -> RecorderConfig {
    RecorderConfig {
        trace: true,
        decisions: true,
        ..RecorderConfig::default()
    }
}

/// Runs a spec and returns all four streams in matrix order:
/// `(results, metrics, trace, decisions)`.
fn streams(spec: &ScenarioSpec, threads: usize, shards: usize) -> (String, String, String, String) {
    streams_opts(spec, threads, shards, false)
}

/// [`streams`] with the cohort-batching escape hatch exposed — the
/// faulted batched-vs-unbatched equality test runs the identical harness.
fn streams_opts(
    spec: &ScenarioSpec,
    threads: usize,
    shards: usize,
    batch_off: bool,
) -> (String, String, String, String) {
    let plans = expand(spec).expect("spec expands");
    let with = run_all_with_options(
        &plans,
        &RunOptions {
            threads: Some(threads),
            telemetry: Some(full_recorder()),
            shards,
            shard_workers: None,
            batch_off,
        },
    );
    let results: Vec<_> = with.iter().map(|(r, _)| r.clone()).collect();
    (
        to_jsonl(&results),
        telemetry_metrics_jsonl(&with),
        telemetry_trace_jsonl(&with),
        telemetry_decisions_jsonl(&with),
    )
}

/// A small faultable two-cell deployment (roaming on, so AP outages can
/// re-home stations) used as the proptest substrate.
fn fault_base() -> ScenarioSpec {
    ScenarioSpec::from_toml(
        r#"
name = "fault-prop"
duration = 0.8
seed = 77
adapters = ["SoftRate"]

[topology.spatial]
ap_cols = 2
ap_rows = 1
ap_spacing_m = 40.0
n_stations = 12
mobility = "Static"

[topology.spatial.roaming]
hysteresis_db = 3.0
handoff = "Reset"

[channel]
model = "Analytic"
snr_db = 55.0
fading = "None"

[traffic]
kind = "UdpBulk"
"#,
    )
    .expect("base spec parses")
}

#[test]
fn ap_blackout_reassociates_attributes_and_recovers() {
    // The flagship resilience scenario, shortened for test runtime: the
    // middle AP dies at 0.75s for 0.75s; stations must flee, every
    // uplink frame into the dead AP must be an `outage` loss, and
    // aggregate goodput must climb back after the restart.
    let mut spec = builtin::get("ap-blackout").expect("builtin exists");
    spec.duration = 2.5;
    spec.adapters = Some(vec![AdapterSpec::SoftRate]);
    spec.faults
        .as_mut()
        .expect("ap-blackout declares [faults]")
        .ap_outage = Some(ApOutageSpec {
        ap: 1,
        at: 0.75,
        duration: 0.75,
    });
    let (results, metrics, _, _) = streams(&spec, 2, 1);
    assert_eq!(results.lines().count(), 1, "one run, no panic rows");
    // Fault lifecycle and re-association are on the record.
    assert!(metrics.contains("\"fault\":\"ap_outage\""), "{metrics}");
    assert!(metrics.contains("\"phase\":\"start\""), "{metrics}");
    assert!(metrics.contains("\"phase\":\"end\""), "{metrics}");
    assert!(
        metrics.contains("\"kind\":\"reassoc\""),
        "stations must re-home off the dead AP"
    );
    // Every loss is attributed and the outage bucket is in use.
    let (report, balanced) = summarize_with(&metrics, None).expect("summarizes");
    assert!(
        balanced,
        "unattributed losses under an AP outage:\n{report}"
    );
    assert!(report.contains("outage"), "{report}");
    // The resilience contract: this run recovers, so the report's exit
    // status (what CI gates on) is success.
    let (res, recovered) = resilience(&metrics, 0.8).expect("fault rows present");
    assert!(recovered, "ap-blackout must recover:\n{res}");
    assert!(res.contains("reassociations:"), "{res}");
    assert!(res.contains("time-to-reassociate"), "{res}");
}

/// Acceptance: `--batch off` is byte-identical under active fault
/// injection too — the ap-blackout outage (queue drops, re-association,
/// outage-attributed losses) exercises every fault seam while the cohort
/// prewarm is live, and all four streams must not move a byte.
#[test]
fn ap_blackout_is_byte_identical_with_batching_off() {
    let mut spec = builtin::get("ap-blackout").expect("builtin exists");
    spec.duration = 1.6;
    spec.adapters = Some(vec![AdapterSpec::SoftRate]);
    spec.faults
        .as_mut()
        .expect("ap-blackout declares [faults]")
        .ap_outage = Some(ApOutageSpec {
        ap: 1,
        at: 0.4,
        duration: 0.5,
    });
    let batched = streams_opts(&spec, 1, 1, false);
    assert!(
        batched.1.contains("\"fault\":\"ap_outage\""),
        "the outage must actually fire"
    );
    let unbatched = streams_opts(&spec, 1, 1, true);
    assert_eq!(batched.0, unbatched.0, "results diverged with --batch off");
    assert_eq!(batched.1, unbatched.1, "metrics diverged with --batch off");
    assert_eq!(batched.2, unbatched.2, "trace diverged with --batch off");
    assert_eq!(
        batched.3, unbatched.3,
        "decisions diverged with --batch off"
    );
}

#[test]
fn jammer_losses_balance_and_streams_validate() {
    let mut spec = builtin::get("jammer-burst-cell-edge").expect("builtin exists");
    spec.duration = 1.2;
    spec.adapters = Some(vec![AdapterSpec::SoftRate]);
    spec.faults
        .as_mut()
        .expect("jammer builtin declares [faults]")
        .jammer = Some(JammerSpec {
        x: 30.0,
        y: 0.0,
        power_db: Some(10.0),
        at: 0.4,
        duration: 0.4,
    });
    let (_, metrics, trace, decisions) = streams(&spec, 2, 1);
    let (report, balanced) = summarize_with(&metrics, None).expect("summarizes");
    assert!(
        balanced,
        "jammer losses must balance per station:\n{report}"
    );
    assert!(report.contains("jamming"), "{report}");
    // The checked-in schema knows the fault-era rows (fault, reassoc,
    // the five-cause loss columns, the interval fault tag).
    let schema_text = std::fs::read_to_string("tests/schemas/telemetry.schema.json")
        .expect("schema is checked in");
    let schema = Schema::parse(&schema_text).expect("schema parses");
    schema.validate_stream(&metrics).expect("metrics validate");
    schema.validate_stream(&trace).expect("trace validates");
    schema
        .validate_stream(&decisions)
        .expect("decisions validate");
}

#[test]
fn empty_faults_table_is_byte_invisible_on_both_media() {
    // `[faults]` spelled but unused must lower to nothing: same bytes
    // on the trace-backed medium and the spatial one.
    for name in ["fast-fading", "dense-enterprise"] {
        let mut spec = builtin::get(name).expect("builtin exists");
        spec.duration = 0.4;
        spec.adapters = Some(vec![AdapterSpec::SoftRate]);
        let off = streams(&spec, 2, 1);
        spec.faults = Some(FaultsSpec {
            ap_outage: None,
            jammer: None,
            noise_step: None,
            churn: None,
            hint: None,
        });
        let noop = streams(&spec, 2, 1);
        assert_eq!(off, noop, "{name}: an empty [faults] table must be free");
    }
}

proptest! {
    // Each case runs the simulation three times; keep the case count
    // small and the deployment cheap.
    #![proptest_config(ProptestConfig::with_cases(3))]

    // The tentpole determinism invariant under *generated* fault
    // schedules: all five classes active at proptest-chosen times and
    // intensities, and every stream byte-identical across thread and
    // shard counts.
    #[test]
    fn generated_fault_schedules_are_thread_and_shard_invariant(
        out_at in 0.05f64..0.35,
        out_dur in 0.1f64..0.3,
        jam_at in 0.1f64..0.5,
        jam_dur in 0.1f64..0.3,
        jam_power in 0.0f64..12.0,
        step_db in 2.0f64..10.0,
        joins in 1usize..6,
        drop_prob in 0.0f64..0.4,
    ) {
        let mut spec = fault_base();
        spec.faults = Some(FaultsSpec {
            ap_outage: Some(ApOutageSpec { ap: 1, at: out_at, duration: out_dur }),
            jammer: Some(JammerSpec {
                x: 20.0,
                y: 0.0,
                power_db: Some(jam_power),
                at: jam_at,
                duration: jam_dur,
            }),
            noise_step: Some(NoiseStepSpec { at: 0.4, delta_db: step_db, duration: Some(0.2) }),
            churn: Some(ChurnSpec {
                join_count: Some(joins),
                join_at: Some(0.2),
                join_ramp_s: Some(0.2),
                leave_count: Some(1),
                leave_at: Some(0.5),
                leave_ramp_s: Some(0.1),
            }),
            hint: Some(HintFaultsSpec { drop_prob: Some(drop_prob), quantize_db: Some(2.0) }),
        });
        let a = streams(&spec, 1, 1);
        let b = streams(&spec, 2, 2);
        let c = streams(&spec, 8, 4);
        prop_assert!(!a.1.is_empty(), "metrics must flow");
        prop_assert_eq!(&a, &b, "threads/shards 2 diverged from sequential");
        prop_assert_eq!(&b, &c, "threads 8 / shards 4 diverged");
        // The schedule actually fired: lifecycle rows are present.
        prop_assert!(a.1.contains("\"kind\":\"fault\""));
    }
}
