//! # softrate — a full reproduction of "Cross-Layer Wireless Bit Rate
//! Adaptation" (SoftRate, SIGCOMM 2009)
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`phy`] — the 802.11a/g-like software PHY with the soft-output BCJR
//!   decoder that produces SoftPHY hints.
//! * [`channel`] — AWGN / Jakes-Rayleigh channel simulation with
//!   interference, and the end-to-end link pipeline.
//! * [`core`] — the paper's contribution: hints → BER, the interference
//!   detector, threshold computation and the SoftRate algorithm.
//! * [`adapt`] — every baseline SoftRate is compared against.
//! * [`trace`] — Table 4 workloads and trace-driven channel state.
//! * [`sim`] — the Figure 12 network simulator (802.11-like MAC + TCP
//!   NewReno and saturated-UDP traffic).
//! * [`net`] — the multi-cell spatial layer: AP grids, mobility, roaming,
//!   and streaming per-link channels that need no precomputed traces.
//! * [`scenario`] — the declarative scenario engine: TOML/JSON specs,
//!   parameter sweeps, a built-in scenario library, and a parallel runner
//!   with deterministic JSON-lines results.
//! * [`telemetry`] — the zero-cost-when-off observability seam: per-station
//!   time-series metrics, frame-lifecycle tracing with a flight recorder,
//!   and per-cause loss attribution, all as deterministic JSONL (inspect
//!   with the `softrate-inspect` binary).
//!
//! Start with `cargo run --release --example quickstart` for a guided tour
//! of the cross-layer loop, then explore scenarios with the
//! `softrate-scenarios` binary (`cargo run --release -p softrate-scenario
//! --bin softrate-scenarios -- list`). Every table and figure of the paper
//! has a binary in the `softrate-bench` package (`cargo run --release -p
//! softrate-bench --bin fig16_fast_fading -- --smoke`).

pub use softrate_adapt as adapt;
pub use softrate_channel as channel;
pub use softrate_core as core;
pub use softrate_net as net;
pub use softrate_phy as phy;
pub use softrate_scenario as scenario;
pub use softrate_sim as sim;
pub use softrate_telemetry as telemetry;
pub use softrate_trace as trace;

/// The most commonly used items from every layer.
pub mod prelude {
    pub use softrate_adapt::prelude::*;
    pub use softrate_channel::prelude::*;
    pub use softrate_core::prelude::*;
    pub use softrate_net::prelude::*;
    pub use softrate_phy::prelude::*;
    pub use softrate_scenario::prelude::*;
    pub use softrate_sim::prelude::*;
    pub use softrate_trace::prelude::*;
}
