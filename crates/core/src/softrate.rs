//! The SoftRate sender algorithm (paper §3.3).
//!
//! The sender keeps the most recent interference-free BER feedback and,
//! before each transmission, moves toward the rate maximizing predicted
//! goodput (jumping up to two levels at a time). Collisions — flagged by
//! the receiver's detector or revealed by a postamble-only ACK — do *not*
//! reduce the rate. Three consecutive *silent* losses (no feedback at all)
//! indicate the receiver cannot even detect the frames, so the sender
//! steps the rate down (paper §3.2, justified by Figure 4: interference
//! alone almost never silences three frames in a row).

use std::sync::Arc;

use crate::adapter::{
    DecisionCtx, DecisionTrigger, RateAdapter, RateDecision, RateIdx, TxAttempt, TxOutcome,
};
use crate::recovery::{ErrorRecovery, FrameArq};
use crate::thresholds::{select_rate, RateThresholds};
use softrate_phy::rates::{BitRate, PAPER_RATES};

/// Configuration of a SoftRate sender.
#[derive(Clone)]
pub struct SoftRateConfig {
    /// Ordered rate table (increasing throughput).
    pub rates: Vec<BitRate>,
    /// Nominal frame size in bits used for the goodput model.
    pub frame_bits: usize,
    /// Error-recovery model thresholds are derived from.
    pub recovery: Arc<dyn ErrorRecovery + Send + Sync>,
    /// Maximum rate-index jump per decision (the paper's implementation
    /// does up to two).
    pub max_jump: usize,
    /// Consecutive silent losses treated as weak signal (paper: three).
    pub silent_loss_limit: u32,
    /// Starting rate index.
    pub initial_rate: RateIdx,
}

impl std::fmt::Debug for SoftRateConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SoftRateConfig")
            .field("rates", &self.rates.len())
            .field("frame_bits", &self.frame_bits)
            .field("recovery", &self.recovery.name())
            .field("max_jump", &self.max_jump)
            .field("silent_loss_limit", &self.silent_loss_limit)
            .field("initial_rate", &self.initial_rate)
            .finish()
    }
}

impl Default for SoftRateConfig {
    fn default() -> Self {
        SoftRateConfig {
            rates: PAPER_RATES.to_vec(),
            frame_bits: 1400 * 8,
            recovery: Arc::new(FrameArq),
            max_jump: 2,
            silent_loss_limit: 3,
            initial_rate: 0,
        }
    }
}

/// The SoftRate rate-adaptation state machine.
pub struct SoftRate {
    cfg: SoftRateConfig,
    thresholds: RateThresholds,
    current: RateIdx,
    silent_losses: u32,
    /// Most recent interference-free BER feedback, if any.
    last_ber: Option<f64>,
}

impl SoftRate {
    /// Creates a sender with the given configuration.
    pub fn new(cfg: SoftRateConfig) -> Self {
        assert!(cfg.initial_rate < cfg.rates.len());
        let thresholds = RateThresholds::compute(&cfg.rates, cfg.frame_bits, &*cfg.recovery);
        SoftRate {
            current: cfg.initial_rate,
            thresholds,
            silent_losses: 0,
            last_ber: None,
            cfg,
        }
    }

    /// Creates a sender with the paper's defaults.
    pub fn with_defaults() -> Self {
        SoftRate::new(SoftRateConfig::default())
    }

    /// The threshold table in effect (for inspection / the threshold
    /// table generator).
    pub fn thresholds(&self) -> &RateThresholds {
        &self.thresholds
    }

    /// Current rate index.
    pub fn current_rate_idx(&self) -> RateIdx {
        self.current
    }

    /// Current rate.
    pub fn current_rate(&self) -> BitRate {
        self.cfg.rates[self.current]
    }

    /// Most recent BER feedback digested.
    pub fn last_ber(&self) -> Option<f64> {
        self.last_ber
    }

    /// Count of consecutive silent losses so far.
    pub fn silent_losses(&self) -> u32 {
        self.silent_losses
    }
}

impl RateAdapter for SoftRate {
    fn name(&self) -> &'static str {
        "SoftRate"
    }

    fn next_attempt_ctx(&mut self, _now: f64, _ctx: &mut DecisionCtx) -> TxAttempt {
        TxAttempt {
            rate_idx: self.current,
            use_rts: false,
        }
    }

    fn on_outcome_ctx(&mut self, outcome: &TxOutcome, ctx: &mut DecisionCtx) {
        if let Some(ber) = outcome.ber_feedback {
            // Feedback carries the interference-free BER (the receiver's
            // collision detector already excised interfered symbols), so a
            // collision-damaged frame with a clean underlying channel
            // reports a *low* BER and the rate holds — robustness to
            // collisions falls out of the feedback definition.
            self.silent_losses = 0;
            self.last_ber = Some(ber);
            let old = self.current;
            self.current = select_rate(
                self.current,
                ber,
                &self.cfg.rates,
                self.cfg.frame_bits,
                &*self.cfg.recovery,
                self.cfg.max_jump,
            );
            if self.current != old {
                ctx.record(RateDecision {
                    old_rate: old,
                    new_rate: self.current,
                    trigger: if outcome.acked {
                        DecisionTrigger::Ack
                    } else {
                        DecisionTrigger::Loss
                    },
                    snr_db: outcome.snr_feedback_db,
                    ber: Some(ber),
                    reason: "threshold-crossing",
                });
            }
        } else if outcome.postamble_ack {
            // Postamble-only ACK: the preamble was lost to interference but
            // the frame tail was clean — a collision, not attenuation.
            // Keep the rate (paper §3.2/§6.4 "ideal" SoftRate).
            self.silent_losses = 0;
        } else if outcome.is_silent_loss() {
            self.silent_losses += 1;
            if self.silent_losses >= self.cfg.silent_loss_limit {
                self.silent_losses = 0;
                if self.current > 0 {
                    ctx.record(RateDecision {
                        old_rate: self.current,
                        new_rate: self.current - 1,
                        trigger: DecisionTrigger::Timeout,
                        snr_db: None,
                        ber: None,
                        reason: "silent-loss-limit",
                    });
                    self.current -= 1;
                }
                // A silent loss gives no BER measurement; forget the stale
                // one so we re-probe from the new rate.
                self.last_ber = None;
            }
        }
    }

    fn num_rates(&self) -> usize {
        self.cfg.rates.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(rate_idx: usize) -> TxOutcome {
        TxOutcome {
            rate_idx,
            acked: true,
            feedback_received: true,
            ber_feedback: Some(1e-6),
            interference_flagged: false,
            postamble_ack: false,
            snr_feedback_db: None,
            airtime: 1e-3,
            now: 0.0,
        }
    }

    #[test]
    fn starts_at_initial_rate() {
        let sr = SoftRate::with_defaults();
        assert_eq!(sr.current_rate_idx(), 0);
        assert_eq!(sr.num_rates(), 6);
    }

    #[test]
    fn clean_feedback_climbs() {
        let mut sr = SoftRate::with_defaults();
        for _ in 0..6 {
            let mut o = outcome(sr.current_rate_idx());
            o.ber_feedback = Some(1e-9);
            sr.on_outcome(&o);
        }
        assert_eq!(
            sr.current_rate_idx(),
            5,
            "clean channel must reach the top rate"
        );
    }

    #[test]
    fn climbing_uses_multi_level_jumps() {
        let mut sr = SoftRate::with_defaults();
        let mut o = outcome(0);
        o.ber_feedback = Some(1e-9);
        sr.on_outcome(&o);
        assert_eq!(
            sr.current_rate_idx(),
            2,
            "BER at floor justifies a two-level jump"
        );
    }

    #[test]
    fn high_ber_steps_down() {
        let mut sr = SoftRate::with_defaults();
        // climb to the top first
        for _ in 0..4 {
            let mut o = outcome(sr.current_rate_idx());
            o.ber_feedback = Some(1e-9);
            sr.on_outcome(&o);
        }
        assert_eq!(sr.current_rate_idx(), 5);
        let mut o = outcome(5);
        o.acked = false;
        o.ber_feedback = Some(0.05);
        sr.on_outcome(&o);
        assert_eq!(
            sr.current_rate_idx(),
            3,
            "catastrophic BER takes the full two-level jump"
        );
    }

    #[test]
    fn moderate_ber_holds_rate() {
        let mut sr = SoftRate::with_defaults();
        let mut o = outcome(0);
        o.ber_feedback = Some(1e-9);
        sr.on_outcome(&o);
        let here = sr.current_rate_idx();
        // A BER inside the optimal window of the current rate: stay.
        let t = sr.thresholds().clone();
        let mid = (t.alpha[here].max(1e-9) * t.beta[here]).sqrt();
        let mut o = outcome(here);
        o.ber_feedback = Some(mid);
        sr.on_outcome(&o);
        assert_eq!(sr.current_rate_idx(), here);
    }

    #[test]
    fn collision_flagged_frame_does_not_reduce_rate() {
        let mut sr = SoftRate::with_defaults();
        for _ in 0..4 {
            let mut o = outcome(sr.current_rate_idx());
            o.ber_feedback = Some(1e-9);
            sr.on_outcome(&o);
        }
        let before = sr.current_rate_idx();
        // Collision: frame lost, but the interference-free BER is clean.
        let mut o = outcome(before);
        o.acked = false;
        o.interference_flagged = true;
        o.ber_feedback = Some(1e-7);
        sr.on_outcome(&o);
        assert_eq!(
            sr.current_rate_idx(),
            before,
            "collision must not reduce the rate"
        );
    }

    #[test]
    fn three_silent_losses_step_down() {
        let mut sr = SoftRate::with_defaults();
        // climb to rate 2 first
        let mut o = outcome(0);
        o.ber_feedback = Some(1e-9);
        sr.on_outcome(&o);
        let start = sr.current_rate_idx();
        assert!(start > 0);
        let silent = TxOutcome {
            rate_idx: start,
            acked: false,
            feedback_received: false,
            ber_feedback: None,
            interference_flagged: false,
            postamble_ack: false,
            snr_feedback_db: None,
            airtime: 1e-3,
            now: 0.0,
        };
        sr.on_outcome(&silent);
        sr.on_outcome(&silent);
        assert_eq!(
            sr.current_rate_idx(),
            start,
            "two silent losses are not enough"
        );
        sr.on_outcome(&silent);
        assert_eq!(
            sr.current_rate_idx(),
            start - 1,
            "third silent loss steps down"
        );
        assert_eq!(sr.silent_losses(), 0, "counter resets after the step");
    }

    #[test]
    fn feedback_resets_silent_counter() {
        let mut sr = SoftRate::with_defaults();
        let silent = TxOutcome {
            rate_idx: 0,
            acked: false,
            feedback_received: false,
            ber_feedback: None,
            interference_flagged: false,
            postamble_ack: false,
            snr_feedback_db: None,
            airtime: 1e-3,
            now: 0.0,
        };
        sr.on_outcome(&silent);
        sr.on_outcome(&silent);
        assert_eq!(sr.silent_losses(), 2);
        sr.on_outcome(&outcome(0));
        assert_eq!(sr.silent_losses(), 0);
    }

    #[test]
    fn postamble_ack_holds_rate_and_resets_counter() {
        let mut sr = SoftRate::with_defaults();
        let mut o = outcome(0);
        o.ber_feedback = Some(1e-9);
        sr.on_outcome(&o);
        let here = sr.current_rate_idx();
        let pa = TxOutcome {
            rate_idx: here,
            acked: false,
            feedback_received: false,
            ber_feedback: None,
            interference_flagged: true,
            postamble_ack: true,
            snr_feedback_db: None,
            airtime: 1e-3,
            now: 0.0,
        };
        sr.on_outcome(&pa);
        sr.on_outcome(&pa);
        sr.on_outcome(&pa);
        assert_eq!(
            sr.current_rate_idx(),
            here,
            "postamble ACKs are collisions, not fades"
        );
    }

    #[test]
    fn silent_losses_at_bottom_rate_saturate() {
        let mut sr = SoftRate::with_defaults();
        let silent = TxOutcome {
            rate_idx: 0,
            acked: false,
            feedback_received: false,
            ber_feedback: None,
            interference_flagged: false,
            postamble_ack: false,
            snr_feedback_db: None,
            airtime: 1e-3,
            now: 0.0,
        };
        for _ in 0..10 {
            sr.on_outcome(&silent);
        }
        assert_eq!(sr.current_rate_idx(), 0);
    }

    #[test]
    fn harq_recovery_changes_decisions() {
        // With chunked HARQ the same moderate BER that forces frame-ARQ
        // down is perfectly fine to hold (the modularity claim).
        use crate::recovery::ChunkedHarq;
        let mk = |recovery: Arc<dyn ErrorRecovery + Send + Sync>| {
            let cfg = SoftRateConfig {
                recovery,
                initial_rate: 3,
                ..Default::default()
            };
            SoftRate::new(cfg)
        };
        let mut arq = mk(Arc::new(FrameArq));
        let mut harq = mk(Arc::new(ChunkedHarq::default()));
        let mut o = outcome(3);
        o.ber_feedback = Some(3e-4);
        arq.on_outcome(&o);
        harq.on_outcome(&o);
        assert!(arq.current_rate_idx() < 3, "frame ARQ must flee BER 3e-4");
        assert!(
            harq.current_rate_idx() >= 3,
            "chunked HARQ tolerates BER 3e-4"
        );
    }
}
