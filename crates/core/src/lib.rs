//! # softrate-core — the SoftRate cross-layer rate adaptation system
//!
//! The paper's primary contribution (SIGCOMM 2009), implemented over the
//! [`softrate_phy`] substrate:
//!
//! * [`hints`] — SoftPHY hints `s_k = |LLR(k)|` and the per-bit error
//!   probability `p_k = 1/(1+e^{s_k})` (Eq. 3); frame-level and per-symbol
//!   (Eq. 4) BER estimation *that works on error-free frames*.
//! * [`collision`] — the interference detector: sudden per-symbol BER jumps
//!   are collisions, gradual changes are fading; computes the
//!   interference-free BER that gets fed back (§3.2).
//! * [`prediction`] — cross-rate BER prediction without SNR–BER curves
//!   (the ×10-per-rate rule, §3.3).
//! * [`recovery`] — pluggable error-recovery goodput models (frame ARQ,
//!   chunked hybrid ARQ); thresholds are derived from these, which is what
//!   decouples rate adaptation from error recovery.
//! * [`thresholds`] — the optimal (α_i, β_i) tables and the jump-window
//!   rate selection rule.
//! * [`softrate`] — the sender state machine: per-frame BER feedback,
//!   collision robustness, 3-silent-loss fallback.
//! * [`adapter`] — the [`adapter::RateAdapter`] trait every algorithm
//!   (SoftRate and all baselines in `softrate-adapt`) implements, so the
//!   simulator can drive them interchangeably.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adapter;
pub mod collision;
pub mod hints;
pub mod prediction;
pub mod recovery;
pub mod softrate;
pub mod thresholds;

/// Convenient glob-import of the most common items.
pub mod prelude {
    pub use crate::adapter::{RateAdapter, RateIdx, TxAttempt, TxOutcome};
    pub use crate::collision::{
        CollisionDetector, CollisionVerdict, DEFAULT_EDGE_RATIO, DEFAULT_MIN_DELTA,
        DEFAULT_REGION_RATIO,
    };
    pub use crate::hints::{error_prob_from_hint, error_prob_from_llr, hint_from_llr, FrameHints};
    pub use crate::prediction::{clamp_ber, predict_ber, BER_CEIL, BER_FLOOR};
    pub use crate::recovery::{ChunkedHarq, ErrorRecovery, FrameArq};
    pub use crate::softrate::{SoftRate, SoftRateConfig};
    pub use crate::thresholds::{select_rate, RateThresholds};
}
