//! Error-recovery models (paper §3.3, "computing optimal thresholds").
//!
//! The link-layer throughput achieved at a given BER depends on how the
//! link layer recovers from errors: full-frame ARQ loses the whole frame to
//! one bit error, while a hybrid/partial scheme retransmits only damaged
//! pieces. SoftRate's thresholds are *derived from* the recovery model's
//! goodput curve — swapping the model recomputes the thresholds without
//! touching the algorithm, the architectural decoupling the paper claims
//! over frame-level protocols.

use softrate_phy::rates::BitRate;

/// A link-layer error-recovery scheme, characterized by its expected
/// goodput as a function of channel BER.
pub trait ErrorRecovery {
    /// Human-readable name.
    fn name(&self) -> &'static str;

    /// Probability that a block of `bits` bits arrives with no errors at
    /// channel bit error rate `ber` (independent-error model).
    fn block_success(&self, bits: usize, ber: f64) -> f64 {
        (1.0 - ber).powi(bits as i32)
    }

    /// Expected goodput in bit/s when sending frames of `frame_bits` at
    /// `rate` over a channel with bit error rate `ber`.
    fn goodput(&self, rate: BitRate, frame_bits: usize, ber: f64) -> f64;
}

/// Classic 802.11-style full-frame ARQ: any bit error loses the frame and
/// the entire frame is retransmitted. Expected attempts per delivery are
/// `1/P`, so goodput is `R * P` with `P = (1-b)^L`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FrameArq;

impl ErrorRecovery for FrameArq {
    fn name(&self) -> &'static str {
        "frame-arq"
    }

    fn goodput(&self, rate: BitRate, frame_bits: usize, ber: f64) -> f64 {
        rate.bits_per_sec() * self.block_success(frame_bits, ber.clamp(0.0, 1.0))
    }
}

/// A chunked hybrid-ARQ in the spirit of PPR / ZipTx (paper §2): the frame
/// is divided into chunks that are individually checksummed, and only
/// chunks with errors are retransmitted. The frame tolerates far higher
/// BER before goodput collapses — which pushes the optimal rate thresholds
/// up by orders of magnitude (the paper's 1e-5 -> 1e-3 example).
#[derive(Debug, Clone, Copy)]
pub struct ChunkedHarq {
    /// Chunk size in bits.
    pub chunk_bits: usize,
    /// Fractional per-chunk overhead (checksums/feedback maps).
    pub overhead: f64,
}

impl Default for ChunkedHarq {
    fn default() -> Self {
        // 64-byte chunks, 3 % overhead.
        ChunkedHarq {
            chunk_bits: 512,
            overhead: 0.03,
        }
    }
}

impl ErrorRecovery for ChunkedHarq {
    fn name(&self) -> &'static str {
        "chunked-harq"
    }

    fn goodput(&self, rate: BitRate, _frame_bits: usize, ber: f64) -> f64 {
        // Each chunk is delivered after an expected 1/P_chunk attempts; the
        // frame's bits all flow at that chunk efficiency.
        let p_chunk = self.block_success(self.chunk_bits, ber.clamp(0.0, 1.0));
        rate.bits_per_sec() * p_chunk * (1.0 - self.overhead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softrate_phy::rates::PAPER_RATES;

    #[test]
    fn zero_ber_goodput_is_raw_rate() {
        let arq = FrameArq;
        for &r in PAPER_RATES {
            assert!((arq.goodput(r, 8000, 0.0) - r.bits_per_sec()).abs() < 1e-6);
        }
    }

    #[test]
    fn goodput_decreases_with_ber() {
        let arq = FrameArq;
        let r = PAPER_RATES[3];
        let mut prev = f64::INFINITY;
        for ber in [0.0, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2] {
            let g = arq.goodput(r, 10_000, ber);
            assert!(g <= prev);
            prev = g;
        }
    }

    #[test]
    fn frame_arq_paper_example() {
        // Paper §3.3: for 10_000-bit frames, a frame loss rate of 1/3
        // corresponds to BER of the order 1e-5.
        let flr_at = |ber: f64| 1.0 - (1.0f64 - ber).powi(10_000);
        let b = 4e-5; // ~1/3 loss
        let f = flr_at(b);
        assert!((f - 1.0 / 3.0).abs() < 0.05, "flr {f}");
    }

    #[test]
    fn harq_tolerates_higher_ber_than_frame_arq() {
        let arq = FrameArq;
        let harq = ChunkedHarq::default();
        let r = PAPER_RATES[3]; // 18 Mbps
        let frame = 10_000;
        // At BER 1e-3 frame ARQ has essentially zero goodput; chunked HARQ
        // retains most of it (the paper's "up to a much higher BER, say
        // 1e-3").
        let g_arq = arq.goodput(r, frame, 1e-3);
        let g_harq = harq.goodput(r, frame, 1e-3);
        assert!(g_arq < 0.01 * r.bits_per_sec(), "frame ARQ should collapse");
        assert!(
            g_harq > 0.5 * r.bits_per_sec(),
            "chunked HARQ should survive"
        );
    }

    #[test]
    fn harq_overhead_charged_at_zero_ber() {
        let harq = ChunkedHarq {
            chunk_bits: 512,
            overhead: 0.10,
        };
        let r = PAPER_RATES[0];
        let g = harq.goodput(r, 8000, 0.0);
        assert!((g - 0.9 * r.bits_per_sec()).abs() < 1e-6);
    }

    #[test]
    fn block_success_monotone_in_size() {
        let arq = FrameArq;
        assert!(arq.block_success(100, 1e-3) > arq.block_success(1000, 1e-3));
    }
}
