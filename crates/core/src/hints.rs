//! SoftPHY hints and BER estimation (paper §3.1).
//!
//! The PHY's soft decoder exports one log-likelihood ratio per decoded bit.
//! The *SoftPHY hint* for bit `k` is `s_k = |LLR(k)|`, and the probability
//! that the sliced bit `y_k` differs from the transmitted bit `x_k` is
//!
//! ```text
//! p_k = 1 / (1 + e^{s_k})                (paper Eq. 3)
//! ```
//!
//! Averaging `p_k` over a frame estimates the channel BER during that frame
//! — *without knowing the transmitted bits*, and even when the frame has no
//! errors at all (the property that makes per-frame rate adaptation
//! possible: an error-free frame still reveals whether the channel BER is
//! 1e-4 or 1e-9). Averaging per OFDM symbol (paper Eq. 4) gives the
//! time-resolved BER profile the interference detector consumes.

use serde::{Deserialize, Serialize};

/// The SoftPHY hint for one bit: the magnitude of its LLR.
#[inline]
pub fn hint_from_llr(llr: f64) -> f64 {
    llr.abs()
}

/// Error probability of a sliced bit given its SoftPHY hint (paper Eq. 3).
/// Lies in `(0, 1/2]`.
#[inline]
pub fn error_prob_from_hint(hint: f64) -> f64 {
    debug_assert!(hint >= 0.0);
    1.0 / (1.0 + hint.exp())
}

/// Error probability straight from a (signed) LLR.
#[inline]
pub fn error_prob_from_llr(llr: f64) -> f64 {
    error_prob_from_hint(hint_from_llr(llr))
}

/// Per-frame SoftPHY view: bit error probabilities plus the symbol
/// structure needed for Eq. 4 aggregation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrameHints {
    /// `p_k` per information bit.
    pub probs: Vec<f64>,
    /// Information bits per OFDM symbol (N_dbps at the frame's rate).
    pub bits_per_symbol: usize,
}

impl FrameHints {
    /// Builds hints from the decoder's LLR output.
    ///
    /// `bits_per_symbol` is the number of information bits carried by one
    /// OFDM symbol ([`softrate_phy::ofdm::Mode::data_bits_per_symbol`]).
    pub fn from_llrs(llrs: &[f64], bits_per_symbol: usize) -> Self {
        assert!(bits_per_symbol > 0);
        FrameHints {
            probs: llrs.iter().map(|&l| error_prob_from_llr(l)).collect(),
            bits_per_symbol,
        }
    }

    /// The frame-average BER estimate: mean of `p_k` (paper §3.1).
    pub fn frame_ber(&self) -> f64 {
        if self.probs.is_empty() {
            return 0.0;
        }
        self.probs.iter().sum::<f64>() / self.probs.len() as f64
    }

    /// Per-OFDM-symbol average BER `p̄_j` (paper Eq. 4). The final symbol
    /// may carry fewer information bits; its average is over what it
    /// carries.
    pub fn symbol_bers(&self) -> Vec<f64> {
        self.probs
            .chunks(self.bits_per_symbol)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect()
    }

    /// Number of OFDM symbols spanned.
    pub fn n_symbols(&self) -> usize {
        self.probs.len().div_ceil(self.bits_per_symbol)
    }

    /// Mean BER over a subset of symbols (`true` entries of `mask` are
    /// *excluded*) — the interference-free BER of paper §3.2. Falls back to
    /// the full-frame BER if the mask excludes everything.
    pub fn ber_excluding(&self, excluded_symbols: &[bool]) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for (j, chunk) in self.probs.chunks(self.bits_per_symbol).enumerate() {
            if excluded_symbols.get(j).copied().unwrap_or(false) {
                continue;
            }
            sum += chunk.iter().sum::<f64>();
            count += chunk.len();
        }
        if count == 0 {
            self.frame_ber()
        } else {
            sum / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hint_is_absolute_llr() {
        assert_eq!(hint_from_llr(3.5), 3.5);
        assert_eq!(hint_from_llr(-3.5), 3.5);
        assert_eq!(hint_from_llr(0.0), 0.0);
    }

    #[test]
    fn zero_hint_means_coin_flip() {
        assert!((error_prob_from_hint(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn error_prob_decreases_with_hint() {
        let mut prev = 0.6;
        for s in [0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0] {
            let p = error_prob_from_hint(s);
            assert!(p < prev);
            assert!(p > 0.0 && p <= 0.5);
            prev = p;
        }
    }

    #[test]
    fn eq3_closed_form_checks() {
        // s = ln((1-p)/p)  =>  p = 1/(1+e^s). For p = 0.1, s = ln 9.
        let s = (0.9f64 / 0.1).ln();
        assert!((error_prob_from_hint(s) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn frame_ber_is_mean_of_probs() {
        let llrs = vec![0.0, 0.0, 100.0, 100.0]; // p = .5, .5, ~0, ~0
        let h = FrameHints::from_llrs(&llrs, 2);
        assert!((h.frame_ber() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn symbol_bers_group_correctly() {
        // 2 bits per symbol: [coin, coin], [confident, confident], [coin]
        let llrs = vec![0.0, 0.0, 50.0, -50.0, 0.0];
        let h = FrameHints::from_llrs(&llrs, 2);
        let sb = h.symbol_bers();
        assert_eq!(sb.len(), 3);
        assert!((sb[0] - 0.5).abs() < 1e-9);
        assert!(sb[1] < 1e-9);
        assert!(
            (sb[2] - 0.5).abs() < 1e-9,
            "partial last symbol averaged over its own bits"
        );
        assert_eq!(h.n_symbols(), 3);
    }

    #[test]
    fn ber_excluding_masks_symbols() {
        let llrs = vec![0.0, 0.0, 50.0, 50.0]; // symbol0 = 0.5, symbol1 ~ 0
        let h = FrameHints::from_llrs(&llrs, 2);
        let ifree = h.ber_excluding(&[true, false]);
        assert!(
            ifree < 1e-9,
            "excluding the bad symbol leaves the clean one"
        );
        let all_masked = h.ber_excluding(&[true, true]);
        assert!(
            (all_masked - h.frame_ber()).abs() < 1e-12,
            "full mask falls back to frame BER"
        );
    }

    #[test]
    fn empty_frame_ber_is_zero() {
        let h = FrameHints::from_llrs(&[], 8);
        assert_eq!(h.frame_ber(), 0.0);
        assert_eq!(h.n_symbols(), 0);
    }
}
