//! Optimal per-rate BER thresholds (paper §3.3).
//!
//! For each rate `R_i`, SoftRate computes `(alpha_i, beta_i)` such that
//! `R_i` is the throughput-optimal rate exactly while the BER at `R_i`
//! lies in `(alpha_i, beta_i)`: below `alpha_i` the next rate up wins,
//! above `beta_i` the next rate down wins. The thresholds are derived from
//! the error-recovery model's goodput curve combined with the cross-rate
//! BER prediction rule — recomputing them is all it takes to retarget a
//! different recovery scheme.

use crate::prediction::{clamp_ber, predict_ber, BER_CEIL, BER_FLOOR};
use crate::recovery::ErrorRecovery;
use softrate_phy::rates::BitRate;

/// Per-rate decision thresholds.
#[derive(Debug, Clone)]
pub struct RateThresholds {
    /// `alpha[i]`: measured BER below which rate `i+1` outperforms rate
    /// `i`. Zero for the top rate (never move up).
    pub alpha: Vec<f64>,
    /// `beta[i]`: measured BER above which rate `i-1` outperforms rate
    /// `i`. [`BER_CEIL`] for the bottom rate (never move below it).
    pub beta: Vec<f64>,
}

impl RateThresholds {
    /// Computes thresholds for `rates` (in increasing-throughput order)
    /// with frames of `frame_bits` under `recovery`.
    pub fn compute(rates: &[BitRate], frame_bits: usize, recovery: &dyn ErrorRecovery) -> Self {
        assert!(rates.len() >= 2, "need at least two rates to adapt");
        let n = rates.len();
        let mut alpha = vec![0.0; n];
        let mut beta = vec![BER_CEIL; n];

        // Below this goodput (bit/s) a rate is considered dead; ties between
        // dead rates resolve toward the more robust choice so the bisection
        // keeps a single sign change even where (1-b)^L underflows to 0.
        const DEAD: f64 = 1.0;

        for i in 0..n {
            if i + 1 < n {
                // alpha_i: crossing of goodput_i(b) and
                // goodput_{i+1}(predict(b, i, i+1)). Up is better below it.
                alpha[i] = bisect_crossing(|b| {
                    let up = recovery.goodput(rates[i + 1], frame_bits, predict_ber(b, i, i + 1));
                    let here = recovery.goodput(rates[i], frame_bits, b);
                    if up < DEAD && here < DEAD {
                        return 1.0; // both dead: moving up is certainly not better
                    }
                    here - up // negative while moving up is better
                });
            }
            if i > 0 {
                // beta_i: crossing of goodput_i(b) and
                // goodput_{i-1}(predict(b, i, i-1)). Down is better above it.
                beta[i] = bisect_crossing(|b| {
                    let down = recovery.goodput(rates[i - 1], frame_bits, predict_ber(b, i, i - 1));
                    let here = recovery.goodput(rates[i], frame_bits, b);
                    if down < DEAD && here < DEAD {
                        return 1.0; // both dead: prefer the more robust rate
                    }
                    down - here // positive once moving down is better
                });
            }
        }
        RateThresholds { alpha, beta }
    }

    /// Number of rates covered.
    pub fn len(&self) -> usize {
        self.alpha.len()
    }

    /// True if empty (never — kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.alpha.is_empty()
    }
}

/// Finds the BER where `f` changes sign (negative -> positive), assuming
/// `f` is monotonically increasing in BER. Returns [`BER_FLOOR`] /
/// [`BER_CEIL`] when `f` never / always is positive.
fn bisect_crossing(f: impl Fn(f64) -> f64) -> f64 {
    let mut lo = BER_FLOOR.log10();
    let mut hi = BER_CEIL.log10();
    if f(10f64.powf(lo)) >= 0.0 {
        return BER_FLOOR;
    }
    if f(10f64.powf(hi)) <= 0.0 {
        return BER_CEIL;
    }
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if f(10f64.powf(mid)) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    clamp_ber(10f64.powf(0.5 * (lo + hi)))
}

/// Picks the best rate within `max_jump` of `current`, given the measured
/// interference-free BER at `current` (paper §3.3 "bit rate selection",
/// generalized to n-level jumps by maximizing predicted goodput).
pub fn select_rate(
    current: usize,
    measured_ber: f64,
    rates: &[BitRate],
    frame_bits: usize,
    recovery: &dyn ErrorRecovery,
    max_jump: usize,
) -> usize {
    let lo = current.saturating_sub(max_jump);
    let hi = (current + max_jump).min(rates.len() - 1);
    let mut best = current;
    let mut best_g = f64::NEG_INFINITY;
    #[allow(clippy::needless_range_loop)] // `j` is a rate index, not just a subscript
    for j in lo..=hi {
        let predicted = predict_ber(measured_ber, current, j);
        let g = recovery.goodput(rates[j], frame_bits, predicted);
        // Strict improvement required to move; ties favour the lower
        // (more robust) rate because we iterate upward.
        if g > best_g * (1.0 + 1e-12) {
            best_g = g;
            best = j;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::{ChunkedHarq, FrameArq};
    use softrate_phy::rates::PAPER_RATES;

    const FRAME_BITS: usize = 10_000;

    #[test]
    fn thresholds_have_paper_magnitudes() {
        // Paper §3.3 example for 18 Mbps with frame ARQ and 10^4-bit
        // frames: optimal window roughly (1e-7, 1e-5).
        let t = RateThresholds::compute(PAPER_RATES, FRAME_BITS, &FrameArq);
        let i = 3; // QPSK 3/4 = 18 Mbps
        assert!(
            t.beta[i] > 1e-6 && t.beta[i] < 1e-4,
            "beta[18 Mbps] = {:.2e}, expected order 1e-5",
            t.beta[i]
        );
        assert!(
            t.alpha[i] > 1e-8 && t.alpha[i] < 1e-5,
            "alpha[18 Mbps] = {:.2e}, expected order 1e-7..1e-6",
            t.alpha[i]
        );
        assert!(t.alpha[i] < t.beta[i]);
    }

    #[test]
    fn boundary_rates_never_leave_table() {
        let t = RateThresholds::compute(PAPER_RATES, FRAME_BITS, &FrameArq);
        assert_eq!(
            t.alpha[PAPER_RATES.len() - 1],
            0.0,
            "top rate never moves up"
        );
        assert_eq!(t.beta[0], BER_CEIL, "bottom rate never moves down");
    }

    #[test]
    fn alpha_below_beta_everywhere() {
        for rec in [&FrameArq as &dyn ErrorRecovery, &ChunkedHarq::default()] {
            let t = RateThresholds::compute(PAPER_RATES, FRAME_BITS, rec);
            for i in 0..t.len() {
                assert!(
                    t.alpha[i] < t.beta[i],
                    "{}: alpha[{i}]={:.2e} >= beta[{i}]={:.2e}",
                    rec.name(),
                    t.alpha[i],
                    t.beta[i]
                );
            }
        }
    }

    #[test]
    fn harq_thresholds_are_orders_higher() {
        // The paper's modularity claim: a recovery scheme tolerant to bit
        // errors shifts the whole threshold structure up by orders of
        // magnitude (1e-5 -> 1e-3 in their example).
        let arq = RateThresholds::compute(PAPER_RATES, FRAME_BITS, &FrameArq);
        let harq = RateThresholds::compute(PAPER_RATES, FRAME_BITS, &ChunkedHarq::default());
        for i in 1..PAPER_RATES.len() {
            assert!(
                harq.beta[i] > 10.0 * arq.beta[i],
                "rate {i}: harq beta {:.2e} vs arq beta {:.2e}",
                harq.beta[i],
                arq.beta[i]
            );
        }
    }

    #[test]
    fn select_rate_stays_when_in_window() {
        // A BER inside (alpha, beta) must keep the current rate.
        let t = RateThresholds::compute(PAPER_RATES, FRAME_BITS, &FrameArq);
        let i = 3;
        let mid = (t.alpha[i].max(BER_FLOOR) * t.beta[i]).sqrt();
        let sel = select_rate(i, mid, PAPER_RATES, FRAME_BITS, &FrameArq, 2);
        assert_eq!(
            sel, i,
            "BER {mid:.2e} inside ({:.2e},{:.2e})",
            t.alpha[i], t.beta[i]
        );
    }

    #[test]
    fn select_rate_moves_up_on_tiny_ber() {
        let sel = select_rate(2, 1e-9, PAPER_RATES, FRAME_BITS, &FrameArq, 2);
        assert!(sel > 2, "clean channel must move up, got {sel}");
    }

    #[test]
    fn select_rate_moves_down_on_high_ber() {
        let sel = select_rate(3, 1e-2, PAPER_RATES, FRAME_BITS, &FrameArq, 2);
        assert!(sel < 3, "BER 1e-2 must move down, got {sel}");
    }

    #[test]
    fn select_rate_two_level_jump_on_terrible_ber() {
        // Paper: "if the BER at 18 Mbps is above 1e-2, then one can jump
        // two rates lower".
        let sel = select_rate(3, 0.1, PAPER_RATES, FRAME_BITS, &FrameArq, 2);
        assert_eq!(sel, 1, "catastrophic BER must use the full jump window");
    }

    #[test]
    fn select_rate_respects_max_jump() {
        let sel = select_rate(5, 0.5, PAPER_RATES, FRAME_BITS, &FrameArq, 1);
        assert_eq!(sel, 4, "max_jump=1 limits descent");
        let sel2 = select_rate(0, 1e-9, PAPER_RATES, FRAME_BITS, &FrameArq, 1);
        assert_eq!(sel2, 1, "max_jump=1 limits ascent");
    }

    #[test]
    fn select_rate_clamps_at_table_edges() {
        assert_eq!(
            select_rate(0, 0.5, PAPER_RATES, FRAME_BITS, &FrameArq, 2),
            0
        );
        assert_eq!(
            select_rate(5, 1e-9, PAPER_RATES, FRAME_BITS, &FrameArq, 2),
            5,
            "top rate with clean channel stays"
        );
    }
}
