//! The common interface every bit-rate adaptation algorithm implements.
//!
//! The trace-driven simulator drives adapters exclusively through this
//! trait, so SoftRate and every baseline (SampleRate, RRAA, SNR-based,
//! CHARM, omniscient) are interchangeable — the comparison methodology of
//! the paper's §6.

use serde::{Deserialize, Serialize};

/// Index into the rate table the adapter was configured with.
pub type RateIdx = usize;

/// What the adapter wants for the next transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxAttempt {
    /// Rate to transmit at.
    pub rate_idx: RateIdx,
    /// Whether to precede the frame with an RTS/CTS exchange (used by
    /// RRAA's adaptive RTS filter).
    pub use_rts: bool,
}

/// Everything the link layer learned from one transmission attempt.
///
/// Different adapters consume different subsets: frame-level protocols look
/// only at `acked`; SNR protocols at `snr_feedback_db`; SoftRate at
/// `ber_feedback` / `interference_flagged` / silent losses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TxOutcome {
    /// Rate the frame was actually sent at.
    pub rate_idx: RateIdx,
    /// Whether a link-layer ACK arrived (frame delivered intact).
    pub acked: bool,
    /// Whether *any* feedback frame arrived (SoftRate sends feedback even
    /// for frames with errors, as long as preamble + header decoded).
    pub feedback_received: bool,
    /// Interference-free BER measured by the receiver over this frame
    /// (present iff `feedback_received`).
    pub ber_feedback: Option<f64>,
    /// Receiver's collision detector flagged interference on this frame.
    pub interference_flagged: bool,
    /// Feedback was triggered by postamble detection alone (preamble lost
    /// to interference) — only possible when postambles are enabled.
    pub postamble_ack: bool,
    /// Preamble SNR estimate measured by the receiver (present iff
    /// `feedback_received`); consumed by SNR-based protocols.
    pub snr_feedback_db: Option<f64>,
    /// Total air time consumed by the attempt, seconds (frame + overhead +
    /// backoff) — SampleRate's accounting signal.
    pub airtime: f64,
    /// Timestamp of the attempt, seconds.
    pub now: f64,
}

impl TxOutcome {
    /// A silent loss: no feedback of any kind (paper §3.2).
    pub fn is_silent_loss(&self) -> bool {
        !self.feedback_received && !self.postamble_ack
    }
}

/// A bit-rate adaptation algorithm.
pub trait RateAdapter: Send {
    /// Short name used in result tables ("SoftRate", "RRAA", ...).
    fn name(&self) -> &'static str;

    /// Chooses the rate (and RTS policy) for the next transmission.
    fn next_attempt(&mut self, now: f64) -> TxAttempt;

    /// Digests the outcome of a transmission attempt.
    fn on_outcome(&mut self, outcome: &TxOutcome);

    /// Number of rates in the table this adapter adapts over.
    fn num_rates(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silent_loss_definition() {
        let mut o = TxOutcome {
            rate_idx: 0,
            acked: false,
            feedback_received: false,
            ber_feedback: None,
            interference_flagged: false,
            postamble_ack: false,
            snr_feedback_db: None,
            airtime: 1e-3,
            now: 0.0,
        };
        assert!(o.is_silent_loss());
        o.postamble_ack = true;
        assert!(!o.is_silent_loss());
        o.postamble_ack = false;
        o.feedback_received = true;
        assert!(!o.is_silent_loss());
    }
}
