//! The common interface every bit-rate adaptation algorithm implements.
//!
//! The trace-driven simulator drives adapters exclusively through this
//! trait, so SoftRate and every baseline (SampleRate, RRAA, SNR-based,
//! CHARM, omniscient) are interchangeable — the comparison methodology of
//! the paper's §6.

use serde::{Deserialize, Serialize};

/// Index into the rate table the adapter was configured with.
pub type RateIdx = usize;

/// What the adapter wants for the next transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxAttempt {
    /// Rate to transmit at.
    pub rate_idx: RateIdx,
    /// Whether to precede the frame with an RTS/CTS exchange (used by
    /// RRAA's adaptive RTS filter).
    pub use_rts: bool,
}

/// Everything the link layer learned from one transmission attempt.
///
/// Different adapters consume different subsets: frame-level protocols look
/// only at `acked`; SNR protocols at `snr_feedback_db`; SoftRate at
/// `ber_feedback` / `interference_flagged` / silent losses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TxOutcome {
    /// Rate the frame was actually sent at.
    pub rate_idx: RateIdx,
    /// Whether a link-layer ACK arrived (frame delivered intact).
    pub acked: bool,
    /// Whether *any* feedback frame arrived (SoftRate sends feedback even
    /// for frames with errors, as long as preamble + header decoded).
    pub feedback_received: bool,
    /// Interference-free BER measured by the receiver over this frame
    /// (present iff `feedback_received`).
    pub ber_feedback: Option<f64>,
    /// Receiver's collision detector flagged interference on this frame.
    pub interference_flagged: bool,
    /// Feedback was triggered by postamble detection alone (preamble lost
    /// to interference) — only possible when postambles are enabled.
    pub postamble_ack: bool,
    /// Preamble SNR estimate measured by the receiver (present iff
    /// `feedback_received`); consumed by SNR-based protocols.
    pub snr_feedback_db: Option<f64>,
    /// Total air time consumed by the attempt, seconds (frame + overhead +
    /// backoff) — SampleRate's accounting signal.
    pub airtime: f64,
    /// Timestamp of the attempt, seconds.
    pub now: f64,
}

impl TxOutcome {
    /// A silent loss: no feedback of any kind (paper §3.2).
    pub fn is_silent_loss(&self) -> bool {
        !self.feedback_received && !self.postamble_ack
    }
}

/// What caused a rate-adaptation decision (the decision-ledger trigger
/// taxonomy; see DESIGN.md §10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecisionTrigger {
    /// Feedback for a delivered frame drove the decision.
    Ack,
    /// Feedback for a corrupted/undelivered frame drove the decision.
    Loss,
    /// A silent-loss (no feedback at all) limit tripped.
    Timeout,
    /// A deliberate sampling/probing transmission at a non-best rate.
    Probe,
    /// A roaming handoff that preserved adapter state.
    HandoffPreserve,
    /// A roaming handoff that reset adapter state.
    HandoffReset,
}

impl DecisionTrigger {
    /// Stable lower-snake name used in the decision JSONL stream.
    pub fn name(&self) -> &'static str {
        match self {
            DecisionTrigger::Ack => "ack",
            DecisionTrigger::Loss => "loss",
            DecisionTrigger::Timeout => "timeout",
            DecisionTrigger::Probe => "probe",
            DecisionTrigger::HandoffPreserve => "handoff_preserve",
            DecisionTrigger::HandoffReset => "handoff_reset",
        }
    }
}

/// One rate-adaptation decision, recorded by an adapter into a
/// [`DecisionCtx`] at the moment it changes (or deliberately deviates
/// from) its current rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateDecision {
    /// Rate before the decision.
    pub old_rate: RateIdx,
    /// Rate after the decision.
    pub new_rate: RateIdx,
    /// What prompted the decision.
    pub trigger: DecisionTrigger,
    /// SNR input observed at decision time, dB (if the adapter had one).
    pub snr_db: Option<f64>,
    /// BER input observed at decision time (if the adapter had one).
    pub ber: Option<f64>,
    /// Adapter-specific reason code, e.g. SoftRate's
    /// "threshold-crossing" vs SampleRate's "airtime-table-winner".
    pub reason: &'static str,
}

/// Decision sink handed to the `_ctx` adapter entry points.
///
/// Disabled (`DecisionCtx::disabled()`, the default used by the plain
/// trait methods) it is a no-op that never allocates, so the enabled and
/// disabled paths run the exact same adapter logic — the ledger's
/// zero-cost-when-off guarantee. The MAC engine drains `decisions` into
/// the telemetry recorder after each adapter call.
#[derive(Debug, Default)]
pub struct DecisionCtx {
    enabled: bool,
    /// Decisions recorded since the last drain, in call order.
    pub decisions: Vec<RateDecision>,
}

impl DecisionCtx {
    /// A sink that records nothing (the default for plain trait calls).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A sink that records every decision for the engine to drain.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            decisions: Vec::new(),
        }
    }

    /// Whether this sink records decisions.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one decision (no-op when disabled).
    pub fn record(&mut self, decision: RateDecision) {
        if self.enabled {
            self.decisions.push(decision);
        }
    }
}

/// A bit-rate adaptation algorithm.
///
/// Implementations provide the `_ctx` entry points; the plain
/// `next_attempt` / `on_outcome` methods delegate with a disabled
/// [`DecisionCtx`], so the decision ledger shares one code path with
/// the ledger-off configuration and cannot drift from it.
pub trait RateAdapter: Send {
    /// Short name used in result tables ("SoftRate", "RRAA", ...).
    fn name(&self) -> &'static str;

    /// Chooses the rate (and RTS policy) for the next transmission,
    /// recording any rate decision made here (e.g. a sampling probe)
    /// into `ctx`.
    fn next_attempt_ctx(&mut self, now: f64, ctx: &mut DecisionCtx) -> TxAttempt;

    /// Digests the outcome of a transmission attempt, recording any
    /// resulting rate decision into `ctx`.
    fn on_outcome_ctx(&mut self, outcome: &TxOutcome, ctx: &mut DecisionCtx);

    /// Chooses the rate (and RTS policy) for the next transmission.
    fn next_attempt(&mut self, now: f64) -> TxAttempt {
        self.next_attempt_ctx(now, &mut DecisionCtx::disabled())
    }

    /// Digests the outcome of a transmission attempt.
    fn on_outcome(&mut self, outcome: &TxOutcome) {
        self.on_outcome_ctx(outcome, &mut DecisionCtx::disabled())
    }

    /// Number of rates in the table this adapter adapts over.
    fn num_rates(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silent_loss_definition() {
        let mut o = TxOutcome {
            rate_idx: 0,
            acked: false,
            feedback_received: false,
            ber_feedback: None,
            interference_flagged: false,
            postamble_ack: false,
            snr_feedback_db: None,
            airtime: 1e-3,
            now: 0.0,
        };
        assert!(o.is_silent_loss());
        o.postamble_ack = true;
        assert!(!o.is_silent_loss());
        o.postamble_ack = false;
        o.feedback_received = true;
        assert!(!o.is_silent_loss());
    }

    #[test]
    fn disabled_ctx_records_nothing() {
        let decision = RateDecision {
            old_rate: 0,
            new_rate: 1,
            trigger: DecisionTrigger::Ack,
            snr_db: None,
            ber: Some(1e-4),
            reason: "test",
        };
        let mut off = DecisionCtx::disabled();
        off.record(decision.clone());
        assert!(!off.is_enabled());
        assert!(off.decisions.is_empty());
        let mut on = DecisionCtx::enabled();
        on.record(decision);
        assert_eq!(on.decisions.len(), 1);
        assert_eq!(on.decisions[0].trigger.name(), "ack");
    }
}
