//! Cross-rate BER prediction (paper §3.3).
//!
//! SoftRate deliberately avoids SNR–BER curves (they depend on radio and
//! environment). It relies on two robust observations instead:
//!
//! 1. at any SNR, BER increases monotonically with the bit-rate index, and
//! 2. within the usable range (BER below ~1e-2), each step up the rate
//!    table costs *at least* a factor of 10 in BER.
//!
//! So from a measured BER `b` at rate `i`, the BER at rate `j` is predicted
//! as `b * 10^(j-i)`, clamped to a sane range. Figure 5 of the paper (and
//! our `fig05_ber_across_rates` harness) validates both observations on
//! walking-trace data.

/// Lowest representable predicted BER. An error-free frame of `L` bits can
/// only certify BER down to roughly `1/L`, but the SoftPHY estimate itself
/// extends further (paper Fig. 7b reaches 1e-7); the floor merely keeps the
/// arithmetic finite.
pub const BER_FLOOR: f64 = 1e-9;

/// Highest meaningful BER (random bits).
pub const BER_CEIL: f64 = 0.5;

/// Decades of BER separating adjacent rates (observation 2: "at least a
/// factor of 10").
pub const DECADES_PER_RATE: f64 = 1.0;

/// Clamps a BER estimate into `[BER_FLOOR, BER_CEIL]`.
#[inline]
pub fn clamp_ber(ber: f64) -> f64 {
    ber.clamp(BER_FLOOR, BER_CEIL)
}

/// Predicts the BER at rate index `to` from a measurement at rate index
/// `from` (indices into the same ordered rate table).
pub fn predict_ber(ber_at_from: f64, from: usize, to: usize) -> f64 {
    let b = clamp_ber(ber_at_from);
    let steps = to as f64 - from as f64;
    clamp_ber(b * 10f64.powf(steps * DECADES_PER_RATE))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_rate_is_identity_within_clamp() {
        assert_eq!(predict_ber(1e-4, 3, 3), 1e-4);
        assert_eq!(predict_ber(0.0, 3, 3), BER_FLOOR);
        assert_eq!(predict_ber(0.9, 3, 3), BER_CEIL);
    }

    #[test]
    fn one_step_up_is_one_decade() {
        assert!((predict_ber(1e-5, 2, 3) - 1e-4).abs() < 1e-12);
    }

    #[test]
    fn one_step_down_is_one_decade() {
        assert!((predict_ber(1e-3, 4, 3) - 1e-4).abs() < 1e-12);
    }

    #[test]
    fn multi_step_jumps() {
        assert!((predict_ber(1e-6, 1, 4) - 1e-3).abs() < 1e-12);
        assert!((predict_ber(1e-2, 5, 2) - 1e-5).abs() < 1e-12);
    }

    #[test]
    fn predictions_clamp_at_both_ends() {
        assert_eq!(predict_ber(0.3, 0, 5), BER_CEIL);
        assert_eq!(predict_ber(1e-8, 5, 0), BER_FLOOR);
    }

    #[test]
    fn prediction_is_monotone_in_rate() {
        let b = 3e-5;
        let mut prev = 0.0;
        for j in 0..6 {
            let p = predict_ber(b, 2, j);
            assert!(p >= prev, "prediction must not decrease with rate index");
            prev = p;
        }
    }
}
