//! Interference detection from the per-symbol BER profile (paper §3.2, §4).
//!
//! A collision corrupts *all* subcarriers of the OFDM symbols it overlaps,
//! so the per-symbol BER `p̄_j` jumps *by orders of magnitude* within one
//! symbol time — something the physics of multipath fading cannot do
//! ("a sudden change in BER by orders of magnitude within a small number of
//! bits cannot be explained by stochastic channel fading, whose physics are
//! more gradual").
//!
//! The detector therefore works on BER *ratios*, not absolute differences:
//!
//! 1. **Edges**: a boundary between adjacent symbols is an edge when the
//!    BER changes by at least [`CollisionDetector::edge_ratio`] *and* by at
//!    least [`CollisionDetector::min_delta`] absolutely (the absolute floor
//!    suppresses edges between two already-confident symbols, e.g. 1e-9 vs
//!    1e-7).
//! 2. **Span reconstruction**: up-edges open an interfered span, down-edges
//!    close one; a leading down-edge means the interferer was already on at
//!    the start of the frame body.
//! 3. **Region validation**: the mean BER inside the candidate span must
//!    exceed the mean outside by [`CollisionDetector::region_ratio`].
//!    This rejects single-symbol estimation jitter (a lone noisy symbol in
//!    an otherwise moderate-BER frame) that survives step 1 during deep
//!    fades, where per-symbol pilot tracking gets noisy.

use serde::{Deserialize, Serialize};

use crate::hints::FrameHints;

/// Default minimum BER ratio between adjacent symbols to form an edge.
pub const DEFAULT_EDGE_RATIO: f64 = 20.0;

/// Default minimum absolute BER change to form an edge.
pub const DEFAULT_MIN_DELTA: f64 = 2e-3;

/// Default minimum inside/outside mean-BER ratio for a span to be
/// confirmed as interference.
pub const DEFAULT_REGION_RATIO: f64 = 30.0;

/// Default minimum interfered-span length in OFDM symbols. A colliding
/// frame overlaps many symbols (even a minimal 802.11 frame lasts several
/// symbol times), while decoder/noise jitter rarely wrecks three adjacent
/// symbols; tuned against the quiet-channel false-positive study (§5.3).
pub const DEFAULT_MIN_REGION: usize = 3;

/// Numerical floor used in ratios.
const EPS: f64 = 1e-7;

/// Collision detector configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CollisionDetector {
    /// Minimum BER ratio between adjacent symbols to count as an edge.
    pub edge_ratio: f64,
    /// Minimum absolute BER change to count as an edge.
    pub min_delta: f64,
    /// Minimum inside/outside mean-BER ratio to confirm a span.
    pub region_ratio: f64,
    /// Minimum contiguous span length (symbols) to count as interference.
    pub min_region: usize,
}

impl Default for CollisionDetector {
    fn default() -> Self {
        CollisionDetector {
            edge_ratio: DEFAULT_EDGE_RATIO,
            min_delta: DEFAULT_MIN_DELTA,
            region_ratio: DEFAULT_REGION_RATIO,
            min_region: DEFAULT_MIN_REGION,
        }
    }
}

/// The detector's verdict on one frame.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CollisionVerdict {
    /// Whether a validated interference span was found.
    pub collision_detected: bool,
    /// Per-symbol interference mask (true = judged interfered).
    pub interfered: Vec<bool>,
    /// Mean bit error probability over the non-interfered symbols — the
    /// interference-free BER fed back to the sender. Falls back to the
    /// full-frame BER when nothing is excluded.
    pub interference_free_ber: f64,
    /// Mean bit error probability over the whole frame.
    pub full_ber: f64,
}

impl CollisionDetector {
    /// Runs detection on a frame's hints.
    pub fn detect(&self, hints: &FrameHints) -> CollisionVerdict {
        let sym = hints.symbol_bers();
        let mask = self.interference_mask(&sym);
        let collision_detected = mask.iter().any(|&b| b);
        CollisionVerdict {
            collision_detected,
            interference_free_ber: hints.ber_excluding(&mask),
            full_ber: hints.frame_ber(),
            interfered: mask,
        }
    }

    /// Reconstructs and validates the interfered span from the per-symbol
    /// BER profile. Returns an all-false mask when no collision is found.
    pub fn interference_mask(&self, symbol_bers: &[f64]) -> Vec<bool> {
        let n = symbol_bers.len();
        let empty = vec![false; n];
        if n < 2 {
            return empty;
        }

        // --- Step 1: ratio edges -------------------------------------------
        let mut edges: Vec<(usize, bool)> = Vec::new(); // (index, is_up)
        for j in 1..n {
            let a = symbol_bers[j - 1].max(0.0);
            let b = symbol_bers[j].max(0.0);
            let delta = (b - a).abs();
            if delta < self.min_delta {
                continue;
            }
            let ratio = (a.max(b) + EPS) / (a.min(b) + EPS);
            if ratio >= self.edge_ratio {
                edges.push((j, b > a));
            }
        }
        if edges.is_empty() {
            return empty;
        }

        // --- Step 2: span reconstruction -----------------------------------
        let mut mask = vec![false; n];
        let mut state = !edges[0].1; // leading down-edge => interfered from 0
        let mut from = 0usize;
        for &(idx, is_up) in &edges {
            if state {
                for m in mask.iter_mut().take(idx).skip(from) {
                    *m = true;
                }
            }
            state = is_up;
            from = idx;
        }
        if state {
            for m in mask.iter_mut().skip(from) {
                *m = true;
            }
        }

        // --- Step 2b: drop spans shorter than min_region --------------------
        let mut j = 0;
        while j < n {
            if mask[j] {
                let start = j;
                while j < n && mask[j] {
                    j += 1;
                }
                if j - start < self.min_region {
                    for m in mask.iter_mut().take(j).skip(start) {
                        *m = false;
                    }
                }
            } else {
                j += 1;
            }
        }
        if !mask.iter().any(|&b| b) {
            return empty;
        }

        // --- Step 3: region validation -------------------------------------
        let inside: Vec<f64> = symbol_bers
            .iter()
            .zip(&mask)
            .filter(|(_, &m)| m)
            .map(|(&p, _)| p)
            .collect();
        let outside: Vec<f64> = symbol_bers
            .iter()
            .zip(&mask)
            .filter(|(_, &m)| !m)
            .map(|(&p, _)| p)
            .collect();
        if inside.is_empty() {
            return empty;
        }
        // Too few clean symbols to compare against: accept the span (a
        // frame almost fully covered by a collision).
        if outside.len() >= 2 {
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            let contrast = (mean(&inside) + EPS) / (mean(&outside) + EPS);
            if contrast < self.region_ratio {
                return empty;
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hints_from_symbol_bers(bers: &[f64], bits_per_symbol: usize) -> FrameHints {
        // Construct per-bit probabilities realizing the requested symbol
        // averages via fake LLRs: p = 1/(1+e^s) => s = ln((1-p)/p).
        let mut llrs = Vec::new();
        for &p in bers {
            let p = p.clamp(1e-12, 0.5);
            let s = ((1.0 - p) / p).ln();
            for _ in 0..bits_per_symbol {
                llrs.push(s);
            }
        }
        FrameHints::from_llrs(&llrs, bits_per_symbol)
    }

    #[test]
    fn clean_frame_no_collision() {
        let h = hints_from_symbol_bers(&[1e-6, 2e-6, 1.5e-6, 1e-6], 8);
        let v = CollisionDetector::default().detect(&h);
        assert!(!v.collision_detected);
        assert!(v.interfered.iter().all(|&b| !b));
        assert!((v.interference_free_ber - v.full_ber).abs() < 1e-12);
    }

    #[test]
    fn mid_frame_collision_detected_and_masked() {
        let bers = [1e-6, 1e-6, 0.3, 0.35, 0.3, 1e-6, 1e-6];
        let h = hints_from_symbol_bers(&bers, 8);
        let v = CollisionDetector::default().detect(&h);
        assert!(v.collision_detected);
        assert_eq!(
            v.interfered,
            vec![false, false, true, true, true, false, false]
        );
        assert!(
            v.interference_free_ber < 1e-4,
            "ifree {}",
            v.interference_free_ber
        );
        assert!(v.full_ber > 0.1);
    }

    #[test]
    fn weak_interference_still_detected() {
        // Interference that only raises BER to ~5e-3 is still orders of
        // magnitude above a clean 1e-6 floor and must be caught (this is
        // the -15 dB relative-power regime of Figure 10).
        let bers = [1e-6, 1e-6, 5e-3, 6e-3, 5e-3, 1e-6];
        // (three interfered symbols: at the min_region boundary)
        let h = hints_from_symbol_bers(&bers, 32);
        let v = CollisionDetector::default().detect(&h);
        assert!(v.collision_detected);
        assert_eq!(v.interfered, vec![false, false, true, true, true, false]);
    }

    #[test]
    fn collision_to_frame_end() {
        let bers = [1e-6, 1e-6, 0.4, 0.4, 0.38];
        let h = hints_from_symbol_bers(&bers, 4);
        let v = CollisionDetector::default().detect(&h);
        assert!(v.collision_detected);
        assert_eq!(v.interfered, vec![false, false, true, true, true]);
    }

    #[test]
    fn collision_from_frame_start() {
        let bers = [0.4, 0.42, 0.4, 1e-6, 1e-6];
        let h = hints_from_symbol_bers(&bers, 4);
        let v = CollisionDetector::default().detect(&h);
        assert!(v.collision_detected);
        assert_eq!(v.interfered, vec![true, true, true, false, false]);
        assert!(v.interference_free_ber < 1e-4);
    }

    #[test]
    fn gradual_fade_not_flagged() {
        // BER creeping up smoothly (deep fade over many symbols): each
        // adjacent ratio is only 3x, far below the edge ratio.
        let bers: Vec<f64> = (0..12).map(|j| 1e-5 * 3f64.powi(j)).collect();
        let h = hints_from_symbol_bers(&bers, 8);
        let v = CollisionDetector::default().detect(&h);
        assert!(
            !v.collision_detected,
            "gradual fade misflagged as collision"
        );
    }

    #[test]
    fn uniformly_bad_frame_not_flagged() {
        // A deep fade ruining the whole frame has no internal structure;
        // per-symbol jitter around a high mean must not read as collision.
        let bers = [0.18, 0.31, 0.22, 0.45, 0.27, 0.38, 0.2];
        let h = hints_from_symbol_bers(&bers, 8);
        let v = CollisionDetector::default().detect(&h);
        assert!(!v.collision_detected, "fade jitter misflagged");
    }

    #[test]
    fn single_noisy_symbol_rejected_by_region_check() {
        // One symbol at 2e-2 inside a frame averaging 2e-3: the edge fires
        // but the 10x contrast fails the 30x region validation.
        let bers = [2e-3, 3e-3, 2e-2, 2.5e-3, 2e-3, 3e-3];
        let h = hints_from_symbol_bers(&bers, 16);
        let v = CollisionDetector::default().detect(&h);
        assert!(!v.collision_detected, "single-symbol jitter misflagged");
    }

    #[test]
    fn confident_symbol_pairs_make_no_edges() {
        // 1e-9 vs 1e-6 is a 1000x ratio but far below min_delta: the
        // absolute floor must suppress it.
        let bers = [1e-9, 1e-6, 1e-9, 1e-7];
        let h = hints_from_symbol_bers(&bers, 8);
        let v = CollisionDetector::default().detect(&h);
        assert!(!v.collision_detected);
    }

    #[test]
    fn two_separate_bursts() {
        let bers = [1e-6, 0.3, 0.32, 0.31, 1e-6, 1e-6, 0.35, 0.3, 0.33, 1e-6];
        let h = hints_from_symbol_bers(&bers, 4);
        let v = CollisionDetector::default().detect(&h);
        assert_eq!(
            v.interfered,
            vec![false, true, true, true, false, false, true, true, true, false]
        );
    }

    #[test]
    fn two_symbol_burst_rejected_by_min_region() {
        let bers = [1e-6, 0.3, 0.32, 1e-6, 1e-6, 1e-6];
        let h = hints_from_symbol_bers(&bers, 8);
        let v = CollisionDetector::default().detect(&h);
        assert!(
            !v.collision_detected,
            "two-symbol burst is below min_region"
        );
    }

    #[test]
    fn one_symbol_burst_rejected_by_min_region() {
        // A single wrecked symbol inside a clean frame: decoder jitter,
        // not a collision (collisions overlap multiple symbols).
        let bers = [1e-6, 1e-6, 0.3, 1e-6, 1e-6, 1e-6];
        let h = hints_from_symbol_bers(&bers, 8);
        let v = CollisionDetector::default().detect(&h);
        assert!(!v.collision_detected, "single-symbol burst misflagged");
    }

    #[test]
    fn single_symbol_frame_never_detects() {
        let h = hints_from_symbol_bers(&[0.4], 4);
        let v = CollisionDetector::default().detect(&h);
        assert!(!v.collision_detected);
    }

    #[test]
    fn nearly_full_frame_collision_accepted() {
        // Only one clean symbol at the head: too few outside symbols to
        // validate against, so the span is accepted as-is.
        let bers = [1e-6, 0.3, 0.32, 0.31, 0.3, 0.29];
        let h = hints_from_symbol_bers(&bers, 8);
        let v = CollisionDetector::default().detect(&h);
        assert!(v.collision_detected);
        assert!(!v.interfered[0]);
        assert!(v.interfered[1..].iter().all(|&b| b));
    }

    #[test]
    fn custom_parameters_change_sensitivity() {
        let bers = [1e-4, 1e-4, 8e-4, 8e-4, 1e-4, 1e-4]; // 8x jump, tiny delta
        let h = hints_from_symbol_bers(&bers, 16);
        assert!(!CollisionDetector::default().detect(&h).collision_detected);
        let sensitive = CollisionDetector {
            edge_ratio: 5.0,
            min_delta: 5e-4,
            region_ratio: 4.0,
            min_region: 1,
        };
        assert!(sensitive.detect(&h).collision_detected);
    }
}
