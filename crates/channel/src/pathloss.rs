//! Large-scale attenuation trajectories.
//!
//! The paper's Figure 1 shows two superimposed effects on a walking trace:
//! gradual large-scale attenuation as the sender moves away, and multipath
//! fading on tens-of-milliseconds timescales. This module models the former;
//! [`crate::jakes`] models the latter.

use serde::{Deserialize, Serialize};

/// A deterministic large-scale attenuation profile: average received power
/// (in dB relative to the transmit power) as a function of time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Attenuation {
    /// Constant attenuation, e.g. a static link.
    Constant {
        /// Attenuation in dB (negative = loss).
        db: f64,
    },
    /// Linear-in-dB ramp between two instants, constant outside — a node
    /// walking away from (or towards) its receiver.
    RampDb {
        /// Ramp start time, seconds.
        t_start: f64,
        /// Attenuation at and before `t_start`, dB.
        db_start: f64,
        /// Ramp end time, seconds.
        t_end: f64,
        /// Attenuation at and after `t_end`, dB.
        db_end: f64,
    },
    /// Periodic sawtooth between two attenuation levels — a node pacing
    /// back and forth; used to build the alternating good/bad channel of
    /// the paper's Figure 15.
    SquareWave {
        /// Attenuation during the "good" half-period, dB.
        db_good: f64,
        /// Attenuation during the "bad" half-period, dB.
        db_bad: f64,
        /// Full period in seconds (half good, half bad).
        period: f64,
    },
}

impl Attenuation {
    /// No attenuation at all.
    pub const NONE: Attenuation = Attenuation::Constant { db: 0.0 };

    /// Attenuation in dB at time `t`.
    pub fn db_at(&self, t: f64) -> f64 {
        match *self {
            Attenuation::Constant { db } => db,
            Attenuation::RampDb {
                t_start,
                db_start,
                t_end,
                db_end,
            } => {
                if t <= t_start {
                    db_start
                } else if t >= t_end {
                    db_end
                } else {
                    let frac = (t - t_start) / (t_end - t_start);
                    db_start + frac * (db_end - db_start)
                }
            }
            Attenuation::SquareWave {
                db_good,
                db_bad,
                period,
            } => {
                let phase = t.rem_euclid(period);
                if phase < period / 2.0 {
                    db_good
                } else {
                    db_bad
                }
            }
        }
    }

    /// Linear *amplitude* scale factor at time `t` (`10^(db/20)`).
    pub fn amplitude_at(&self, t: f64) -> f64 {
        10f64.powf(self.db_at(t) / 20.0)
    }

    /// Linear power scale factor at time `t` (`10^(db/10)`).
    pub fn power_at(&self, t: f64) -> f64 {
        10f64.powf(self.db_at(t) / 10.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let a = Attenuation::Constant { db: -12.0 };
        for t in [0.0, 1.0, 1e6] {
            assert_eq!(a.db_at(t), -12.0);
        }
    }

    #[test]
    fn ramp_interpolates_linearly() {
        let a = Attenuation::RampDb {
            t_start: 1.0,
            db_start: 0.0,
            t_end: 11.0,
            db_end: -20.0,
        };
        assert_eq!(a.db_at(0.0), 0.0);
        assert_eq!(a.db_at(1.0), 0.0);
        assert!((a.db_at(6.0) + 10.0).abs() < 1e-12);
        assert_eq!(a.db_at(11.0), -20.0);
        assert_eq!(a.db_at(100.0), -20.0);
    }

    #[test]
    fn square_wave_alternates() {
        let a = Attenuation::SquareWave {
            db_good: 0.0,
            db_bad: -15.0,
            period: 2.0,
        };
        assert_eq!(a.db_at(0.1), 0.0);
        assert_eq!(a.db_at(0.99), 0.0);
        assert_eq!(a.db_at(1.01), -15.0);
        assert_eq!(a.db_at(1.99), -15.0);
        assert_eq!(a.db_at(2.1), 0.0); // periodic
        assert_eq!(a.db_at(-0.5), -15.0); // rem_euclid handles negatives
    }

    #[test]
    fn amplitude_and_power_consistent() {
        let a = Attenuation::Constant { db: -6.0 };
        let amp = a.amplitude_at(0.0);
        let pow = a.power_at(0.0);
        assert!((amp * amp - pow).abs() < 1e-12);
        assert!((pow - 0.2512).abs() < 1e-3);
    }
}
