//! The closed-form SNR→BER map: the workspace's fast analytic channel.
//!
//! Calibrated against this workspace's software PHY (see
//! `crates/trace/src/bin/calibrate.rs`), it turns an instantaneous SNR into
//! a per-rate bit error rate without running the OFDM/BCJR pipeline —
//! hundreds of times faster, which is what makes thousand-run sweeps and
//! the streaming multi-cell simulator (`softrate-net`) feasible. The
//! scenario engine's trace generator and the spatial network layer both
//! sample this map over the *real* Jakes fading envelope, so protocol
//! dynamics see realistic temporal correlation.

/// Per-rate minimum SNR (dB) at which a ~100-byte probe is essentially
/// error-free: BPSK 1/2, BPSK 3/4, QPSK 1/2, QPSK 3/4, QAM16 1/2,
/// QAM16 3/4.
pub const REQUIRED_SNR_DB: [f64; 6] = [4.5, 6.0, 7.5, 10.0, 12.5, 14.0];

/// Detection threshold in dB (matches `LinkConfig::detect_snr_db`): frame
/// detection by preamble correlation works below the decoding threshold.
pub const DETECT_SNR_DB: f64 = -3.0;

/// BER above which the short, separately CRC-protected link-layer header is
/// considered undecodable (no feedback possible).
pub const HEADER_FAIL_BER: f64 = 0.05;

/// Closed-form BER at `snr_db` for `rate_idx`: one decade per ~0.67 dB of
/// margin, anchored at 1e-6 when the margin is zero. Clamped to
/// `[1e-9, 0.4]`. The anchor makes [`REQUIRED_SNR_DB`] the lowest SNR at
/// which a full-size (1440 B) frame is "essentially guaranteed" in the
/// oracle's sense (success probability > 0.95).
pub fn analytic_ber(snr_db: f64, rate_idx: usize) -> f64 {
    let margin = snr_db - REQUIRED_SNR_DB[rate_idx.min(REQUIRED_SNR_DB.len() - 1)];
    10f64.powf(-(6.0 + 1.5 * margin)).clamp(1e-9, 0.4)
}

/// Success probability of a `frame_bits`-bit frame at bit error rate
/// `ber` under the independent-bit-error model — the one formula every
/// fate draw and oracle in the workspace must agree on.
pub fn frame_success_prob(ber: f64, frame_bits: usize) -> f64 {
    (1.0 - ber).powi(frame_bits as i32).clamp(0.0, 1.0)
}

/// Success probability of a `frame_bits`-bit frame at `snr_db` and
/// `rate_idx` under the independent-bit-error model.
pub fn analytic_frame_success(snr_db: f64, rate_idx: usize, frame_bits: usize) -> f64 {
    frame_success_prob(analytic_ber(snr_db, rate_idx), frame_bits)
}

/// The omniscient oracle over the analytic map: the highest rate whose
/// `frame_bits`-bit frame is essentially guaranteed (success probability
/// > 0.95) at `snr_db`; the most robust rate when none qualifies.
pub fn best_rate_for_snr(snr_db: f64, frame_bits: usize) -> usize {
    if snr_db < DETECT_SNR_DB {
        return 0;
    }
    let mut best = 0;
    for r in 0..REQUIRED_SNR_DB.len() {
        if analytic_ber(snr_db, r) < HEADER_FAIL_BER
            && analytic_frame_success(snr_db, r, frame_bits) > 0.95
        {
            best = r;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ber_curve_is_monotone_and_anchored() {
        #[allow(clippy::needless_range_loop)] // `r` is a rate index into two tables
        for r in 0..REQUIRED_SNR_DB.len() {
            assert!(analytic_ber(REQUIRED_SNR_DB[r], r) <= 1.0001e-6);
            assert!(analytic_ber(REQUIRED_SNR_DB[r] - 3.0, r) > 1e-3);
            let mut prev = f64::MAX;
            for k in 0..40 {
                let b = analytic_ber(k as f64, r);
                assert!(b <= prev);
                prev = b;
            }
        }
    }

    #[test]
    fn oracle_tracks_snr() {
        // Just above each rate's requirement, that rate is the best choice.
        for (r, &snr) in REQUIRED_SNR_DB.iter().enumerate() {
            assert_eq!(best_rate_for_snr(snr + 0.1, 11_520), r);
        }
        // Deep in the noise: fall back to the most robust rate.
        assert_eq!(best_rate_for_snr(-20.0, 11_520), 0);
        // Sky-high SNR: the top rate.
        assert_eq!(best_rate_for_snr(40.0, 11_520), 5);
    }

    #[test]
    fn success_probability_shapes() {
        assert!(analytic_frame_success(30.0, 5, 11_520) > 0.99);
        assert!(analytic_frame_success(5.0, 5, 11_520) < 1e-6);
    }
}
