//! The closed-form SNR→BER map: the workspace's fast analytic channel.
//!
//! Calibrated against this workspace's software PHY (see
//! `crates/trace/src/bin/calibrate.rs`), it turns an instantaneous SNR into
//! a per-rate bit error rate without running the OFDM/BCJR pipeline —
//! hundreds of times faster, which is what makes thousand-run sweeps and
//! the streaming multi-cell simulator (`softrate-net`) feasible. The
//! scenario engine's trace generator and the spatial network layer both
//! sample this map over the *real* Jakes fading envelope, so protocol
//! dynamics see realistic temporal correlation.

/// Per-rate minimum SNR (dB) at which a ~100-byte probe is essentially
/// error-free: BPSK 1/2, BPSK 3/4, QPSK 1/2, QPSK 3/4, QAM16 1/2,
/// QAM16 3/4.
pub const REQUIRED_SNR_DB: [f64; 6] = [4.5, 6.0, 7.5, 10.0, 12.5, 14.0];

/// Detection threshold in dB (matches `LinkConfig::detect_snr_db`): frame
/// detection by preamble correlation works below the decoding threshold.
pub const DETECT_SNR_DB: f64 = -3.0;

/// BER above which the short, separately CRC-protected link-layer header is
/// considered undecodable (no feedback possible).
pub const HEADER_FAIL_BER: f64 = 0.05;

/// Closed-form BER at `snr_db` for `rate_idx`: one decade per ~0.67 dB of
/// margin, anchored at 1e-6 when the margin is zero. Clamped to
/// `[1e-9, 0.4]`. The anchor makes [`REQUIRED_SNR_DB`] the lowest SNR at
/// which a full-size (1440 B) frame is "essentially guaranteed" in the
/// oracle's sense (success probability > 0.95).
pub fn analytic_ber(snr_db: f64, rate_idx: usize) -> f64 {
    let margin = snr_db - REQUIRED_SNR_DB[rate_idx.min(REQUIRED_SNR_DB.len() - 1)];
    10f64.powf(-(6.0 + 1.5 * margin)).clamp(1e-9, 0.4)
}

/// Success probability of a `frame_bits`-bit frame at bit error rate
/// `ber` under the independent-bit-error model — the one formula every
/// fate draw and oracle in the workspace must agree on.
pub fn frame_success_prob(ber: f64, frame_bits: usize) -> f64 {
    (1.0 - ber).powi(frame_bits as i32).clamp(0.0, 1.0)
}

/// Success probability of a `frame_bits`-bit frame at `snr_db` and
/// `rate_idx` under the independent-bit-error model.
pub fn analytic_frame_success(snr_db: f64, rate_idx: usize, frame_bits: usize) -> f64 {
    frame_success_prob(analytic_ber(snr_db, rate_idx), frame_bits)
}

/// The omniscient oracle over the analytic map: the highest rate whose
/// `frame_bits`-bit frame is essentially guaranteed (success probability
/// > 0.95) at `snr_db`; the most robust rate when none qualifies.
pub fn best_rate_for_snr(snr_db: f64, frame_bits: usize) -> usize {
    if snr_db < DETECT_SNR_DB {
        return 0;
    }
    let mut best = 0;
    for r in 0..REQUIRED_SNR_DB.len() {
        if analytic_ber(snr_db, r) < HEADER_FAIL_BER
            && analytic_frame_success(snr_db, r, frame_bits) > 0.95
        {
            best = r;
        }
    }
    best
}

/// Guard band, dB, around each oracle threshold inside which
/// [`OracleBands`] falls back to the exact kernel evaluation. Many orders
/// of magnitude above `powf`/`powi` rounding (a 1e-6 dB SNR step moves
/// the BER by ~3.5e-6 relative, against ~1e-15 evaluation error), and
/// many below any physically meaningful SNR difference.
const ORACLE_GUARD_DB: f64 = 1e-6;

/// The omniscient oracle as an exact step function: per-rate SNR bands
/// that decide `best_rate_for_snr`'s per-rate qualification test without
/// evaluating the BER/success kernels.
///
/// Rate `r` qualifies iff `analytic_ber < HEADER_FAIL_BER` **and**
/// `analytic_frame_success > 0.95` — jointly equivalent to
/// `ber < blim_r` with `blim_r = min(HEADER_FAIL_BER, 1 − 0.95^(1/bits))`,
/// which the monotone BER curve turns into an SNR threshold. `hi[r]` /
/// `lo[r]` are that threshold pushed out by [`ORACLE_GUARD_DB`] on each
/// side: at or above `hi[r]` the rate certainly qualifies, at or below
/// `lo[r]` it certainly does not, and between them (a two-microdecibel
/// sliver that essentially never sees a real SNR) the exact kernels
/// decide. Verdicts are therefore always identical to
/// [`best_rate_for_snr`] — pinned by tests and by the spatial goldens.
#[derive(Debug, Clone)]
pub struct OracleBands {
    frame_bits: usize,
    lo: [f64; REQUIRED_SNR_DB.len()],
    hi: [f64; REQUIRED_SNR_DB.len()],
}

impl OracleBands {
    /// Bands for frames of `frame_bits` bits.
    pub fn new(frame_bits: usize) -> Self {
        let mut lo = [f64::INFINITY; REQUIRED_SNR_DB.len()];
        let mut hi = [f64::INFINITY; REQUIRED_SNR_DB.len()];
        for (r, &req) in REQUIRED_SNR_DB.iter().enumerate() {
            // success > 0.95  ⟺  ber < 1 − 0.95^(1/bits).
            let ber_success = 1.0 - 0.95f64.powf(1.0 / frame_bits as f64);
            let blim = HEADER_FAIL_BER.min(ber_success);
            if blim <= 1e-9 {
                // The BER clamp floor already exceeds the limit: the rate
                // can never qualify (lo = hi = +inf keeps it that way).
                continue;
            }
            // Invert ber = 10^-(6 + 1.5·(snr − req)) at ber = blim.
            let snr_star = req + (-blim.log10() - 6.0) / 1.5;
            lo[r] = snr_star - ORACLE_GUARD_DB;
            hi[r] = snr_star + ORACLE_GUARD_DB;
        }
        OracleBands { frame_bits, lo, hi }
    }

    /// Identical to `best_rate_for_snr(snr_db, frame_bits)` for the
    /// configured frame size, resolved by threshold compares except
    /// inside the guard bands.
    pub fn best_rate(&self, snr_db: f64) -> usize {
        if snr_db < DETECT_SNR_DB {
            return 0;
        }
        let mut best = 0;
        for r in 0..REQUIRED_SNR_DB.len() {
            let qualifies = if snr_db >= self.hi[r] {
                true
            } else if snr_db <= self.lo[r] {
                false
            } else {
                analytic_ber(snr_db, r) < HEADER_FAIL_BER
                    && analytic_frame_success(snr_db, r, self.frame_bits) > 0.95
            };
            if qualifies {
                best = r;
            }
        }
        best
    }
}

/// Slot count of a [`FrameSuccessMemo`] (power of two; ~96 KiB).
const MEMO_SLOTS: usize = 4096;

/// One direct-mapped memo slot. `frame_bits == u64::MAX` marks an empty
/// slot (no real frame is that long).
#[derive(Debug, Clone, Copy)]
struct MemoSlot {
    snr_bits: u64,
    rate_idx: u32,
    frame_bits: u64,
    ber: f64,
    success: f64,
}

const EMPTY_SLOT: MemoSlot = MemoSlot {
    snr_bits: 0,
    rate_idx: 0,
    frame_bits: u64::MAX,
    ber: 0.0,
    success: 0.0,
};

/// A direct-mapped memo over [`analytic_ber`] + [`analytic_frame_success`],
/// keyed by the **exact** `(snr_db bits, rate_idx, frame_bits)` triple.
///
/// The analytic kernels are pure, so a hit returns the identical `f64`s a
/// fresh evaluation would — memoized and unmemoized callers are
/// bit-indistinguishable (the goldens prove it end to end). The win is on
/// links whose instantaneous SNR repeats exactly: static deployments with
/// zero-Doppler draws, and any pass that evaluates several rates at one
/// SNR (the omniscient oracle probes all six rates per attempt, and
/// repeated attempts inside one coherence-time plateau re-probe the same
/// values). Collisions simply overwrite (direct-mapped): correctness
/// never depends on a hit.
#[derive(Debug, Clone)]
pub struct FrameSuccessMemo {
    slots: Box<[MemoSlot]>,
}

impl Default for FrameSuccessMemo {
    fn default() -> Self {
        FrameSuccessMemo {
            slots: vec![EMPTY_SLOT; MEMO_SLOTS].into_boxed_slice(),
        }
    }
}

impl FrameSuccessMemo {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// `(analytic_ber, analytic_frame_success)` at the exact key,
    /// memoized.
    pub fn ber_and_success(
        &mut self,
        snr_db: f64,
        rate_idx: usize,
        frame_bits: usize,
    ) -> (f64, f64) {
        let snr_bits = snr_db.to_bits();
        // SplitMix64-style finalizer over the packed key.
        let mut h = snr_bits ^ (rate_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= (frame_bits as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 31;
        let slot = &mut self.slots[(h as usize) & (MEMO_SLOTS - 1)];
        if slot.snr_bits == snr_bits
            && slot.rate_idx == rate_idx as u32
            && slot.frame_bits == frame_bits as u64
        {
            return (slot.ber, slot.success);
        }
        let ber = analytic_ber(snr_db, rate_idx);
        let success = frame_success_prob(ber, frame_bits);
        *slot = MemoSlot {
            snr_bits,
            rate_idx: rate_idx as u32,
            frame_bits: frame_bits as u64,
            ber,
            success,
        };
        (ber, success)
    }

    /// Memoized [`analytic_frame_success`].
    pub fn success(&mut self, snr_db: f64, rate_idx: usize, frame_bits: usize) -> f64 {
        self.ber_and_success(snr_db, rate_idx, frame_bits).1
    }

    /// Memoized [`best_rate_for_snr`]: same comparisons over the same
    /// (memoized) kernel values, so the chosen rate is always identical.
    pub fn best_rate(&mut self, snr_db: f64, frame_bits: usize) -> usize {
        if snr_db < DETECT_SNR_DB {
            return 0;
        }
        let mut best = 0;
        for r in 0..REQUIRED_SNR_DB.len() {
            let (ber, success) = self.ber_and_success(snr_db, r, frame_bits);
            if ber < HEADER_FAIL_BER && success > 0.95 {
                best = r;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ber_curve_is_monotone_and_anchored() {
        #[allow(clippy::needless_range_loop)] // `r` is a rate index into two tables
        for r in 0..REQUIRED_SNR_DB.len() {
            assert!(analytic_ber(REQUIRED_SNR_DB[r], r) <= 1.0001e-6);
            assert!(analytic_ber(REQUIRED_SNR_DB[r] - 3.0, r) > 1e-3);
            let mut prev = f64::MAX;
            for k in 0..40 {
                let b = analytic_ber(k as f64, r);
                assert!(b <= prev);
                prev = b;
            }
        }
    }

    #[test]
    fn oracle_tracks_snr() {
        // Just above each rate's requirement, that rate is the best choice.
        for (r, &snr) in REQUIRED_SNR_DB.iter().enumerate() {
            assert_eq!(best_rate_for_snr(snr + 0.1, 11_520), r);
        }
        // Deep in the noise: fall back to the most robust rate.
        assert_eq!(best_rate_for_snr(-20.0, 11_520), 0);
        // Sky-high SNR: the top rate.
        assert_eq!(best_rate_for_snr(40.0, 11_520), 5);
    }

    #[test]
    fn success_probability_shapes() {
        assert!(analytic_frame_success(30.0, 5, 11_520) > 0.99);
        assert!(analytic_frame_success(5.0, 5, 11_520) < 1e-6);
    }

    #[test]
    fn memo_is_bit_identical_to_the_kernels() {
        let mut memo = FrameSuccessMemo::new();
        // Sweep enough keys to force slot collisions and re-fills, and
        // query each twice (miss then hit): every answer must equal the
        // unmemoized kernel bit-for-bit.
        for k in 0..5000 {
            let snr = -10.0 + (k % 700) as f64 * 0.0717;
            let r = k % REQUIRED_SNR_DB.len();
            let bits = [832, 11_520, 8000][k % 3];
            for _ in 0..2 {
                let (ber, p) = memo.ber_and_success(snr, r, bits);
                assert_eq!(ber.to_bits(), analytic_ber(snr, r).to_bits());
                assert_eq!(p.to_bits(), analytic_frame_success(snr, r, bits).to_bits());
                assert_eq!(memo.success(snr, r, bits).to_bits(), p.to_bits());
            }
        }
    }

    #[test]
    fn banded_oracle_matches_the_exact_oracle_everywhere() {
        for bits in [832usize, 8000, 11_520] {
            let bands = OracleBands::new(bits);
            // Dense sweep plus points straddling every band edge.
            let mut snrs: Vec<f64> = (0..4000).map(|k| -10.0 + k as f64 * 0.0127).collect();
            for &req in &REQUIRED_SNR_DB {
                for d in [-2e-6, -1e-6, 0.0, 1e-6, 2e-6] {
                    snrs.push(req + d);
                    snrs.push(req + 0.447 + d); // near snr*
                }
            }
            for &snr in &snrs {
                assert_eq!(
                    bands.best_rate(snr),
                    best_rate_for_snr(snr, bits),
                    "snr={snr} bits={bits}"
                );
            }
        }
    }

    #[test]
    fn memo_best_rate_matches_the_oracle() {
        let mut memo = FrameSuccessMemo::new();
        for k in 0..2000 {
            let snr = -8.0 + k as f64 * 0.0251;
            for bits in [832usize, 11_520] {
                assert_eq!(memo.best_rate(snr, bits), best_rate_for_snr(snr, bits));
            }
        }
    }
}
