//! The closed-form SNR→BER map: the workspace's fast analytic channel.
//!
//! Calibrated against this workspace's software PHY (see
//! `crates/trace/src/bin/calibrate.rs`), it turns an instantaneous SNR into
//! a per-rate bit error rate without running the OFDM/BCJR pipeline —
//! hundreds of times faster, which is what makes thousand-run sweeps and
//! the streaming multi-cell simulator (`softrate-net`) feasible. The
//! scenario engine's trace generator and the spatial network layer both
//! sample this map over the *real* Jakes fading envelope, so protocol
//! dynamics see realistic temporal correlation.

/// Per-rate minimum SNR (dB) at which a ~100-byte probe is essentially
/// error-free: BPSK 1/2, BPSK 3/4, QPSK 1/2, QPSK 3/4, QAM16 1/2,
/// QAM16 3/4.
pub const REQUIRED_SNR_DB: [f64; 6] = [4.5, 6.0, 7.5, 10.0, 12.5, 14.0];

/// Detection threshold in dB (matches `LinkConfig::detect_snr_db`): frame
/// detection by preamble correlation works below the decoding threshold.
pub const DETECT_SNR_DB: f64 = -3.0;

/// BER above which the short, separately CRC-protected link-layer header is
/// considered undecodable (no feedback possible).
pub const HEADER_FAIL_BER: f64 = 0.05;

/// Closed-form BER at `snr_db` for `rate_idx`: one decade per ~0.67 dB of
/// margin, anchored at 1e-6 when the margin is zero. Clamped to
/// `[1e-9, 0.4]`. The anchor makes [`REQUIRED_SNR_DB`] the lowest SNR at
/// which a full-size (1440 B) frame is "essentially guaranteed" in the
/// oracle's sense (success probability > 0.95).
pub fn analytic_ber(snr_db: f64, rate_idx: usize) -> f64 {
    let margin = snr_db - REQUIRED_SNR_DB[rate_idx.min(REQUIRED_SNR_DB.len() - 1)];
    10f64.powf(-(6.0 + 1.5 * margin)).clamp(1e-9, 0.4)
}

/// Success probability of a `frame_bits`-bit frame at bit error rate
/// `ber` under the independent-bit-error model — the one formula every
/// fate draw and oracle in the workspace must agree on.
pub fn frame_success_prob(ber: f64, frame_bits: usize) -> f64 {
    (1.0 - ber).powi(frame_bits as i32).clamp(0.0, 1.0)
}

/// Success probability of a `frame_bits`-bit frame at `snr_db` and
/// `rate_idx` under the independent-bit-error model.
pub fn analytic_frame_success(snr_db: f64, rate_idx: usize, frame_bits: usize) -> f64 {
    frame_success_prob(analytic_ber(snr_db, rate_idx), frame_bits)
}

/// Evaluates [`analytic_ber`] + [`frame_success_prob`] over parallel key
/// lanes in one coherent sweep: `out[i] = (ber, success)` for
/// `(snrs[i], rates[i], bits[i])`, bit-identical to the scalar calls
/// (each lane is an independent pure evaluation — no cross-lane
/// accumulation exists to reorder). Manually unrolled four wide so the
/// `powf`/`powi` chains of neighbouring lanes overlap.
pub fn ber_success_many(snrs: &[f64], rates: &[u32], bits: &[u64], out: &mut [(f64, f64)]) {
    assert!(snrs.len() == rates.len() && snrs.len() == bits.len() && snrs.len() == out.len());
    let n4 = snrs.len() - snrs.len() % 4;
    for i in (0..n4).step_by(4) {
        let mut ber4 = [0.0f64; 4];
        for l in 0..4 {
            ber4[l] = analytic_ber(snrs[i + l], rates[i + l] as usize);
        }
        for l in 0..4 {
            out[i + l] = (ber4[l], frame_success_prob(ber4[l], bits[i + l] as usize));
        }
    }
    for i in n4..snrs.len() {
        let ber = analytic_ber(snrs[i], rates[i] as usize);
        out[i] = (ber, frame_success_prob(ber, bits[i] as usize));
    }
}

/// The omniscient oracle over the analytic map: the highest rate whose
/// `frame_bits`-bit frame is essentially guaranteed (success probability
/// > 0.95) at `snr_db`; the most robust rate when none qualifies.
pub fn best_rate_for_snr(snr_db: f64, frame_bits: usize) -> usize {
    if snr_db < DETECT_SNR_DB {
        return 0;
    }
    let mut best = 0;
    for r in 0..REQUIRED_SNR_DB.len() {
        if analytic_ber(snr_db, r) < HEADER_FAIL_BER
            && analytic_frame_success(snr_db, r, frame_bits) > 0.95
        {
            best = r;
        }
    }
    best
}

/// Guard band, dB, around each oracle threshold inside which
/// [`OracleBands`] falls back to the exact kernel evaluation. Many orders
/// of magnitude above `powf`/`powi` rounding (a 1e-6 dB SNR step moves
/// the BER by ~3.5e-6 relative, against ~1e-15 evaluation error), and
/// many below any physically meaningful SNR difference.
const ORACLE_GUARD_DB: f64 = 1e-6;

/// The omniscient oracle as an exact step function: per-rate SNR bands
/// that decide `best_rate_for_snr`'s per-rate qualification test without
/// evaluating the BER/success kernels.
///
/// Rate `r` qualifies iff `analytic_ber < HEADER_FAIL_BER` **and**
/// `analytic_frame_success > 0.95` — jointly equivalent to
/// `ber < blim_r` with `blim_r = min(HEADER_FAIL_BER, 1 − 0.95^(1/bits))`,
/// which the monotone BER curve turns into an SNR threshold. `hi[r]` /
/// `lo[r]` are that threshold pushed out by [`ORACLE_GUARD_DB`] on each
/// side: at or above `hi[r]` the rate certainly qualifies, at or below
/// `lo[r]` it certainly does not, and between them (a two-microdecibel
/// sliver that essentially never sees a real SNR) the exact kernels
/// decide. Verdicts are therefore always identical to
/// [`best_rate_for_snr`] — pinned by tests and by the spatial goldens.
#[derive(Debug, Clone)]
pub struct OracleBands {
    frame_bits: usize,
    lo: [f64; REQUIRED_SNR_DB.len()],
    hi: [f64; REQUIRED_SNR_DB.len()],
}

impl OracleBands {
    /// Bands for frames of `frame_bits` bits.
    pub fn new(frame_bits: usize) -> Self {
        let mut lo = [f64::INFINITY; REQUIRED_SNR_DB.len()];
        let mut hi = [f64::INFINITY; REQUIRED_SNR_DB.len()];
        for (r, &req) in REQUIRED_SNR_DB.iter().enumerate() {
            // success > 0.95  ⟺  ber < 1 − 0.95^(1/bits).
            let ber_success = 1.0 - 0.95f64.powf(1.0 / frame_bits as f64);
            let blim = HEADER_FAIL_BER.min(ber_success);
            if blim <= 1e-9 {
                // The BER clamp floor already exceeds the limit: the rate
                // can never qualify (lo = hi = +inf keeps it that way).
                continue;
            }
            // Invert ber = 10^-(6 + 1.5·(snr − req)) at ber = blim.
            let snr_star = req + (-blim.log10() - 6.0) / 1.5;
            lo[r] = snr_star - ORACLE_GUARD_DB;
            hi[r] = snr_star + ORACLE_GUARD_DB;
        }
        OracleBands { frame_bits, lo, hi }
    }

    /// Identical to `best_rate_for_snr(snr_db, frame_bits)` for the
    /// configured frame size, resolved by threshold compares except
    /// inside the guard bands.
    pub fn best_rate(&self, snr_db: f64) -> usize {
        if snr_db < DETECT_SNR_DB {
            return 0;
        }
        let mut best = 0;
        for r in 0..REQUIRED_SNR_DB.len() {
            let qualifies = if snr_db >= self.hi[r] {
                true
            } else if snr_db <= self.lo[r] {
                false
            } else {
                analytic_ber(snr_db, r) < HEADER_FAIL_BER
                    && analytic_frame_success(snr_db, r, self.frame_bits) > 0.95
            };
            if qualifies {
                best = r;
            }
        }
        best
    }
}

/// Slot count of a [`FrameSuccessMemo`] (power of two; ~96 KiB).
const MEMO_SLOTS: usize = 4096;

/// One direct-mapped memo slot. `frame_bits == u64::MAX` marks an empty
/// slot (no real frame is that long).
#[derive(Debug, Clone, Copy)]
struct MemoSlot {
    snr_bits: u64,
    rate_idx: u32,
    frame_bits: u64,
    ber: f64,
    success: f64,
}

const EMPTY_SLOT: MemoSlot = MemoSlot {
    snr_bits: 0,
    rate_idx: 0,
    frame_bits: u64::MAX,
    ber: 0.0,
    success: 0.0,
};

/// Direct-mapped slot for a key: SplitMix64-style finalizer over the
/// packed `(snr bits, rate, frame bits)` triple.
#[inline]
fn slot_index(snr_bits: u64, rate_idx: u32, frame_bits: u64) -> usize {
    let mut h = snr_bits ^ (rate_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= frame_bits.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 31;
    (h as usize) & (MEMO_SLOTS - 1)
}

/// A direct-mapped memo over [`analytic_ber`] + [`analytic_frame_success`],
/// keyed by the **exact** `(snr_db bits, rate_idx, frame_bits)` triple.
///
/// The analytic kernels are pure, so a hit returns the identical `f64`s a
/// fresh evaluation would — memoized and unmemoized callers are
/// bit-indistinguishable (the goldens prove it end to end). The win is on
/// links whose instantaneous SNR repeats exactly: static deployments with
/// zero-Doppler draws, and any pass that evaluates several rates at one
/// SNR (the omniscient oracle probes all six rates per attempt, and
/// repeated attempts inside one coherence-time plateau re-probe the same
/// values). Collisions simply overwrite (direct-mapped): correctness
/// never depends on a hit.
#[derive(Debug, Clone)]
pub struct FrameSuccessMemo {
    slots: Box<[MemoSlot]>,
    /// Reused miss-lane scratch for [`FrameSuccessMemo::eval_many`]:
    /// input indices of the probes that missed, plus their key lanes and
    /// kernel results, so a batch miss allocates nothing in steady state.
    miss_idx: Vec<u32>,
    miss_snr: Vec<f64>,
    miss_rate: Vec<u32>,
    miss_bits: Vec<u64>,
    miss_out: Vec<(f64, f64)>,
}

impl Default for FrameSuccessMemo {
    fn default() -> Self {
        FrameSuccessMemo {
            slots: vec![EMPTY_SLOT; MEMO_SLOTS].into_boxed_slice(),
            miss_idx: Vec::new(),
            miss_snr: Vec::new(),
            miss_rate: Vec::new(),
            miss_bits: Vec::new(),
            miss_out: Vec::new(),
        }
    }
}

impl FrameSuccessMemo {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// `(analytic_ber, analytic_frame_success)` at the exact key,
    /// memoized.
    pub fn ber_and_success(
        &mut self,
        snr_db: f64,
        rate_idx: usize,
        frame_bits: usize,
    ) -> (f64, f64) {
        let snr_bits = snr_db.to_bits();
        let slot = &mut self.slots[slot_index(snr_bits, rate_idx as u32, frame_bits as u64)];
        if slot.snr_bits == snr_bits
            && slot.rate_idx == rate_idx as u32
            && slot.frame_bits == frame_bits as u64
        {
            return (slot.ber, slot.success);
        }
        let ber = analytic_ber(snr_db, rate_idx);
        let success = frame_success_prob(ber, frame_bits);
        *slot = MemoSlot {
            snr_bits,
            rate_idx: rate_idx as u32,
            frame_bits: frame_bits as u64,
            ber,
            success,
        };
        (ber, success)
    }

    /// Slice-filling [`FrameSuccessMemo::ber_and_success`] over parallel
    /// key lanes: `out[i] = (ber, success)` for
    /// `(snrs[i], rates[i], bits[i])`.
    ///
    /// Every returned pair is bit-identical to the scalar call — hits
    /// return stored kernel values, and the misses are swept through the
    /// batched kernel ([`ber_success_many`]), whose lanes are pure
    /// per-key evaluations. The misses install in input order, so a
    /// later duplicate or colliding key sees exactly what a scalar loop
    /// would leave behind. (A batch probe can hit an entry a scalar loop
    /// would have just evicted; the extra hit changes which keys are
    /// cached afterwards — only ever a speed difference, since the memo
    /// is value-transparent by construction.)
    pub fn eval_many(&mut self, snrs: &[f64], rates: &[u32], bits: &[u64], out: &mut [(f64, f64)]) {
        assert!(snrs.len() == rates.len() && snrs.len() == bits.len() && snrs.len() == out.len());
        let mut miss_idx = std::mem::take(&mut self.miss_idx);
        let mut miss_snr = std::mem::take(&mut self.miss_snr);
        let mut miss_rate = std::mem::take(&mut self.miss_rate);
        let mut miss_bits = std::mem::take(&mut self.miss_bits);
        let mut miss_out = std::mem::take(&mut self.miss_out);
        miss_idx.clear();
        miss_snr.clear();
        miss_rate.clear();
        miss_bits.clear();
        // Probe pass: fill hits, collect miss lanes contiguously.
        for i in 0..snrs.len() {
            let snr_bits = snrs[i].to_bits();
            let slot = &self.slots[slot_index(snr_bits, rates[i], bits[i])];
            if slot.snr_bits == snr_bits && slot.rate_idx == rates[i] && slot.frame_bits == bits[i]
            {
                out[i] = (slot.ber, slot.success);
            } else {
                miss_idx.push(i as u32);
                miss_snr.push(snrs[i]);
                miss_rate.push(rates[i]);
                miss_bits.push(bits[i]);
            }
        }
        // One coherent kernel sweep over the misses, then install in
        // input order.
        miss_out.resize(miss_idx.len(), (0.0, 0.0));
        ber_success_many(&miss_snr, &miss_rate, &miss_bits, &mut miss_out);
        for (k, &i) in miss_idx.iter().enumerate() {
            let (ber, success) = miss_out[k];
            let snr_bits = miss_snr[k].to_bits();
            self.slots[slot_index(snr_bits, miss_rate[k], miss_bits[k])] = MemoSlot {
                snr_bits,
                rate_idx: miss_rate[k],
                frame_bits: miss_bits[k],
                ber,
                success,
            };
            out[i as usize] = (ber, success);
        }
        self.miss_idx = miss_idx;
        self.miss_snr = miss_snr;
        self.miss_rate = miss_rate;
        self.miss_bits = miss_bits;
        self.miss_out = miss_out;
    }

    /// Memoized [`analytic_frame_success`].
    pub fn success(&mut self, snr_db: f64, rate_idx: usize, frame_bits: usize) -> f64 {
        self.ber_and_success(snr_db, rate_idx, frame_bits).1
    }

    /// Memoized [`best_rate_for_snr`]: same comparisons over the same
    /// (memoized) kernel values, so the chosen rate is always identical.
    pub fn best_rate(&mut self, snr_db: f64, frame_bits: usize) -> usize {
        if snr_db < DETECT_SNR_DB {
            return 0;
        }
        let mut best = 0;
        for r in 0..REQUIRED_SNR_DB.len() {
            let (ber, success) = self.ber_and_success(snr_db, r, frame_bits);
            if ber < HEADER_FAIL_BER && success > 0.95 {
                best = r;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ber_curve_is_monotone_and_anchored() {
        #[allow(clippy::needless_range_loop)] // `r` is a rate index into two tables
        for r in 0..REQUIRED_SNR_DB.len() {
            assert!(analytic_ber(REQUIRED_SNR_DB[r], r) <= 1.0001e-6);
            assert!(analytic_ber(REQUIRED_SNR_DB[r] - 3.0, r) > 1e-3);
            let mut prev = f64::MAX;
            for k in 0..40 {
                let b = analytic_ber(k as f64, r);
                assert!(b <= prev);
                prev = b;
            }
        }
    }

    #[test]
    fn oracle_tracks_snr() {
        // Just above each rate's requirement, that rate is the best choice.
        for (r, &snr) in REQUIRED_SNR_DB.iter().enumerate() {
            assert_eq!(best_rate_for_snr(snr + 0.1, 11_520), r);
        }
        // Deep in the noise: fall back to the most robust rate.
        assert_eq!(best_rate_for_snr(-20.0, 11_520), 0);
        // Sky-high SNR: the top rate.
        assert_eq!(best_rate_for_snr(40.0, 11_520), 5);
    }

    #[test]
    fn success_probability_shapes() {
        assert!(analytic_frame_success(30.0, 5, 11_520) > 0.99);
        assert!(analytic_frame_success(5.0, 5, 11_520) < 1e-6);
    }

    #[test]
    fn memo_is_bit_identical_to_the_kernels() {
        let mut memo = FrameSuccessMemo::new();
        // Sweep enough keys to force slot collisions and re-fills, and
        // query each twice (miss then hit): every answer must equal the
        // unmemoized kernel bit-for-bit.
        for k in 0..5000 {
            let snr = -10.0 + (k % 700) as f64 * 0.0717;
            let r = k % REQUIRED_SNR_DB.len();
            let bits = [832, 11_520, 8000][k % 3];
            for _ in 0..2 {
                let (ber, p) = memo.ber_and_success(snr, r, bits);
                assert_eq!(ber.to_bits(), analytic_ber(snr, r).to_bits());
                assert_eq!(p.to_bits(), analytic_frame_success(snr, r, bits).to_bits());
                assert_eq!(memo.success(snr, r, bits).to_bits(), p.to_bits());
            }
        }
    }

    #[test]
    fn banded_oracle_matches_the_exact_oracle_everywhere() {
        for bits in [832usize, 8000, 11_520] {
            let bands = OracleBands::new(bits);
            // Dense sweep plus points straddling every band edge.
            let mut snrs: Vec<f64> = (0..4000).map(|k| -10.0 + k as f64 * 0.0127).collect();
            for &req in &REQUIRED_SNR_DB {
                for d in [-2e-6, -1e-6, 0.0, 1e-6, 2e-6] {
                    snrs.push(req + d);
                    snrs.push(req + 0.447 + d); // near snr*
                }
            }
            for &snr in &snrs {
                assert_eq!(
                    bands.best_rate(snr),
                    best_rate_for_snr(snr, bits),
                    "snr={snr} bits={bits}"
                );
            }
        }
    }

    #[test]
    fn batched_kernel_matches_scalar_bit_for_bit() {
        // Lengths covering the 4-wide body and every remainder shape.
        for n in [0usize, 1, 3, 4, 5, 8, 17] {
            let snrs: Vec<f64> = (0..n).map(|k| -8.0 + k as f64 * 1.73).collect();
            let rates: Vec<u32> = (0..n).map(|k| (k % 6) as u32).collect();
            let bits: Vec<u64> = (0..n).map(|k| [832u64, 11_520, 8000][k % 3]).collect();
            let mut out = vec![(0.0, 0.0); n];
            ber_success_many(&snrs, &rates, &bits, &mut out);
            for i in 0..n {
                let ber = analytic_ber(snrs[i], rates[i] as usize);
                assert_eq!(out[i].0.to_bits(), ber.to_bits());
                assert_eq!(
                    out[i].1.to_bits(),
                    frame_success_prob(ber, bits[i] as usize).to_bits()
                );
            }
        }
    }

    #[test]
    fn eval_many_matches_scalar_memo_including_collisions() {
        let mut memo = FrameSuccessMemo::new();
        // Mixed batches with repeats (duplicate keys inside one batch)
        // and enough distinct keys to force slot collisions.
        for round in 0..40 {
            let n = 1 + (round * 7) % 23;
            let snrs: Vec<f64> = (0..n)
                .map(|k| -10.0 + ((round * 31 + k * 17) % 700) as f64 * 0.0717)
                .collect();
            let rates: Vec<u32> = (0..n).map(|k| ((round + k) % 6) as u32).collect();
            let bits: Vec<u64> = (0..n).map(|k| [832u64, 11_520][(round + k) % 2]).collect();
            let mut out = vec![(0.0, 0.0); n];
            memo.eval_many(&snrs, &rates, &bits, &mut out);
            for i in 0..n {
                let ber = analytic_ber(snrs[i], rates[i] as usize);
                assert_eq!(out[i].0.to_bits(), ber.to_bits(), "round {round} lane {i}");
                assert_eq!(
                    out[i].1.to_bits(),
                    frame_success_prob(ber, bits[i] as usize).to_bits()
                );
                // The scalar path after the batch still agrees (the batch
                // left only kernel-true values behind).
                let (b2, s2) = memo.ber_and_success(snrs[i], rates[i] as usize, bits[i] as usize);
                assert_eq!(b2.to_bits(), out[i].0.to_bits());
                assert_eq!(s2.to_bits(), out[i].1.to_bits());
            }
        }
    }

    #[test]
    fn memo_best_rate_matches_the_oracle() {
        let mut memo = FrameSuccessMemo::new();
        for k in 0..2000 {
            let snr = -8.0 + k as f64 * 0.0251;
            for bits in [832usize, 11_520] {
                assert_eq!(memo.best_rate(snr, bits), best_rate_for_snr(snr, bits));
            }
        }
    }
}
