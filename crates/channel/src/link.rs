//! The end-to-end link pipeline: frame in, channel-distorted reception out.
//!
//! [`Link::transmit`] pushes a [`TxFrame`] through attenuation, fading,
//! interference and noise, applies the detection model (preamble/postamble
//! SINR thresholds), and runs the full receiver. The returned
//! [`LinkObservation`] carries everything the experiments need: the decoded
//! frame with its SoftPHY LLRs, the preamble SNR estimate, ground-truth BER
//! and per-symbol interference mask, and the detection outcomes.

use softrate_phy::bits::{bit_error_rate, deterministic_payload};
use softrate_phy::complex::Complex;
use softrate_phy::frame::{build_frame, receive_frame, FrameConfig, FrameHeader, RxFrame, TxFrame};
use softrate_phy::modulation::DemapMethod;
use softrate_phy::ofdm::Mode;
use softrate_phy::rates::BitRate;
use softrate_phy::snr::NUM_PREAMBLE_SYMBOLS;

use crate::interference::Interferer;
use crate::model::{ChannelInstance, FadingSpec};
use crate::noise::{db_to_linear, linear_to_db, NoiseSource};
use crate::pathloss::Attenuation;

/// Configuration of one unidirectional wireless link.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// OFDM operating mode.
    pub mode: Mode,
    /// Transmit power in dB relative to unit symbol energy.
    pub tx_power_db: f64,
    /// Noise floor N0 in dB relative to unit symbol energy.
    pub noise_power_db: f64,
    /// Small-scale fading model.
    pub fading: FadingSpec,
    /// Large-scale attenuation profile.
    pub attenuation: Attenuation,
    /// Soft demapper flavour.
    pub demap: DemapMethod,
    /// Demapper LLR clip.
    pub llr_clip: f64,
    /// Minimum preamble (or postamble) SINR in dB for detection. Frame
    /// detection by correlation works below the decoding threshold, hence
    /// the default of -3 dB.
    pub detect_snr_db: f64,
    /// Master seed for this link's fading and noise.
    pub seed: u64,
}

impl LinkConfig {
    /// A clean static link at roughly 10 dB SNR in `mode`.
    pub fn new(mode: Mode) -> Self {
        LinkConfig {
            mode,
            tx_power_db: 0.0,
            noise_power_db: -10.0,
            fading: FadingSpec::None,
            attenuation: Attenuation::NONE,
            demap: DemapMethod::Exact,
            llr_clip: softrate_phy::frame::DEFAULT_LLR_CLIP,
            detect_snr_db: -3.0,
            seed: 0,
        }
    }

    /// Mean SNR in dB implied by power, attenuation (at `t`) and noise.
    pub fn mean_snr_db(&self, t: f64) -> f64 {
        self.tx_power_db + self.attenuation.db_at(t) - self.noise_power_db
    }
}

/// An instantiated link: channel realization plus noise stream.
#[derive(Debug, Clone)]
pub struct Link {
    cfg: LinkConfig,
    channel: ChannelInstance,
    noise: NoiseSource,
    probe_count: u64,
}

/// Everything observed about one frame transmission over a [`Link`].
#[derive(Debug, Clone)]
pub struct LinkObservation {
    /// Transmission start time (seconds).
    pub t: f64,
    /// Whether the preamble cleared the detection SINR threshold.
    pub preamble_detected: bool,
    /// Whether the postamble cleared the threshold (always `false` when the
    /// frame carried none).
    pub postamble_detected: bool,
    /// Receiver output, present only when the preamble was detected.
    pub rx: Option<RxFrame>,
    /// Ground-truth payload BER (decoded bits vs transmitted bits); `None`
    /// when the payload was never decoded (no detection / header loss).
    pub true_ber: Option<f64>,
    /// Ground-truth mean SNR over the whole frame in dB (fading included,
    /// interference excluded).
    pub true_frame_snr_db: f64,
    /// Ground-truth SINR during the preamble in dB.
    pub preamble_sinr_db: f64,
    /// Ground truth: which payload OFDM symbols overlapped interference.
    pub interfered_symbols: Vec<bool>,
    /// Whether any interferer overlapped any part of the frame.
    pub any_interference: bool,
    /// On-air duration of the frame in seconds.
    pub airtime: f64,
}

impl LinkObservation {
    /// True when the link layer could send feedback for this frame: the
    /// preamble was detected and the (separately CRC-protected) header
    /// decoded (paper §3).
    pub fn feedback_possible(&self) -> bool {
        self.preamble_detected && self.rx.as_ref().is_some_and(|r| r.header.is_some())
    }

    /// True when the frame was received fully intact.
    pub fn delivered(&self) -> bool {
        self.rx.as_ref().is_some_and(|r| r.crc_ok)
    }
}

impl Link {
    /// Instantiates the link's channel and noise processes.
    pub fn new(cfg: LinkConfig) -> Self {
        let channel =
            ChannelInstance::new(cfg.fading, cfg.attenuation, cfg.mode.n_used(), cfg.seed);
        let noise = NoiseSource::new(cfg.seed ^ 0x4E4F_4953_45FF);
        Link {
            cfg,
            channel,
            noise,
            probe_count: 0,
        }
    }

    /// The link configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.cfg
    }

    /// The instantiated channel (for ground-truth inspection).
    pub fn channel(&self) -> &ChannelInstance {
        &self.channel
    }

    /// Transmits `tx` starting at absolute time `t` with the given active
    /// interferers, and attempts reception.
    pub fn transmit(
        &mut self,
        tx: &TxFrame,
        t: f64,
        interferers: &[Interferer],
    ) -> LinkObservation {
        let mode = self.cfg.mode;
        let t_sym = mode.symbol_time();
        let n_used = mode.n_used();
        let tx_amp = db_to_linear(self.cfg.tx_power_db).sqrt();
        let n0 = db_to_linear(self.cfg.noise_power_db);
        let n_symbols = tx.symbols.len();

        let mut rx_symbols: Vec<Vec<Complex>> = Vec::with_capacity(n_symbols);
        let mut sig_power = vec![0.0f64; n_symbols];
        let mut int_power = vec![0.0f64; n_symbols];
        let mut gains = vec![Complex::ZERO; n_used];
        let mut int_gains = vec![Complex::ZERO; n_used];

        for (s, sym) in tx.symbols.iter().enumerate() {
            let ts = t + s as f64 * t_sym;
            let mean_chan_power = self.channel.gains_at(ts, &mut gains);
            sig_power[s] = mean_chan_power * tx_amp * tx_amp;

            let mut out: Vec<Complex> = sym
                .iter()
                .zip(gains.iter())
                .map(|(&x, &h)| h * x * tx_amp + self.noise.sample_scaled(n0))
                .collect();

            for intf in interferers {
                if let Some(isym) = intf.symbol_at(s) {
                    let ip = intf.power_linear();
                    let iamp = ip.sqrt();
                    let mean_ip = intf.channel.gains_at(ts, &mut int_gains);
                    int_power[s] += mean_ip * ip;
                    for (o, (&x, &h)) in out.iter_mut().zip(isym.iter().zip(int_gains.iter())) {
                        *o += h * x * iamp;
                    }
                }
            }
            rx_symbols.push(out);
        }

        // --- Detection model -------------------------------------------------
        let sinr_db_over = |range: std::ops::Range<usize>| -> f64 {
            let mut sig = 0.0;
            let mut imp = 0.0;
            let len = range.len().max(1);
            for s in range {
                sig += sig_power[s];
                imp += int_power[s];
            }
            linear_to_db((sig / len as f64) / (n0 + imp / len as f64))
        };

        let preamble_sinr_db = sinr_db_over(0..NUM_PREAMBLE_SYMBOLS);
        let preamble_detected = preamble_sinr_db >= self.cfg.detect_snr_db;

        let postamble_detected = if tx.postamble {
            let sinr = sinr_db_over(n_symbols - 1..n_symbols);
            sinr >= self.cfg.detect_snr_db
        } else {
            false
        };

        // Ground-truth frame SNR (interference excluded): what an oracle
        // would call the channel quality for rate selection.
        let mean_sig = sig_power.iter().sum::<f64>() / n_symbols as f64;
        let true_frame_snr_db = linear_to_db(mean_sig / n0);

        let pay_start = tx.payload_start();
        let interfered_symbols: Vec<bool> = (0..tx.n_payload_symbols)
            .map(|s| int_power[pay_start + s] > 0.0)
            .collect();
        let any_interference = int_power.iter().any(|&p| p > 0.0);

        let rx = if preamble_detected {
            Some(receive_frame(
                &rx_symbols,
                &mode,
                self.cfg.demap,
                self.cfg.llr_clip,
            ))
        } else {
            None
        };

        let true_ber = rx.as_ref().and_then(|r| {
            (r.info_bits.len() == tx.info_bits.len() && !r.info_bits.is_empty())
                .then(|| bit_error_rate(&tx.info_bits, &r.info_bits))
        });

        LinkObservation {
            t,
            preamble_detected,
            postamble_detected,
            rx,
            true_ber,
            true_frame_snr_db,
            preamble_sinr_db,
            interfered_symbols,
            any_interference,
            airtime: mode.airtime(n_symbols),
        }
    }

    /// Builds and transmits a probe frame with a deterministic payload:
    /// the workhorse of the trace generators.
    pub fn probe(
        &mut self,
        rate: BitRate,
        payload_len: usize,
        t: f64,
        interferers: &[Interferer],
        postamble: bool,
    ) -> (TxFrame, LinkObservation) {
        let mut cfg = FrameConfig::new(self.cfg.mode, rate);
        cfg.postamble = postamble;
        cfg.demap = self.cfg.demap;
        cfg.llr_clip = self.cfg.llr_clip;
        let seq = (self.probe_count & 0xFFFF) as u16;
        let payload_seed = self.cfg.seed ^ self.probe_count.wrapping_mul(0x5851_F42D_4C95_7F2D);
        self.probe_count += 1;
        let header = FrameHeader {
            src: 1,
            dst: 2,
            rate_idx: 0,
            payload_len: 0,
            seq,
            flags: 0,
        };
        let tx = build_frame(
            header,
            &deterministic_payload(payload_seed, payload_len),
            &cfg,
        );
        let obs = self.transmit(&tx, t, interferers);
        (tx, obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softrate_phy::ofdm::SIMULATION;
    use softrate_phy::rates::PAPER_RATES;

    fn clean_link(snr_db: f64, seed: u64) -> Link {
        let mut cfg = LinkConfig::new(SIMULATION);
        cfg.tx_power_db = 0.0;
        cfg.noise_power_db = -snr_db;
        cfg.seed = seed;
        Link::new(cfg)
    }

    #[test]
    fn high_snr_delivers_all_rates() {
        let mut link = clean_link(30.0, 1);
        for (i, &rate) in PAPER_RATES.iter().enumerate() {
            let (tx, obs) = link.probe(rate, 200, i as f64 * 0.01, &[], false);
            assert!(obs.preamble_detected, "{rate}");
            assert!(obs.delivered(), "{rate} not delivered at 30 dB");
            assert_eq!(obs.true_ber, Some(0.0), "{rate}");
            assert_eq!(tx.info_bits.len(), (200 + 4) * 8);
        }
    }

    #[test]
    fn very_low_snr_fails_detection() {
        let mut link = clean_link(-10.0, 2);
        let (_, obs) = link.probe(PAPER_RATES[0], 100, 0.0, &[], false);
        assert!(!obs.preamble_detected);
        assert!(obs.rx.is_none());
        assert!(obs.true_ber.is_none());
    }

    #[test]
    fn snr_estimate_tracks_configured_snr() {
        for snr in [5.0, 10.0, 20.0] {
            let mut link = clean_link(snr, 3);
            let (_, obs) = link.probe(PAPER_RATES[0], 100, 0.0, &[], false);
            let est = obs.rx.unwrap().snr_db;
            assert!((est - snr).abs() < 2.0, "configured {snr}, estimated {est}");
        }
    }

    #[test]
    fn mid_snr_high_rate_has_errors_low_rate_clean() {
        // Around 8 dB: BPSK 1/2 should sail through, QAM16 3/4 should break.
        let mut link = clean_link(8.0, 4);
        let (_, lo) = link.probe(PAPER_RATES[0], 200, 0.0, &[], false);
        let (_, hi) = link.probe(PAPER_RATES[5], 200, 0.01, &[], false);
        assert!(lo.delivered(), "BPSK 1/2 must survive 8 dB");
        assert!(!hi.delivered(), "QAM16 3/4 must fail at 8 dB");
        assert!(hi.true_ber.unwrap_or(0.0) > 1e-3);
    }

    #[test]
    fn strong_interference_corrupts_frame() {
        let mut link = clean_link(25.0, 5);
        let (tx0, _) = link.probe(PAPER_RATES[2], 200, 0.0, &[], false);
        let n = tx0.n_symbols();
        let intf = Interferer {
            symbols: crate::interference::interferer_frame(&SIMULATION, PAPER_RATES[2], 200, 99),
            start_symbol: (n / 2) as isize,
            power_db: 5.0,
            channel: ChannelInstance::new(
                FadingSpec::None,
                Attenuation::NONE,
                SIMULATION.n_used(),
                77,
            ),
        };
        let (_, obs) = link.probe(PAPER_RATES[2], 200, 1.0, &[intf], false);
        assert!(obs.preamble_detected, "preamble region was clean");
        assert!(obs.any_interference);
        assert!(!obs.delivered(), "mid-frame collision must corrupt payload");
        assert!(obs.interfered_symbols.iter().any(|&b| b));
        assert!(!obs.interfered_symbols.iter().all(|&b| b));
    }

    #[test]
    fn interference_over_preamble_causes_silent_loss() {
        let mut link = clean_link(15.0, 6);
        let intf = Interferer {
            symbols: crate::interference::interferer_frame(&SIMULATION, PAPER_RATES[0], 400, 98),
            start_symbol: -2,
            power_db: 15.0,
            channel: ChannelInstance::new(
                FadingSpec::None,
                Attenuation::NONE,
                SIMULATION.n_used(),
                76,
            ),
        };
        let (_, obs) = link.probe(PAPER_RATES[0], 100, 0.0, &[intf], false);
        assert!(
            !obs.preamble_detected,
            "equal-power interferer over preamble must kill detection"
        );
    }

    #[test]
    fn postamble_detected_when_interference_ends_early() {
        let mut link = clean_link(15.0, 7);
        // Interferer covers the preamble but ends before the frame does.
        let intf = Interferer {
            symbols: vec![vec![Complex::ONE; SIMULATION.n_used()]; 4],
            start_symbol: -1,
            power_db: 10.0,
            channel: ChannelInstance::new(
                FadingSpec::None,
                Attenuation::NONE,
                SIMULATION.n_used(),
                75,
            ),
        };
        let (_, obs) = link.probe(PAPER_RATES[0], 100, 0.0, &[intf], true);
        assert!(!obs.preamble_detected);
        assert!(
            obs.postamble_detected,
            "postamble after interference end must be detectable"
        );
    }

    #[test]
    fn fading_link_ber_varies_over_time() {
        let mut cfg = LinkConfig::new(SIMULATION);
        cfg.noise_power_db = -12.0;
        cfg.fading = FadingSpec::Flat { doppler_hz: 40.0 };
        cfg.seed = 8;
        let mut link = Link::new(cfg);
        let mut bers = Vec::new();
        for k in 0..40 {
            let (_, obs) = link.probe(PAPER_RATES[3], 100, k as f64 * 0.005, &[], false);
            if let Some(b) = obs.true_ber {
                bers.push(b);
            }
        }
        assert!(!bers.is_empty());
        let min = bers.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = bers.iter().cloned().fold(0.0, f64::max);
        assert!(
            max > min,
            "fading must modulate BER over time (min {min}, max {max})"
        );
    }

    #[test]
    fn feedback_possible_requires_header() {
        let mut link = clean_link(30.0, 9);
        let (_, obs) = link.probe(PAPER_RATES[1], 50, 0.0, &[], false);
        assert!(obs.feedback_possible());
    }
}
