//! # softrate-channel — wireless channel simulation
//!
//! The propagation substrate of the SoftRate reproduction: everything
//! between the transmitter's OFDM symbols and the receiver's.
//!
//! * [`noise`] — seeded complex AWGN.
//! * [`analytic`] — the calibrated closed-form SNR→BER map (the fast
//!   alternative to running the PHY, used by the scenario engine and the
//!   spatial network layer).
//! * [`jakes`] — Rayleigh fading via the Zheng–Xiao sum-of-sinusoids model,
//!   the same model the paper's GNU Radio channel simulator uses (§4).
//! * [`pathloss`] — large-scale attenuation trajectories (static, walking
//!   ramp, alternating square wave).
//! * [`model`] — flat and frequency-selective channel instances.
//! * [`interference`] — overlapping frames from a second sender.
//! * [`link`] — the end-to-end pipeline: transmit a frame at a point in
//!   time, apply channel + interference + noise, run detection and the full
//!   receiver, and report ground truth alongside what the receiver saw.
//!
//! Every random process is seeded; the channel gain is a pure function of
//! absolute time, so the *same* fading realization can be sampled for every
//! bit rate — the property the paper's trace methodology depends on (§6.1).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analytic;
pub mod interference;
pub mod jakes;
pub mod link;
pub mod model;
pub mod noise;
pub mod pathloss;

/// Convenient glob-import of the most common items.
pub mod prelude {
    pub use crate::analytic::{analytic_ber, best_rate_for_snr, REQUIRED_SNR_DB};
    pub use crate::interference::{interferer_frame, Interferer};
    pub use crate::jakes::JakesFading;
    pub use crate::link::{Link, LinkConfig, LinkObservation};
    pub use crate::model::{ChannelInstance, FadingSpec};
    pub use crate::noise::{db_to_linear, linear_to_db, NoiseSource};
    pub use crate::pathloss::Attenuation;
}
