//! Channel models: composition of small-scale fading ([`crate::jakes`]) and
//! large-scale attenuation ([`crate::pathloss`]) into a per-symbol,
//! per-subcarrier complex gain.

use serde::{Deserialize, Serialize};
use softrate_phy::complex::Complex;

use crate::jakes::JakesFading;
use crate::pathloss::Attenuation;

/// Small-scale fading specification (what to instantiate).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FadingSpec {
    /// No fading: `h = 1` (a pure AWGN link).
    None,
    /// Flat (frequency-nonselective) Rayleigh fading: a single Jakes
    /// process applied to every subcarrier. Appropriate when the delay
    /// spread is negligible versus the symbol time.
    Flat {
        /// Maximum Doppler shift in Hz.
        doppler_hz: f64,
    },
    /// Frequency-selective Rayleigh fading: `n_taps` independent Jakes
    /// processes at consecutive sample delays with exponentially decaying
    /// power. Adjacent subcarriers fade together; distant ones
    /// independently — the regime that motivates the 802.11 frequency
    /// interleaver (paper §4).
    Multipath {
        /// Maximum Doppler shift in Hz.
        doppler_hz: f64,
        /// Number of channel taps (>= 1).
        n_taps: usize,
        /// Power decay per tap in dB.
        decay_db_per_tap: f64,
    },
}

#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // one instance per link; Box would add an indirection to the hot gain() path
enum Inner {
    Static,
    Flat(JakesFading),
    Multipath {
        /// `(amplitude, process)` per tap.
        taps: Vec<(f64, JakesFading)>,
        /// FFT length used for the tap-to-subcarrier transform.
        n_fft: usize,
    },
}

/// An instantiated channel: deterministic complex gain as a function of
/// `(time, subcarrier)`, including large-scale attenuation.
#[derive(Debug, Clone)]
pub struct ChannelInstance {
    inner: Inner,
    attenuation: Attenuation,
}

impl ChannelInstance {
    /// Instantiates `spec` over `n_subcarriers` used subcarriers with the
    /// given attenuation profile. All randomness derives from `seed`.
    pub fn new(
        spec: FadingSpec,
        attenuation: Attenuation,
        n_subcarriers: usize,
        seed: u64,
    ) -> Self {
        let inner = match spec {
            FadingSpec::None => Inner::Static,
            FadingSpec::Flat { doppler_hz } => Inner::Flat(JakesFading::new(doppler_hz, seed)),
            FadingSpec::Multipath {
                doppler_hz,
                n_taps,
                decay_db_per_tap,
            } => {
                assert!(n_taps >= 1);
                // Exponential power-delay profile, normalized to unit total
                // power.
                let mut powers: Vec<f64> = (0..n_taps)
                    .map(|l| 10f64.powf(-(l as f64) * decay_db_per_tap / 10.0))
                    .collect();
                let total: f64 = powers.iter().sum();
                for p in &mut powers {
                    *p /= total;
                }
                let taps = powers
                    .into_iter()
                    .enumerate()
                    .map(|(l, p)| {
                        (
                            p.sqrt(),
                            JakesFading::new(doppler_hz, seed.wrapping_add(l as u64 * 0x9E3779B9)),
                        )
                    })
                    .collect();
                Inner::Multipath {
                    taps,
                    n_fft: n_subcarriers,
                }
            }
        };
        ChannelInstance { inner, attenuation }
    }

    /// Complex gain at absolute time `t` on used subcarrier `k`, including
    /// the large-scale attenuation amplitude.
    pub fn gain(&self, t: f64, k: usize) -> Complex {
        let amp = self.attenuation.amplitude_at(t);
        match &self.inner {
            Inner::Static => Complex::new(amp, 0.0),
            Inner::Flat(f) => f.gain(t).scale(amp),
            Inner::Multipath { taps, n_fft } => {
                let mut h = Complex::ZERO;
                for (l, (a, f)) in taps.iter().enumerate() {
                    let phase =
                        -2.0 * std::f64::consts::PI * (k as f64) * (l as f64) / *n_fft as f64;
                    h += f.gain(t).scale(*a) * Complex::cis(phase);
                }
                h.scale(amp)
            }
        }
    }

    /// Fills `out[k]` with the gain on every subcarrier at time `t` and
    /// returns the mean channel power `mean_k |H_k|^2` (ground truth used
    /// for SINR accounting).
    pub fn gains_at(&self, t: f64, out: &mut [Complex]) -> f64 {
        match &self.inner {
            // Flat cases: one evaluation covers all subcarriers.
            Inner::Static | Inner::Flat(_) => {
                let h = self.gain(t, 0);
                let p = h.norm_sqr();
                for o in out.iter_mut() {
                    *o = h;
                }
                p
            }
            Inner::Multipath { .. } => {
                let mut acc = 0.0;
                for (k, o) in out.iter_mut().enumerate() {
                    *o = self.gain(t, k);
                    acc += o.norm_sqr();
                }
                acc / out.len().max(1) as f64
            }
        }
    }

    /// The attenuation profile in effect.
    pub fn attenuation(&self) -> &Attenuation {
        &self.attenuation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_channel_is_unit_gain() {
        let c = ChannelInstance::new(FadingSpec::None, Attenuation::NONE, 8, 0);
        for k in 0..8 {
            let g = c.gain(3.7, k);
            assert!((g - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn attenuation_scales_power() {
        let c = ChannelInstance::new(FadingSpec::None, Attenuation::Constant { db: -20.0 }, 4, 0);
        let g = c.gain(0.0, 0);
        assert!((g.norm_sqr() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn flat_fading_identical_across_subcarriers() {
        let c = ChannelInstance::new(
            FadingSpec::Flat { doppler_hz: 100.0 },
            Attenuation::NONE,
            16,
            3,
        );
        let g0 = c.gain(0.42, 0);
        for k in 1..16 {
            assert_eq!(c.gain(0.42, k), g0);
        }
    }

    #[test]
    fn multipath_varies_across_subcarriers() {
        let c = ChannelInstance::new(
            FadingSpec::Multipath {
                doppler_hz: 10.0,
                n_taps: 4,
                decay_db_per_tap: 3.0,
            },
            Attenuation::NONE,
            64,
            5,
        );
        let g0 = c.gain(0.0, 0);
        let g32 = c.gain(0.0, 32);
        assert!((g0 - g32).abs() > 1e-6, "distant subcarriers must differ");
        // Adjacent subcarriers are strongly correlated.
        let g1 = c.gain(0.0, 1);
        assert!((g0 - g1).abs() < (g0 - g32).abs());
    }

    #[test]
    fn multipath_mean_power_is_unity() {
        // Average over many seeds: E[|H_k|^2] = sum of tap powers = 1.
        let mut acc = 0.0;
        let n = 300;
        for seed in 0..n {
            let c = ChannelInstance::new(
                FadingSpec::Multipath {
                    doppler_hz: 50.0,
                    n_taps: 3,
                    decay_db_per_tap: 3.0,
                },
                Attenuation::NONE,
                32,
                seed,
            );
            let mut out = vec![Complex::ZERO; 32];
            acc += c.gains_at(0.1, &mut out);
        }
        let mean = acc / n as f64;
        assert!((mean - 1.0).abs() < 0.08, "mean power {mean}");
    }

    #[test]
    fn gains_at_matches_gain() {
        let c = ChannelInstance::new(
            FadingSpec::Multipath {
                doppler_hz: 25.0,
                n_taps: 2,
                decay_db_per_tap: 6.0,
            },
            Attenuation::Constant { db: -3.0 },
            16,
            9,
        );
        let mut out = vec![Complex::ZERO; 16];
        c.gains_at(1.5, &mut out);
        for (k, o) in out.iter().enumerate() {
            assert_eq!(*o, c.gain(1.5, k));
        }
    }
}
