//! Rayleigh fading via the Zheng–Xiao sum-of-sinusoids Jakes simulator.
//!
//! This is the exact model the paper's GNU Radio channel simulator uses
//! (§4, reference [26]: Zheng & Xiao, "Simulation Models With Correct
//! Statistical Properties for Rayleigh Fading Channels", IEEE Trans.
//! Communications 2003). The channel gain is a function of absolute time, so
//! the *same fading process can be sampled for every bit rate* — the
//! cross-rate consistency the paper's trace methodology requires (§6.1).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use softrate_phy::complex::Complex;

use std::f64::consts::PI;

/// Number of sinusoids per quadrature component. Zheng–Xiao converges to
/// Rayleigh statistics quickly; 16 is a customary choice.
const NUM_SINUSOIDS: usize = 16;

/// A unit-mean-power Rayleigh fading process parameterised by Doppler
/// spread. Deterministic given `(seed)`; random-access in time.
///
/// Coherence time is roughly `0.4 / doppler_hz` (paper footnote 2): 40 Hz
/// Doppler ~ walking (10 ms coherence), 4 kHz ~ train speeds (100 us).
#[derive(Debug, Clone)]
pub struct JakesFading {
    doppler_hz: f64,
    /// Preinterleaved `(angular rate, phase)` pairs: entry `2n` is the
    /// in-phase sinusoid `(wi_n, phi_n)`, entry `2n+1` the quadrature
    /// `(wq_n, psi_n)`. One flat array keeps [`JakesFading::gain`] a
    /// single fused pass over contiguous memory instead of four parallel
    /// arrays; the per-component accumulation order is unchanged, so
    /// gains are bit-identical to the split layout.
    wp: [(f64, f64); 2 * NUM_SINUSOIDS],
    amp: f64,
}

impl JakesFading {
    /// Creates a fading process with the given maximum Doppler shift.
    ///
    /// `doppler_hz == 0` degenerates to a constant (but random, Rayleigh
    /// distributed) gain — a static channel draw.
    pub fn new(doppler_hz: f64, seed: u64) -> Self {
        assert!(doppler_hz >= 0.0);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x4A4B_4553_0001);
        let theta: f64 = rng.gen_range(-PI..PI);
        let mut wp = [(0.0, 0.0); 2 * NUM_SINUSOIDS];
        for n in 0..NUM_SINUSOIDS {
            // Zheng–Xiao arrival angles: alpha_n = (2 pi n - pi + theta) / 4M.
            let alpha = (2.0 * PI * (n as f64 + 1.0) - PI + theta) / (4.0 * NUM_SINUSOIDS as f64);
            let wi = 2.0 * PI * doppler_hz * alpha.cos();
            let wq = 2.0 * PI * doppler_hz * alpha.sin();
            // RNG draw order (phi_n then psi_n per sinusoid) is part of
            // the seeded contract — keep it.
            let phi = rng.gen_range(-PI..PI);
            let psi = rng.gen_range(-PI..PI);
            wp[2 * n] = (wi, phi);
            wp[2 * n + 1] = (wq, psi);
        }
        // sqrt(2/M) per component gives E[h_I^2] = E[h_Q^2] = 1; a further
        // 1/sqrt(2) normalizes total mean power E[|h|^2] to 1.
        let amp = (2.0 / NUM_SINUSOIDS as f64).sqrt() / 2f64.sqrt();
        JakesFading {
            doppler_hz,
            wp,
            amp,
        }
    }

    /// The Doppler spread this process was built with.
    pub fn doppler_hz(&self) -> f64 {
        self.doppler_hz
    }

    /// Approximate channel coherence time, `0.4 / f_d` (paper footnote 2).
    /// Infinite for a static process.
    pub fn coherence_time(&self) -> f64 {
        if self.doppler_hz == 0.0 {
            f64::INFINITY
        } else {
            0.4 / self.doppler_hz
        }
    }

    /// Samples the complex channel gain at absolute time `t` (seconds).
    pub fn gain(&self, t: f64) -> Complex {
        // One fused pass over the interleaved pairs: both quadratures
        // accumulate in the original per-component order (even entries →
        // `hi`, odd → `hq`), so the sums are bit-identical to the
        // dual-loop formulation this replaced.
        let mut hi = 0.0;
        let mut hq = 0.0;
        for pair in self.wp.chunks_exact(2) {
            hi += (pair[0].0 * t + pair[0].1).cos();
            hq += (pair[1].0 * t + pair[1].1).cos();
        }
        Complex::new(hi * self.amp, hq * self.amp)
    }

    /// Samples the gain at every time in `ts`, filling `out` lane for
    /// lane: `out[i] = self.gain(ts[i])` bit for bit.
    ///
    /// Times are processed four at a time with four independent
    /// accumulator chains (ILP across lanes); within each lane the
    /// sinusoid pairs accumulate in exactly [`JakesFading::gain`]'s
    /// order, so every lane's sum is the scalar sum — never a re-split
    /// of one time's accumulation, which would change the FP rounding.
    pub fn gain_many(&self, ts: &[f64], out: &mut [Complex]) {
        assert_eq!(ts.len(), out.len());
        let mut tc = ts.chunks_exact(4);
        let mut oc = out.chunks_exact_mut(4);
        for (t4, o4) in (&mut tc).zip(&mut oc) {
            let mut hi = [0.0f64; 4];
            let mut hq = [0.0f64; 4];
            for pair in self.wp.chunks_exact(2) {
                for l in 0..4 {
                    hi[l] += (pair[0].0 * t4[l] + pair[0].1).cos();
                    hq[l] += (pair[1].0 * t4[l] + pair[1].1).cos();
                }
            }
            for l in 0..4 {
                o4[l] = Complex::new(hi[l] * self.amp, hq[l] * self.amp);
            }
        }
        for (t, o) in tc.remainder().iter().zip(oc.into_remainder()) {
            *o = self.gain(*t);
        }
    }

    /// Samples four *distinct* processes at four times in one pass:
    /// `gain_x4(ps, ts)[l] == ps[l].gain(ts[l])` bit for bit.
    ///
    /// The per-station envelope prewarm needs exactly this shape — same
    /// tick, different links — where [`JakesFading::gain_many`] (one
    /// process, many times) does not apply. Four independent accumulator
    /// chains walk the four sinusoid tables in lockstep; each lane keeps
    /// the scalar accumulation order.
    pub fn gain_x4(ps: [&JakesFading; 4], ts: [f64; 4]) -> [Complex; 4] {
        let mut hi = [0.0f64; 4];
        let mut hq = [0.0f64; 4];
        for k in 0..NUM_SINUSOIDS {
            for l in 0..4 {
                let (wi, phi) = ps[l].wp[2 * k];
                let (wq, psi) = ps[l].wp[2 * k + 1];
                hi[l] += (wi * ts[l] + phi).cos();
                hq[l] += (wq * ts[l] + psi).cos();
            }
        }
        let mut out = [Complex::new(0.0, 0.0); 4];
        for l in 0..4 {
            out[l] = Complex::new(hi[l] * ps[l].amp, hq[l] * ps[l].amp);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_power_is_unity() {
        // Average |h|^2 over many independent processes and times.
        let mut acc = 0.0;
        let n_proc = 200;
        let n_t = 50;
        for seed in 0..n_proc {
            let f = JakesFading::new(100.0, seed);
            for k in 0..n_t {
                acc += f.gain(k as f64 * 0.0137).norm_sqr();
            }
        }
        let mean = acc / (n_proc * n_t) as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean power {mean}");
    }

    #[test]
    fn envelope_is_rayleigh_like() {
        // For Rayleigh fading with unit mean power, P(|h|^2 < 0.1) ~ 9.5 %,
        // P(|h|^2 < 1) ~ 63.2 %. Check within loose tolerances.
        let mut below_01 = 0usize;
        let mut below_1 = 0usize;
        let mut total = 0usize;
        for seed in 0..400 {
            let f = JakesFading::new(200.0, seed);
            for k in 0..25 {
                let p = f.gain(k as f64 * 0.0211).norm_sqr();
                if p < 0.1 {
                    below_01 += 1;
                }
                if p < 1.0 {
                    below_1 += 1;
                }
                total += 1;
            }
        }
        let f01 = below_01 as f64 / total as f64;
        let f1 = below_1 as f64 / total as f64;
        assert!((f01 - 0.095).abs() < 0.03, "P(<0.1) = {f01}");
        assert!((f1 - 0.632).abs() < 0.05, "P(<1) = {f1}");
    }

    #[test]
    fn deterministic_in_seed_and_time() {
        let a = JakesFading::new(40.0, 5);
        let b = JakesFading::new(40.0, 5);
        for k in 0..20 {
            let t = k as f64 * 0.003;
            assert_eq!(a.gain(t), b.gain(t));
        }
    }

    #[test]
    fn zero_doppler_is_constant() {
        let f = JakesFading::new(0.0, 11);
        let h0 = f.gain(0.0);
        for k in 1..10 {
            let h = f.gain(k as f64 * 1.7);
            assert!((h - h0).abs() < 1e-12);
        }
    }

    #[test]
    fn decorrelates_beyond_coherence_time() {
        // Autocorrelation at lag >> coherence time should be far below the
        // zero-lag value; at lag << coherence time it should be close.
        let doppler = 100.0;
        let n = 400;
        let mut rho_short = 0.0;
        let mut rho_long = 0.0;
        let mut power = 0.0;
        for seed in 0..n {
            let f = JakesFading::new(doppler, seed as u64);
            let h0 = f.gain(0.5);
            power += h0.norm_sqr();
            rho_short += (h0 * f.gain(0.5 + 0.0002).conj()).re; // lag 0.2 ms
            rho_long += (h0 * f.gain(0.5 + 0.05).conj()).re; // lag 50 ms
        }
        assert!(rho_short / power > 0.9, "short-lag correlation too low");
        assert!(
            rho_long.abs() / power < 0.2,
            "long-lag correlation too high"
        );
    }

    #[test]
    fn higher_doppler_fades_faster() {
        // Count deep-fade crossings over a fixed window; the faster process
        // must fade at least as often.
        let count_fades = |doppler: f64| {
            let f = JakesFading::new(doppler, 3);
            let mut fades = 0;
            let mut in_fade = false;
            for k in 0..20_000 {
                let p = f.gain(k as f64 * 5e-5).norm_sqr();
                if p < 0.1 && !in_fade {
                    fades += 1;
                    in_fade = true;
                } else if p > 0.3 {
                    in_fade = false;
                }
            }
            fades
        };
        let slow = count_fades(40.0);
        let fast = count_fades(400.0);
        assert!(fast > 2 * slow, "slow {slow} fast {fast}");
    }

    #[test]
    fn gain_many_is_bit_identical_to_scalar() {
        for seed in [0u64, 7, 91] {
            for doppler in [0.0, 2.0, 400.0] {
                let f = JakesFading::new(doppler, seed);
                // Lengths exercising the 4-wide body and every remainder.
                for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 13] {
                    let ts: Vec<f64> = (0..n).map(|k| k as f64 * 0.00173 - 0.4).collect();
                    let mut out = vec![Complex::new(0.0, 0.0); n];
                    f.gain_many(&ts, &mut out);
                    for (t, o) in ts.iter().zip(&out) {
                        let s = f.gain(*t);
                        assert_eq!(o.re.to_bits(), s.re.to_bits());
                        assert_eq!(o.im.to_bits(), s.im.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn gain_x4_is_bit_identical_to_scalar() {
        let ps: Vec<JakesFading> = (0..4)
            .map(|s| JakesFading::new(40.0 + s as f64, s))
            .collect();
        let refs = [&ps[0], &ps[1], &ps[2], &ps[3]];
        for k in 0..50 {
            let ts = [
                k as f64 * 0.003,
                k as f64 * 0.005 + 0.1,
                k as f64 * 0.007 - 0.2,
                k as f64 * 0.011,
            ];
            let g = JakesFading::gain_x4(refs, ts);
            for l in 0..4 {
                let s = refs[l].gain(ts[l]);
                assert_eq!(g[l].re.to_bits(), s.re.to_bits(), "lane {l}");
                assert_eq!(g[l].im.to_bits(), s.im.to_bits(), "lane {l}");
            }
        }
    }

    #[test]
    fn coherence_time_formula() {
        assert!((JakesFading::new(40.0, 0).coherence_time() - 0.01).abs() < 1e-12);
        assert_eq!(JakesFading::new(0.0, 0).coherence_time(), f64::INFINITY);
    }
}
