//! Interference: a second transmitter whose frame overlaps the victim's in
//! time at the receiver.
//!
//! The paper's interference experiments (§5.3, Table 4 "static
//! (interference)") transmit a sender and an interferer simultaneously with
//! ~one-packet-time random jitter, sweeping the interferer's relative power.
//! This module builds the interferer's transmitted symbols and positions
//! them relative to the victim frame; [`crate::link`] adds them into the
//! received samples through the interferer's own channel.

use softrate_phy::bits::deterministic_payload;
use softrate_phy::complex::Complex;
use softrate_phy::frame::{build_frame, FrameConfig, FrameHeader};
use softrate_phy::ofdm::Mode;
use softrate_phy::rates::BitRate;

use crate::model::ChannelInstance;

/// An active interferer during one victim-frame reception.
#[derive(Debug, Clone)]
pub struct Interferer {
    /// The interferer's transmitted OFDM symbols.
    pub symbols: Vec<Vec<Complex>>,
    /// Offset of the interferer's first symbol relative to the victim
    /// frame's first symbol (negative: interferer started earlier).
    pub start_symbol: isize,
    /// Received interferer power in dB relative to unit symbol energy
    /// (i.e. relative to the victim at 0 dB attenuation).
    pub power_db: f64,
    /// The interferer-to-receiver channel.
    pub channel: ChannelInstance,
}

impl Interferer {
    /// The interferer's transmitted symbol overlapping victim symbol `s`,
    /// if any.
    pub fn symbol_at(&self, s: usize) -> Option<&[Complex]> {
        let idx = s as isize - self.start_symbol;
        if idx < 0 {
            return None;
        }
        self.symbols.get(idx as usize).map(|v| v.as_slice())
    }

    /// Linear received power scale.
    pub fn power_linear(&self) -> f64 {
        10f64.powf(self.power_db / 10.0)
    }

    /// Whether the interferer overlaps any victim symbol in
    /// `0..n_victim_symbols`.
    pub fn overlaps(&self, n_victim_symbols: usize) -> bool {
        let end = self.start_symbol + self.symbols.len() as isize;
        self.start_symbol < n_victim_symbols as isize && end > 0
    }
}

/// Builds a realistic interferer waveform: a complete frame (preamble,
/// header, payload) with a pseudo-random payload, exactly what a colliding
/// 802.11 sender would emit.
pub fn interferer_frame(
    mode: &Mode,
    rate: BitRate,
    payload_len: usize,
    seed: u64,
) -> Vec<Vec<Complex>> {
    let cfg = FrameConfig::new(*mode, rate);
    let header = FrameHeader {
        src: 0xEEEE,
        dst: 0xFFFF,
        rate_idx: 0,
        payload_len: 0,
        seq: (seed & 0xFFFF) as u16,
        flags: 0,
    };
    build_frame(
        header,
        &deterministic_payload(seed ^ 0x1F2E_3D4C, payload_len),
        &cfg,
    )
    .symbols
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FadingSpec;
    use crate::pathloss::Attenuation;
    use softrate_phy::ofdm::SIMULATION;
    use softrate_phy::rates::PAPER_RATES;

    fn test_interferer(start: isize, n_sym: usize) -> Interferer {
        let symbols = vec![vec![Complex::ONE; SIMULATION.n_used()]; n_sym];
        Interferer {
            symbols,
            start_symbol: start,
            power_db: 0.0,
            channel: ChannelInstance::new(
                FadingSpec::None,
                Attenuation::NONE,
                SIMULATION.n_used(),
                0,
            ),
        }
    }

    #[test]
    fn symbol_alignment() {
        let i = test_interferer(3, 4); // occupies victim symbols 3..7
        assert!(i.symbol_at(0).is_none());
        assert!(i.symbol_at(2).is_none());
        assert!(i.symbol_at(3).is_some());
        assert!(i.symbol_at(6).is_some());
        assert!(i.symbol_at(7).is_none());
    }

    #[test]
    fn negative_start_clips_head() {
        let i = test_interferer(-2, 4); // interferer symbols 2,3 overlap victim 0,1
        assert!(i.symbol_at(0).is_some());
        assert!(i.symbol_at(1).is_some());
        assert!(i.symbol_at(2).is_none());
    }

    #[test]
    fn overlap_detection() {
        assert!(test_interferer(0, 4).overlaps(10));
        assert!(test_interferer(9, 4).overlaps(10));
        assert!(!test_interferer(10, 4).overlaps(10));
        assert!(test_interferer(-3, 4).overlaps(10));
        assert!(!test_interferer(-4, 4).overlaps(10));
    }

    #[test]
    fn power_conversion() {
        let mut i = test_interferer(0, 1);
        i.power_db = -10.0;
        assert!((i.power_linear() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn interferer_frame_has_frame_structure() {
        let sym = interferer_frame(&SIMULATION, PAPER_RATES[2], 100, 7);
        // preamble + header + payload symbols, each of n_used subcarriers
        assert!(sym.len() > 3);
        assert!(sym.iter().all(|s| s.len() == SIMULATION.n_used()));
        // deterministic in seed
        let again = interferer_frame(&SIMULATION, PAPER_RATES[2], 100, 7);
        assert_eq!(sym.len(), again.len());
        assert_eq!(sym[3][0], again[3][0]);
    }
}
