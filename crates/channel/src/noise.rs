//! Seeded complex Gaussian noise generation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use softrate_phy::complex::Complex;

/// A deterministic complex white Gaussian noise source.
///
/// Every stochastic component in this workspace takes an explicit seed so
/// experiments are reproducible bit-for-bit (DESIGN.md §5).
#[derive(Debug, Clone)]
pub struct NoiseSource {
    rng: SmallRng,
}

impl NoiseSource {
    /// Creates a noise source from a seed.
    pub fn new(seed: u64) -> Self {
        NoiseSource {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// One standard complex Gaussian sample: `CN(0, 1)` —
    /// `E[|n|^2] = 1`, independent real/imaginary parts of variance 1/2.
    pub fn sample(&mut self) -> Complex {
        // Box-Muller transform.
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let r = (-u1.ln()).sqrt(); // variance 1/2 per component
        let t = 2.0 * std::f64::consts::PI * u2;
        Complex::new(r * t.cos(), r * t.sin())
    }

    /// One sample of `CN(0, n0)` (total power `n0`).
    pub fn sample_scaled(&mut self, n0: f64) -> Complex {
        self.sample().scale(n0.sqrt())
    }

    /// A real standard Gaussian.
    pub fn sample_real(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// A uniform value in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen_range(0.0..1.0)
    }
}

/// Converts a power in dB to the linear scale.
#[inline]
pub fn db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a linear power to dB.
#[inline]
pub fn linear_to_db(p: f64) -> f64 {
    10.0 * p.max(1e-300).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_power_matches_request() {
        let mut src = NoiseSource::new(1);
        let n = 200_000;
        let p: f64 = (0..n)
            .map(|_| src.sample_scaled(0.25).norm_sqr())
            .sum::<f64>()
            / n as f64;
        assert!((p - 0.25).abs() < 0.01, "measured power {p}");
    }

    #[test]
    fn noise_components_are_balanced() {
        let mut src = NoiseSource::new(2);
        let n = 100_000;
        let (mut pr, mut pi) = (0.0, 0.0);
        for _ in 0..n {
            let s = src.sample();
            pr += s.re * s.re;
            pi += s.im * s.im;
        }
        assert!((pr / n as f64 - 0.5).abs() < 0.02);
        assert!((pi / n as f64 - 0.5).abs() < 0.02);
    }

    #[test]
    fn noise_mean_is_zero() {
        let mut src = NoiseSource::new(3);
        let n = 100_000;
        let mut acc = Complex::ZERO;
        for _ in 0..n {
            acc += src.sample();
        }
        assert!(acc.abs() / (n as f64) < 0.01);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = NoiseSource::new(7);
        let mut b = NoiseSource::new(7);
        for _ in 0..100 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = NoiseSource::new(7);
        let mut b = NoiseSource::new(8);
        let same = (0..100).filter(|_| a.sample() == b.sample()).count();
        assert!(same < 5);
    }

    #[test]
    fn db_conversions_roundtrip() {
        for db in [-30.0, -3.0, 0.0, 10.0, 25.5] {
            assert!((linear_to_db(db_to_linear(db)) - db).abs() < 1e-9);
        }
        assert!((db_to_linear(3.0103) - 2.0).abs() < 1e-3);
    }
}
