//! Zero-cost-when-off telemetry for the SoftRate simulators.
//!
//! The paper's central claim (§6) is *diagnostic*: richer per-frame
//! information lets a rate adapter attribute losses to collision vs.
//! channel fading and react correctly. This crate makes that attribution a
//! first-class simulator output instead of something inferred from one
//! aggregate `RunReport` per run. It has three pillars:
//!
//! 1. **Time-series metrics** — per-station counters and gauges sampled on
//!    a configurable interval (goodput, retries, current rate, SNR, queue
//!    depth, cwnd/RTO, handoffs) plus log-bucketed HDR-style histograms
//!    for MAC access delay, per-frame airtime, and TCP RTT, emitted as
//!    deterministic JSONL.
//! 2. **Frame-lifecycle tracing** — structured records following a frame
//!    from enqueue → carrier-sense deferral → transmission → fate →
//!    retry/drop, filterable by station and time window, backed by a
//!    bounded ring-buffer "flight recorder" that dumps on anomaly
//!    (goodput collapse, retry storm).
//! 3. **Loss attribution** — every failed attempt tagged collision /
//!    fading / interference-capture at the point the fate is decided,
//!    aggregated per station per interval (the paper's §6 loss-vs-fading
//!    analysis).
//! 4. **The rate-decision ledger** — one row per rate-adaptation decision
//!    (old/new rate, trigger class, SNR/BER input, adapter-specific
//!    reason code), recorded by adapters through the `DecisionCtx` seam
//!    and drained by the MAC engine, so "why did the adapter pick rate r
//!    at time t" is a first-class question (see DESIGN.md §10).
//!
//! The [`Recorder`] is the seam the simulators thread through their MAC
//! engine, transport layer, and media. It is deliberately inert: it never
//! touches an RNG, never schedules an event, and never changes a decision
//! — so an enabled recorder observes a run that is bit-identical to a
//! disabled one, and a disabled one (`Option::None` at the seam) costs a
//! single branch per hook.
//!
//! The `softrate-inspect` binary (see [`inspect`]) summarizes, computes
//! percentiles over, validates, and diffs the emitted JSONL streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod inspect;
pub mod recorder;
pub mod rows;

pub use histogram::LogHistogram;
pub use recorder::{
    DecisionEvent, LossCause, OutcomeEvent, Recorder, RecorderConfig, TelemetryReport,
};
pub use rows::{
    AnomalyRow, DecisionRow, FaultRow, HistRow, IntervalRow, ReassocRow, TotalsRow, TraceRow,
};
