//! The logic behind the `softrate-inspect` binary: parse, summarize,
//! validate, and diff telemetry JSONL streams.
//!
//! Kept in the library (rather than the binary) so the operations are
//! unit-testable and available to other tools.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::{Deserialize, Value};

use crate::histogram::LogHistogram;
use crate::rows::{AnomalyRow, HistRow, IntervalRow, TotalsRow, TraceRow};

/// Any telemetry row, discriminated by its `kind` field.
#[derive(Debug, Clone, PartialEq)]
pub enum Row {
    /// A per-station per-interval metrics row.
    Interval(IntervalRow),
    /// A per-station whole-run totals row.
    Totals(TotalsRow),
    /// A histogram row.
    Hist(HistRow),
    /// An anomaly row.
    Anomaly(AnomalyRow),
    /// A frame-lifecycle trace row.
    Frame(TraceRow),
}

/// Parses one JSONL line into a typed row.
pub fn parse_line(line: &str) -> Result<Row, String> {
    let v = serde_json::parse_value(line).map_err(|e| e.to_string())?;
    let kind = match v.get("kind") {
        Some(Value::Str(s)) => s.clone(),
        _ => return Err("row has no string `kind` field".to_string()),
    };
    let err = |e: serde::DeError| format!("{kind}: {e}");
    match kind.as_str() {
        "interval" => IntervalRow::from_value(&v).map(Row::Interval).map_err(err),
        "totals" => TotalsRow::from_value(&v).map(Row::Totals).map_err(err),
        "hist" => HistRow::from_value(&v).map(Row::Hist).map_err(err),
        "anomaly" => AnomalyRow::from_value(&v).map(Row::Anomaly).map_err(err),
        "frame" => TraceRow::from_value(&v).map(Row::Frame).map_err(err),
        other => Err(format!("unknown row kind `{other}`")),
    }
}

/// Parses a whole JSONL stream (blank lines skipped), reporting the first
/// offending line number on error.
pub fn parse_stream(text: &str) -> Result<Vec<Row>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| parse_line(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

// --- summarize --------------------------------------------------------

/// Human-readable summary of a metrics stream: per-run aggregates, the
/// loss-attribution breakdown, histogram percentiles, and anomalies.
pub fn summarize(text: &str) -> Result<String, String> {
    let rows = parse_stream(text)?;
    let mut out = String::new();
    // (run_idx -> aggregated totals)
    let mut runs: BTreeMap<u64, Vec<TotalsRow>> = BTreeMap::new();
    let mut hists: Vec<&HistRow> = Vec::new();
    let mut anomalies: Vec<&AnomalyRow> = Vec::new();
    let mut n_intervals = 0usize;
    for r in &rows {
        match r {
            Row::Totals(t) => runs.entry(t.run_idx).or_default().push(t.clone()),
            Row::Hist(h) => hists.push(h),
            Row::Anomaly(a) => anomalies.push(a),
            Row::Interval(_) => n_intervals += 1,
            Row::Frame(_) => {}
        }
    }
    let _ = writeln!(
        out,
        "{} rows: {} interval, {} totals, {} hist, {} anomaly",
        rows.len(),
        n_intervals,
        runs.values().map(Vec::len).sum::<usize>(),
        hists.len(),
        anomalies.len()
    );
    for (run, totals) in &runs {
        let stations = totals.len();
        let sum = |f: fn(&TotalsRow) -> u64| totals.iter().map(f).sum::<u64>();
        let attempts = sum(|t| t.attempts);
        let retries = sum(|t| t.retries);
        let (lc, lf, lcap) = (
            sum(|t| t.loss_collision),
            sum(|t| t.loss_fading),
            sum(|t| t.loss_capture),
        );
        let goodput: f64 = totals.iter().map(|t| t.goodput_bps).sum();
        let pct = |n: u64| {
            if retries == 0 {
                0.0
            } else {
                100.0 * n as f64 / retries as f64
            }
        };
        let _ = writeln!(
            out,
            "run {run}: {stations} stations, {attempts} attempts, \
             {:.2} Mbit/s aggregate goodput",
            goodput / 1e6
        );
        let _ = writeln!(
            out,
            "  losses {retries}: collision {lc} ({:.1}%), fading {lf} ({:.1}%), \
             capture {lcap} ({:.1}%)",
            pct(lc),
            pct(lf),
            pct(lcap)
        );
        let drops = sum(|t| t.drops);
        let handoffs = sum(|t| t.handoffs);
        let _ = writeln!(out, "  drops {drops}, handoffs {handoffs}");
    }
    for h in hists {
        if h.count == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "hist {} (run {}): n={} p50={:.6}{} p90={:.6}{} p99={:.6}{}",
            h.metric, h.run_idx, h.count, h.p50, h.unit, h.p90, h.unit, h.p99, h.unit
        );
    }
    for a in anomalies {
        let _ = writeln!(
            out,
            "anomaly run {} station {} at t={:.3}: {} ({})",
            a.run_idx, a.station, a.t, a.anomaly, a.detail
        );
    }
    Ok(out)
}

// --- diff -------------------------------------------------------------

/// Diffs two metrics streams, aligning interval rows by
/// `(run_idx, station, t0)` and totals by `(run_idx, station)`. Returns
/// the report and whether the streams were equivalent.
pub fn diff(a: &str, b: &str) -> Result<(String, bool), String> {
    let (ra, rb) = (parse_stream(a)?, parse_stream(b)?);
    let mut out = String::new();
    let mut identical = true;

    type IKey = (u64, u64, u64);
    let ikey = |r: &IntervalRow| (r.run_idx, r.station, r.t0.to_bits());
    let tkey = |r: &TotalsRow| (r.run_idx, r.station);
    let mut ia: BTreeMap<IKey, &IntervalRow> = BTreeMap::new();
    let mut ta: BTreeMap<(u64, u64), &TotalsRow> = BTreeMap::new();
    let mut ha: BTreeMap<(u64, String), &HistRow> = BTreeMap::new();
    for r in &ra {
        match r {
            Row::Interval(x) => {
                ia.insert(ikey(x), x);
            }
            Row::Totals(x) => {
                ta.insert(tkey(x), x);
            }
            Row::Hist(x) => {
                ha.insert((x.run_idx, x.metric.clone()), x);
            }
            _ => {}
        }
    }
    let mut seen_i = 0usize;
    let mut seen_t = 0usize;
    for r in &rb {
        match r {
            Row::Interval(x) => match ia.remove(&ikey(x)) {
                Some(y) if y == x => seen_i += 1,
                Some(y) => {
                    identical = false;
                    let _ = writeln!(
                        out,
                        "interval run {} station {} t0={:.3}: goodput {:.0} -> {:.0} bps, \
                         losses (c/f/cap) {}/{}/{} -> {}/{}/{}",
                        x.run_idx,
                        x.station,
                        x.t0,
                        y.goodput_bps,
                        x.goodput_bps,
                        y.loss_collision,
                        y.loss_fading,
                        y.loss_capture,
                        x.loss_collision,
                        x.loss_fading,
                        x.loss_capture
                    );
                }
                None => {
                    identical = false;
                    let _ = writeln!(
                        out,
                        "interval run {} station {} t0={:.3}: only in B",
                        x.run_idx, x.station, x.t0
                    );
                }
            },
            Row::Totals(x) => match ta.remove(&tkey(x)) {
                Some(y) if y == x => seen_t += 1,
                Some(y) => {
                    identical = false;
                    let _ = writeln!(
                        out,
                        "totals run {} station {}: goodput {:.0} -> {:.0} bps, \
                         retries {} -> {}",
                        x.run_idx, x.station, y.goodput_bps, x.goodput_bps, y.retries, x.retries
                    );
                }
                None => {
                    identical = false;
                    let _ = writeln!(
                        out,
                        "totals run {} station {}: only in B",
                        x.run_idx, x.station
                    );
                }
            },
            Row::Hist(x) => {
                if let Some(y) = ha.remove(&(x.run_idx, x.metric.clone())) {
                    if y != x {
                        identical = false;
                        let _ = writeln!(
                            out,
                            "hist {} run {}: p50 {:.6} -> {:.6}, p99 {:.6} -> {:.6}, \
                             n {} -> {}",
                            x.metric, x.run_idx, y.p50, x.p50, y.p99, x.p99, y.count, x.count
                        );
                    }
                }
            }
            _ => {}
        }
    }
    for k in ia.keys() {
        identical = false;
        let _ = writeln!(
            out,
            "interval run {} station {} t0={:.3}: only in A",
            k.0,
            k.1,
            f64::from_bits(k.2)
        );
    }
    for k in ta.keys() {
        identical = false;
        let _ = writeln!(out, "totals run {} station {}: only in A", k.0, k.1);
    }
    let _ = writeln!(
        out,
        "{} interval and {} totals rows match{}",
        seen_i,
        seen_t,
        if identical {
            "; streams equivalent"
        } else {
            ""
        }
    );
    Ok((out, identical))
}

// --- validate ---------------------------------------------------------

/// A checked-in row schema: `kind -> field -> type`, where type is one of
/// `uint`, `int`, `number`, `string`, `bool`, `array`, optionally
/// prefixed `?` for nullable fields. Validation is strict: unknown kinds,
/// missing fields, extra fields, and type mismatches are all errors.
#[derive(Debug, Clone)]
pub struct Schema {
    kinds: BTreeMap<String, BTreeMap<String, String>>,
}

impl Schema {
    /// Parses the schema's JSON source.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = serde_json::parse_value(text).map_err(|e| e.to_string())?;
        let Value::Map(kind_entries) = &v else {
            return Err("schema must be a JSON object".to_string());
        };
        let mut kinds = BTreeMap::new();
        for (kind, fields_v) in kind_entries {
            let Value::Map(field_entries) = fields_v else {
                return Err(format!("schema `{kind}` must be an object"));
            };
            let mut fields = BTreeMap::new();
            for (f, ty_v) in field_entries {
                let Value::Str(ty) = ty_v else {
                    return Err(format!("schema {kind}.{f}: type must be a string"));
                };
                let bare = ty.strip_prefix('?').unwrap_or(ty);
                if !matches!(
                    bare,
                    "uint" | "int" | "number" | "string" | "bool" | "array"
                ) {
                    return Err(format!("schema {kind}.{f}: unknown type `{bare}`"));
                }
                fields.insert(f.clone(), ty.clone());
            }
            kinds.insert(kind.clone(), fields);
        }
        Ok(Schema { kinds })
    }

    fn type_matches(ty: &str, v: &Value) -> bool {
        match ty {
            "uint" => matches!(v, Value::UInt(_)) || matches!(v, Value::Int(i) if *i >= 0),
            "int" => matches!(v, Value::Int(_) | Value::UInt(_)),
            "number" => matches!(v, Value::Float(_) | Value::Int(_) | Value::UInt(_)),
            "string" => matches!(v, Value::Str(_)),
            "bool" => matches!(v, Value::Bool(_)),
            "array" => matches!(v, Value::Seq(_)),
            _ => false,
        }
    }

    /// Validates one JSONL line against the schema.
    pub fn validate_line(&self, line: &str) -> Result<(), String> {
        let v = serde_json::parse_value(line).map_err(|e| e.to_string())?;
        let Value::Map(m) = &v else {
            return Err("row is not an object".to_string());
        };
        let kind = match v.get("kind") {
            Some(Value::Str(s)) => s.clone(),
            _ => return Err("row has no string `kind`".to_string()),
        };
        let Some(fields) = self.kinds.get(&kind) else {
            return Err(format!("kind `{kind}` not in schema"));
        };
        for (f, ty) in fields {
            let nullable = ty.starts_with('?');
            let ty = ty.strip_prefix('?').unwrap_or(ty);
            match v.get(f) {
                None | Some(Value::Null) if nullable => {}
                None => return Err(format!("{kind}: missing field `{f}`")),
                Some(Value::Null) => return Err(format!("{kind}.{f}: null but not nullable")),
                Some(val) => {
                    if !Self::type_matches(ty, val) {
                        return Err(format!("{kind}.{f}: expected {ty}"));
                    }
                }
            }
        }
        for (f, _) in m {
            if !fields.contains_key(f) {
                return Err(format!("{kind}: unexpected field `{f}`"));
            }
        }
        Ok(())
    }

    /// Validates a whole stream; returns the number of valid rows.
    pub fn validate_stream(&self, text: &str) -> Result<usize, String> {
        let mut n = 0usize;
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            self.validate_line(line)
                .map_err(|e| format!("line {}: {e}", i + 1))?;
            n += 1;
        }
        Ok(n)
    }
}

/// Recomputes an arbitrary percentile from a serialized histogram row
/// (used by `softrate-inspect percentile`-style queries and tests).
pub fn hist_percentile(row: &HistRow, q: f64) -> f64 {
    LogHistogram::from_row(row).percentile(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{LossCause, OutcomeEvent, Recorder, RecorderConfig};

    fn sample_report() -> crate::TelemetryReport {
        let mut r = Recorder::new(RecorderConfig::default(), 2, 2);
        r.on_enqueue(0.01, 0, 2);
        r.on_outcome(
            0.02,
            OutcomeEvent {
                station: 0,
                sender: 0,
                tx_id: 1,
                rate_idx: 4,
                attempt: 1,
                acked: true,
                dropped: false,
                counts_as_data: true,
                payload_bytes: 1440,
                airtime_s: 400e-6,
                snr_db: Some(21.0),
                cause: None,
            },
        );
        r.on_outcome(
            0.03,
            OutcomeEvent {
                station: 1,
                sender: 1,
                tx_id: 2,
                rate_idx: 2,
                attempt: 1,
                acked: false,
                dropped: false,
                counts_as_data: true,
                payload_bytes: 1440,
                airtime_s: 900e-6,
                snr_db: None,
                cause: Some(LossCause::Collision),
            },
        );
        r.finish(0.5)
    }

    #[test]
    fn parse_roundtrips_every_row_kind() {
        let rep = sample_report();
        let rows = parse_stream(&rep.metrics_jsonl()).unwrap();
        assert!(rows.iter().any(|r| matches!(r, Row::Interval(_))));
        assert!(rows.iter().any(|r| matches!(r, Row::Totals(_))));
        assert!(rows.iter().any(|r| matches!(r, Row::Hist(_))));
        assert!(parse_line("{\"kind\":\"nope\"}").is_err());
        assert!(parse_line("{\"no_kind\":1}").is_err());
    }

    #[test]
    fn summarize_reports_attribution() {
        let rep = sample_report();
        let s = summarize(&rep.metrics_jsonl()).unwrap();
        assert!(s.contains("collision 1"), "{s}");
        assert!(s.contains("2 stations"), "{s}");
    }

    #[test]
    fn diff_finds_changes_and_equivalence() {
        let rep = sample_report();
        let jsonl = rep.metrics_jsonl();
        let (_, same) = diff(&jsonl, &jsonl).unwrap();
        assert!(same);
        let mut other = rep.clone();
        other.totals[0].goodput_bps += 1.0;
        let (report, same) = diff(&jsonl, &other.metrics_jsonl()).unwrap();
        assert!(!same);
        assert!(report.contains("totals run 0 station 0"), "{report}");
    }

    #[test]
    fn schema_validates_and_rejects() {
        let schema = Schema::parse(
            r#"{"interval": {"kind":"string","run_idx":"uint","station":"uint",
                "t0":"number","t1":"number","attempts":"uint","frames_sent":"uint",
                "frames_delivered":"uint","retries":"uint","drops":"uint",
                "goodput_bps":"number","loss_collision":"uint","loss_fading":"uint",
                "loss_capture":"uint","rate_idx":"?uint","snr_db":"?number",
                "queue_depth":"?uint","cwnd":"?number","rto_s":"?number",
                "rtt_s":"?number","handoffs":"uint"}}"#,
        )
        .unwrap();
        let rep = sample_report();
        let line = serde_json::to_string(&rep.intervals[0]).unwrap();
        schema.validate_line(&line).unwrap();
        assert!(schema.validate_line("{\"kind\":\"totals\"}").is_err());
        assert!(schema
            .validate_line("{\"kind\":\"interval\",\"t0\":\"oops\"}")
            .is_err());
        assert!(Schema::parse("{\"x\":{\"f\":\"complex\"}}").is_err());
    }
}
