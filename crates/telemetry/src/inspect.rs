//! The logic behind the `softrate-inspect` binary: parse, summarize,
//! validate, diff, and analyze telemetry JSONL streams (including the
//! rate-decision ledger: `timeline`, `adapt`, `compare`).
//!
//! Kept in the library (rather than the binary) so the operations are
//! unit-testable and available to other tools.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::{Deserialize, Value};

use crate::histogram::LogHistogram;
use crate::rows::{
    AnomalyRow, DecisionRow, FaultRow, HistRow, IntervalRow, ReassocRow, TotalsRow, TraceRow,
};

/// Any telemetry row, discriminated by its `kind` field.
#[derive(Debug, Clone, PartialEq)]
pub enum Row {
    /// A per-station per-interval metrics row.
    Interval(IntervalRow),
    /// A per-station whole-run totals row.
    Totals(TotalsRow),
    /// A histogram row.
    Hist(HistRow),
    /// An anomaly row.
    Anomaly(AnomalyRow),
    /// A frame-lifecycle trace row.
    Frame(TraceRow),
    /// A rate-decision ledger row.
    Decision(DecisionRow),
    /// A fault start/end marker row.
    Fault(FaultRow),
    /// A post-outage re-association row.
    Reassoc(ReassocRow),
}

/// Parses one JSONL line into a typed row.
pub fn parse_line(line: &str) -> Result<Row, String> {
    let v = serde_json::parse_value(line).map_err(|e| e.to_string())?;
    let kind = match v.get("kind") {
        Some(Value::Str(s)) => s.clone(),
        _ => return Err("row has no string `kind` field".to_string()),
    };
    let err = |e: serde::DeError| format!("{kind}: {e}");
    match kind.as_str() {
        "interval" => IntervalRow::from_value(&v).map(Row::Interval).map_err(err),
        "totals" => TotalsRow::from_value(&v).map(Row::Totals).map_err(err),
        "hist" => HistRow::from_value(&v).map(Row::Hist).map_err(err),
        "anomaly" => AnomalyRow::from_value(&v).map(Row::Anomaly).map_err(err),
        "frame" => TraceRow::from_value(&v).map(Row::Frame).map_err(err),
        "decision" => DecisionRow::from_value(&v).map(Row::Decision).map_err(err),
        "fault" => FaultRow::from_value(&v).map(Row::Fault).map_err(err),
        "reassoc" => ReassocRow::from_value(&v).map(Row::Reassoc).map_err(err),
        other => Err(format!("unknown row kind `{other}`")),
    }
}

/// Parses a whole JSONL stream (blank lines skipped), reporting the first
/// offending line number on error.
pub fn parse_stream(text: &str) -> Result<Vec<Row>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| parse_line(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

// --- summarize --------------------------------------------------------

/// A sortable per-station column of the totals rows (for `--top`).
fn totals_column(t: &TotalsRow, col: &str) -> Option<f64> {
    Some(match col {
        "goodput" | "goodput_bps" => t.goodput_bps,
        "attempts" => t.attempts as f64,
        "frames_sent" => t.frames_sent as f64,
        "frames_delivered" => t.frames_delivered as f64,
        "retries" => t.retries as f64,
        "drops" => t.drops as f64,
        "loss_collision" => t.loss_collision as f64,
        "loss_fading" => t.loss_fading as f64,
        "loss_capture" => t.loss_capture as f64,
        "loss_outage" => t.loss_outage as f64,
        "loss_jamming" => t.loss_jamming as f64,
        "handoffs" => t.handoffs as f64,
        "air_s" => t.air_s,
        _ => return None,
    })
}

/// Human-readable summary of a metrics stream: per-run aggregates, the
/// loss-attribution breakdown, histogram percentiles, and anomalies.
pub fn summarize(text: &str) -> Result<String, String> {
    summarize_with(text, None).map(|(out, _)| out)
}

/// [`summarize`] with options: `top = (N, column)` appends the N highest
/// stations per run by `column`. The returned flag is `false` when any
/// station's loss-attribution counts do not balance against its retries
/// (`softrate-inspect summarize` exits non-zero on that).
pub fn summarize_with(text: &str, top: Option<(usize, &str)>) -> Result<(String, bool), String> {
    let rows = parse_stream(text)?;
    let mut out = String::new();
    // (run_idx -> aggregated totals)
    let mut runs: BTreeMap<u64, Vec<TotalsRow>> = BTreeMap::new();
    let mut hists: Vec<&HistRow> = Vec::new();
    let mut anomalies: Vec<&AnomalyRow> = Vec::new();
    let mut n_intervals = 0usize;
    let mut n_decisions = 0usize;
    let mut n_faults = 0usize;
    let mut n_reassocs = 0usize;
    for r in &rows {
        match r {
            Row::Totals(t) => runs.entry(t.run_idx).or_default().push(t.clone()),
            Row::Hist(h) => hists.push(h),
            Row::Anomaly(a) => anomalies.push(a),
            Row::Interval(_) => n_intervals += 1,
            Row::Decision(_) => n_decisions += 1,
            Row::Fault(_) => n_faults += 1,
            Row::Reassoc(_) => n_reassocs += 1,
            Row::Frame(_) => {}
        }
    }
    let _ = writeln!(
        out,
        "{} rows: {} interval, {} totals, {} hist, {} anomaly, {} decision, \
         {} fault, {} reassoc",
        rows.len(),
        n_intervals,
        runs.values().map(Vec::len).sum::<usize>(),
        hists.len(),
        anomalies.len(),
        n_decisions,
        n_faults,
        n_reassocs
    );
    if let Some((_, col)) = top {
        if !runs.is_empty() && totals_column(&runs.values().next().unwrap()[0], col).is_none() {
            return Err(format!(
                "--by `{col}` is not a sortable totals column (try goodput, \
                 retries, drops, attempts, handoffs, air_s, loss_*)"
            ));
        }
    }
    let mut balanced = true;
    for (run, totals) in &runs {
        let stations = totals.len();
        let sum = |f: fn(&TotalsRow) -> u64| totals.iter().map(f).sum::<u64>();
        let attempts = sum(|t| t.attempts);
        let retries = sum(|t| t.retries);
        let (lc, lf, lcap) = (
            sum(|t| t.loss_collision),
            sum(|t| t.loss_fading),
            sum(|t| t.loss_capture),
        );
        let (lout, ljam) = (sum(|t| t.loss_outage), sum(|t| t.loss_jamming));
        let goodput: f64 = totals.iter().map(|t| t.goodput_bps).sum();
        let pct = |n: u64| {
            if retries == 0 {
                0.0
            } else {
                100.0 * n as f64 / retries as f64
            }
        };
        let _ = writeln!(
            out,
            "run {run}: {stations} stations, {attempts} attempts, \
             {:.2} Mbit/s aggregate goodput",
            goodput / 1e6
        );
        let _ = writeln!(
            out,
            "  losses {retries}: collision {lc} ({:.1}%), fading {lf} ({:.1}%), \
             capture {lcap} ({:.1}%), outage {lout} ({:.1}%), jamming {ljam} ({:.1}%)",
            pct(lc),
            pct(lf),
            pct(lcap),
            pct(lout),
            pct(ljam)
        );
        let drops = sum(|t| t.drops);
        let handoffs = sum(|t| t.handoffs);
        let _ = writeln!(out, "  drops {drops}, handoffs {handoffs}");
        for t in totals {
            let causes =
                t.loss_collision + t.loss_fading + t.loss_capture + t.loss_outage + t.loss_jamming;
            if causes != t.retries {
                balanced = false;
                let _ = writeln!(
                    out,
                    "  IMBALANCE station {}: retries {} != attributed losses {} \
                     (collision {} + fading {} + capture {} + outage {} + jamming {})",
                    t.station,
                    t.retries,
                    causes,
                    t.loss_collision,
                    t.loss_fading,
                    t.loss_capture,
                    t.loss_outage,
                    t.loss_jamming
                );
            }
        }
        if let Some((n, col)) = top {
            let mut ranked: Vec<&TotalsRow> = totals.iter().collect();
            // Descending by the column, station index breaking ties so the
            // listing is deterministic.
            ranked.sort_by(|a, b| {
                let (va, vb) = (
                    totals_column(a, col).unwrap_or(0.0),
                    totals_column(b, col).unwrap_or(0.0),
                );
                vb.partial_cmp(&va)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.station.cmp(&b.station))
            });
            let _ = writeln!(out, "  top {} stations by {col}:", n.min(ranked.len()));
            for t in ranked.iter().take(n) {
                let _ = writeln!(
                    out,
                    "    station {:>4}: {col}={:.3} goodput={:.2} Mbit/s retries={} drops={}",
                    t.station,
                    totals_column(t, col).unwrap_or(0.0),
                    t.goodput_bps / 1e6,
                    t.retries,
                    t.drops
                );
            }
        }
    }
    for h in hists {
        if h.count == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "hist {} (run {}): n={} p50={:.6}{} p90={:.6}{} p95={:.6}{} p99={:.6}{}",
            h.metric,
            h.run_idx,
            h.count,
            h.p50,
            h.unit,
            h.p90,
            h.unit,
            h.p95,
            h.unit,
            h.p99,
            h.unit
        );
    }
    for a in anomalies {
        let _ = writeln!(
            out,
            "anomaly run {} station {} at t={:.3}: {} ({})",
            a.run_idx, a.station, a.t, a.anomaly, a.detail
        );
    }
    if !balanced {
        let _ = writeln!(out, "loss attribution DOES NOT balance");
    }
    Ok((out, balanced))
}

// --- diff -------------------------------------------------------------

/// Diffs two metrics streams, aligning interval rows by
/// `(run_idx, station, t0)` and totals by `(run_idx, station)`. Returns
/// the report and whether the streams were equivalent.
pub fn diff(a: &str, b: &str) -> Result<(String, bool), String> {
    let (ra, rb) = (parse_stream(a)?, parse_stream(b)?);
    let mut out = String::new();
    let mut identical = true;

    type IKey = (u64, u64, u64);
    let ikey = |r: &IntervalRow| (r.run_idx, r.station, r.t0.to_bits());
    let tkey = |r: &TotalsRow| (r.run_idx, r.station);
    let mut ia: BTreeMap<IKey, &IntervalRow> = BTreeMap::new();
    let mut ta: BTreeMap<(u64, u64), &TotalsRow> = BTreeMap::new();
    let mut ha: BTreeMap<(u64, String), &HistRow> = BTreeMap::new();
    for r in &ra {
        match r {
            Row::Interval(x) => {
                ia.insert(ikey(x), x);
            }
            Row::Totals(x) => {
                ta.insert(tkey(x), x);
            }
            Row::Hist(x) => {
                ha.insert((x.run_idx, x.metric.clone()), x);
            }
            _ => {}
        }
    }
    let mut seen_i = 0usize;
    let mut seen_t = 0usize;
    for r in &rb {
        match r {
            Row::Interval(x) => match ia.remove(&ikey(x)) {
                Some(y) if y == x => seen_i += 1,
                Some(y) => {
                    identical = false;
                    let _ = writeln!(
                        out,
                        "interval run {} station {} t0={:.3}: goodput {:.0} -> {:.0} bps, \
                         losses (c/f/cap) {}/{}/{} -> {}/{}/{}",
                        x.run_idx,
                        x.station,
                        x.t0,
                        y.goodput_bps,
                        x.goodput_bps,
                        y.loss_collision,
                        y.loss_fading,
                        y.loss_capture,
                        x.loss_collision,
                        x.loss_fading,
                        x.loss_capture
                    );
                }
                None => {
                    identical = false;
                    let _ = writeln!(
                        out,
                        "interval run {} station {} t0={:.3}: only in B",
                        x.run_idx, x.station, x.t0
                    );
                }
            },
            Row::Totals(x) => match ta.remove(&tkey(x)) {
                Some(y) if y == x => seen_t += 1,
                Some(y) => {
                    identical = false;
                    let _ = writeln!(
                        out,
                        "totals run {} station {}: goodput {:.0} -> {:.0} bps, \
                         retries {} -> {}",
                        x.run_idx, x.station, y.goodput_bps, x.goodput_bps, y.retries, x.retries
                    );
                }
                None => {
                    identical = false;
                    let _ = writeln!(
                        out,
                        "totals run {} station {}: only in B",
                        x.run_idx, x.station
                    );
                }
            },
            Row::Hist(x) => {
                if let Some(y) = ha.remove(&(x.run_idx, x.metric.clone())) {
                    if y != x {
                        identical = false;
                        let _ = writeln!(
                            out,
                            "hist {} run {}: p50 {:.6} -> {:.6}, p99 {:.6} -> {:.6}, \
                             n {} -> {}",
                            x.metric, x.run_idx, y.p50, x.p50, y.p99, x.p99, y.count, x.count
                        );
                    }
                }
            }
            _ => {}
        }
    }
    for k in ia.keys() {
        identical = false;
        let _ = writeln!(
            out,
            "interval run {} station {} t0={:.3}: only in A",
            k.0,
            k.1,
            f64::from_bits(k.2)
        );
    }
    for k in ta.keys() {
        identical = false;
        let _ = writeln!(out, "totals run {} station {}: only in A", k.0, k.1);
    }
    let _ = writeln!(
        out,
        "{} interval and {} totals rows match{}",
        seen_i,
        seen_t,
        if identical {
            "; streams equivalent"
        } else {
            ""
        }
    );
    Ok((out, identical))
}

// --- timeline ---------------------------------------------------------

/// One merged point on a station's rate/SNR timeline: an interval gauge
/// sample or a ledger decision.
#[derive(Debug, Clone)]
struct TimelinePoint {
    t_us: u64,
    rate: Option<u64>,
    snr_db: Option<f64>,
    /// `Some((trigger, reason))` when the point is a ledger decision.
    decision: Option<(String, String)>,
}

/// Sparkline glyphs, lowest to highest; a space means "no sample yet".
const SPARK: &[u8] = b".:-=+*#%@";

fn spark_row(vals: &[Option<f64>], lo: f64, hi: f64) -> String {
    vals.iter()
        .map(|v| match v {
            None => ' ',
            Some(x) => {
                let f = if hi > lo { (x - lo) / (hi - lo) } else { 0.5 };
                let i = (f.clamp(0.0, 1.0) * (SPARK.len() - 1) as f64).round() as usize;
                SPARK[i] as char
            }
        })
        .collect()
}

fn trigger_char(trigger: &str) -> char {
    match trigger {
        "ack" => 'a',
        "loss" => 'l',
        "timeout" => 't',
        "probe" => 'p',
        "handoff_preserve" => 'h',
        "handoff_reset" => 'R',
        _ => '?',
    }
}

fn json_opt_u64(v: Option<u64>) -> String {
    v.map(|x| x.to_string())
        .unwrap_or_else(|| "null".to_string())
}

fn json_opt_f64(v: Option<f64>) -> String {
    v.map(|x| format!("{x:?}"))
        .unwrap_or_else(|| "null".to_string())
}

/// Per-station rate-vs-SNR step series with decision markers: merges the
/// metrics stream's interval gauges with the decision ledger, and emits,
/// per `(run, station)`, aligned `"timeline"` JSONL rows followed by an
/// ASCII sparkline pair (rate on top, SNR below, decision-trigger markers
/// between). Filterable by station and run.
pub fn timeline(
    metrics: &str,
    decisions: &str,
    station: Option<u64>,
    run: Option<u64>,
) -> Result<String, String> {
    let want = |r: u64, s: u64| run.is_none_or(|x| x == r) && station.is_none_or(|x| x == s);
    let mut groups: BTreeMap<(u64, u64), Vec<TimelinePoint>> = BTreeMap::new();
    for row in parse_stream(metrics)? {
        if let Row::Interval(i) = row {
            if want(i.run_idx, i.station) && (i.rate_idx.is_some() || i.snr_db.is_some()) {
                groups
                    .entry((i.run_idx, i.station))
                    .or_default()
                    .push(TimelinePoint {
                        t_us: (i.t1 * 1e6).round() as u64,
                        rate: i.rate_idx,
                        snr_db: i.snr_db,
                        decision: None,
                    });
            }
        }
    }
    for row in parse_stream(decisions)? {
        if let Row::Decision(d) = row {
            if want(d.run_idx, d.station) {
                groups
                    .entry((d.run_idx, d.station))
                    .or_default()
                    .push(TimelinePoint {
                        t_us: d.t_us,
                        rate: Some(d.new_rate),
                        snr_db: d.snr_db,
                        decision: Some((d.trigger, d.reason)),
                    });
            }
        }
    }
    if groups.is_empty() {
        return Err("no matching rows (check --station/--run filters)".to_string());
    }
    const WIDTH: usize = 72;
    let mut out = String::new();
    for ((run_idx, st), mut points) in groups {
        // Stable merge: time first, interval samples before decisions at
        // the same instant (the gauge describes the state *entering* it).
        points.sort_by_key(|p| (p.t_us, p.decision.is_some()));
        let n_dec = points.iter().filter(|p| p.decision.is_some()).count();
        let _ = writeln!(
            out,
            "run {run_idx} station {st}: {} points, {n_dec} decisions",
            points.len()
        );
        for p in &points {
            let (trig, reason) = match &p.decision {
                Some((t, r)) => (format!("\"{t}\""), format!("\"{r}\"")),
                None => ("null".to_string(), "null".to_string()),
            };
            let _ = writeln!(
                out,
                "{{\"kind\":\"timeline\",\"run_idx\":{run_idx},\"station\":{st},\
                 \"t_us\":{},\"rate\":{},\"snr_db\":{},\"trigger\":{trig},\"reason\":{reason}}}",
                p.t_us,
                json_opt_u64(p.rate),
                json_opt_f64(p.snr_db),
            );
        }
        let (t0, t1) = (points[0].t_us, points[points.len() - 1].t_us);
        let span = (t1 - t0).max(1);
        let col = |t: u64| (((t - t0) as u128 * (WIDTH as u128 - 1)) / span as u128) as usize;
        let mut rate_cols: Vec<Option<f64>> = vec![None; WIDTH];
        let mut snr_cols: Vec<Option<f64>> = vec![None; WIDTH];
        let mut marks: Vec<u32> = vec![0; WIDTH];
        let mut mark_ch: Vec<char> = vec![' '; WIDTH];
        let mut max_rate = 0f64;
        let (mut snr_lo, mut snr_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for p in &points {
            let c = col(p.t_us);
            if let Some(r) = p.rate {
                rate_cols[c] = Some(r as f64);
                max_rate = max_rate.max(r as f64);
            }
            if let Some(s) = p.snr_db {
                snr_cols[c] = Some(s);
                snr_lo = snr_lo.min(s);
                snr_hi = snr_hi.max(s);
            }
            if let Some((trigger, _)) = &p.decision {
                marks[c] += 1;
                mark_ch[c] = trigger_char(trigger);
            }
        }
        // A step series: carry the last sample forward through empty
        // columns so the sparkline reads as rate/SNR held over time.
        for cols in [&mut rate_cols, &mut snr_cols] {
            let mut last = None;
            for v in cols.iter_mut() {
                match v {
                    Some(x) => last = Some(*x),
                    None => *v = last,
                }
            }
        }
        let _ = writeln!(out, "  rate |{}|", spark_row(&rate_cols, 0.0, max_rate));
        let marker_line: String = marks
            .iter()
            .zip(&mark_ch)
            .map(|(&n, &ch)| if n > 1 { '*' } else { ch })
            .collect();
        let _ = writeln!(out, "  dec  |{marker_line}|");
        if snr_lo.is_finite() {
            let _ = writeln!(
                out,
                "  snr  |{}|  [{snr_lo:.1}..{snr_hi:.1} dB]",
                spark_row(&snr_cols, snr_lo, snr_hi)
            );
        }
        let _ = writeln!(
            out,
            "       t = {:.3}s .. {:.3}s  (markers: a=ack l=loss t=timeout p=probe \
             h=handoff_preserve R=handoff_reset *=multiple)",
            t0 as f64 / 1e6,
            t1 as f64 / 1e6
        );
    }
    Ok(out)
}

// --- adapt ------------------------------------------------------------

/// Adaptation-behavior statistics for one `(run, station)` ledger slice.
#[derive(Debug, Clone, Default)]
pub struct AdaptStats {
    /// Ledger rows seen.
    pub decisions: u64,
    /// Rows that actually changed the rate (`old != new`).
    pub changes: u64,
    /// Rate changes per simulated second (churn).
    pub churn_per_s: f64,
    /// Fraction of changes that exactly revert the previous change
    /// (A→B immediately followed by B→A): 0 = monotone, 1 = ping-pong.
    pub oscillation: f64,
    /// Ledger rows per trigger class.
    pub triggers: BTreeMap<String, u64>,
    /// SNR drops of at least the threshold observed on this station.
    pub snr_drops: u64,
    /// Drops after which the rate returned to its pre-drop value.
    pub recovered: u64,
    /// Seconds from each recovered drop to its recovery, summed.
    pub recover_total_s: f64,
    /// Slowest single recovery, seconds.
    pub recover_max_s: f64,
}

impl AdaptStats {
    /// Mean time-to-recover over the recovered drops, if any.
    pub fn mean_recover_s(&self) -> Option<f64> {
        (self.recovered > 0).then(|| self.recover_total_s / self.recovered as f64)
    }
}

/// Computes per-`(run, station)` adaptation statistics from a decision
/// ledger. `durations` supplies each run's length in seconds (from the
/// metrics stream when available); runs not in the map fall back to the
/// ledger's own time span. `drop_db` is the SNR-drop threshold for the
/// time-to-recover analysis.
pub fn adapt_stats(
    decisions: &str,
    durations: &BTreeMap<u64, f64>,
    drop_db: f64,
) -> Result<BTreeMap<(u64, u64), AdaptStats>, String> {
    let mut groups: BTreeMap<(u64, u64), Vec<DecisionRow>> = BTreeMap::new();
    for row in parse_stream(decisions)? {
        if let Row::Decision(d) = row {
            groups.entry((d.run_idx, d.station)).or_default().push(d);
        }
    }
    let mut out = BTreeMap::new();
    for ((run, st), rows) in groups {
        // Ledger rows are already in event-loop (time) order; keep it.
        let mut s = AdaptStats {
            decisions: rows.len() as u64,
            ..AdaptStats::default()
        };
        let mut last_snr: Option<f64> = None;
        let mut prev_change: Option<(u64, u64)> = None;
        let mut reversals = 0u64;
        // Open SNR drops awaiting recovery: (drop time, pre-drop rate).
        let mut open_drops: Vec<(u64, u64)> = Vec::new();
        let mut cur_rate: Option<u64> = None;
        for d in &rows {
            *s.triggers.entry(d.trigger.clone()).or_insert(0) += 1;
            let rate_before = cur_rate.unwrap_or(d.old_rate);
            if let Some(snr) = d.snr_db {
                if let Some(prev) = last_snr {
                    if prev - snr >= drop_db {
                        s.snr_drops += 1;
                        open_drops.push((d.t_us, rate_before));
                    }
                }
                last_snr = Some(snr);
            }
            if d.old_rate != d.new_rate {
                s.changes += 1;
                if let Some((from, to)) = prev_change {
                    if d.old_rate == to && d.new_rate == from {
                        reversals += 1;
                    }
                }
                prev_change = Some((d.old_rate, d.new_rate));
            }
            cur_rate = Some(d.new_rate);
            open_drops.retain(|&(t_drop, pre_rate)| {
                if d.new_rate >= pre_rate {
                    s.recovered += 1;
                    let dt = (d.t_us - t_drop) as f64 / 1e6;
                    s.recover_total_s += dt;
                    s.recover_max_s = s.recover_max_s.max(dt);
                    false
                } else {
                    true
                }
            });
        }
        let span = durations.get(&run).copied().unwrap_or_else(|| {
            let (t0, t1) = (rows[0].t_us, rows[rows.len() - 1].t_us);
            ((t1 - t0) as f64 / 1e6).max(1e-9)
        });
        s.churn_per_s = s.changes as f64 / span.max(1e-9);
        s.oscillation = if s.changes > 0 {
            reversals as f64 / s.changes as f64
        } else {
            0.0
        };
        out.insert((run, st), s);
    }
    Ok(out)
}

/// Extracts each run's duration (max interval end) from a metrics stream.
pub fn run_durations(metrics: &str) -> Result<BTreeMap<u64, f64>, String> {
    let mut out: BTreeMap<u64, f64> = BTreeMap::new();
    for row in parse_stream(metrics)? {
        if let Row::Interval(i) = row {
            let e = out.entry(i.run_idx).or_insert(0.0);
            *e = e.max(i.t1);
        }
    }
    Ok(out)
}

/// Human-readable adaptation-behavior report over a decision ledger:
/// per-station churn, oscillation score, trigger-class fractions, and
/// time-to-recover after each SNR drop of at least `drop_db` dB.
pub fn adapt_report(
    decisions: &str,
    metrics: Option<&str>,
    drop_db: f64,
) -> Result<String, String> {
    let durations = match metrics {
        Some(m) => run_durations(m)?,
        None => BTreeMap::new(),
    };
    let stats = adapt_stats(decisions, &durations, drop_db)?;
    if stats.is_empty() {
        return Err("no decision rows in the ledger".to_string());
    }
    let mut out = String::new();
    let mut runs: BTreeMap<u64, Vec<(u64, &AdaptStats)>> = BTreeMap::new();
    for ((run, st), s) in &stats {
        runs.entry(*run).or_default().push((*st, s));
    }
    for (run, stations) in &runs {
        let agg = |f: &dyn Fn(&AdaptStats) -> u64| stations.iter().map(|(_, s)| f(s)).sum::<u64>();
        let decisions = agg(&|s| s.decisions);
        let changes = agg(&|s| s.changes);
        let drops = agg(&|s| s.snr_drops);
        let recovered = agg(&|s| s.recovered);
        let churn: f64 =
            stations.iter().map(|(_, s)| s.churn_per_s).sum::<f64>() / stations.len() as f64;
        let osc: f64 =
            stations.iter().map(|(_, s)| s.oscillation).sum::<f64>() / stations.len() as f64;
        let recover_total: f64 = stations.iter().map(|(_, s)| s.recover_total_s).sum();
        let recover_max = stations
            .iter()
            .map(|(_, s)| s.recover_max_s)
            .fold(0.0, f64::max);
        let _ = writeln!(
            out,
            "run {run}: {} stations, {decisions} decisions, {changes} rate changes, \
             churn {churn:.3}/s/station, oscillation {osc:.3}",
            stations.len()
        );
        let mut triggers: BTreeMap<&str, u64> = BTreeMap::new();
        for (_, s) in stations {
            for (t, n) in &s.triggers {
                *triggers.entry(t).or_insert(0) += n;
            }
        }
        let parts: Vec<String> = triggers
            .iter()
            .map(|(t, n)| format!("{t} {n} ({:.1}%)", 100.0 * *n as f64 / decisions as f64))
            .collect();
        let _ = writeln!(out, "  triggers: {}", parts.join(", "));
        if drops > 0 {
            let mean = if recovered > 0 {
                format!("{:.4}s", recover_total / recovered as f64)
            } else {
                "n/a".to_string()
            };
            let _ = writeln!(
                out,
                "  snr drops >= {drop_db:.1} dB: {drops} \
                 (recovered {recovered}, mean time-to-recover {mean}, max {recover_max:.4}s)"
            );
        } else {
            let _ = writeln!(out, "  snr drops >= {drop_db:.1} dB: 0");
        }
        for (st, s) in stations {
            let _ = writeln!(
                out,
                "  station {st:>4}: {} decisions, {} changes, churn {:.3}/s, \
                 oscillation {:.3}, drops {} (recovered {})",
                s.decisions, s.changes, s.churn_per_s, s.oscillation, s.snr_drops, s.recovered
            );
        }
    }
    Ok(out)
}

// --- compare ----------------------------------------------------------

/// One run's aggregate figures on one side of a comparison.
#[derive(Debug, Clone, Default)]
struct RunFigures {
    goodput_bps: f64,
    retries: u64,
    drops: u64,
    churn_per_s: f64,
    mean_recover_s: Option<f64>,
}

fn run_figures(
    metrics: &str,
    decisions: &str,
    drop_db: f64,
) -> Result<BTreeMap<u64, RunFigures>, String> {
    let mut out: BTreeMap<u64, RunFigures> = BTreeMap::new();
    for row in parse_stream(metrics)? {
        if let Row::Totals(t) = row {
            let f = out.entry(t.run_idx).or_default();
            f.goodput_bps += t.goodput_bps;
            f.retries += t.retries;
            f.drops += t.drops;
        }
    }
    let durations = run_durations(metrics)?;
    let stats = adapt_stats(decisions, &durations, drop_db)?;
    let mut churn: BTreeMap<u64, (f64, usize)> = BTreeMap::new();
    let mut recover: BTreeMap<u64, (f64, u64)> = BTreeMap::new();
    for ((run, _), s) in &stats {
        let c = churn.entry(*run).or_insert((0.0, 0));
        c.0 += s.churn_per_s;
        c.1 += 1;
        let r = recover.entry(*run).or_insert((0.0, 0));
        r.0 += s.recover_total_s;
        r.1 += s.recovered;
    }
    for (run, (total, n)) in churn {
        out.entry(run).or_default().churn_per_s = total / n.max(1) as f64;
    }
    for (run, (total, n)) in recover {
        if n > 0 {
            out.entry(run).or_default().mean_recover_s = Some(total / n as f64);
        }
    }
    Ok(out)
}

/// Compares two runs' (metrics, decisions) stream pairs: per `run_idx`, a
/// league table of goodput / retries / drops / churn / time-to-recover
/// deltas. Returns `(human table, machine-readable JSONL)`.
pub fn compare(
    a_metrics: &str,
    a_decisions: &str,
    b_metrics: &str,
    b_decisions: &str,
    drop_db: f64,
) -> Result<(String, String), String> {
    let fa = run_figures(a_metrics, a_decisions, drop_db)?;
    let fb = run_figures(b_metrics, b_decisions, drop_db)?;
    let runs: std::collections::BTreeSet<u64> = fa.keys().chain(fb.keys()).copied().collect();
    if runs.is_empty() {
        return Err("no totals rows in either metrics stream".to_string());
    }
    let mut table = String::new();
    let mut jsonl = String::new();
    let _ = writeln!(
        table,
        "{:>4} {:>12} {:>12} {:>8} {:>10} {:>10} {:>8} {:>9} {:>9} {:>8} {:>11} {:>11}",
        "run",
        "goodput_a",
        "goodput_b",
        "d%",
        "retries_a",
        "retries_b",
        "d%",
        "churn_a",
        "churn_b",
        "d%",
        "recover_a",
        "recover_b"
    );
    let pct = |a: f64, b: f64| {
        if a.abs() > 1e-12 {
            100.0 * (b - a) / a
        } else if b.abs() > 1e-12 {
            f64::INFINITY
        } else {
            0.0
        }
    };
    let def = RunFigures::default();
    for run in runs {
        let a = fa.get(&run).unwrap_or(&def);
        let b = fb.get(&run).unwrap_or(&def);
        let fmt_rec = |r: Option<f64>| {
            r.map(|x| format!("{x:.4}s"))
                .unwrap_or_else(|| "n/a".to_string())
        };
        let _ = writeln!(
            table,
            "{run:>4} {:>12.3} {:>12.3} {:>+8.1} {:>10} {:>10} {:>+8.1} {:>9.3} {:>9.3} {:>+8.1} {:>11} {:>11}",
            a.goodput_bps / 1e6,
            b.goodput_bps / 1e6,
            pct(a.goodput_bps, b.goodput_bps),
            a.retries,
            b.retries,
            pct(a.retries as f64, b.retries as f64),
            a.churn_per_s,
            b.churn_per_s,
            pct(a.churn_per_s, b.churn_per_s),
            fmt_rec(a.mean_recover_s),
            fmt_rec(b.mean_recover_s),
        );
        let _ = writeln!(
            jsonl,
            "{{\"kind\":\"compare\",\"run_idx\":{run},\
             \"goodput_a_bps\":{:?},\"goodput_b_bps\":{:?},\
             \"retries_a\":{},\"retries_b\":{},\
             \"drops_a\":{},\"drops_b\":{},\
             \"churn_a_per_s\":{:?},\"churn_b_per_s\":{:?},\
             \"recover_a_s\":{},\"recover_b_s\":{}}}",
            a.goodput_bps,
            b.goodput_bps,
            a.retries,
            b.retries,
            a.drops,
            b.drops,
            a.churn_per_s,
            b.churn_per_s,
            json_opt_f64(a.mean_recover_s),
            json_opt_f64(b.mean_recover_s),
        );
    }
    let _ = writeln!(
        table,
        "(goodput Mbit/s; churn = mean rate changes/s/station; recover = mean \
         time back to the pre-drop rate after a >= {drop_db:.1} dB SNR drop)"
    );
    Ok((table, jsonl))
}

// --- resilience -------------------------------------------------------

/// One fault's lifetime within a run, paired from its start/end marker
/// rows. `end` is `None` for a fault that held to the end of the run
/// (e.g. an unbounded noise step).
#[derive(Debug, Clone)]
struct FaultWindow {
    fault: String,
    detail: String,
    start: f64,
    end: Option<f64>,
}

/// Resilience report over a fault-tagged metrics stream: per run, the
/// fault windows, the goodput dip each one caused, re-association
/// latency after AP outages, and the time for aggregate goodput to
/// recover to `threshold` (e.g. 0.9) of its pre-fault baseline after
/// the last fault ends. Returns the report and whether every
/// fault-injected run recovered — `softrate-inspect resilience` exits
/// non-zero otherwise, which is the CI gate for the fault scenarios.
pub fn resilience(metrics: &str, threshold: f64) -> Result<(String, bool), String> {
    let rows = parse_stream(metrics)?;
    // Per run: fault markers, reassociations, and the aggregate goodput
    // time series (summed across stations per interval start).
    let mut faults: BTreeMap<u64, Vec<&FaultRow>> = BTreeMap::new();
    let mut reassocs: BTreeMap<u64, Vec<&ReassocRow>> = BTreeMap::new();
    let mut series: BTreeMap<u64, BTreeMap<u64, (f64, f64)>> = BTreeMap::new();
    for r in &rows {
        match r {
            Row::Fault(f) => faults.entry(f.run_idx).or_default().push(f),
            Row::Reassoc(x) => reassocs.entry(x.run_idx).or_default().push(x),
            Row::Interval(i) => {
                let e = series
                    .entry(i.run_idx)
                    .or_default()
                    .entry(i.t0.to_bits())
                    .or_insert((i.t1, 0.0));
                e.1 += i.goodput_bps;
            }
            _ => {}
        }
    }
    if faults.is_empty() {
        return Err("no fault rows in the stream (was the run fault-injected \
                    and recorded with --metrics?)"
            .to_string());
    }
    let mut out = String::new();
    let mut all_recovered = true;
    for (run, marks) in &faults {
        // Pair start/end markers per fault class, in time order.
        let mut windows: Vec<FaultWindow> = Vec::new();
        for m in marks {
            match m.phase.as_str() {
                "start" => windows.push(FaultWindow {
                    fault: m.fault.clone(),
                    detail: m.detail.clone(),
                    start: m.t,
                    end: None,
                }),
                _ => {
                    if let Some(w) = windows
                        .iter_mut()
                        .rev()
                        .find(|w| w.fault == m.fault && w.end.is_none())
                    {
                        w.end = Some(m.t);
                    }
                }
            }
        }
        let ts = series.get(run).cloned().unwrap_or_default();
        let points: Vec<(f64, f64, f64)> = ts
            .iter()
            .map(|(t0, &(t1, g))| (f64::from_bits(*t0), t1, g))
            .collect();
        let first_fault = windows
            .iter()
            .map(|w| w.start)
            .fold(f64::INFINITY, f64::min);
        let pre: Vec<f64> = points
            .iter()
            .filter(|&&(_, t1, _)| t1 <= first_fault)
            .map(|&(_, _, g)| g)
            .collect();
        // Baseline = mean aggregate goodput over fully pre-fault
        // intervals; a fault at t=0 leaves none, in which case the run's
        // overall mean stands in (recovery then means "back to typical").
        let baseline = if pre.is_empty() {
            let all: Vec<f64> = points.iter().map(|&(_, _, g)| g).collect();
            all.iter().sum::<f64>() / all.len().max(1) as f64
        } else {
            pre.iter().sum::<f64>() / pre.len() as f64
        };
        let _ = writeln!(
            out,
            "run {run}: {} fault window(s), baseline {:.2} Mbit/s",
            windows.len(),
            baseline / 1e6
        );
        let mut last_end: Option<f64> = None;
        for w in &windows {
            let during: Vec<f64> = points
                .iter()
                .filter(|&&(t0, t1, _)| t1 > w.start && t0 < w.end.unwrap_or(f64::INFINITY))
                .map(|&(_, _, g)| g)
                .collect();
            let dip = during.iter().copied().fold(f64::INFINITY, f64::min);
            let span = match w.end {
                Some(e) => {
                    last_end = Some(last_end.unwrap_or(0.0).max(e));
                    format!("{:.3}s..{:.3}s", w.start, e)
                }
                None => format!("{:.3}s..end-of-run", w.start),
            };
            let dip_txt = if dip.is_finite() {
                format!(
                    "goodput dip to {:.2} Mbit/s ({:.0}% of baseline)",
                    dip / 1e6,
                    if baseline > 0.0 {
                        100.0 * dip / baseline
                    } else {
                        0.0
                    }
                )
            } else {
                "no interval overlaps the window".to_string()
            };
            let _ = writeln!(out, "  {} {span} [{}]: {dip_txt}", w.fault, w.detail);
        }
        if let Some(rs) = reassocs.get(run) {
            let n = rs.len();
            let mean = rs.iter().map(|r| r.outage_s).sum::<f64>() / n.max(1) as f64;
            let max = rs.iter().map(|r| r.outage_s).fold(0.0, f64::max);
            let _ = writeln!(
                out,
                "  reassociations: {n}, time-to-reassociate mean {mean:.3}s max {max:.3}s"
            );
        }
        // Recovery: the first interval starting after the last fault end
        // whose aggregate goodput is back above threshold x baseline.
        if let Some(end) = last_end {
            let recovery = points
                .iter()
                .filter(|&&(t0, _, g)| t0 >= end && g >= threshold * baseline)
                .map(|&(t0, _, _)| t0)
                .next();
            match recovery {
                Some(t) => {
                    let _ = writeln!(
                        out,
                        "  goodput recovered to >= {:.0}% of baseline {:.3}s after the \
                         last fault ended (at t={t:.3}s)",
                        100.0 * threshold,
                        t - end
                    );
                }
                None => {
                    all_recovered = false;
                    let _ = writeln!(
                        out,
                        "  NOT RECOVERED: goodput never regained {:.0}% of baseline \
                         after the last fault ended at {end:.3}s",
                        100.0 * threshold
                    );
                }
            }
        }
    }
    if !all_recovered {
        let _ = writeln!(out, "one or more runs did not recover");
    }
    Ok((out, all_recovered))
}

// --- validate ---------------------------------------------------------

/// A checked-in row schema: `kind -> field -> type`, where type is one of
/// `uint`, `int`, `number`, `string`, `bool`, `array`, optionally
/// prefixed `?` for nullable fields. Validation is strict: unknown kinds,
/// missing fields, extra fields, and type mismatches are all errors.
#[derive(Debug, Clone)]
pub struct Schema {
    kinds: BTreeMap<String, BTreeMap<String, String>>,
}

impl Schema {
    /// Parses the schema's JSON source.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = serde_json::parse_value(text).map_err(|e| e.to_string())?;
        let Value::Map(kind_entries) = &v else {
            return Err("schema must be a JSON object".to_string());
        };
        let mut kinds = BTreeMap::new();
        for (kind, fields_v) in kind_entries {
            let Value::Map(field_entries) = fields_v else {
                return Err(format!("schema `{kind}` must be an object"));
            };
            let mut fields = BTreeMap::new();
            for (f, ty_v) in field_entries {
                let Value::Str(ty) = ty_v else {
                    return Err(format!("schema {kind}.{f}: type must be a string"));
                };
                let bare = ty.strip_prefix('?').unwrap_or(ty);
                if !matches!(
                    bare,
                    "uint" | "int" | "number" | "string" | "bool" | "array"
                ) {
                    return Err(format!("schema {kind}.{f}: unknown type `{bare}`"));
                }
                fields.insert(f.clone(), ty.clone());
            }
            kinds.insert(kind.clone(), fields);
        }
        Ok(Schema { kinds })
    }

    fn type_matches(ty: &str, v: &Value) -> bool {
        match ty {
            "uint" => matches!(v, Value::UInt(_)) || matches!(v, Value::Int(i) if *i >= 0),
            "int" => matches!(v, Value::Int(_) | Value::UInt(_)),
            "number" => matches!(v, Value::Float(_) | Value::Int(_) | Value::UInt(_)),
            "string" => matches!(v, Value::Str(_)),
            "bool" => matches!(v, Value::Bool(_)),
            "array" => matches!(v, Value::Seq(_)),
            _ => false,
        }
    }

    /// Validates one JSONL line against the schema.
    pub fn validate_line(&self, line: &str) -> Result<(), String> {
        let v = serde_json::parse_value(line).map_err(|e| e.to_string())?;
        let Value::Map(m) = &v else {
            return Err("row is not an object".to_string());
        };
        let kind = match v.get("kind") {
            Some(Value::Str(s)) => s.clone(),
            _ => return Err("row has no string `kind`".to_string()),
        };
        let Some(fields) = self.kinds.get(&kind) else {
            return Err(format!("kind `{kind}` not in schema"));
        };
        for (f, ty) in fields {
            let nullable = ty.starts_with('?');
            let ty = ty.strip_prefix('?').unwrap_or(ty);
            match v.get(f) {
                None | Some(Value::Null) if nullable => {}
                None => return Err(format!("{kind}: missing field `{f}`")),
                Some(Value::Null) => return Err(format!("{kind}.{f}: null but not nullable")),
                Some(val) => {
                    if !Self::type_matches(ty, val) {
                        return Err(format!("{kind}.{f}: expected {ty}"));
                    }
                }
            }
        }
        for (f, _) in m {
            if !fields.contains_key(f) {
                return Err(format!("{kind}: unexpected field `{f}`"));
            }
        }
        Ok(())
    }

    /// Validates a whole stream; returns the number of valid rows.
    pub fn validate_stream(&self, text: &str) -> Result<usize, String> {
        let mut n = 0usize;
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            self.validate_line(line)
                .map_err(|e| format!("line {}: {e}", i + 1))?;
            n += 1;
        }
        Ok(n)
    }
}

/// Recomputes an arbitrary percentile from a serialized histogram row
/// (used by `softrate-inspect percentile`-style queries and tests).
pub fn hist_percentile(row: &HistRow, q: f64) -> f64 {
    LogHistogram::from_row(row).percentile(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{LossCause, OutcomeEvent, Recorder, RecorderConfig};

    fn sample_report() -> crate::TelemetryReport {
        let mut r = Recorder::new(RecorderConfig::default(), 2, 2);
        r.on_enqueue(0.01, 0, 2);
        r.on_outcome(
            0.02,
            OutcomeEvent {
                station: 0,
                sender: 0,
                tx_id: 1,
                rate_idx: 4,
                attempt: 1,
                acked: true,
                dropped: false,
                counts_as_data: true,
                payload_bytes: 1440,
                airtime_s: 400e-6,
                snr_db: Some(21.0),
                cause: None,
            },
        );
        r.on_outcome(
            0.03,
            OutcomeEvent {
                station: 1,
                sender: 1,
                tx_id: 2,
                rate_idx: 2,
                attempt: 1,
                acked: false,
                dropped: false,
                counts_as_data: true,
                payload_bytes: 1440,
                airtime_s: 900e-6,
                snr_db: None,
                cause: Some(LossCause::Collision),
            },
        );
        r.finish(0.5)
    }

    #[test]
    fn parse_roundtrips_every_row_kind() {
        let rep = sample_report();
        let rows = parse_stream(&rep.metrics_jsonl()).unwrap();
        assert!(rows.iter().any(|r| matches!(r, Row::Interval(_))));
        assert!(rows.iter().any(|r| matches!(r, Row::Totals(_))));
        assert!(rows.iter().any(|r| matches!(r, Row::Hist(_))));
        assert!(parse_line("{\"kind\":\"nope\"}").is_err());
        assert!(parse_line("{\"no_kind\":1}").is_err());
    }

    #[test]
    fn summarize_reports_attribution() {
        let rep = sample_report();
        let s = summarize(&rep.metrics_jsonl()).unwrap();
        assert!(s.contains("collision 1"), "{s}");
        assert!(s.contains("2 stations"), "{s}");
    }

    #[test]
    fn diff_finds_changes_and_equivalence() {
        let rep = sample_report();
        let jsonl = rep.metrics_jsonl();
        let (_, same) = diff(&jsonl, &jsonl).unwrap();
        assert!(same);
        let mut other = rep.clone();
        other.totals[0].goodput_bps += 1.0;
        let (report, same) = diff(&jsonl, &other.metrics_jsonl()).unwrap();
        assert!(!same);
        assert!(report.contains("totals run 0 station 0"), "{report}");
    }

    fn decision_line(
        t_us: u64,
        station: u64,
        old: u64,
        new: u64,
        trigger: &str,
        snr: Option<f64>,
        reason: &str,
    ) -> String {
        let row = DecisionRow {
            kind: "decision".to_string(),
            run_idx: 0,
            t_us,
            station,
            port: station,
            adapter: "SoftRate".to_string(),
            old_rate: old,
            new_rate: new,
            trigger: trigger.to_string(),
            snr_db: snr,
            ber: None,
            reason: reason.to_string(),
        };
        format!("{}\n", serde_json::to_string(&row).unwrap())
    }

    fn sample_ledger() -> String {
        // Station 0: climbs, takes a 6 dB SNR hit, sheds two rates, then
        // recovers; the 5→4→5 pair is one oscillation reversal.
        let mut s = String::new();
        s += &decision_line(100_000, 0, 4, 5, "ack", Some(22.0), "threshold-crossing");
        s += &decision_line(200_000, 0, 5, 4, "loss", Some(16.0), "threshold-crossing");
        s += &decision_line(250_000, 0, 4, 5, "ack", Some(21.5), "threshold-crossing");
        s += &decision_line(300_000, 0, 5, 3, "loss", Some(15.0), "threshold-crossing");
        s += &decision_line(500_000, 0, 3, 5, "ack", Some(21.0), "threshold-crossing");
        s += &decision_line(400_000, 1, 2, 2, "handoff_preserve", None, "ap-change");
        s
    }

    #[test]
    fn adapt_stats_measure_churn_oscillation_and_recovery() {
        let ledger = sample_ledger();
        let durations = BTreeMap::from([(0u64, 1.0f64)]);
        let stats = adapt_stats(&ledger, &durations, 5.0).unwrap();
        let s0 = &stats[&(0, 0)];
        assert_eq!(s0.decisions, 5);
        assert_eq!(s0.changes, 5);
        assert!((s0.churn_per_s - 5.0).abs() < 1e-12);
        // Three exact reversals (5->4, 4->5 revert each other; 3->5
        // reverts 5->3) out of 5 changes.
        assert!((s0.oscillation - 0.6).abs() < 1e-12, "{}", s0.oscillation);
        // Two >= 5 dB drops (22 -> 16 at 200ms, 21.5 -> 15 at 300ms); the
        // rate is back to its pre-drop value at 250ms resp. 500ms, so the
        // recover times are 0.05s and 0.2s.
        assert_eq!(s0.snr_drops, 2);
        assert_eq!(s0.recovered, 2);
        assert!((s0.mean_recover_s().unwrap() - 0.125).abs() < 1e-12);
        assert_eq!(s0.triggers["ack"], 3);
        assert_eq!(s0.triggers["loss"], 2);
        // The handoff_preserve row is not a rate change.
        let s1 = &stats[&(0, 1)];
        assert_eq!(s1.decisions, 1);
        assert_eq!(s1.changes, 0);
        let report = adapt_report(&ledger, None, 5.0).unwrap();
        assert!(report.contains("snr drops >= 5.0 dB: 2"), "{report}");
        assert!(report.contains("handoff_preserve 1"), "{report}");
    }

    #[test]
    fn timeline_aligns_and_marks_decisions() {
        let rep = sample_report();
        let ledger = sample_ledger();
        let out = timeline(&rep.metrics_jsonl(), &ledger, Some(0), Some(0)).unwrap();
        assert!(out.contains("\"kind\":\"timeline\""), "{out}");
        assert!(out.contains("\"trigger\":\"ack\""), "{out}");
        assert!(out.contains("rate |"), "{out}");
        assert!(out.contains("dec  |"), "{out}");
        // Station filter excludes station 1's handoff row.
        assert!(!out.contains("\"trigger\":\"handoff_preserve\""), "{out}");
        assert!(timeline(&rep.metrics_jsonl(), &ledger, Some(99), None).is_err());
    }

    #[test]
    fn compare_builds_league_table_and_jsonl() {
        let rep = sample_report();
        let metrics = rep.metrics_jsonl();
        let ledger = sample_ledger();
        let (table, jsonl) = compare(&metrics, &ledger, &metrics, &ledger, 5.0).unwrap();
        assert!(table.contains("goodput_a"), "{table}");
        assert!(jsonl.contains("\"kind\":\"compare\""), "{jsonl}");
        assert!(jsonl.contains("\"run_idx\":0"), "{jsonl}");
        // Identical inputs: every delta column is +0.0.
        assert!(table.contains("+0.0"), "{table}");
    }

    #[test]
    fn summarize_top_ranks_and_imbalance_fails() {
        let rep = sample_report();
        let (out, balanced) = summarize_with(&rep.metrics_jsonl(), Some((2, "retries"))).unwrap();
        assert!(balanced, "{out}");
        assert!(out.contains("top 2 stations by retries"), "{out}");
        // Station 1 has the retry; it must rank first.
        let top_block = out.split("top 2 stations").nth(1).unwrap();
        let first = top_block.lines().nth(1).unwrap();
        assert!(first.contains("station    1"), "{first}");
        // Corrupt one totals row: retries no longer match the causes.
        let mut broken = rep.clone();
        broken.totals[1].retries += 1;
        let (out, balanced) = summarize_with(&broken.metrics_jsonl(), None).unwrap();
        assert!(!balanced);
        assert!(out.contains("IMBALANCE station 1"), "{out}");
        assert!(summarize_with(&rep.metrics_jsonl(), Some((1, "nope"))).is_err());
    }

    #[test]
    fn schema_validates_and_rejects() {
        let schema = Schema::parse(
            r#"{"interval": {"kind":"string","run_idx":"uint","station":"uint",
                "t0":"number","t1":"number","attempts":"uint","frames_sent":"uint",
                "frames_delivered":"uint","retries":"uint","drops":"uint",
                "goodput_bps":"number","loss_collision":"uint","loss_fading":"uint",
                "loss_capture":"uint","loss_outage":"uint","loss_jamming":"uint",
                "rate_idx":"?uint","snr_db":"?number",
                "queue_depth":"?uint","cwnd":"?number","rto_s":"?number",
                "rtt_s":"?number","handoffs":"uint","fault":"?string"}}"#,
        )
        .unwrap();
        let rep = sample_report();
        let line = serde_json::to_string(&rep.intervals[0]).unwrap();
        schema.validate_line(&line).unwrap();
        assert!(schema.validate_line("{\"kind\":\"totals\"}").is_err());
        assert!(schema
            .validate_line("{\"kind\":\"interval\",\"t0\":\"oops\"}")
            .is_err());
        assert!(Schema::parse("{\"x\":{\"f\":\"complex\"}}").is_err());
    }

    fn interval_line(t0: f64, t1: f64, goodput_bps: f64, fault: Option<&str>) -> String {
        let row = IntervalRow {
            kind: "interval".to_string(),
            run_idx: 0,
            station: 0,
            t0,
            t1,
            attempts: 10,
            frames_sent: 10,
            frames_delivered: 9,
            retries: 1,
            drops: 0,
            goodput_bps,
            loss_collision: 1,
            loss_fading: 0,
            loss_capture: 0,
            loss_outage: 0,
            loss_jamming: 0,
            rate_idx: Some(5),
            snr_db: Some(20.0),
            queue_depth: None,
            cwnd: None,
            rto_s: None,
            rtt_s: None,
            handoffs: 0,
            fault: fault.map(str::to_string),
        };
        format!("{}\n", serde_json::to_string(&row).unwrap())
    }

    fn fault_line(t: f64, fault: &str, phase: &str, detail: &str) -> String {
        let row = FaultRow {
            kind: "fault".to_string(),
            run_idx: 0,
            t,
            fault: fault.to_string(),
            phase: phase.to_string(),
            detail: detail.to_string(),
        };
        format!("{}\n", serde_json::to_string(&row).unwrap())
    }

    /// A synthetic ap-blackout run: steady 10 Mbit/s, the AP dies from
    /// 1.0s to 2.5s (goodput collapses to 2 Mbit/s), a slow interval at
    /// 5 Mbit/s right after restart, then back to 9.5 Mbit/s at 3.0s.
    fn blackout_stream(recovers: bool) -> String {
        let mut s = String::new();
        s += &fault_line(1.0, "ap_outage", "start", "ap=1 dropped_queued=3");
        s += &fault_line(2.5, "ap_outage", "end", "ap=1");
        let row = ReassocRow {
            kind: "reassoc".to_string(),
            run_idx: 0,
            t: 1.2,
            station: 7,
            from_ap: 1,
            to_ap: 0,
            outage_s: 0.2,
        };
        s += &format!("{}\n", serde_json::to_string(&row).unwrap());
        s += &interval_line(0.0, 0.5, 10e6, None);
        s += &interval_line(0.5, 1.0, 10e6, None);
        s += &interval_line(1.0, 1.5, 2e6, Some("ap_outage"));
        s += &interval_line(1.5, 2.0, 2e6, Some("ap_outage"));
        s += &interval_line(2.0, 2.5, 2e6, Some("ap_outage"));
        s += &interval_line(2.5, 3.0, 5e6, None);
        if recovers {
            s += &interval_line(3.0, 3.5, 9.5e6, None);
        }
        s
    }

    #[test]
    fn resilience_measures_dip_reassociation_and_recovery() {
        let (out, ok) = resilience(&blackout_stream(true), 0.9).unwrap();
        assert!(ok, "{out}");
        // Baseline from the two pre-fault intervals, dip during the window.
        assert!(out.contains("baseline 10.00 Mbit/s"), "{out}");
        assert!(
            out.contains("dip to 2.00 Mbit/s (20% of baseline)"),
            "{out}"
        );
        assert!(
            out.contains("reassociations: 1, time-to-reassociate mean 0.200s max 0.200s"),
            "{out}"
        );
        // The 5 Mbit/s interval at 2.5s is below 90% of baseline; the
        // 9.5 Mbit/s one at 3.0s clears it — 0.5s after the fault ended.
        assert!(
            out.contains("recovered to >= 90% of baseline 0.500s"),
            "{out}"
        );
    }

    #[test]
    fn resilience_flags_a_run_that_never_recovers() {
        let (out, ok) = resilience(&blackout_stream(false), 0.9).unwrap();
        assert!(!ok, "{out}");
        assert!(out.contains("NOT RECOVERED"), "{out}");
        // A fault-free stream is an error, not a vacuous pass.
        let rep = sample_report();
        assert!(resilience(&rep.metrics_jsonl(), 0.9).is_err());
    }
}
