//! `softrate-inspect` — summarize, validate, diff, and analyze telemetry
//! streams, including the rate-decision ledger.
//!
//! ```text
//! softrate-inspect summarize <metrics.jsonl> [--top N] [--by COLUMN]
//! softrate-inspect diff <a.jsonl> <b.jsonl>
//! softrate-inspect validate --schema <schema.json> <file.jsonl>...
//! softrate-inspect timeline <metrics.jsonl> <decisions.jsonl>
//!                           [--station S] [--run R]
//! softrate-inspect adapt <decisions.jsonl> [--metrics m.jsonl] [--drop-db N]
//! softrate-inspect compare <a.metrics> <a.decisions> <b.metrics> <b.decisions>
//!                           [--json out.jsonl] [--drop-db N]
//! softrate-inspect resilience <metrics.jsonl> [--threshold F]
//! ```
//!
//! `summarize` prints per-run aggregates, the loss-attribution breakdown,
//! histogram percentiles (p50/p90/p95/p99), and any anomalies; `--top N`
//! ranks the N highest stations by `--by` (default `goodput`), and the
//! command exits 1 when any station's loss-attribution counts do not
//! balance its retries. `diff` aligns two metrics streams by (run,
//! station, interval) and reports divergences (exit 1 if the streams
//! differ). `validate` checks every row of every file against a
//! checked-in schema (exit 1 on the first violation). `timeline` renders
//! each station's rate-vs-SNR step series with decision markers (aligned
//! JSONL plus an ASCII sparkline). `adapt` reports churn, oscillation,
//! trigger-class fractions, and time-to-recover after SNR drops.
//! `compare` builds a per-run league table of goodput/retries/churn/
//! time-to-recover deltas between two (metrics, decisions) run pairs;
//! `--json` additionally writes machine-readable rows. `resilience`
//! reads a fault-injected metrics stream and reports, per run, each
//! fault window's goodput dip, time-to-reassociate statistics, and the
//! time for aggregate goodput to climb back above `--threshold`
//! (default 0.9) of its pre-fault baseline; it exits 1 when any run
//! never recovers, which is what CI gates the fault scenarios on.

use std::fs;
use std::process::ExitCode;

use softrate_telemetry::inspect::{
    adapt_report, compare, diff, resilience, summarize_with, timeline, Schema,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: softrate-inspect summarize <metrics.jsonl> [--top N] [--by COLUMN]\n\
         \x20      softrate-inspect diff <a.jsonl> <b.jsonl>\n\
         \x20      softrate-inspect validate --schema <schema.json> <file.jsonl>...\n\
         \x20      softrate-inspect timeline <metrics.jsonl> <decisions.jsonl> [--station S] [--run R]\n\
         \x20      softrate-inspect adapt <decisions.jsonl> [--metrics m.jsonl] [--drop-db N]\n\
         \x20      softrate-inspect compare <a.metrics> <a.decisions> <b.metrics> <b.decisions> [--json out.jsonl] [--drop-db N]\n\
         \x20      softrate-inspect resilience <metrics.jsonl> [--threshold F]"
    );
    ExitCode::from(2)
}

fn read(path: &str) -> Result<String, ExitCode> {
    fs::read_to_string(path).map_err(|e| {
        eprintln!("softrate-inspect: {path}: {e}");
        ExitCode::FAILURE
    })
}

type Flags = Vec<(String, String)>;

/// Splits `rest` into positional arguments and `--flag value` pairs.
fn split_flags(rest: &[String]) -> Result<(Vec<String>, Flags), String> {
    let mut pos = Vec::new();
    let mut flags = Vec::new();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let v = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            flags.push((name.to_string(), v.clone()));
        } else {
            pos.push(a.clone());
        }
    }
    Ok((pos, flags))
}

fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn parse_flag<T: std::str::FromStr>(
    flags: &[(String, String)],
    name: &str,
) -> Result<Option<T>, String> {
    flag(flags, name)
        .map(|v| {
            v.parse()
                .map_err(|_| format!("--{name} {v}: not a valid value"))
        })
        .transpose()
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("softrate-inspect: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let (pos, flags) = match split_flags(&args[1..]) {
        Ok(x) => x,
        Err(e) => return fail(&e),
    };
    match (cmd.as_str(), pos.as_slice()) {
        ("summarize", [path]) => {
            let text = match read(path) {
                Ok(t) => t,
                Err(c) => return c,
            };
            let top_n = match parse_flag::<usize>(&flags, "top") {
                Ok(n) => n,
                Err(e) => return fail(&e),
            };
            let by = flag(&flags, "by").unwrap_or("goodput");
            match summarize_with(&text, top_n.map(|n| (n, by))) {
                Ok((report, balanced)) => {
                    print!("{report}");
                    if balanced {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => fail(&format!("{path}: {e}")),
            }
        }
        ("diff", [a, b]) => {
            let (ta, tb) = match (read(a), read(b)) {
                (Ok(ta), Ok(tb)) => (ta, tb),
                (Err(c), _) | (_, Err(c)) => return c,
            };
            match diff(&ta, &tb) {
                Ok((report, identical)) => {
                    print!("{report}");
                    if identical {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => fail(&e),
            }
        }
        ("validate", paths) if !paths.is_empty() && flag(&flags, "schema").is_some() => {
            let schema_path = flag(&flags, "schema").expect("checked");
            let schema_text = match read(schema_path) {
                Ok(t) => t,
                Err(c) => return c,
            };
            let schema = match Schema::parse(&schema_text) {
                Ok(s) => s,
                Err(e) => return fail(&format!("{schema_path}: {e}")),
            };
            for path in paths {
                let text = match read(path) {
                    Ok(t) => t,
                    Err(c) => return c,
                };
                match schema.validate_stream(&text) {
                    Ok(n) => println!("{path}: {n} rows valid"),
                    Err(e) => return fail(&format!("{path}: {e}")),
                }
            }
            ExitCode::SUCCESS
        }
        ("timeline", [metrics, decisions]) => {
            let (tm, td) = match (read(metrics), read(decisions)) {
                (Ok(tm), Ok(td)) => (tm, td),
                (Err(c), _) | (_, Err(c)) => return c,
            };
            let station = match parse_flag::<u64>(&flags, "station") {
                Ok(s) => s,
                Err(e) => return fail(&e),
            };
            let run = match parse_flag::<u64>(&flags, "run") {
                Ok(r) => r,
                Err(e) => return fail(&e),
            };
            match timeline(&tm, &td, station, run) {
                Ok(report) => {
                    print!("{report}");
                    ExitCode::SUCCESS
                }
                Err(e) => fail(&e),
            }
        }
        ("adapt", [decisions]) => {
            let td = match read(decisions) {
                Ok(t) => t,
                Err(c) => return c,
            };
            let tm = match flag(&flags, "metrics").map(read).transpose() {
                Ok(t) => t,
                Err(c) => return c,
            };
            let drop_db = match parse_flag::<f64>(&flags, "drop-db") {
                Ok(d) => d.unwrap_or(5.0),
                Err(e) => return fail(&e),
            };
            match adapt_report(&td, tm.as_deref(), drop_db) {
                Ok(report) => {
                    print!("{report}");
                    ExitCode::SUCCESS
                }
                Err(e) => fail(&e),
            }
        }
        ("compare", [am, ad, bm, bd]) => {
            let texts: Result<Vec<String>, ExitCode> =
                [am, ad, bm, bd].iter().map(|p| read(p)).collect();
            let texts = match texts {
                Ok(t) => t,
                Err(c) => return c,
            };
            let drop_db = match parse_flag::<f64>(&flags, "drop-db") {
                Ok(d) => d.unwrap_or(5.0),
                Err(e) => return fail(&e),
            };
            match compare(&texts[0], &texts[1], &texts[2], &texts[3], drop_db) {
                Ok((table, jsonl)) => {
                    print!("{table}");
                    if let Some(out) = flag(&flags, "json") {
                        if let Err(e) = fs::write(out, &jsonl) {
                            return fail(&format!("cannot write {out}: {e}"));
                        }
                        eprintln!("[wrote {out}]");
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => fail(&e),
            }
        }
        ("resilience", [metrics]) => {
            let text = match read(metrics) {
                Ok(t) => t,
                Err(c) => return c,
            };
            let threshold = match parse_flag::<f64>(&flags, "threshold") {
                Ok(t) => t.unwrap_or(0.9),
                Err(e) => return fail(&e),
            };
            if !(0.0..=1.0).contains(&threshold) {
                return fail("--threshold must be within [0, 1]");
            }
            match resilience(&text, threshold) {
                Ok((report, recovered)) => {
                    print!("{report}");
                    if recovered {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => fail(&format!("{metrics}: {e}")),
            }
        }
        _ => usage(),
    }
}
