//! `softrate-inspect` — summarize, validate, and diff telemetry streams.
//!
//! ```text
//! softrate-inspect summarize <metrics.jsonl>
//! softrate-inspect diff <a.jsonl> <b.jsonl>
//! softrate-inspect validate --schema <schema.json> <file.jsonl>...
//! ```
//!
//! `summarize` prints per-run aggregates, the loss-attribution breakdown,
//! histogram percentiles, and any anomalies. `diff` aligns two metrics
//! streams by (run, station, interval) and reports divergences (exit 1 if
//! the streams differ). `validate` checks every row of every file against
//! a checked-in schema (exit 1 on the first violation).

use std::fs;
use std::process::ExitCode;

use softrate_telemetry::inspect::{diff, summarize, Schema};

fn usage() -> ExitCode {
    eprintln!(
        "usage: softrate-inspect summarize <metrics.jsonl>\n\
         \x20      softrate-inspect diff <a.jsonl> <b.jsonl>\n\
         \x20      softrate-inspect validate --schema <schema.json> <file.jsonl>..."
    );
    ExitCode::from(2)
}

fn read(path: &str) -> Result<String, ExitCode> {
    fs::read_to_string(path).map_err(|e| {
        eprintln!("softrate-inspect: {path}: {e}");
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match (cmd.as_str(), &args[1..]) {
        ("summarize", [path]) => {
            let text = match read(path) {
                Ok(t) => t,
                Err(c) => return c,
            };
            match summarize(&text) {
                Ok(report) => {
                    print!("{report}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("softrate-inspect: {path}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        ("diff", [a, b]) => {
            let (ta, tb) = match (read(a), read(b)) {
                (Ok(ta), Ok(tb)) => (ta, tb),
                (Err(c), _) | (_, Err(c)) => return c,
            };
            match diff(&ta, &tb) {
                Ok((report, identical)) => {
                    print!("{report}");
                    if identical {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("softrate-inspect: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        ("validate", rest) if rest.len() >= 3 && rest[0] == "--schema" => {
            let schema_text = match read(&rest[1]) {
                Ok(t) => t,
                Err(c) => return c,
            };
            let schema = match Schema::parse(&schema_text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("softrate-inspect: {}: {e}", rest[1]);
                    return ExitCode::FAILURE;
                }
            };
            for path in &rest[2..] {
                let text = match read(path) {
                    Ok(t) => t,
                    Err(c) => return c,
                };
                match schema.validate_stream(&text) {
                    Ok(n) => println!("{path}: {n} rows valid"),
                    Err(e) => {
                        eprintln!("softrate-inspect: {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
