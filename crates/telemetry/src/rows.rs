//! The serialized row types of the three telemetry streams.
//!
//! Every row carries a `kind` discriminator so a stream can be parsed
//! line-by-line without context: the metrics stream holds `"interval"`,
//! `"totals"`, `"hist"`, `"anomaly"`, `"fault"` and `"reassoc"` rows,
//! the trace stream `"frame"` rows, and the decision ledger `"decision"`
//! rows (one per
//! rate-adaptation decision). Field order is fixed by declaration order,
//! values are produced
//! deterministically by the [`crate::Recorder`], so two runs of the same
//! configuration — at any thread count — serialize byte-identically.

use serde::{Deserialize, Serialize};

/// One station's counters and gauges over one sampling interval.
///
/// Counters are attributed at *outcome* time (when the feedback window
/// closes), so a frame transmitted just before a boundary may land in the
/// next interval; gauges (`rate_idx`, `snr_db`, `queue_depth`, `cwnd`,
/// `rto_s`, `rtt_s`) hold the last value observed within the interval.
/// Stations with no activity in an interval emit no row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalRow {
    /// Row discriminator: always `"interval"`.
    pub kind: String,
    /// The run this row belongs to (stamped by the scenario engine).
    pub run_idx: u64,
    /// Station (flow) index.
    pub station: u64,
    /// Interval start, simulated seconds.
    pub t0: f64,
    /// Interval end, simulated seconds.
    pub t1: f64,
    /// MAC attempts resolved in the interval (data and feedback frames).
    pub attempts: u64,
    /// Data-frame attempts among them.
    pub frames_sent: u64,
    /// Data frames delivered intact.
    pub frames_delivered: u64,
    /// Failed attempts (each one causes a retry or a drop).
    pub retries: u64,
    /// Frames abandoned after exhausting the retry limit.
    pub drops: u64,
    /// Delivered data payload bytes × 8 / interval length, bit/s.
    pub goodput_bps: f64,
    /// Failed attempts attributed to a same-cell collision.
    pub loss_collision: u64,
    /// Failed attempts attributed to channel fading.
    pub loss_fading: u64,
    /// Failed attempts attributed to inter-cell interference capture.
    pub loss_capture: u64,
    /// Failed attempts attributed to an AP/receiver outage.
    pub loss_outage: u64,
    /// Failed attempts attributed to a jammer burst.
    pub loss_jamming: u64,
    /// Last transmit rate index observed in the interval.
    pub rate_idx: Option<u64>,
    /// Last per-frame SNR feedback observed, dB.
    pub snr_db: Option<f64>,
    /// Last MAC queue depth observed at an enqueue.
    pub queue_depth: Option<u64>,
    /// Last TCP congestion window observed, segments.
    pub cwnd: Option<f64>,
    /// Last TCP retransmission timeout observed, seconds.
    pub rto_s: Option<f64>,
    /// Last clean TCP RTT sample observed, seconds.
    pub rtt_s: Option<f64>,
    /// Handoffs completed in the interval.
    pub handoffs: u64,
    /// Comma-joined labels of the fault classes active anywhere in the
    /// interval (e.g. `"ap_outage"`, `"jammer,noise_step"`); `None` when
    /// no fault overlapped the interval — and always `None` on
    /// faults-off runs, keeping their bytes identical to before the
    /// fault subsystem existed.
    pub fault: Option<String>,
}

/// One station's whole-run totals (one row per station at run end).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TotalsRow {
    /// Row discriminator: always `"totals"`.
    pub kind: String,
    /// The run this row belongs to.
    pub run_idx: u64,
    /// Station (flow) index.
    pub station: u64,
    /// MAC attempts resolved over the run.
    pub attempts: u64,
    /// Data-frame attempts among them.
    pub frames_sent: u64,
    /// Data frames delivered intact.
    pub frames_delivered: u64,
    /// Failed attempts.
    pub retries: u64,
    /// Frames dropped after the retry limit.
    pub drops: u64,
    /// Delivered data payload bytes × 8 / run duration, bit/s.
    pub goodput_bps: f64,
    /// Failed attempts attributed to same-cell collisions.
    pub loss_collision: u64,
    /// Failed attempts attributed to channel fading.
    pub loss_fading: u64,
    /// Failed attempts attributed to inter-cell interference capture.
    pub loss_capture: u64,
    /// Failed attempts attributed to an AP/receiver outage.
    pub loss_outage: u64,
    /// Failed attempts attributed to a jammer burst.
    pub loss_jamming: u64,
    /// Handoffs completed over the run.
    pub handoffs: u64,
    /// Total air occupancy of this station's resolved attempts, seconds.
    pub air_s: f64,
}

/// One log-bucketed histogram (see [`crate::LogHistogram`]), serialized
/// as sparse `(bucket_index, count)` pairs plus precomputed percentiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistRow {
    /// Row discriminator: always `"hist"`.
    pub kind: String,
    /// The run this row belongs to.
    pub run_idx: u64,
    /// Metric name (`access_delay`, `airtime`, `tcp_rtt`).
    pub metric: String,
    /// Unit of recorded values (`s`).
    pub unit: String,
    /// Bucketing base: values below it land in the underflow bucket.
    pub base: f64,
    /// Total recorded values.
    pub count: u64,
    /// Values below `base`.
    pub underflow: u64,
    /// 50th percentile (geometric bucket midpoint).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Sparse `(bucket index, count)` pairs, ascending by index.
    pub buckets: Vec<(u64, u64)>,
}

/// An anomaly the recorder detected at an interval boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnomalyRow {
    /// Row discriminator: always `"anomaly"`.
    pub kind: String,
    /// The run this row belongs to.
    pub run_idx: u64,
    /// Station the anomaly was detected on.
    pub station: u64,
    /// End of the interval that tripped the rule, simulated seconds.
    pub t: f64,
    /// Rule that tripped: `"retry-storm"` or `"goodput-collapse"`.
    pub anomaly: String,
    /// Human-readable numbers behind the verdict.
    pub detail: String,
}

/// One frame-lifecycle trace record.
///
/// `ev` is one of `enqueue`, `defer`, `tx`, `ack`, `retry`, `drop`,
/// `tcp_ack`, `handoff`; the optional fields are populated where they
/// make sense for the event. Rows with `dump = true` were replayed out of
/// the flight-recorder ring when an anomaly fired (they may duplicate
/// rows already streamed through the station/time filter).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRow {
    /// Row discriminator: always `"frame"`.
    pub kind: String,
    /// The run this row belongs to.
    pub run_idx: u64,
    /// Event time, simulated seconds.
    pub t: f64,
    /// Station (flow) the frame belongs to.
    pub station: u64,
    /// Physical transmitter index (a station, or the AP).
    pub sender: u64,
    /// Lifecycle step.
    pub ev: String,
    /// Transmission id, for steps tied to one attempt.
    pub tx_id: Option<u64>,
    /// Transmit rate index.
    pub rate_idx: Option<u64>,
    /// The port's attempt counter at transmit time.
    pub attempt: Option<u64>,
    /// Frame air time, seconds.
    pub airtime_s: Option<f64>,
    /// Per-frame SNR feedback, dB.
    pub snr_db: Option<f64>,
    /// Loss attribution (`collision`, `fading`, `capture`, `outage`,
    /// `jamming`) on failures.
    pub cause: Option<String>,
    /// MAC queue depth after an enqueue.
    pub queue_depth: Option<u64>,
    /// This row was dumped from the flight-recorder ring on an anomaly.
    pub dump: bool,
}

/// One fault-injection lifecycle event (metrics stream).
///
/// Emitted when an injected fault starts or ends, so resilience
/// analysis can window the metrics around each disturbance without
/// re-parsing the scenario spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRow {
    /// Row discriminator: always `"fault"`.
    pub kind: String,
    /// The run this row belongs to.
    pub run_idx: u64,
    /// Event time, simulated seconds.
    pub t: f64,
    /// Fault class: `ap_outage`, `jammer`, `noise_step`, `churn_join`,
    /// or `churn_leave`.
    pub fault: String,
    /// Lifecycle phase: `"start"` or `"end"`.
    pub phase: String,
    /// Human-readable specifics (which AP, how many frames dropped,
    /// the SNR delta, ...).
    pub detail: String,
}

/// One fault-driven re-association (metrics stream): a station found a
/// new AP while its old one was dark. `outage_s` is the station's
/// time-to-reassociate — the headline resilience metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReassocRow {
    /// Row discriminator: always `"reassoc"`.
    pub kind: String,
    /// The run this row belongs to.
    pub run_idx: u64,
    /// Handoff completion time, simulated seconds.
    pub t: f64,
    /// Station that re-homed.
    pub station: u64,
    /// The AP it fled (the one that went dark).
    pub from_ap: u64,
    /// The AP it landed on.
    pub to_ap: u64,
    /// Seconds between the outage start and this re-association.
    pub outage_s: f64,
}

/// One rate-adaptation decision (the decision-ledger stream).
///
/// Emitted at the moment an adapter changes (or deliberately deviates
/// from) its current rate, or when the engine/medium overrides the
/// adapter's choice (the spatial omniscient oracle, roaming handoffs).
/// Rows appear in deterministic (time, station, call) order, so the
/// ledger is byte-identical across thread counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionRow {
    /// Row discriminator: always `"decision"`.
    pub kind: String,
    /// The run this row belongs to.
    pub run_idx: u64,
    /// Decision time, integer simulated microseconds.
    pub t_us: u64,
    /// Station (flow) the deciding port belongs to.
    pub station: u64,
    /// Port index inside the simulator (uplink/downlink ports differ).
    pub port: u64,
    /// Adapter short name ("SoftRate", "SampleRate", ...).
    pub adapter: String,
    /// Rate index before the decision.
    pub old_rate: u64,
    /// Rate index after the decision.
    pub new_rate: u64,
    /// Trigger class: `ack`, `loss`, `timeout`, `probe`,
    /// `handoff_preserve`, or `handoff_reset`.
    pub trigger: String,
    /// SNR input observed at decision time, dB (if any).
    pub snr_db: Option<f64>,
    /// BER input observed at decision time (if any).
    pub ber: Option<f64>,
    /// Adapter-specific reason code (e.g. `threshold-crossing`,
    /// `airtime-table-winner`, `silent-loss-limit`).
    pub reason: String,
}
