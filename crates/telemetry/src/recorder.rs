//! The [`Recorder`]: the seam the simulators thread telemetry through.
//!
//! One recorder observes one run. The MAC engine, the transport layer and
//! the media call its `on_*` hooks at the points where the observed facts
//! are decided (the medium knows *why* a frame died; the transport knows
//! the RTT sample); the recorder only accumulates — it never draws
//! randomness, schedules events, or feeds anything back into the
//! simulation, which is what makes the enabled and disabled paths produce
//! bit-identical runs.
//!
//! Interval sampling is *lazy*: rather than scheduling sampling events
//! (which would perturb `events_processed`), every hook first closes all
//! sampling intervals that ended strictly before its timestamp. Because
//! hook timestamps are the simulation clock — which never goes backwards —
//! closed intervals are final, and the rows come out in deterministic
//! (time, station) order regardless of host thread count.

use std::collections::VecDeque;

use crate::histogram::LogHistogram;
use crate::rows::{
    AnomalyRow, DecisionRow, FaultRow, HistRow, IntervalRow, ReassocRow, TotalsRow, TraceRow,
};

/// Why a failed attempt failed. Decided where the fate is decided: the
/// engine combines the medium's corruption bookkeeping with the feedback
/// outcome, so every failure gets exactly one cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossCause {
    /// Corrupted by a concurrent same-cell transmission.
    Collision,
    /// Lost to the channel itself (fading, noise) with no interferer.
    Fading,
    /// Corrupted by an inter-cell transmission the capture effect did not
    /// suppress (spatial media only).
    InterferenceCapture,
    /// Killed by an injected AP/receiver outage (`softrate-faults`).
    Outage,
    /// Killed by an injected jammer burst (`softrate-faults`).
    Jamming,
}

impl LossCause {
    /// Short serialized name.
    pub fn name(self) -> &'static str {
        match self {
            LossCause::Collision => "collision",
            LossCause::Fading => "fading",
            LossCause::InterferenceCapture => "capture",
            LossCause::Outage => "outage",
            LossCause::Jamming => "jamming",
        }
    }
}

/// Recorder configuration: sampling interval, trace filters, flight
/// recorder sizing, anomaly thresholds.
#[derive(Debug, Clone, PartialEq)]
pub struct RecorderConfig {
    /// Metrics sampling interval, simulated seconds.
    pub interval: f64,
    /// Whether frame-lifecycle tracing (and the flight recorder) is on.
    pub trace: bool,
    /// Whether the rate-decision ledger is on.
    pub decisions: bool,
    /// Restrict the streamed trace to one station.
    pub trace_station: Option<usize>,
    /// Streamed-trace window start, simulated seconds.
    pub trace_from: f64,
    /// Streamed-trace window end, simulated seconds.
    pub trace_until: f64,
    /// Flight-recorder ring capacity, records.
    pub ring_capacity: usize,
    /// Anomaly rule: failed attempts per station per interval at or above
    /// this trips a `retry-storm`.
    pub retry_storm: u64,
    /// Anomaly rule: a station that delivered at least this many frames
    /// in one interval and zero in the next trips a `goodput-collapse`.
    pub collapse_min_delivered: u64,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            interval: 0.1,
            trace: false,
            decisions: false,
            trace_station: None,
            trace_from: 0.0,
            trace_until: f64::INFINITY,
            ring_capacity: 4096,
            retry_storm: 64,
            collapse_min_delivered: 10,
        }
    }
}

/// Everything the telemetry of one run produced, ready to serialize.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryReport {
    /// Per-station per-interval rows, in (interval, station) order.
    pub intervals: Vec<IntervalRow>,
    /// Per-station whole-run totals.
    pub totals: Vec<TotalsRow>,
    /// Whole-run histograms (access delay, airtime, TCP RTT).
    pub hists: Vec<HistRow>,
    /// Anomalies detected at interval boundaries.
    pub anomalies: Vec<AnomalyRow>,
    /// Fault-injection lifecycle events, in event order (empty on
    /// faults-off runs).
    pub faults: Vec<FaultRow>,
    /// Fault-driven re-associations, in completion order.
    pub reassocs: Vec<ReassocRow>,
    /// Streamed + flight-recorder-dumped frame-lifecycle records.
    pub trace: Vec<TraceRow>,
    /// Rate-decision ledger rows, in decision order.
    pub decisions: Vec<DecisionRow>,
}

impl TelemetryReport {
    /// Stamps `run_idx` into every row (the scenario engine writes many
    /// runs into one stream, in run order).
    pub fn stamp_run_idx(&mut self, run_idx: u64) {
        for r in &mut self.intervals {
            r.run_idx = run_idx;
        }
        for r in &mut self.totals {
            r.run_idx = run_idx;
        }
        for r in &mut self.hists {
            r.run_idx = run_idx;
        }
        for r in &mut self.anomalies {
            r.run_idx = run_idx;
        }
        for r in &mut self.faults {
            r.run_idx = run_idx;
        }
        for r in &mut self.reassocs {
            r.run_idx = run_idx;
        }
        for r in &mut self.trace {
            r.run_idx = run_idx;
        }
        for r in &mut self.decisions {
            r.run_idx = run_idx;
        }
    }

    /// The metrics stream: interval rows, then totals, then histograms,
    /// then anomalies, then fault lifecycle events, then
    /// re-associations, one JSON object per line.
    pub fn metrics_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.intervals {
            out.push_str(&serde_json::to_string(r).expect("interval row serializes"));
            out.push('\n');
        }
        for r in &self.totals {
            out.push_str(&serde_json::to_string(r).expect("totals row serializes"));
            out.push('\n');
        }
        for r in &self.hists {
            out.push_str(&serde_json::to_string(r).expect("hist row serializes"));
            out.push('\n');
        }
        for r in &self.anomalies {
            out.push_str(&serde_json::to_string(r).expect("anomaly row serializes"));
            out.push('\n');
        }
        for r in &self.faults {
            out.push_str(&serde_json::to_string(r).expect("fault row serializes"));
            out.push('\n');
        }
        for r in &self.reassocs {
            out.push_str(&serde_json::to_string(r).expect("reassoc row serializes"));
            out.push('\n');
        }
        out
    }

    /// The trace stream: frame-lifecycle rows, one JSON object per line.
    pub fn trace_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.trace {
            out.push_str(&serde_json::to_string(r).expect("trace row serializes"));
            out.push('\n');
        }
        out
    }

    /// The decision ledger: one JSON object per rate decision.
    pub fn decisions_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.decisions {
            out.push_str(&serde_json::to_string(r).expect("decision row serializes"));
            out.push('\n');
        }
        out
    }
}

/// One resolved MAC attempt, as reported by the engine at the close of
/// the feedback window (grouped into a struct because the outcome is the
/// widest telemetry point).
#[derive(Debug, Clone, Copy)]
pub struct OutcomeEvent {
    /// Station (flow) the frame belongs to.
    pub station: usize,
    /// Physical transmitter index.
    pub sender: usize,
    /// Transmission id.
    pub tx_id: u64,
    /// Transmit rate index.
    pub rate_idx: usize,
    /// The port's attempt counter at transmit time.
    pub attempt: u64,
    /// Whether the frame was acknowledged.
    pub acked: bool,
    /// Whether a failed frame exhausted its retries and was dropped.
    pub dropped: bool,
    /// Whether the frame counts as data (vs. protocol feedback).
    pub counts_as_data: bool,
    /// On-air payload size, bytes.
    pub payload_bytes: usize,
    /// Frame air time, seconds.
    pub airtime_s: f64,
    /// Per-frame SNR feedback, dB, when the header decoded.
    pub snr_db: Option<f64>,
    /// Loss attribution; `Some` exactly when `!acked`.
    pub cause: Option<LossCause>,
}

/// One rate-adaptation decision, as reported by the engine (the engine
/// resolves the adapter's [`softrate_core`-side] decision record into
/// station/port coordinates and trigger names before calling the hook).
#[derive(Debug, Clone, Copy)]
pub struct DecisionEvent<'a> {
    /// Station (flow) the deciding port belongs to.
    pub station: usize,
    /// Port index inside the simulator.
    pub port: usize,
    /// Adapter short name.
    pub adapter: &'a str,
    /// Rate index before the decision.
    pub old_rate: usize,
    /// Rate index after the decision.
    pub new_rate: usize,
    /// Trigger class name (`ack`, `loss`, `timeout`, `probe`,
    /// `handoff_preserve`, `handoff_reset`).
    pub trigger: &'a str,
    /// SNR input at decision time, dB.
    pub snr_db: Option<f64>,
    /// BER input at decision time.
    pub ber: Option<f64>,
    /// Adapter-specific reason code.
    pub reason: &'a str,
}

/// Per-station accumulator for the open interval (and, with a different
/// lifetime, the whole run).
#[derive(Debug, Clone, Copy, Default)]
struct Accum {
    touched: bool,
    attempts: u64,
    frames_sent: u64,
    frames_delivered: u64,
    retries: u64,
    drops: u64,
    data_bytes: u64,
    loss_collision: u64,
    loss_fading: u64,
    loss_capture: u64,
    loss_outage: u64,
    loss_jamming: u64,
    handoffs: u64,
    air_s: f64,
    rate_idx: Option<u64>,
    snr_db: Option<f64>,
    queue_depth: Option<u64>,
    cwnd: Option<f64>,
    rto_s: Option<f64>,
    rtt_s: Option<f64>,
}

impl Accum {
    fn fold_into(&self, tot: &mut Accum) {
        tot.touched |= self.touched;
        tot.attempts += self.attempts;
        tot.frames_sent += self.frames_sent;
        tot.frames_delivered += self.frames_delivered;
        tot.retries += self.retries;
        tot.drops += self.drops;
        tot.data_bytes += self.data_bytes;
        tot.loss_collision += self.loss_collision;
        tot.loss_fading += self.loss_fading;
        tot.loss_capture += self.loss_capture;
        tot.loss_outage += self.loss_outage;
        tot.loss_jamming += self.loss_jamming;
        tot.handoffs += self.handoffs;
        tot.air_s += self.air_s;
    }
}

/// The per-run telemetry accumulator. See the module docs for the
/// determinism contract.
#[derive(Debug, Clone)]
pub struct Recorder {
    cfg: RecorderConfig,
    cur: Vec<Accum>,
    totals: Vec<Accum>,
    prev_delivered: Vec<u64>,
    cur_idx: u64,
    /// Per-sender start of the current channel-access period (NaN = none).
    access_start: Vec<f64>,
    h_access: LogHistogram,
    h_airtime: LogHistogram,
    h_rtt: LogHistogram,
    intervals: Vec<IntervalRow>,
    anomalies: Vec<AnomalyRow>,
    faults: Vec<FaultRow>,
    reassocs: Vec<ReassocRow>,
    /// Fault classes currently active (label per started-but-unended
    /// fault).
    active_faults: Vec<String>,
    /// Fault classes active at any point during the open interval —
    /// seeded from `active_faults` every time an interval closes.
    interval_faults: Vec<String>,
    trace: Vec<TraceRow>,
    decisions: Vec<DecisionRow>,
    ring: VecDeque<TraceRow>,
}

/// Finest histogram resolution: 1 µs (a slot is 9 µs).
const HIST_BASE_S: f64 = 1e-6;

impl Recorder {
    /// A recorder for a run with `n_stations` stations (flows) driven by
    /// `n_senders` physical transmitters.
    pub fn new(cfg: RecorderConfig, n_stations: usize, n_senders: usize) -> Self {
        assert!(cfg.interval > 0.0, "sampling interval must be positive");
        Recorder {
            cur: vec![Accum::default(); n_stations],
            totals: vec![Accum::default(); n_stations],
            prev_delivered: vec![0; n_stations],
            cur_idx: 0,
            access_start: vec![f64::NAN; n_senders],
            h_access: LogHistogram::new(HIST_BASE_S),
            h_airtime: LogHistogram::new(HIST_BASE_S),
            h_rtt: LogHistogram::new(HIST_BASE_S),
            intervals: Vec::new(),
            anomalies: Vec::new(),
            faults: Vec::new(),
            reassocs: Vec::new(),
            active_faults: Vec::new(),
            interval_faults: Vec::new(),
            trace: Vec::new(),
            decisions: Vec::new(),
            ring: VecDeque::new(),
            cfg,
        }
    }

    /// The configuration this recorder runs under.
    pub fn config(&self) -> &RecorderConfig {
        &self.cfg
    }

    // --- interval machinery -------------------------------------------

    /// Closes every interval that ended at or before `now`.
    fn advance(&mut self, now: f64) {
        let idx = (now / self.cfg.interval).floor() as u64;
        while self.cur_idx < idx {
            let t0 = self.cur_idx as f64 * self.cfg.interval;
            let t1 = (self.cur_idx + 1) as f64 * self.cfg.interval;
            self.close_interval(t0, t1);
            self.cur_idx += 1;
        }
    }

    /// Emits rows for the open interval `[t0, t1)` and resets it.
    fn close_interval(&mut self, t0: f64, t1: f64) {
        let span = (t1 - t0).max(1e-12);
        // Fault tag: every class active at any point during the interval,
        // sorted and deduplicated so the label is order-independent.
        let fault_tag = if self.interval_faults.is_empty() {
            None
        } else {
            let mut labels = self.interval_faults.clone();
            labels.sort();
            labels.dedup();
            Some(labels.join(","))
        };
        // The next interval starts with whatever is still active.
        self.interval_faults = self.active_faults.clone();
        let mut dump = false;
        for st in 0..self.cur.len() {
            let a = std::mem::take(&mut self.cur[st]);
            a.fold_into(&mut self.totals[st]);
            if a.touched {
                self.intervals.push(IntervalRow {
                    kind: "interval".to_string(),
                    run_idx: 0,
                    station: st as u64,
                    t0,
                    t1,
                    attempts: a.attempts,
                    frames_sent: a.frames_sent,
                    frames_delivered: a.frames_delivered,
                    retries: a.retries,
                    drops: a.drops,
                    goodput_bps: a.data_bytes as f64 * 8.0 / span,
                    loss_collision: a.loss_collision,
                    loss_fading: a.loss_fading,
                    loss_capture: a.loss_capture,
                    loss_outage: a.loss_outage,
                    loss_jamming: a.loss_jamming,
                    rate_idx: a.rate_idx,
                    snr_db: a.snr_db,
                    queue_depth: a.queue_depth,
                    cwnd: a.cwnd,
                    rto_s: a.rto_s,
                    rtt_s: a.rtt_s,
                    handoffs: a.handoffs,
                    fault: fault_tag.clone(),
                });
            }
            if a.retries >= self.cfg.retry_storm {
                self.anomalies.push(AnomalyRow {
                    kind: "anomaly".to_string(),
                    run_idx: 0,
                    station: st as u64,
                    t: t1,
                    anomaly: "retry-storm".to_string(),
                    detail: format!("{} failed attempts in one interval", a.retries),
                });
                dump = true;
            }
            if self.prev_delivered[st] >= self.cfg.collapse_min_delivered && a.frames_delivered == 0
            {
                self.anomalies.push(AnomalyRow {
                    kind: "anomaly".to_string(),
                    run_idx: 0,
                    station: st as u64,
                    t: t1,
                    anomaly: "goodput-collapse".to_string(),
                    detail: format!(
                        "delivered {} then 0 in the next interval",
                        self.prev_delivered[st]
                    ),
                });
                dump = true;
            }
            self.prev_delivered[st] = a.frames_delivered;
        }
        if dump && self.cfg.trace {
            // Flight recorder: replay the ring into the trace stream so
            // the records leading up to the anomaly survive even if the
            // stream filter excluded them.
            for mut row in self.ring.drain(..) {
                row.dump = true;
                self.trace.push(row);
            }
        }
    }

    // --- tracing -------------------------------------------------------

    fn trace_row(&mut self, row: TraceRow) {
        if !self.cfg.trace {
            return;
        }
        let pass = self
            .cfg
            .trace_station
            .is_none_or(|s| s as u64 == row.station)
            && row.t >= self.cfg.trace_from
            && row.t < self.cfg.trace_until;
        if self.ring.len() == self.cfg.ring_capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(row.clone());
        if pass {
            self.trace.push(row);
        }
    }

    fn frame_row(t: f64, station: usize, sender: usize, ev: &str) -> TraceRow {
        TraceRow {
            kind: "frame".to_string(),
            run_idx: 0,
            t,
            station: station as u64,
            sender: sender as u64,
            ev: ev.to_string(),
            tx_id: None,
            rate_idx: None,
            attempt: None,
            airtime_s: None,
            snr_db: None,
            cause: None,
            queue_depth: None,
            dump: false,
        }
    }

    // --- hooks ---------------------------------------------------------

    /// A frame entered a MAC queue that now holds `depth` frames.
    pub fn on_enqueue(&mut self, now: f64, station: usize, depth: usize) {
        self.advance(now);
        let a = &mut self.cur[station];
        a.touched = true;
        a.queue_depth = Some(depth as u64);
        if self.cfg.trace {
            let mut row = Self::frame_row(now, station, station, "enqueue");
            row.queue_depth = Some(depth as u64);
            self.trace_row(row);
        }
    }

    /// `sender` began contending for the channel (first backoff schedule
    /// of an access period). No-op while a period is already open.
    pub fn mark_access_start(&mut self, sender: usize, now: f64) {
        if self.access_start[sender].is_nan() {
            self.access_start[sender] = now;
        }
    }

    /// `sender` had nothing to send: the access period (if any) ends.
    pub fn clear_access_start(&mut self, sender: usize) {
        self.access_start[sender] = f64::NAN;
    }

    /// `sender` sensed the medium busy and deferred.
    pub fn on_defer(&mut self, now: f64, station: usize, sender: usize) {
        self.advance(now);
        self.cur[station].touched = true;
        if self.cfg.trace {
            self.trace_row(Self::frame_row(now, station, sender, "defer"));
        }
    }

    /// A frame went on the air: closes the sender's access period and
    /// records the access delay.
    #[allow(clippy::too_many_arguments)]
    pub fn on_tx(
        &mut self,
        now: f64,
        station: usize,
        sender: usize,
        tx_id: u64,
        rate_idx: usize,
        attempt: u64,
        airtime_s: f64,
    ) {
        self.advance(now);
        let started = self.access_start[sender];
        self.access_start[sender] = f64::NAN;
        let delay = if started.is_nan() { 0.0 } else { now - started };
        self.h_access.record(delay);
        self.cur[station].touched = true;
        if self.cfg.trace {
            let mut row = Self::frame_row(now, station, sender, "tx");
            row.tx_id = Some(tx_id);
            row.rate_idx = Some(rate_idx as u64);
            row.attempt = Some(attempt);
            row.airtime_s = Some(airtime_s);
            self.trace_row(row);
        }
    }

    /// The feedback window of an attempt closed: the widest telemetry
    /// point (counters, attribution, gauges, airtime histogram, trace).
    pub fn on_outcome(&mut self, now: f64, ev: OutcomeEvent) {
        debug_assert_eq!(ev.acked, ev.cause.is_none(), "cause iff failed");
        self.advance(now);
        self.h_airtime.record(ev.airtime_s);
        let a = &mut self.cur[ev.station];
        a.touched = true;
        a.attempts += 1;
        a.air_s += ev.airtime_s;
        a.rate_idx = Some(ev.rate_idx as u64);
        if ev.snr_db.is_some() {
            a.snr_db = ev.snr_db;
        }
        if ev.counts_as_data {
            a.frames_sent += 1;
        }
        if ev.acked {
            if ev.counts_as_data {
                a.frames_delivered += 1;
                a.data_bytes += ev.payload_bytes as u64;
            }
        } else {
            a.retries += 1;
            match ev.cause {
                Some(LossCause::Collision) => a.loss_collision += 1,
                Some(LossCause::Fading) => a.loss_fading += 1,
                Some(LossCause::InterferenceCapture) => a.loss_capture += 1,
                Some(LossCause::Outage) => a.loss_outage += 1,
                Some(LossCause::Jamming) => a.loss_jamming += 1,
                None => {}
            }
            if ev.dropped {
                a.drops += 1;
            }
        }
        if self.cfg.trace {
            let step = if ev.acked {
                "ack"
            } else if ev.dropped {
                "drop"
            } else {
                "retry"
            };
            let mut row = Self::frame_row(now, ev.station, ev.sender, step);
            row.tx_id = Some(ev.tx_id);
            row.rate_idx = Some(ev.rate_idx as u64);
            row.attempt = Some(ev.attempt);
            row.airtime_s = Some(ev.airtime_s);
            row.snr_db = ev.snr_db;
            row.cause = ev.cause.map(|c| c.name().to_string());
            self.trace_row(row);
        }
    }

    /// A TCP cumulative ACK was processed on `station`'s flow.
    pub fn on_tcp_ack(
        &mut self,
        now: f64,
        station: usize,
        rtt_s: Option<f64>,
        cwnd: f64,
        rto_s: f64,
    ) {
        self.advance(now);
        let a = &mut self.cur[station];
        a.touched = true;
        a.cwnd = Some(cwnd);
        a.rto_s = Some(rto_s);
        if let Some(rtt) = rtt_s {
            a.rtt_s = Some(rtt);
            self.h_rtt.record(rtt);
        }
        if self.cfg.trace {
            let mut row = Self::frame_row(now, station, station, "tcp_ack");
            row.airtime_s = rtt_s;
            self.trace_row(row);
        }
    }

    /// A rate-adaptation decision was made. Ledger rows are appended in
    /// call order — the engine calls this from its (single-threaded,
    /// deterministic) event loop, so the ledger is byte-identical across
    /// host thread counts. The hook touches no interval or histogram
    /// state: enabling the ledger never changes the other two streams.
    pub fn on_decision(&mut self, now: f64, ev: DecisionEvent<'_>) {
        if !self.cfg.decisions {
            return;
        }
        self.decisions.push(DecisionRow {
            kind: "decision".to_string(),
            run_idx: 0,
            t_us: (now * 1e6).round() as u64,
            station: ev.station as u64,
            port: ev.port as u64,
            adapter: ev.adapter.to_string(),
            old_rate: ev.old_rate as u64,
            new_rate: ev.new_rate as u64,
            trigger: ev.trigger.to_string(),
            snr_db: ev.snr_db,
            ber: ev.ber,
            reason: ev.reason.to_string(),
        });
    }

    /// Whether the engine should bother collecting decisions at all.
    pub fn wants_decisions(&self) -> bool {
        self.cfg.decisions
    }

    /// An injected fault started (`phase = "start"`) or ended
    /// (`phase = "end"`). Inert like every hook: records the lifecycle
    /// row and maintains the active-fault label set that tags interval
    /// rows — never touches counters or histograms.
    pub fn on_fault(&mut self, now: f64, fault: &str, phase: &str, detail: String) {
        self.advance(now);
        self.faults.push(FaultRow {
            kind: "fault".to_string(),
            run_idx: 0,
            t: now,
            fault: fault.to_string(),
            phase: phase.to_string(),
            detail,
        });
        match phase {
            "start" => {
                self.active_faults.push(fault.to_string());
                self.interval_faults.push(fault.to_string());
            }
            _ => {
                if let Some(i) = self.active_faults.iter().position(|f| f == fault) {
                    self.active_faults.remove(i);
                }
            }
        }
    }

    /// `station` re-associated away from a dark AP, `outage_s` seconds
    /// after the outage began (the time-to-reassociate metric).
    pub fn on_reassoc(
        &mut self,
        now: f64,
        station: usize,
        from_ap: usize,
        to_ap: usize,
        outage_s: f64,
    ) {
        self.advance(now);
        self.reassocs.push(ReassocRow {
            kind: "reassoc".to_string(),
            run_idx: 0,
            t: now,
            station: station as u64,
            from_ap: from_ap as u64,
            to_ap: to_ap as u64,
            outage_s,
        });
    }

    /// `station` completed a handoff.
    pub fn on_handoff(&mut self, now: f64, station: usize) {
        self.advance(now);
        let a = &mut self.cur[station];
        a.touched = true;
        a.handoffs += 1;
        if self.cfg.trace {
            self.trace_row(Self::frame_row(now, station, station, "handoff"));
        }
    }

    // --- finalization --------------------------------------------------

    /// Closes the run at `duration` seconds and produces the report:
    /// every complete interval, the final partial interval (if any),
    /// per-station totals, and the three histograms.
    pub fn finish(mut self, duration: f64) -> TelemetryReport {
        self.advance(duration);
        let t0 = self.cur_idx as f64 * self.cfg.interval;
        if duration - t0 > 1e-12 {
            self.close_interval(t0, duration);
        }
        let span = duration.max(1e-12);
        let mut totals = Vec::new();
        for (st, a) in self.totals.iter().enumerate() {
            if !a.touched {
                continue;
            }
            totals.push(TotalsRow {
                kind: "totals".to_string(),
                run_idx: 0,
                station: st as u64,
                attempts: a.attempts,
                frames_sent: a.frames_sent,
                frames_delivered: a.frames_delivered,
                retries: a.retries,
                drops: a.drops,
                goodput_bps: a.data_bytes as f64 * 8.0 / span,
                loss_collision: a.loss_collision,
                loss_fading: a.loss_fading,
                loss_capture: a.loss_capture,
                loss_outage: a.loss_outage,
                loss_jamming: a.loss_jamming,
                handoffs: a.handoffs,
                air_s: a.air_s,
            });
        }
        let hists = vec![
            self.h_access.to_row("access_delay", "s", 0),
            self.h_airtime.to_row("airtime", "s", 0),
            self.h_rtt.to_row("tcp_rtt", "s", 0),
        ];
        TelemetryReport {
            intervals: self.intervals,
            totals,
            hists,
            anomalies: self.anomalies,
            faults: self.faults,
            reassocs: self.reassocs,
            trace: self.trace,
            decisions: self.decisions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(station: usize, acked: bool, cause: Option<LossCause>) -> OutcomeEvent {
        OutcomeEvent {
            station,
            sender: station,
            tx_id: 1,
            rate_idx: 3,
            attempt: 1,
            acked,
            dropped: false,
            counts_as_data: true,
            payload_bytes: 1440,
            airtime_s: 500e-6,
            snr_db: Some(17.5),
            cause,
        }
    }

    #[test]
    fn intervals_close_lazily_and_attribute_losses() {
        let cfg = RecorderConfig {
            interval: 0.1,
            ..RecorderConfig::default()
        };
        let mut r = Recorder::new(cfg, 2, 2);
        r.on_outcome(0.05, outcome(0, true, None));
        r.on_outcome(0.07, outcome(1, false, Some(LossCause::Collision)));
        // Crossing into interval 2 closes interval 0 only.
        r.on_outcome(0.25, outcome(0, false, Some(LossCause::Fading)));
        let rep = r.finish(0.30);
        // Interval [0,0.1): both stations; [0.2,0.3): station 0.
        assert_eq!(rep.intervals.len(), 3);
        assert_eq!(rep.intervals[0].station, 0);
        assert_eq!(rep.intervals[0].frames_delivered, 1);
        assert!((rep.intervals[0].goodput_bps - 1440.0 * 8.0 / 0.1).abs() < 1e-6);
        assert_eq!(rep.intervals[1].station, 1);
        assert_eq!(rep.intervals[1].loss_collision, 1);
        assert_eq!(rep.intervals[2].t0, 0.2);
        assert_eq!(rep.intervals[2].loss_fading, 1);
        // Totals: every failure has exactly one cause.
        let t: &TotalsRow = &rep.totals[0];
        assert_eq!(
            t.retries,
            t.loss_collision + t.loss_fading + t.loss_capture + t.loss_outage + t.loss_jamming
        );
        assert_eq!(rep.hists.len(), 3);
        assert_eq!(rep.hists[1].count, 3); // airtime: one per outcome
    }

    #[test]
    fn fault_rows_tag_overlapping_intervals() {
        let cfg = RecorderConfig {
            interval: 0.1,
            ..RecorderConfig::default()
        };
        let mut r = Recorder::new(cfg, 1, 1);
        r.on_outcome(0.05, outcome(0, true, None));
        r.on_fault(0.15, "ap_outage", "start", "ap 1 down".to_string());
        r.on_outcome(0.17, outcome(0, false, Some(LossCause::Outage)));
        r.on_outcome(0.25, outcome(0, false, Some(LossCause::Jamming)));
        r.on_fault(0.28, "ap_outage", "end", "ap 1 up".to_string());
        r.on_outcome(0.35, outcome(0, true, None));
        let rep = r.finish(0.4);
        assert_eq!(rep.faults.len(), 2);
        assert_eq!(rep.faults[0].phase, "start");
        // [0,0.1): clean; [0.1,0.2) and [0.2,0.3): tagged; [0.3,0.4):
        // clean again (the fault ended in the previous interval).
        assert_eq!(rep.intervals.len(), 4);
        assert_eq!(rep.intervals[0].fault, None);
        assert_eq!(rep.intervals[1].fault, Some("ap_outage".to_string()));
        assert_eq!(rep.intervals[1].loss_outage, 1);
        assert_eq!(rep.intervals[2].fault, Some("ap_outage".to_string()));
        assert_eq!(rep.intervals[2].loss_jamming, 1);
        assert_eq!(rep.intervals[3].fault, None);
        // The five-way balance holds per interval under fault load.
        for row in &rep.intervals {
            assert_eq!(
                row.retries,
                row.loss_collision
                    + row.loss_fading
                    + row.loss_capture
                    + row.loss_outage
                    + row.loss_jamming
            );
        }
        // The metrics stream carries the lifecycle rows.
        assert!(rep.metrics_jsonl().contains("\"kind\":\"fault\""));
    }

    #[test]
    fn reassoc_rows_record_time_to_reassociate() {
        let mut r = Recorder::new(RecorderConfig::default(), 4, 4);
        r.on_reassoc(2.75, 3, 1, 0, 0.75);
        let rep = r.finish(3.0);
        assert_eq!(rep.reassocs.len(), 1);
        let row = &rep.reassocs[0];
        assert_eq!((row.station, row.from_ap, row.to_ap), (3, 1, 0));
        assert!((row.outage_s - 0.75).abs() < 1e-12);
        assert!(rep.metrics_jsonl().contains("\"kind\":\"reassoc\""));
    }

    #[test]
    fn access_delay_spans_deferrals() {
        let mut r = Recorder::new(RecorderConfig::default(), 1, 1);
        r.mark_access_start(0, 1.0);
        r.mark_access_start(0, 1.5); // ignored: period already open
        r.on_defer(1.2, 0, 0);
        r.on_tx(2.0, 0, 0, 1, 3, 1, 500e-6);
        let rep = r.finish(3.0);
        let access = &rep.hists[0];
        assert_eq!(access.count, 1);
        // Delay = 1.0 s, far above p50 of an empty histogram.
        assert!(access.p50 > 0.9 && access.p50 < 1.1, "p50 = {}", access.p50);
    }

    #[test]
    fn trace_filters_and_flight_recorder_dump() {
        let cfg = RecorderConfig {
            interval: 0.1,
            trace: true,
            trace_station: Some(1),
            retry_storm: 3,
            ..RecorderConfig::default()
        };
        let mut r = Recorder::new(cfg, 2, 2);
        // Station 0 is filtered out of the stream but rides the ring.
        for i in 0..3 {
            let mut ev = outcome(0, false, Some(LossCause::Fading));
            ev.tx_id = i;
            r.on_outcome(0.01 * (i + 1) as f64, ev);
        }
        r.on_outcome(0.05, outcome(1, true, None));
        let rep = r.finish(0.2);
        // Streamed: only station 1's ack...
        let streamed: Vec<_> = rep.trace.iter().filter(|t| !t.dump).collect();
        assert_eq!(streamed.len(), 1);
        assert_eq!(streamed[0].station, 1);
        // ...but the retry storm on station 0 dumped the ring.
        assert_eq!(rep.anomalies.len(), 1);
        assert_eq!(rep.anomalies[0].anomaly, "retry-storm");
        assert!(rep.trace.iter().filter(|t| t.dump).count() >= 3);
    }

    #[test]
    fn goodput_collapse_fires_on_silence() {
        let cfg = RecorderConfig {
            interval: 0.1,
            collapse_min_delivered: 2,
            ..RecorderConfig::default()
        };
        let mut r = Recorder::new(cfg, 1, 1);
        for i in 0..3 {
            let mut ev = outcome(0, true, None);
            ev.tx_id = i;
            r.on_outcome(0.01 * (i + 1) as f64, ev);
        }
        // Nothing in [0.1, 0.2): collapse detected at its close.
        let rep = r.finish(0.25);
        assert!(rep
            .anomalies
            .iter()
            .any(|a| a.anomaly == "goodput-collapse"));
    }

    #[test]
    fn decision_ledger_records_only_when_enabled() {
        let ev = DecisionEvent {
            station: 2,
            port: 2,
            adapter: "SoftRate",
            old_rate: 3,
            new_rate: 1,
            trigger: "loss",
            snr_db: None,
            ber: Some(2e-3),
            reason: "threshold-crossing",
        };
        let mut off = Recorder::new(RecorderConfig::default(), 4, 4);
        assert!(!off.wants_decisions());
        off.on_decision(0.123456, ev);
        assert!(off.finish(1.0).decisions.is_empty());
        let mut on = Recorder::new(
            RecorderConfig {
                decisions: true,
                ..RecorderConfig::default()
            },
            4,
            4,
        );
        assert!(on.wants_decisions());
        on.on_decision(0.123456, ev);
        let rep = on.finish(1.0);
        assert_eq!(rep.decisions.len(), 1);
        let row = &rep.decisions[0];
        assert_eq!(row.t_us, 123456);
        assert_eq!((row.old_rate, row.new_rate), (3, 1));
        assert_eq!(row.trigger, "loss");
        assert!(rep.decisions_jsonl().contains("\"kind\":\"decision\""));
    }

    #[test]
    fn report_is_deterministic_and_stampable() {
        let mk = || {
            let mut r = Recorder::new(RecorderConfig::default(), 2, 2);
            r.on_enqueue(0.01, 0, 3);
            r.on_outcome(0.02, outcome(0, true, None));
            r.on_tcp_ack(0.03, 0, Some(0.012), 4.0, 0.2);
            r.finish(1.0)
        };
        let (a, mut b) = (mk(), mk());
        assert_eq!(a, b);
        assert_eq!(a.metrics_jsonl(), b.metrics_jsonl());
        b.stamp_run_idx(7);
        assert!(b.intervals.iter().all(|r| r.run_idx == 7));
        assert!(b.metrics_jsonl().contains("\"run_idx\":7"));
    }
}
