//! Deterministic log-bucketed (HDR-style) histograms.
//!
//! Latency-shaped metrics (MAC access delay, frame airtime, TCP RTT) span
//! four-plus orders of magnitude, so linear buckets are useless and exact
//! reservoirs are nondeterministic. This histogram buckets the *ratio*
//! `value / base` by its floating-point exponent plus the top two mantissa
//! bits — four geometric sub-buckets per octave, ≤ ~9 % relative width —
//! which is pure bit arithmetic: no logarithms, no rounding-mode
//! surprises, bit-identical on every platform. Values below `base` land
//! in a dedicated underflow bucket.

use crate::rows::HistRow;
use std::collections::BTreeMap;

/// Sub-buckets per octave (top two mantissa bits).
const SUBS: u64 = 4;

/// A log-bucketed histogram over non-negative values.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    base: f64,
    underflow: u64,
    count: u64,
    buckets: BTreeMap<u64, u64>,
}

impl LogHistogram {
    /// An empty histogram whose finest resolution is `base` (values below
    /// it are counted but not resolved).
    pub fn new(base: f64) -> Self {
        assert!(base > 0.0 && base.is_finite(), "base must be positive");
        LogHistogram {
            base,
            underflow: 0,
            count: 0,
            buckets: BTreeMap::new(),
        }
    }

    /// The bucketing base.
    pub fn base(&self) -> f64 {
        self.base
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Values recorded below the base.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Records one value. Non-finite or sub-base values land in the
    /// underflow bucket.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        if !v.is_finite() || v < self.base {
            self.underflow += 1;
        } else {
            *self.buckets.entry(Self::index(v / self.base)).or_insert(0) += 1;
        }
    }

    /// Bucket index of `ratio >= 1`: exponent octave × 4 plus the top two
    /// mantissa bits.
    fn index(ratio: f64) -> u64 {
        let bits = ratio.to_bits();
        let exp = ((bits >> 52) & 0x7ff) - 1023;
        exp * SUBS + ((bits >> 50) & 0b11)
    }

    /// `[low, high)` value bounds of bucket `idx`, in recorded units.
    pub fn bounds(&self, idx: u64) -> (f64, f64) {
        let octave = (idx / SUBS) as i32;
        let sub = (idx % SUBS) as f64;
        let lo = self.base * 2f64.powi(octave) * (1.0 + sub / SUBS as f64);
        let hi = if idx % SUBS == SUBS - 1 {
            self.base * 2f64.powi(octave + 1)
        } else {
            self.base * 2f64.powi(octave) * (1.0 + (sub + 1.0) / SUBS as f64)
        };
        (lo, hi)
    }

    /// The `q`-quantile (`0 < q <= 1`) as the geometric midpoint of the
    /// bucket holding the rank-`ceil(q·count)` value; `0.0` when empty.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = self.underflow;
        if rank <= cum {
            return self.base / 2.0;
        }
        for (&idx, &c) in &self.buckets {
            cum += c;
            if rank <= cum {
                let (lo, hi) = self.bounds(idx);
                return (lo * hi).sqrt();
            }
        }
        0.0
    }

    /// Serializes into a [`HistRow`] named `metric` in `unit`.
    pub fn to_row(&self, metric: &str, unit: &str, run_idx: u64) -> HistRow {
        HistRow {
            kind: "hist".to_string(),
            run_idx,
            metric: metric.to_string(),
            unit: unit.to_string(),
            base: self.base,
            count: self.count,
            underflow: self.underflow,
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
            buckets: self.buckets.iter().map(|(&i, &c)| (i, c)).collect(),
        }
    }

    /// Reconstructs a histogram from a serialized [`HistRow`] (percentile
    /// recomputation in `softrate-inspect`).
    pub fn from_row(row: &HistRow) -> Self {
        LogHistogram {
            base: row.base,
            underflow: row.underflow,
            count: row.count,
            buckets: row.buckets.iter().map(|&(i, c)| (i, c)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_geometric_and_exhaustive() {
        let h = LogHistogram::new(1e-6);
        // 1.0x..1.25x of base is bucket 0.
        assert_eq!(LogHistogram::index(1.0), 0);
        assert_eq!(LogHistogram::index(1.24), 0);
        assert_eq!(LogHistogram::index(1.25), 1);
        assert_eq!(LogHistogram::index(1.99), 3);
        assert_eq!(LogHistogram::index(2.0), 4);
        // Bounds tile the positive axis with no gaps.
        for idx in 0..64 {
            let (lo, hi) = h.bounds(idx);
            assert!(lo < hi);
            let (next_lo, _) = h.bounds(idx + 1);
            assert!((hi - next_lo).abs() < 1e-18 * 2f64.powi((idx / 4) as i32));
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = LogHistogram::new(1e-6);
        for v in [1.3e-6, 4.7e-5, 9.1e-4, 2.2e-2, 0.67] {
            h.record(v);
        }
        // Each recorded value's bucket midpoint is within ~12.5 % of it.
        for v in [1.3e-6, 4.7e-5, 9.1e-4, 2.2e-2, 0.67] {
            let idx = LogHistogram::index(v / 1e-6);
            let (lo, hi) = h.bounds(idx);
            assert!(lo <= v && v < hi, "{v} not in [{lo},{hi})");
            assert!(hi / lo <= 1.25 + 1e-12);
        }
    }

    #[test]
    fn percentiles_walk_the_distribution() {
        let mut h = LogHistogram::new(1.0);
        for i in 1..=100 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.percentile(0.50);
        let p95 = h.percentile(0.95);
        let p99 = h.percentile(0.99);
        assert!(p50 > 40.0 && p50 < 64.0, "p50 = {p50}");
        assert!(p95 >= p50 && p95 <= p99, "p95 = {p95} must sit between");
        assert!(p99 > 90.0 && p99 <= 128.0, "p99 = {p99}");
        assert!(h.percentile(1.0) >= p99);
    }

    #[test]
    fn underflow_and_row_roundtrip() {
        let mut h = LogHistogram::new(1e-3);
        h.record(1e-5); // underflow
        h.record(2e-3);
        h.record(f64::NAN); // counted as underflow, never panics
        let row = h.to_row("m", "s", 7);
        assert_eq!(row.count, 3);
        assert_eq!(row.underflow, 2);
        assert_eq!(LogHistogram::from_row(&row), h);
    }
}
