//! The discrete-event core: a time-ordered queue with stable FIFO ordering
//! for simultaneous events.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event.
#[derive(Debug, Clone)]
pub struct Scheduled<E> {
    /// Absolute simulation time, seconds.
    pub time: f64,
    /// Monotonic sequence number breaking ties (FIFO among equal times).
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq).
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0.0,
        }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty queue at time zero with room for `capacity` pending events
    /// before the backing heap reallocates. Large simulations (the
    /// multi-cell spatial layer keeps a few events in flight per station)
    /// should size the queue up front: push/pop is the hottest loop at
    /// scale and reallocation pauses show up directly in events/sec.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            now: 0.0,
        }
    }

    /// Reserves room for at least `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Number of pending events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedules `event` at absolute time `time`. Times in the past are
    /// clamped to `now` (events fire immediately, in order).
    pub fn schedule(&mut self, time: f64, event: E) {
        let time = if time < self.now { self.now } else { time };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Schedules `event` after a delay from now.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        debug_assert!(delay >= 0.0);
        let now = self.now;
        self.schedule(now + delay, event);
    }

    /// Pops the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.time >= self.now);
        self.now = ev.time;
        Some(ev)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(1.0, 2);
        q.schedule(1.0, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.schedule(2.0, ());
        q.pop();
        assert_eq!(q.now(), 2.0);
        q.pop();
        assert_eq!(q.now(), 5.0);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut q = EventQueue::new();
        q.schedule(2.0, "later");
        q.pop();
        q.schedule(1.0, "past");
        let e = q.pop().unwrap();
        assert_eq!(e.time, 2.0, "past schedule clamps to now");
        assert_eq!(e.event, "past");
    }

    #[test]
    fn schedule_in_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule(4.0, "x");
        q.pop();
        q.schedule_in(0.5, "y");
        assert_eq!(q.pop().unwrap().time, 4.5);
    }

    #[test]
    fn with_capacity_preallocates() {
        let mut q: EventQueue<u32> = EventQueue::with_capacity(1024);
        assert!(q.capacity() >= 1024);
        let cap = q.capacity();
        for k in 0..1024 {
            q.schedule(k as f64, k);
        }
        assert_eq!(q.capacity(), cap, "no growth within the preallocation");
        q.reserve(4096);
        assert!(q.capacity() >= q.len() + 4096);
    }

    #[test]
    fn capacity_does_not_change_order() {
        let mut a: EventQueue<usize> = EventQueue::new();
        let mut b: EventQueue<usize> = EventQueue::with_capacity(64);
        for k in [5usize, 1, 3, 1, 2] {
            a.schedule(k as f64, k);
            b.schedule(k as f64, k);
        }
        let oa: Vec<usize> = std::iter::from_fn(|| a.pop().map(|e| e.event)).collect();
        let ob: Vec<usize> = std::iter::from_fn(|| b.pop().map(|e| e.event)).collect();
        assert_eq!(oa, ob);
    }
}
