//! The discrete-event core: a time-ordered queue with stable FIFO ordering
//! for simultaneous events.
//!
//! Internally a **timing wheel**: a ring of fixed-width buckets spanning
//! ~16 ms of simulated time — wider than any backoff-plus-airtime delta
//! the MAC produces — plus a small 4-ary min-heap for the far future
//! (transport timers, roaming checks). The common push appends to a
//! bucket in O(1) with no comparisons; a bucket is sorted once when the
//! cursor reaches it and then drained from the back. When the wheel goes
//! empty the cursor teleports to the overflow's minimum instead of
//! scanning empty buckets.
//!
//! Ordering is **identical** to a single global priority queue: `(time,
//! seq)` keys form a strict total order (sequence numbers are unique),
//! the bucket map `t ↦ ⌊t/width⌋` is monotone (ties in time share a
//! bucket, so FIFO resolution by `seq` happens inside one sort), and the
//! overflow heap feeds events into their buckets before the cursor can
//! reach them. Pops are therefore the exact sequence a `BinaryHeap`
//! produced. Only the constants (bucket width, wheel span) are tuning —
//! they cannot affect order, only speed.

use std::cmp::Ordering;

/// A scheduled event.
#[derive(Debug, Clone)]
pub struct Scheduled<E> {
    /// Absolute simulation time, seconds.
    pub time: f64,
    /// Monotonic sequence number breaking ties (FIFO among equal times).
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

/// Strict `(time, seq)` min-order.
#[inline]
fn before<E>(a: &Scheduled<E>, b: &Scheduled<E>) -> bool {
    matches!(
        a.time.total_cmp(&b.time).then_with(|| a.seq.cmp(&b.seq)),
        Ordering::Less
    )
}

/// Wheel size (power of two).
const WHEEL_BITS: usize = 11;
const WHEEL_BUCKETS: usize = 1 << WHEEL_BITS;

/// Bucket width, seconds. 8 µs is slot-scale: dense simulations land a
/// handful of events per bucket (one short sort each), sparse ones skip
/// empty buckets at one pointer check apiece.
const BUCKET_WIDTH: f64 = 8e-6;
const INV_BUCKET_WIDTH: f64 = 1.0 / BUCKET_WIDTH;

/// Overflow-heap arity.
const ARITY: usize = 4;

/// The bucket index of time `t` (monotone in `t`; saturates for the
/// far-future tail, which the overflow heap owns anyway).
#[inline]
fn bucket_of(t: f64) -> u64 {
    (t * INV_BUCKET_WIDTH) as u64
}

/// A deterministic event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// The bucket ring; slot `b & (WHEEL_BUCKETS-1)` holds bucket `b`'s
    /// events, unsorted, for the single in-flight wheel generation.
    slots: Vec<Vec<Scheduled<E>>>,
    /// The bucket the cursor is draining: sorted descending, popped from
    /// the back (earliest first).
    cur: Vec<Scheduled<E>>,
    /// Absolute index of the bucket `cur` was taken from.
    cur_bucket: u64,
    /// Events at least a full wheel span ahead: a 4-ary min-heap. They
    /// migrate into their bucket before the cursor can reach it.
    overflow: Vec<Scheduled<E>>,
    /// Events currently in `slots`.
    wheel_len: usize,
    len: usize,
    next_seq: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            slots: (0..WHEEL_BUCKETS).map(|_| Vec::new()).collect(),
            cur: Vec::new(),
            cur_bucket: 0,
            overflow: Vec::new(),
            wheel_len: 0,
            len: 0,
            next_seq: 0,
            now: 0.0,
        }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty queue at time zero with the non-ring tiers (the drain
    /// buffer and the far-future heap) sized for `capacity` pending
    /// events. Ring buckets warm up over the first wheel rotation and
    /// keep their storage thereafter, so steady-state push/pop is
    /// allocation-free either way.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            cur: Vec::with_capacity(capacity),
            overflow: Vec::with_capacity(capacity),
            ..Self::default()
        }
    }

    /// Reserves room for at least `additional` more pending events in the
    /// non-ring tiers.
    pub fn reserve(&mut self, additional: usize) {
        self.cur.reserve(additional);
        self.overflow.reserve(additional);
    }

    /// Pending events the non-ring tiers can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.cur.capacity() + self.overflow.capacity()
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedules `event` at absolute time `time`. Times in the past are
    /// clamped to `now` (events fire immediately, in order).
    pub fn schedule(&mut self, time: f64, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.schedule_with_seq(time, seq, event);
    }

    /// Reserves the next sequence number without scheduling anything.
    /// The shard scheduler draws every event's tie-break from *one*
    /// queue's counter (the near queue's) so that `(time, seq)` keys are
    /// globally unique and identical to the sequential engine's
    /// assignment, wherever the event is ultimately stored.
    pub fn alloc_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Schedules `event` under an externally assigned sequence number
    /// (see [`EventQueue::alloc_seq`]). Past times clamp to `now` exactly
    /// as [`EventQueue::schedule`] does.
    pub fn schedule_with_seq(&mut self, time: f64, seq: u64, event: E) {
        let time = if time < self.now { self.now } else { time };
        let ev = Scheduled { time, seq, event };
        self.len += 1;
        let b = bucket_of(time);
        if b <= self.cur_bucket {
            // `time >= now` forces `b == cur_bucket` once the cursor has
            // moved: the event joins the bucket being drained, in order.
            let at = self.cur.partition_point(|e| before(&ev, e));
            self.cur.insert(at, ev);
        } else if b < self.cur_bucket + WHEEL_BUCKETS as u64 {
            self.slots[(b & (WHEEL_BUCKETS as u64 - 1)) as usize].push(ev);
            self.wheel_len += 1;
        } else {
            self.overflow_push(ev);
        }
    }

    /// Schedules `event` after a delay from now.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        debug_assert!(delay >= 0.0);
        let now = self.now;
        self.schedule(now + delay, event);
    }

    /// Pops the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        loop {
            if let Some(ev) = self.cur.pop() {
                self.len -= 1;
                debug_assert!(ev.time >= self.now);
                self.now = ev.time;
                return Some(ev);
            }
            if self.len == 0 {
                return None;
            }
            self.advance();
        }
    }

    /// The `(time, seq)` key of the next event without popping it. Loads
    /// the next bucket if needed (amortized against the pop that follows);
    /// the clock does not move.
    pub fn peek_key(&mut self) -> Option<(f64, u64)> {
        loop {
            if let Some(ev) = self.cur.last() {
                return Some((ev.time, ev.seq));
            }
            if self.len == 0 {
                return None;
            }
            self.advance();
        }
    }

    /// Pops every event with `time <= until` into `out`, in the exact
    /// `(time, seq)` order a pop loop would produce, and advances the
    /// clock to `until` (so later schedules clamp identically whether or
    /// not the drained span held events). Used by the shard scheduler to
    /// empty a domain wheel up to the window horizon in one pass.
    pub fn drain_until(&mut self, until: f64, out: &mut Vec<Scheduled<E>>) {
        loop {
            match self.peek_key() {
                Some((t, _)) if t <= until => {
                    let ev = self.cur.pop().expect("peek_key loaded cur");
                    self.len -= 1;
                    self.now = ev.time;
                    out.push(ev);
                }
                _ => break,
            }
        }
        if until > self.now {
            self.now = until;
        }
    }

    /// Advances the clock to `t` without popping (the shard scheduler
    /// dispatches merged events that never transit this queue, and keeps
    /// the clock honest so `schedule_in`/past-clamping behave exactly as
    /// in the sequential engine). `t` must not precede any pending event.
    pub fn force_now(&mut self, t: f64) {
        debug_assert!(t >= self.now, "clock can only move forward");
        debug_assert!(
            self.cur.last().is_none_or(|ev| ev.time >= t),
            "force_now must not pass a pending event"
        );
        self.now = t;
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Moves the cursor to the next non-empty bucket and loads it into
    /// the drain buffer.
    fn advance(&mut self) {
        if self.wheel_len == 0 {
            // Nothing on the wheel: teleport to the overflow's earliest
            // bucket instead of walking empty slots.
            debug_assert!(!self.overflow.is_empty());
            self.cur_bucket = bucket_of(self.overflow[0].time);
        } else {
            self.cur_bucket += 1;
        }
        // Let far-future events whose bucket just became representable
        // enter the ring.
        let limit = self.cur_bucket + WHEEL_BUCKETS as u64;
        while let Some(top) = self.overflow.first() {
            if bucket_of(top.time) >= limit {
                break;
            }
            let ev = self.overflow_pop();
            let b = bucket_of(ev.time);
            if b <= self.cur_bucket {
                self.cur.push(ev); // lands in the bucket being loaded
            } else {
                self.slots[(b & (WHEEL_BUCKETS as u64 - 1)) as usize].push(ev);
                self.wheel_len += 1;
            }
        }
        let slot = &mut self.slots[(self.cur_bucket & (WHEEL_BUCKETS as u64 - 1)) as usize];
        if !slot.is_empty() {
            self.wheel_len -= slot.len();
            self.cur.append(slot);
        }
        if !self.cur.is_empty() {
            // Descending, so pops come off the back earliest-first.
            self.cur
                .sort_unstable_by(|a, b| b.time.total_cmp(&a.time).then_with(|| b.seq.cmp(&a.seq)));
        }
    }

    fn overflow_push(&mut self, ev: Scheduled<E>) {
        self.overflow.push(ev);
        let mut i = self.overflow.len() - 1;
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if before(&self.overflow[i], &self.overflow[parent]) {
                self.overflow.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn overflow_pop(&mut self) -> Scheduled<E> {
        let n = self.overflow.len();
        self.overflow.swap(0, n - 1);
        let ev = self.overflow.pop().expect("overflow non-empty");
        let n = self.overflow.len();
        let mut i = 0;
        loop {
            let first = ARITY * i + 1;
            if first >= n {
                break;
            }
            let mut min = first;
            for c in (first + 1)..(first + ARITY).min(n) {
                if before(&self.overflow[c], &self.overflow[min]) {
                    min = c;
                }
            }
            if before(&self.overflow[min], &self.overflow[i]) {
                self.overflow.swap(i, min);
                i = min;
            } else {
                break;
            }
        }
        ev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(1.0, 2);
        q.schedule(1.0, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.schedule(2.0, ());
        q.pop();
        assert_eq!(q.now(), 2.0);
        q.pop();
        assert_eq!(q.now(), 5.0);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut q = EventQueue::new();
        q.schedule(2.0, "later");
        q.pop();
        q.schedule(1.0, "past");
        let e = q.pop().unwrap();
        assert_eq!(e.time, 2.0, "past schedule clamps to now");
        assert_eq!(e.event, "past");
    }

    #[test]
    fn schedule_in_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule(4.0, "x");
        q.pop();
        q.schedule_in(0.5, "y");
        assert_eq!(q.pop().unwrap().time, 4.5);
    }

    #[test]
    fn with_capacity_preallocates() {
        let mut q: EventQueue<u32> = EventQueue::with_capacity(1024);
        assert!(q.capacity() >= 1024);
        for k in 0..1024 {
            q.schedule(k as f64, k);
        }
        q.reserve(4096);
        assert!(q.capacity() >= q.len() + 4096);
    }

    #[test]
    fn capacity_does_not_change_order() {
        let mut a: EventQueue<usize> = EventQueue::new();
        let mut b: EventQueue<usize> = EventQueue::with_capacity(64);
        for k in [5usize, 1, 3, 1, 2] {
            a.schedule(k as f64, k);
            b.schedule(k as f64, k);
        }
        let oa: Vec<usize> = std::iter::from_fn(|| a.pop().map(|e| e.event)).collect();
        let ob: Vec<usize> = std::iter::from_fn(|| b.pop().map(|e| e.event)).collect();
        assert_eq!(oa, ob);
    }

    /// The wheel tiers must be invisible: interleaved pushes and pops
    /// with deltas that exercise the current bucket, the ring, and the
    /// overflow heap produce the exact `(time, seq)` order a single
    /// sorted list would.
    #[test]
    fn wheel_matches_reference_order_under_churn() {
        let mut q = EventQueue::new();
        let mut reference: Vec<(u64, u64)> = Vec::new(); // (time bits, seq)
        let mut popped: Vec<(u64, u64)> = Vec::new();
        let mut x: u64 = 0x1234_5678_9ABC_DEF0;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut seq = 0u64;
        let mut now = 0.0f64;
        #[allow(clippy::explicit_counter_loop)] // `seq` mirrors the queue's own counter
        for round in 0..4000u64 {
            // Mixed deltas: same-bucket, slot-scale, frame-scale, beyond
            // the wheel span — plus repeated constants for exact ties.
            let delta = match round % 8 {
                0 => 0.0,
                1 | 2 => (rng() % 200) as f64 * 1e-6,
                3 | 4 => 1e-3 + (rng() % 2000) as f64 * 1e-6,
                5 => 0.25, // overflow territory
                6 => 40.0, // deep overflow
                _ => 5e-5, // repeated constant → frequent exact ties
            };
            let t = now + delta;
            q.schedule(t, seq);
            reference.push((t.to_bits(), seq));
            seq += 1;
            if round % 3 == 0 {
                let e = q.pop().expect("queue populated");
                now = e.time;
                popped.push((e.time.to_bits(), e.event));
            }
        }
        while let Some(e) = q.pop() {
            popped.push((e.time.to_bits(), e.event));
        }
        reference.sort_unstable();
        assert_eq!(popped, reference, "pop order must equal the total order");
    }

    /// `drain_until` must deliver the exact `(time, seq)` sequence a pop
    /// loop bounded by the same horizon would, across every tier (current
    /// bucket, ring, overflow) and across interleaved re-schedules — the
    /// shard scheduler's window drain depends on this being indistinguishable
    /// from sequential popping.
    #[test]
    fn drain_until_matches_pop_loop_reference() {
        let mut x: u64 = 0x0BAD_5EED_0BAD_5EED;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut drained: EventQueue<u64> = EventQueue::new();
        let mut popper: EventQueue<u64> = EventQueue::new();
        let mut tag = 0u64;
        let mut now = 0.0f64;
        for window in 0..200u64 {
            // A burst of mixed-horizon events, identical into both queues.
            for _ in 0..(rng() % 12) {
                let delta = match rng() % 5 {
                    0 => 0.0,
                    1 => (rng() % 50) as f64 * 1e-6,
                    2 => 1e-3 + (rng() % 500) as f64 * 1e-6,
                    3 => 0.1,  // overflow tier
                    _ => 3e-5, // repeated constant: exact ties
                };
                drained.schedule(now + delta, tag);
                popper.schedule(now + delta, tag);
                tag += 1;
            }
            let horizon = window as f64 * 2e-4;
            let mut batch: Vec<Scheduled<u64>> = Vec::new();
            drained.drain_until(horizon, &mut batch);
            let got: Vec<(u64, u64)> = batch.iter().map(|e| (e.time.to_bits(), e.event)).collect();
            // Reference: a guarded pop loop over the twin queue.
            let mut want: Vec<(u64, u64)> = Vec::new();
            while popper.peek_key().is_some_and(|(t, _)| t <= horizon) {
                let ev = popper.pop().expect("peeked non-empty");
                want.push((ev.time.to_bits(), ev.event));
            }
            assert_eq!(got, want, "window {window} diverged");
            assert_eq!(drained.len(), popper.len());
            now = horizon;
        }
    }

    /// `alloc_seq` + `schedule_with_seq` must reproduce `schedule`'s
    /// assignment exactly (one shared counter, FIFO ties), and `peek_key`
    /// must never disturb pop order.
    #[test]
    fn external_seq_assignment_matches_internal() {
        let mut a: EventQueue<u32> = EventQueue::new();
        let mut b: EventQueue<u32> = EventQueue::new();
        for k in [3u32, 1, 1, 4, 1, 5, 2] {
            a.schedule(k as f64, k);
            let seq = b.alloc_seq();
            b.schedule_with_seq(k as f64, seq, k);
        }
        loop {
            assert_eq!(a.peek_key(), b.peek_key());
            let (x, y) = (a.pop(), b.pop());
            match (x, y) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    assert_eq!(
                        (x.time.to_bits(), x.seq, x.event),
                        (y.time.to_bits(), y.seq, y.event)
                    );
                }
                _ => panic!("queues diverged in length"),
            }
        }
    }

    #[test]
    fn wheel_teleports_over_long_idle_gaps() {
        let mut q = EventQueue::new();
        q.schedule(1e-5, "a");
        q.schedule(900.0, "far"); // ~10^8 buckets away
        assert_eq!(q.pop().unwrap().event, "a");
        // This pop must not walk the gap bucket-by-bucket.
        let t0 = std::time::Instant::now();
        assert_eq!(q.pop().unwrap().event, "far");
        assert!(t0.elapsed().as_millis() < 100, "teleport, not scan");
        assert!(q.pop().is_none());
    }
}
