//! MAC timing model: 802.11a/g-like constants and air-time computation.
//!
//! Regardless of the OFDM mode a *trace* was collected in, the simulator
//! times frames in the 20 MHz simulation mode (like the paper's ns-3 setup,
//! which keeps 802.11 timing and takes only frame *fates* from the traces).

use softrate_phy::frame::frame_airtime_secs;
use softrate_phy::ofdm::SIMULATION;
use softrate_phy::rates::{BitRate, PAPER_RATES};

/// Slot time, seconds (802.11a: 9 us).
pub const SLOT: f64 = 9e-6;
/// Short inter-frame space (802.11a: 16 us).
pub const SIFS: f64 = 16e-6;
/// DCF inter-frame space (SIFS + 2 slots).
pub const DIFS: f64 = SIFS + 2.0 * SLOT;
/// Minimum contention window (slots - 1).
pub const CW_MIN: u32 = 15;
/// Maximum contention window.
pub const CW_MAX: u32 = 1023;
/// Link-layer retry limit before a frame is dropped.
pub const MAX_RETRIES: u32 = 7;

/// Link-layer feedback frame payload: a 32-bit BER plus addressing already
/// in the header (paper §4.1: the ACK carries "a 32-bit estimate of the
/// received frame's interference-free bit error rate").
pub const FEEDBACK_PAYLOAD: usize = 4;

/// TCP/IP header bytes added to each segment on the air.
pub const IP_TCP_HEADER: usize = 40;

/// Air time of a data frame of `payload` bytes at `rate`.
pub fn data_airtime(rate: BitRate, payload: usize, postamble: bool) -> f64 {
    frame_airtime_secs(&SIMULATION, rate, payload, postamble)
}

/// Air time of the base-rate feedback/ACK frame.
pub fn feedback_airtime() -> f64 {
    frame_airtime_secs(&SIMULATION, PAPER_RATES[0], FEEDBACK_PAYLOAD, false)
}

/// Air time of an RTS/CTS exchange (two minimal base-rate frames plus two
/// SIFS gaps).
pub fn rts_cts_overhead() -> f64 {
    2.0 * frame_airtime_secs(&SIMULATION, PAPER_RATES[0], 0, false) + 2.0 * SIFS
}

/// The complete cost of one delivery attempt at `rate` excluding backoff:
/// DIFS + (optional RTS/CTS) + data + SIFS + feedback.
pub fn attempt_airtime(rate: BitRate, payload: usize, postamble: bool, rts: bool) -> f64 {
    DIFS + if rts { rts_cts_overhead() } else { 0.0 }
        + data_airtime(rate, payload, postamble)
        + SIFS
        + feedback_airtime()
}

/// Loss-free per-frame air times for each paper rate (the cost model given
/// to SampleRate and RRAA).
pub fn lossless_airtimes(payload: usize) -> Vec<f64> {
    PAPER_RATES
        .iter()
        .map(|&r| attempt_airtime(r, payload, false, false))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn difs_is_sifs_plus_two_slots() {
        assert!((DIFS - 34e-6).abs() < 1e-12);
    }

    #[test]
    fn airtime_decreases_with_rate() {
        let times = lossless_airtimes(1440);
        for w in times.windows(2) {
            assert!(
                w[1] < w[0],
                "faster rate must cost less air time: {times:?}"
            );
        }
    }

    #[test]
    fn throughput_upper_bound_is_sane() {
        // At 36 Mbps with 1440-byte frames, the per-frame cost bounds MAC
        // throughput somewhere between 15 and 30 Mbps.
        let t = attempt_airtime(PAPER_RATES[5], 1440, false, false);
        let thr = 1400.0 * 8.0 / t;
        assert!(thr > 15e6 && thr < 30e6, "throughput bound {thr}");
    }

    #[test]
    fn feedback_is_short() {
        let f = feedback_airtime();
        assert!(f < 100e-6, "feedback frame too long: {f}");
        assert!(f > 10e-6);
    }

    #[test]
    fn rts_cts_costs_less_than_data() {
        assert!(rts_cts_overhead() < data_airtime(PAPER_RATES[0], 1440, false));
    }

    #[test]
    fn postamble_costs_one_symbol() {
        let with = data_airtime(PAPER_RATES[3], 1440, true);
        let without = data_airtime(PAPER_RATES[3], 1440, false);
        assert!((with - without - 8e-6).abs() < 1e-12);
    }
}
