//! The pluggable transport layer: what the wireless frames *carry*.
//!
//! The MAC engine ([`crate::mac::MacEngine`]) deliberately knows nothing
//! about traffic — it moves opaque frames and reports their fates. This
//! module owns everything above it: per-flow TCP NewReno endpoints
//! ([`crate::tcp`]), the saturated-UDP source, a non-saturated Poisson
//! on–off source for bursty workloads, the wired AP↔LAN segment of the
//! Figure 12 topology, and the RTO timer plumbing. Both media — the
//! trace-backed single-cell [`crate::netsim`] and the streaming spatial
//! simulator in `softrate-net` — drive the *same* [`TransportLayer`]
//! through the [`TransportHost`] seam, so the paper's transport-coupled
//! dynamics (§6.2–§6.3 measure TCP bulk transfers, not UDP) are one
//! implementation, not two.
//!
//! RTO semantics follow RFC 6298 §5: the retransmission timer restarts
//! only when an ACK acknowledges *new* data or when a (re)transmission is
//! (re)armed after firing — never merely because the flow was pumped. A
//! stalled flow fed a steady stream of sub-threshold duplicate ACKs
//! therefore still times out (the regression tests below pin this; the
//! pre-extraction `netsim` re-armed on every pump and never fired).

use softrate_trace::schema::hash_uniform;

use crate::config::TrafficKind;
use crate::tcp::{TcpConfig, TcpReceiver, TcpSender};
use crate::timing::IP_TCP_HEADER;

/// On-air bytes of a bare TCP ACK (IP + TCP headers, no payload).
pub const ACK_BYTES: usize = 40;

/// Payload of a wireless MAC frame, as the transport layer sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Payload {
    /// A data segment (TCP segment or UDP/on–off datagram).
    Segment(u64),
    /// A TCP cumulative ACK.
    Ack(u64),
}

impl Payload {
    /// Whether this frame counts as data (drives `frames_sent`/audits).
    pub fn is_segment(&self) -> bool {
        matches!(self, Payload::Segment(_))
    }

    /// On-air bytes of this payload for `mss`-byte segments.
    pub fn on_air_bytes(&self, mss: usize) -> usize {
        match self {
            Payload::Segment(_) => mss + IP_TCP_HEADER,
            Payload::Ack(_) => ACK_BYTES,
        }
    }
}

/// Transport-layer events. Media wrap these in their own event type and
/// route them back through [`TransportLayer::on_event`].
#[derive(Debug, Clone, Copy)]
pub enum TransportEv {
    /// A packet crossed the wired AP↔LAN link.
    WiredDeliver {
        /// Flow index.
        flow: usize,
        /// Data segment (`true`) or TCP ACK (`false`).
        payload_is_segment: bool,
        /// Segment sequence number or cumulative ACK value.
        value: u64,
        /// Direction: toward the LAN host (`true`) or toward the AP.
        to_lan: bool,
    },
    /// TCP retransmission timer (epoch 0 is the kickoff pseudo-timer).
    Rto {
        /// Flow index.
        flow: usize,
        /// Timer epoch; stale epochs are ignored.
        epoch: u64,
    },
    /// A datagram arrival at a non-saturated (on–off) source.
    Arrival {
        /// Flow index.
        flow: usize,
    },
}

/// What the transport layer needs from the medium it runs over: the MAC
/// queue surface (lengths and enqueue-with-sender-poke) plus event
/// scheduling. Implementations are small adapter structs borrowing the
/// medium's queues and the engine core.
pub trait TransportHost {
    /// Current simulation time.
    fn now(&self) -> f64;
    /// Frames queued on wireless link `link`.
    fn queue_len(&self, link: usize) -> usize;
    /// Queues `payload` on wireless link `link` and wakes its sender.
    fn enqueue(&mut self, link: usize, payload: Payload);
    /// Schedules a transport event `delay` seconds from now.
    fn schedule_in(&mut self, delay: f64, ev: TransportEv);
    /// The engine's telemetry recorder, when one is installed (hosts that
    /// hold a [`crate::mac::MacCore`] forward its recorder; the default
    /// keeps telemetry off).
    fn recorder(&mut self) -> Option<&mut softrate_telemetry::Recorder> {
        None
    }
}

/// Transport configuration, shared by every medium.
#[derive(Debug, Clone, Copy)]
pub struct TransportConfig {
    /// Workload every flow carries.
    pub traffic: TrafficKind,
    /// `true`: stations send to LAN hosts; `false`: LAN hosts send to
    /// stations.
    pub upload: bool,
    /// TCP parameters (also defines the segment size for UDP/on–off).
    pub tcp: TcpConfig,
    /// MAC queue capacity per wireless link, frames.
    pub queue_cap: usize,
    /// Wired link rate, bit/s.
    pub wired_rate_bps: f64,
    /// Wired one-way propagation delay, seconds.
    pub wired_delay: f64,
    /// Seed for transport-level randomness (on–off arrival draws).
    pub seed: u64,
}

impl TransportConfig {
    /// The multi-cell flow-traffic defaults: Figure 12's TCP parameters
    /// and queue cap over an enterprise-grade wired backhaul (1 Gbit/s,
    /// 2 ms) — the wired segment must never be the bottleneck of a whole
    /// floor, the way the paper's single-cell 50 Mbit/s link never is for
    /// one AP. The scenario engine, the `netscale --traffic` ladders, and
    /// the spatial tests all build from this one constructor so they
    /// measure the same topology.
    pub fn enterprise(traffic: TrafficKind, upload: bool, seed: u64) -> Self {
        TransportConfig {
            traffic,
            upload,
            tcp: TcpConfig::default(),
            queue_cap: 50,
            wired_rate_bps: 1e9,
            wired_delay: 0.002,
            seed,
        }
    }
}

/// One flow and its endpoints.
#[derive(Debug)]
struct Flow {
    sender: TcpSender,
    receiver: TcpReceiver,
    /// Epoch counter invalidating stale RTO timer events.
    rto_epoch: u64,
    /// Whether an RTO timer with the current epoch is scheduled.
    rto_armed: bool,
    /// Wireless link carrying this flow's data segments.
    data_link: usize,
    /// Wireless link carrying this flow's TCP ACKs.
    ack_link: usize,
    /// Next datagram sequence (UDP / on–off traffic).
    dgram_next: u64,
    /// Datagrams delivered end to end (UDP / on–off traffic).
    dgram_delivered: u64,
    /// Datagrams dropped at a full source queue (on–off traffic).
    dgram_dropped: u64,
    /// On–off: active-time coordinate of the last scheduled arrival.
    active_cursor: f64,
    /// On–off: arrival draws consumed (keys the deterministic stream).
    arrival_draws: u64,
    /// On–off: this flow's fixed duty-cycle phase offset, seconds.
    phase: f64,
}

/// The transport layer: every flow's state machines plus the wired hop.
///
/// Owns no wireless state at all — MAC queues stay with the medium and are
/// reached through the [`TransportHost`] seam, which is what lets the
/// trace-backed and spatial media share this implementation verbatim.
pub struct TransportLayer {
    cfg: TransportConfig,
    flows: Vec<Flow>,
    /// Wired link busy horizon toward the LAN.
    wired_busy_to_lan: f64,
    /// Wired link busy horizon toward the AP.
    wired_busy_to_ap: f64,
}

impl TransportLayer {
    /// A transport over `links`: one `(data_link, ack_link)` wireless link
    /// pair per flow (link ids live in the medium's queue space).
    pub fn new(cfg: TransportConfig, links: impl IntoIterator<Item = (usize, usize)>) -> Self {
        // Each on–off flow's duty cycle is phase-staggered by a fixed,
        // deterministic offset (zero for the other traffic models).
        let cycle = match cfg.traffic {
            TrafficKind::OnOff { on_s, off_s, .. } => on_s + off_s,
            _ => 0.0,
        };
        let flows = links
            .into_iter()
            .enumerate()
            .map(|(flow, (data_link, ack_link))| Flow {
                sender: TcpSender::new(cfg.tcp),
                receiver: TcpReceiver::new(cfg.tcp.rcv_wnd.max(1.0) as u64),
                rto_epoch: 0,
                rto_armed: false,
                data_link,
                ack_link,
                dgram_next: 0,
                dgram_delivered: 0,
                dgram_dropped: 0,
                active_cursor: 0.0,
                arrival_draws: 0,
                phase: hash_uniform(&[cfg.seed ^ 0x0FF5_E70F, flow as u64, 0]) * cycle,
            })
            .collect();
        TransportLayer {
            cfg,
            flows,
            wired_busy_to_lan: 0.0,
            wired_busy_to_ap: 0.0,
        }
    }

    /// Number of flows.
    pub fn n_flows(&self) -> usize {
        self.flows.len()
    }

    /// The configuration this transport runs under.
    pub fn config(&self) -> &TransportConfig {
        &self.cfg
    }

    /// Segments delivered end to end on `flow` (TCP goodput counts unique
    /// segments at the sender; datagram traffic counts deliveries).
    pub fn delivered_segments(&self, flow: usize) -> u64 {
        match self.cfg.traffic {
            TrafficKind::Tcp => self.flows[flow].sender.delivered,
            TrafficKind::UdpBulk | TrafficKind::OnOff { .. } => self.flows[flow].dgram_delivered,
        }
    }

    /// Goodput of `flow` over `duration` seconds, bit/s (MSS payload bits
    /// per delivered segment).
    pub fn flow_goodput_bps(&self, flow: usize, duration: f64) -> f64 {
        self.delivered_segments(flow) as f64 * self.cfg.tcp.mss as f64 * 8.0 / duration
    }

    /// Total RTO expiries across all flows (diagnostics / tests).
    pub fn total_timeouts(&self) -> u64 {
        self.flows.iter().map(|f| f.sender.timeouts).sum()
    }

    /// Datagrams dropped at full source queues (on–off traffic).
    pub fn source_drops(&self, flow: usize) -> u64 {
        self.flows[flow].dgram_dropped
    }

    /// On-air bytes of `payload` under this transport's segment size.
    pub fn payload_bytes(&self, payload: Payload) -> usize {
        payload.on_air_bytes(self.cfg.tcp.mss)
    }

    /// Schedules the initial events: staggered flow kicks (TCP/UDP) or the
    /// first source arrivals (on–off), then primes every flow's queue.
    pub fn kickoff<H: TransportHost>(&mut self, host: &mut H) {
        for f in 0..self.flows.len() {
            match self.cfg.traffic {
                TrafficKind::OnOff { .. } => self.schedule_next_arrival(host, f),
                _ => {
                    let t0 = 0.002 * f as f64;
                    host.schedule_in(t0, TransportEv::Rto { flow: f, epoch: 0 });
                }
            }
        }
        for f in 0..self.flows.len() {
            self.pump_flow(host, f);
        }
    }

    /// Moves sendable data of `flow` toward its data link: tops up the MAC
    /// queue (UDP), or walks the TCP window (segments enter the uplink
    /// queue directly on uploads, cross the wire first on downloads). Keeps
    /// the RTO timer armed — without restarting one already running
    /// (RFC 6298 §5.1: start on send only if the timer is *not* running).
    pub fn pump_flow<H: TransportHost>(&mut self, host: &mut H, flow: usize) {
        let now = host.now();
        let data_link = self.flows[flow].data_link;
        let upload = self.cfg.upload;
        match self.cfg.traffic {
            TrafficKind::UdpBulk => {
                // Saturated source: keep the data link's MAC queue topped
                // up. The queue lives at whichever node originates the data
                // (station for uploads, AP for downloads); there is no
                // transport-layer feedback and no retransmission timer.
                while host.queue_len(data_link) < self.cfg.queue_cap {
                    let seq = self.flows[flow].dgram_next;
                    self.flows[flow].dgram_next += 1;
                    host.enqueue(data_link, Payload::Segment(seq));
                }
                return;
            }
            TrafficKind::OnOff { .. } => return, // arrival-driven, never pumped
            TrafficKind::Tcp => {}
        }
        loop {
            if upload {
                // Sender sits on the station; segments enter the uplink
                // MAC queue directly.
                if host.queue_len(data_link) >= self.cfg.queue_cap {
                    break;
                }
                match self.flows[flow].sender.next_segment(now) {
                    Some(seq) => host.enqueue(data_link, Payload::Segment(seq)),
                    None => break,
                }
            } else {
                // Sender sits on the LAN host; segments cross the wire
                // first. The wired link is not the bottleneck; window
                // limits apply at the sender.
                match self.flows[flow].sender.next_segment(now) {
                    Some(seq) => self.send_wired(host, flow, true, seq, false),
                    None => break,
                }
            }
        }
        self.arm_rto(host, flow, false);
    }

    /// Arms the flow's RTO timer. `restart = false` starts it only when no
    /// timer is running (a send with the timer already ticking must not
    /// postpone it); `restart = true` replaces the running timer (new data
    /// was ACKed, or a timeout retransmission re-arms with backoff).
    fn arm_rto<H: TransportHost>(&mut self, host: &mut H, flow: usize, restart: bool) {
        if self.cfg.traffic != TrafficKind::Tcp {
            return;
        }
        let f = &mut self.flows[flow];
        if !f.sender.needs_timer() {
            // All outstanding data acknowledged: turn the timer off
            // (RFC 6298 §5.2) by invalidating the scheduled epoch.
            if f.rto_armed {
                f.rto_epoch += 1;
                f.rto_armed = false;
            }
            return;
        }
        if f.rto_armed && !restart {
            return;
        }
        f.rto_epoch += 1;
        f.rto_armed = true;
        let epoch = f.rto_epoch;
        let rto = f.sender.current_rto();
        host.schedule_in(rto, TransportEv::Rto { flow, epoch });
    }

    /// Digests a TCP cumulative ACK at the sender (wherever it sits).
    fn on_tcp_ack<H: TransportHost>(&mut self, host: &mut H, flow: usize, cum: u64) {
        let now = host.now();
        let new_data = self.flows[flow].sender.on_ack(cum, now);
        if let Some(rec) = host.recorder() {
            let s = &mut self.flows[flow].sender;
            rec.on_tcp_ack(now, flow, s.take_rtt_sample(), s.cwnd(), s.current_rto());
        }
        if new_data {
            // RFC 6298 §5.3: restart the timer when new data is ACKed
            // (and §5.2: `arm_rto` turns it off if everything is ACKed).
            self.arm_rto(host, flow, true);
        }
        self.pump_flow(host, flow);
    }

    fn on_rto<H: TransportHost>(&mut self, host: &mut H, flow: usize, epoch: u64) {
        if self.cfg.traffic != TrafficKind::Tcp {
            // Epoch 0 is the kickoff pseudo-timer shared by all models.
            if epoch == 0 {
                self.pump_flow(host, flow);
            }
            return;
        }
        if epoch != 0 && epoch != self.flows[flow].rto_epoch {
            return; // stale timer
        }
        if epoch != 0 {
            self.flows[flow].rto_armed = false; // this timer just fired
            if !self.flows[flow].sender.needs_timer() {
                return;
            }
            self.flows[flow].sender.on_timeout();
            // The pump sends the retransmission and re-arms with the
            // backed-off RTO (the timer is not running at this point).
        }
        self.pump_flow(host, flow);
    }

    /// Sends a packet across the wired link (AP↔LAN gateway). The wired
    /// segment is a shared FIFO pipe per direction.
    fn send_wired<H: TransportHost>(
        &mut self,
        host: &mut H,
        flow: usize,
        payload_is_segment: bool,
        value: u64,
        to_lan: bool,
    ) {
        let now = host.now();
        let bytes = if payload_is_segment {
            self.cfg.tcp.mss + IP_TCP_HEADER
        } else {
            ACK_BYTES
        };
        let ser = bytes as f64 * 8.0 / self.cfg.wired_rate_bps;
        let busy = if to_lan {
            &mut self.wired_busy_to_lan
        } else {
            &mut self.wired_busy_to_ap
        };
        let start = busy.max(now);
        *busy = start + ser;
        let deliver = start + ser + self.cfg.wired_delay;
        host.schedule_in(
            deliver - now,
            TransportEv::WiredDeliver {
                flow,
                payload_is_segment,
                value,
                to_lan,
            },
        );
    }

    fn on_wired<H: TransportHost>(
        &mut self,
        host: &mut H,
        flow: usize,
        payload_is_segment: bool,
        value: u64,
        to_lan: bool,
    ) {
        if to_lan {
            if payload_is_segment {
                // Upload data reaching the LAN host: receive, ACK back.
                let cum = self.flows[flow].receiver.on_segment(value);
                self.send_wired(host, flow, false, cum, false);
            } else {
                // Download ACK reaching the LAN sender.
                self.on_tcp_ack(host, flow, value);
            }
        } else {
            // Arriving at the AP: onto the appropriate wireless queue.
            let link = if payload_is_segment {
                self.flows[flow].data_link // download data
            } else {
                self.flows[flow].ack_link // upload ACK path
            };
            if host.queue_len(link) < self.cfg.queue_cap {
                let payload = if payload_is_segment {
                    Payload::Segment(value)
                } else {
                    Payload::Ack(value)
                };
                host.enqueue(link, payload);
            }
            // else: drop-tail; TCP recovers.
        }
    }

    /// Schedules `flow`'s next on–off source arrival: exponential
    /// inter-arrival in *active* time, folded over the flow's duty cycle
    /// (each flow's cycle is phase-staggered deterministically).
    fn schedule_next_arrival<H: TransportHost>(&mut self, host: &mut H, flow: usize) {
        let TrafficKind::OnOff {
            rate_pps,
            on_s,
            off_s,
        } = self.cfg.traffic
        else {
            return;
        };
        let cycle = on_s + off_s;
        let f = &mut self.flows[flow];
        let u = hash_uniform(&[self.cfg.seed ^ 0x0A44_11FA, flow as u64, f.arrival_draws]);
        f.arrival_draws += 1;
        // Clamp the uniform away from 1.0 so ln never sees 0.
        let delta = -(1.0 - u.min(1.0 - 1e-12)).ln() / rate_pps;
        f.active_cursor += delta;
        let bursts = (f.active_cursor / on_s).floor();
        let abs = f.phase + bursts * cycle + (f.active_cursor - bursts * on_s);
        let delay = (abs - host.now()).max(0.0);
        host.schedule_in(delay, TransportEv::Arrival { flow });
    }

    fn on_arrival<H: TransportHost>(&mut self, host: &mut H, flow: usize) {
        if self.cfg.upload {
            // The source sits beside the wireless sender: straight onto
            // the data link's MAC queue, drop-tail when the burst overruns.
            let data_link = self.flows[flow].data_link;
            if host.queue_len(data_link) < self.cfg.queue_cap {
                let seq = self.flows[flow].dgram_next;
                self.flows[flow].dgram_next += 1;
                host.enqueue(data_link, Payload::Segment(seq));
            } else {
                self.flows[flow].dgram_dropped += 1;
            }
        } else {
            // The source is a LAN host: the datagram crosses the wired
            // hop first (same path TCP download segments take) and
            // drop-tails at the AP queue if the burst overruns it.
            let seq = self.flows[flow].dgram_next;
            self.flows[flow].dgram_next += 1;
            self.send_wired(host, flow, true, seq, false);
        }
        self.schedule_next_arrival(host, flow);
    }

    /// Dispatches a transport event the medium routed back.
    pub fn on_event<H: TransportHost>(&mut self, host: &mut H, ev: TransportEv) {
        match ev {
            TransportEv::WiredDeliver {
                flow,
                payload_is_segment,
                value,
                to_lan,
            } => self.on_wired(host, flow, payload_is_segment, value, to_lan),
            TransportEv::Rto { flow, epoch } => self.on_rto(host, flow, epoch),
            TransportEv::Arrival { flow } => self.on_arrival(host, flow),
        }
    }

    /// A wireless frame of `flow` was delivered across its hop: hand the
    /// payload to the next layer (wired hop, receiver, or sender).
    pub fn on_frame_delivered<H: TransportHost>(
        &mut self,
        host: &mut H,
        flow: usize,
        payload: Payload,
    ) {
        let upload = self.cfg.upload;
        match self.cfg.traffic {
            TrafficKind::UdpBulk => {
                // Datagram crossed the wireless hop; count it and keep the
                // source saturated. (The wired segment is never the
                // bottleneck and UDP has no return traffic.)
                if payload.is_segment() {
                    self.flows[flow].dgram_delivered += 1;
                }
                self.pump_flow(host, flow);
                return;
            }
            TrafficKind::OnOff { .. } => {
                if payload.is_segment() {
                    self.flows[flow].dgram_delivered += 1;
                }
                return;
            }
            TrafficKind::Tcp => {}
        }
        match payload {
            Payload::Segment(seq) => {
                if upload {
                    // Station -> AP -> wired -> LAN receiver.
                    self.send_wired(host, flow, true, seq, true);
                } else {
                    // AP -> station: the station is the TCP receiver; its
                    // ACK rides the uplink.
                    let cum = self.flows[flow].receiver.on_segment(seq);
                    let ack_link = self.flows[flow].ack_link;
                    if host.queue_len(ack_link) < self.cfg.queue_cap {
                        host.enqueue(ack_link, Payload::Ack(cum));
                    }
                }
            }
            Payload::Ack(cum) => {
                if upload {
                    // AP -> station TCP ACK: feed the station-side sender.
                    self.on_tcp_ack(host, flow, cum);
                } else {
                    // Station -> AP TCP ACK: forward to the LAN sender.
                    self.send_wired(host, flow, false, cum, true);
                }
            }
        }
        // Frame left the queue: the flow may have new room.
        self.pump_flow(host, flow);
    }

    /// A wireless frame of `flow` exhausted its MAC retries and was
    /// dropped: queue space may have opened.
    pub fn on_frame_dropped<H: TransportHost>(&mut self, host: &mut H, flow: usize) {
        if matches!(self.cfg.traffic, TrafficKind::OnOff { .. }) {
            return; // no backlog to refill from
        }
        self.pump_flow(host, flow);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// A standalone host: per-link FIFO queues and a sorted event list —
    /// enough to drive the transport without any MAC underneath.
    struct MockHost {
        now: f64,
        queues: Vec<VecDeque<Payload>>,
        /// `(time, seq, event)`, popped in `(time, seq)` order.
        events: Vec<(f64, u64, TransportEv)>,
        seq: u64,
    }

    impl MockHost {
        fn new(n_links: usize) -> Self {
            MockHost {
                now: 0.0,
                queues: (0..n_links).map(|_| VecDeque::new()).collect(),
                events: Vec::new(),
                seq: 0,
            }
        }

        fn pop_due(&mut self, horizon: f64) -> Option<TransportEv> {
            let best = self
                .events
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| (a.0, a.1).partial_cmp(&(b.0, b.1)).unwrap())?;
            let idx = best.0;
            if self.events[idx].0 > horizon {
                return None;
            }
            let (t, _, ev) = self.events.remove(idx);
            self.now = t;
            Some(ev)
        }
    }

    impl TransportHost for MockHost {
        fn now(&self) -> f64 {
            self.now
        }
        fn queue_len(&self, link: usize) -> usize {
            self.queues[link].len()
        }
        fn enqueue(&mut self, link: usize, payload: Payload) {
            self.queues[link].push_back(payload);
        }
        fn schedule_in(&mut self, delay: f64, ev: TransportEv) {
            let t = self.now + delay;
            self.events.push((t, self.seq, ev));
            self.seq += 1;
        }
    }

    fn cfg(traffic: TrafficKind) -> TransportConfig {
        TransportConfig {
            traffic,
            upload: true,
            tcp: TcpConfig::default(),
            queue_cap: 50,
            wired_rate_bps: 50e6,
            wired_delay: 0.010,
            seed: 7,
        }
    }

    /// Regression (RTO restart bug): a stalled flow fed a steady stream of
    /// sub-threshold duplicate ACKs must still fire its retransmission
    /// timer. The pre-extraction `netsim::arm_rto` bumped the timer epoch
    /// on *every* pump, so each duplicate ACK postponed the RTO forever
    /// and this test hung at zero timeouts.
    #[test]
    fn sub_threshold_dup_acks_do_not_postpone_the_rto() {
        let mut t = TransportLayer::new(cfg(TrafficKind::Tcp), [(0, 1)]);
        let mut host = MockHost::new(2);
        t.kickoff(&mut host);
        while let Some(ev) = host.pop_due(0.01) {
            t.on_event(&mut host, ev);
        }
        assert!(
            !host.queues[0].is_empty(),
            "kickoff must enqueue the initial window"
        );
        // The segments are lost on the air (never delivered). The AP-side
        // ACK path replays one duplicate ACK every 50 ms — each arrival
        // pumps the flow, which pre-fix re-armed the timer.
        for step in 1..=100u64 {
            host.now = step as f64 * 0.05;
            t.on_frame_delivered(&mut host, 0, Payload::Ack(0));
            while let Some(ev) = host.pop_due(host.now) {
                t.on_event(&mut host, ev);
            }
            if t.total_timeouts() > 0 {
                break;
            }
        }
        assert!(
            t.total_timeouts() > 0,
            "the RTO must fire despite the duplicate-ACK stream (RFC 6298 §5)"
        );
        assert!(
            host.now < 2.0,
            "with rto_min = 0.2 the first timeout fires early, not at {}",
            host.now
        );
    }

    /// The timer restarts when new data is ACKed, so a healthy ACK clock
    /// never times out.
    #[test]
    fn acked_new_data_restarts_instead_of_firing() {
        let mut t = TransportLayer::new(cfg(TrafficKind::Tcp), [(0, 1)]);
        let mut host = MockHost::new(2);
        t.kickoff(&mut host);
        while let Some(ev) = host.pop_due(0.01) {
            t.on_event(&mut host, ev);
        }
        let mut cum = 0u64;
        for step in 1..=100u64 {
            host.now = step as f64 * 0.05;
            // Deliver the head-of-line segment and feed its ACK back.
            if let Some(Payload::Segment(seq)) = host.queues[0].pop_front() {
                cum = cum.max(seq + 1);
            }
            t.on_frame_delivered(&mut host, 0, Payload::Ack(cum));
            while let Some(ev) = host.pop_due(host.now) {
                t.on_event(&mut host, ev);
            }
        }
        assert_eq!(t.total_timeouts(), 0, "a live ACK clock must not time out");
        assert!(t.delivered_segments(0) > 50);
    }

    /// When every outstanding segment is acknowledged and the pump cannot
    /// send (queue full), the timer is off: no stale RTO fires later
    /// (RFC 6298 §5.2).
    #[test]
    fn fully_acked_flow_turns_the_timer_off() {
        let mut c = cfg(TrafficKind::Tcp);
        c.queue_cap = 2; // kickoff fills the queue to the initial cwnd
        let mut t = TransportLayer::new(c, [(0, 1)]);
        let mut host = MockHost::new(2);
        t.kickoff(&mut host);
        while let Some(ev) = host.pop_due(0.01) {
            t.on_event(&mut host, ev);
        }
        assert!(t.flows[0].rto_armed, "outstanding data arms the timer");
        // ACK everything in flight; the full MAC queue blocks new sends.
        host.now = 0.05;
        t.on_frame_delivered(&mut host, 0, Payload::Ack(2));
        assert!(!t.flows[0].rto_armed, "all data ACKed: timer off");
        host.now = 300.0;
        while let Some(ev) = host.pop_due(300.0) {
            t.on_event(&mut host, ev);
        }
        assert_eq!(t.total_timeouts(), 0, "no stale timer may fire while idle");
    }

    #[test]
    fn udp_bulk_keeps_the_queue_topped_up() {
        let mut t = TransportLayer::new(cfg(TrafficKind::UdpBulk), [(0, 1)]);
        let mut host = MockHost::new(2);
        t.kickoff(&mut host);
        while let Some(ev) = host.pop_due(0.01) {
            t.on_event(&mut host, ev);
        }
        assert_eq!(host.queues[0].len(), 50, "saturated to queue_cap");
        // Consuming one frame and reporting it delivered refills.
        host.now = 0.02;
        let p = host.queues[0].pop_front().unwrap();
        t.on_frame_delivered(&mut host, 0, p);
        assert_eq!(host.queues[0].len(), 50);
        assert_eq!(t.delivered_segments(0), 1);
    }

    #[test]
    fn onoff_source_is_paced_not_saturated() {
        let traffic = TrafficKind::OnOff {
            rate_pps: 200.0,
            on_s: 0.5,
            off_s: 0.5,
        };
        let mut t = TransportLayer::new(cfg(traffic), [(0, 1)]);
        let mut host = MockHost::new(2);
        t.kickoff(&mut host);
        // Run 10 simulated seconds, consuming arrivals as they land.
        let mut arrivals = 0u64;
        while let Some(ev) = host.pop_due(10.0) {
            t.on_event(&mut host, ev);
            while let Some(p) = host.queues[0].pop_front() {
                arrivals += 1;
                t.on_frame_delivered(&mut host, 0, p);
            }
        }
        // 200 pkt/s at a 50 % duty cycle over 10 s ≈ 1000 arrivals.
        assert!(
            (500..=1500).contains(&arrivals),
            "expected ≈1000 paced arrivals, got {arrivals}"
        );
        assert_eq!(t.delivered_segments(0), arrivals);
        assert_eq!(t.source_drops(0), 0, "a drained queue never drops");
    }

    #[test]
    fn onoff_arrivals_are_deterministic_and_respect_the_cap() {
        let traffic = TrafficKind::OnOff {
            rate_pps: 5000.0,
            on_s: 0.2,
            off_s: 0.8,
        };
        let run = || {
            let mut c = cfg(traffic);
            c.queue_cap = 10;
            let mut t = TransportLayer::new(c, [(0, 1)]);
            let mut host = MockHost::new(2);
            t.kickoff(&mut host);
            while let Some(ev) = host.pop_due(3.0) {
                t.on_event(&mut host, ev);
            }
            (host.queues[0].len(), t.source_drops(0))
        };
        let (len_a, drops_a) = run();
        let (len_b, drops_b) = run();
        assert_eq!((len_a, drops_a), (len_b, drops_b), "must be deterministic");
        assert!(len_a <= 10, "queue bounded by the cap, got {len_a}");
        assert!(drops_a > 0, "a 5 kpps burst into a 10-frame queue drops");
    }

    /// Download on–off sources model the wired hop exactly like download
    /// TCP: datagrams originate at the LAN host, cross the wired FIFO
    /// (serialization + delay), and only then queue at the AP — so the
    /// configured wired parameters shape both transports identically.
    #[test]
    fn onoff_download_crosses_the_wired_hop() {
        let traffic = TrafficKind::OnOff {
            rate_pps: 100.0,
            on_s: 1.0,
            off_s: 0.0, // pure Poisson: arrivals from t = phase on
        };
        let mut c = cfg(traffic);
        c.upload = false;
        c.wired_delay = 0.25; // large enough to observe the lag
        let mut t = TransportLayer::new(c, [(0, 1)]);
        let mut host = MockHost::new(2);
        t.kickoff(&mut host);
        // Process source arrivals up to t = 3.0; every datagram in the AP
        // queue must have ridden a WiredDeliver scheduled at least
        // wired_delay after its arrival.
        let mut wired_events = 0u64;
        while let Some(ev) = host.pop_due(3.0) {
            if matches!(
                ev,
                TransportEv::WiredDeliver {
                    payload_is_segment: true,
                    to_lan: false,
                    ..
                }
            ) {
                wired_events += 1;
            }
            t.on_event(&mut host, ev);
        }
        assert!(wired_events > 10, "arrivals must cross the wire");
        assert_eq!(
            host.queues[0].len() as u64,
            wired_events.min(50),
            "every AP-queued datagram arrived via the wired hop \
             (drop-tail at queue_cap once the undrained queue fills)"
        );
        // Nothing is enqueued ahead of the wire: the earliest scheduled
        // event outstanding is beyond now (all due ones were drained).
        assert!(t.delivered_segments(0) == 0, "nothing delivered yet");
    }

    /// Bidirectional sanity: a download flow moves data LAN → station and
    /// its ACKs ride the uplink back through the wired hop.
    #[test]
    fn download_flow_delivers_through_the_wired_hop() {
        let mut c = cfg(TrafficKind::Tcp);
        c.upload = false;
        // data_link = 0 (AP -> station), ack_link = 1 (station -> AP).
        let mut t = TransportLayer::new(c, [(0, 1)]);
        let mut host = MockHost::new(2);
        t.kickoff(&mut host);
        for step in 1..=400u64 {
            host.now = step as f64 * 0.005;
            while let Some(ev) = host.pop_due(host.now) {
                t.on_event(&mut host, ev);
            }
            // The wireless hop delivers one frame per direction per tick.
            if let Some(p) = host.queues[0].pop_front() {
                t.on_frame_delivered(&mut host, 0, p);
            }
            if let Some(p) = host.queues[1].pop_front() {
                t.on_frame_delivered(&mut host, 0, p);
            }
        }
        assert!(
            t.delivered_segments(0) > 100,
            "download TCP must make progress, delivered {}",
            t.delivered_segments(0)
        );
        assert_eq!(t.total_timeouts(), 0);
    }
}
