//! Conservative parallel discrete-event (PDES) mode for the MAC engine.
//!
//! The floor is partitioned into spatial domains, each owning a timing
//! wheel ([`EventQueue`]) for its senders' channel-access events. Time
//! advances in fixed lookahead windows: at each window barrier the
//! domain wheels are drained to the horizon *in parallel* (the bucket
//! sorts are the queue's real cost), carrier sense is precomputed for
//! every drained channel-access event against the frozen window-start
//! active set (pure, read-only), and the window is then dispatched
//! **sequentially in exact global `(time, seq)` order** by merging the
//! sorted per-domain batches with the live near queue.
//!
//! Why merge instead of letting domains free-run to their neighbors'
//! horizons: the engine's observable outputs are pinned to the
//! sequential reference *byte for byte* (goldens, telemetry streams,
//! `events_processed`), and three pieces of engine state are global and
//! order-sensitive — the backoff RNG (one draw per channel-access
//! schedule, in dispatch order), the transmission-id counter (keys
//! collision-detector draws), and the event-queue tie-break counter.
//! A classic null-message PDES that dispatched domains concurrently
//! would have to shard that state, changing every result. Merging keeps
//! the dispatch order — and therefore every draw, every tie-break, and
//! every output — identical for any shard count, while the parallel
//! phases absorb the work that does not touch global state: wheel
//! maintenance and carrier sense.
//!
//! The lookahead that makes precomputed senses safe across a window is
//! spatial, derived from `range_band` plus the mobility drift pad: an
//! active-set mutation (a transmission starting or leaving the air) can
//! only change a sense verdict within the certainly-audible radius of
//! the sensing station, so each precomputed sense carries its station
//! position and is invalidated — and re-evaluated in place, sequentially
//! — only when a mutation lands inside that band. Everything else the
//! window dispatch schedules lands beyond the horizon and is *staged*
//! per domain, to be applied to the domain wheels at the next barrier
//! (the boundary-exchange queues of the scheme).

// The only unsafe in the workspace: lifetime-erasing the scatter task for
// the persistent pool, and per-index mutable lane access from workers.
// Both are locally justified below; the rest of the crate stays safe.
#![allow(unsafe_code)]

use std::marker::PhantomData;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::event::{EventQueue, Scheduled};
use crate::mac::{MacEngine, MacEv, Medium, ShardRoute};

/// A [`Medium`] that can run under the sharded scheduler: it exposes a
/// pure, read-only carrier sense usable from worker threads against the
/// frozen window-start active set, a spatial domain map, and the
/// range-band invalidation geometry.
pub trait ShardableMedium: Medium + Sync {
    /// Per-worker scratch for [`ShardableMedium::sense_pure`] (mobility
    /// cursors, candidate buffers) — whatever the sequential sense keeps
    /// in `&mut self` memo caches, duplicated so workers never touch the
    /// medium.
    type Scratch: Send;

    /// Fresh scratch, one per domain lane.
    fn make_scratch(&self) -> Self::Scratch;

    /// The spatial domain (`0..domains`) owning `sender`'s channel-access
    /// events. Load balance only: the global merge restores ordering, so
    /// the map may go stale across handoffs without affecting results.
    fn domain_of(&self, sender: usize, domains: usize) -> usize;

    /// Carrier sense for `sender` at absolute time `t` against the
    /// *current* active set, without touching any `&mut self` memo, plus
    /// the `(x, y)` sender position the verdict was evaluated at. Must
    /// return exactly what [`Medium::carrier_sense`] would return at a
    /// dispatch point at `t` with the same active set.
    fn sense_pure(
        &self,
        scratch: &mut Self::Scratch,
        sender: usize,
        t: f64,
    ) -> (Option<f64>, (f64, f64));

    /// Squared radius of the sense-invalidation band: an active-set
    /// mutation farther than this from the sensing position provably
    /// cannot change the sense verdict (`range_band` certainly-audible
    /// radius plus the mobility drift pad, squared).
    fn inval_radius2(&self) -> f64;

    /// Positions of active-set mutations (transmission insert/remove)
    /// since the last [`ShardableMedium::clear_mutations`].
    fn mutations(&self) -> &[(f64, f64)];

    /// Forgets logged mutations (called at each window barrier).
    fn clear_mutations(&mut self);

    /// Turns mutation logging on/off (on only during sharded runs, so the
    /// sequential hot path pays nothing).
    fn set_mutation_logging(&mut self, on: bool);

    /// Window width, seconds. Smaller windows re-sense less but barrier
    /// more; anything is *correct* (the merge and the invalidation band
    /// do not depend on it).
    fn lookahead(&self) -> f64;

    /// Cap on pool worker threads for this run (the caller thread also
    /// works), or `None` for the host default (cores − 1). The scenario
    /// engine sets this to divide the machine between concurrent matrix
    /// runs so `--threads` × `--shards` does not oversubscribe the host.
    fn pool_workers(&self) -> Option<usize> {
        None
    }
}

/// One domain's lane: its timing wheel, the staged cross-window inserts,
/// and the drained window batch with precomputed senses.
struct DomainLane<E> {
    wheel: EventQueue<MacEv<E>>,
    incoming: Vec<(f64, u64, MacEv<E>)>,
    batch: Vec<Scheduled<MacEv<E>>>,
    sense: Vec<PreSense>,
}

/// A precomputed carrier-sense verdict for one drained channel-access
/// event, with the position it was evaluated at (the invalidation
/// anchor). `valid = false` for non-TxStart events (placeholder).
#[derive(Clone, Copy)]
struct PreSense {
    sensed: Option<f64>,
    x: f64,
    y: f64,
    valid: bool,
}

const NO_SENSE: PreSense = PreSense {
    sensed: None,
    x: 0.0,
    y: 0.0,
    valid: false,
};

/// Mutable per-index access to the domain lanes from pool workers. Each
/// index is claimed by exactly one worker per scatter (the work-stealing
/// counter hands out every index once), so the aliasing rules hold. The
/// raw pointer is captured from the exclusive borrow at construction —
/// writing through a pointer derived from a shared reborrow of the slice
/// would violate the aliasing model even for disjoint indices.
struct LaneCells<'a, T> {
    ptr: *mut T,
    len: usize,
    _lanes: PhantomData<&'a mut [T]>,
}

// SAFETY: workers only access disjoint indices (enforced by the scatter
// index counter), the pool barrier retires before the borrow ends, and
// `T: Send` makes handing a `&mut T` to another thread sound.
unsafe impl<T: Send> Sync for LaneCells<'_, T> {}

impl<'a, T> LaneCells<'a, T> {
    fn new(lanes: &'a mut [T]) -> Self {
        LaneCells {
            ptr: lanes.as_mut_ptr(),
            len: lanes.len(),
            _lanes: PhantomData,
        }
    }

    /// One lane, mutably. Callers must hold `i` exclusively.
    #[allow(clippy::mut_from_ref)]
    unsafe fn lane(&self, i: usize) -> &mut T {
        debug_assert!(i < self.len);
        unsafe { &mut *self.ptr.add(i) }
    }
}

/// One parallel job: a task function and the work-stealing state.
struct PoolJob {
    /// The task, lifetime-erased. Sound because `scatter` does not return
    /// until every index completed, so the pointee outlives all use.
    task: &'static (dyn Fn(usize) + Sync),
    next: AtomicUsize,
    n: usize,
    remaining: AtomicUsize,
    /// Set when any participant's `task(i)` panicked; `scatter` re-raises
    /// after the barrier instead of hanging or swallowing it.
    panicked: AtomicBool,
}

struct PoolShared {
    job: Mutex<(u64, Option<Arc<PoolJob>>)>,
    wake: Condvar,
    done: Condvar,
}

impl PoolShared {
    /// The pool mutex, ignoring poisoning: the guarded state is a plain
    /// (generation, job) pair that is never left half-written, and the
    /// completion path must keep working mid-unwind.
    fn lock(&self) -> MutexGuard<'_, (u64, Option<Arc<PoolJob>>)> {
        self.job.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Retires one participant's share of `job`. The final decrement
    /// takes the pool mutex before notifying so the predicate change is
    /// serialized with the waiter's check-then-wait in `scatter` — a
    /// notify between the waiter's `remaining` load and its `wait` would
    /// otherwise be lost and the barrier would hang forever.
    fn finish(&self, job: &PoolJob) {
        if job.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.lock();
            self.done.notify_all();
        }
    }
}

/// Runs one participant's share of `job`, recording (not propagating) a
/// panic so the worker survives and the barrier still retires.
fn work_caught(job: &PoolJob) {
    if std::panic::catch_unwind(AssertUnwindSafe(|| work(job))).is_err() {
        job.panicked.store(true, Ordering::Release);
    }
}

/// A persistent worker pool for the window barriers. Condvar-parked (no
/// spinning: windows are tens of microseconds, but a host with fewer
/// cores than shards — or exactly one — must not livelock), with a
/// work-stealing index so an uneven domain costs no idle time. With zero
/// workers (single-core hosts) `scatter` runs inline on the caller.
pub(crate) struct ShardPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ShardPool {
    /// A pool with `workers` threads (the caller thread also works).
    pub(crate) fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            job: Mutex::new((0, None)),
            wake: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let mut seen = 0u64;
                    loop {
                        let job = {
                            let mut guard = shared.lock();
                            loop {
                                if guard.0 == u64::MAX {
                                    return;
                                }
                                if guard.0 > seen {
                                    if let Some(job) = guard.1.as_ref() {
                                        seen = guard.0;
                                        break Arc::clone(job);
                                    }
                                }
                                guard = shared.wake.wait(guard).unwrap_or_else(|e| e.into_inner());
                            }
                        };
                        work_caught(&job);
                        shared.finish(&job);
                    }
                })
            })
            .collect();
        ShardPool { shared, handles }
    }

    /// Sized for `shards` domains within an optional worker budget: at
    /// most cores − 1 threads (the caller thread also works — a
    /// single-core host runs every phase inline, same results), at most
    /// `shards − 1`, and at most `budget` when given (see
    /// [`ShardableMedium::pool_workers`]).
    pub(crate) fn sized(shards: usize, budget: Option<usize>) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let workers = cores.saturating_sub(1).min(shards.saturating_sub(1));
        Self::new(budget.map_or(workers, |b| workers.min(b)))
    }

    /// Runs `task(i)` for every `i in 0..n`, the caller thread included,
    /// returning once all completed.
    pub(crate) fn scatter(&self, n: usize, task: &(dyn Fn(usize) + Sync)) {
        if n == 0 {
            return;
        }
        if self.handles.is_empty() {
            for i in 0..n {
                task(i);
            }
            return;
        }
        // SAFETY: the job is retired (remaining == 0 awaited) before this
        // frame returns, so the erased borrow outlives every worker use.
        let task: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
        let job = Arc::new(PoolJob {
            task,
            next: AtomicUsize::new(0),
            n,
            remaining: AtomicUsize::new(self.handles.len() + 1),
            panicked: AtomicBool::new(false),
        });
        {
            let mut guard = self.shared.lock();
            guard.0 += 1;
            guard.1 = Some(Arc::clone(&job));
            self.shared.wake.notify_all();
        }
        let caller = std::panic::catch_unwind(AssertUnwindSafe(|| work(&job)));
        // The barrier must retire even when the caller's own slice
        // panicked: workers may still be using the lifetime-erased task,
        // and unwinding past it would dangle their borrow.
        if job.remaining.fetch_sub(1, Ordering::AcqRel) != 1 {
            let mut guard = self.shared.lock();
            while job.remaining.load(Ordering::Acquire) != 0 {
                guard = self
                    .shared
                    .done
                    .wait(guard)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
        match caller {
            Err(payload) => std::panic::resume_unwind(payload),
            Ok(()) => {
                if job.panicked.load(Ordering::Acquire) {
                    panic!("ShardPool task panicked on a worker thread");
                }
            }
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        {
            let mut guard = self.shared.lock();
            *guard = (u64::MAX, None);
            self.shared.wake.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Drains one job's remaining indices on the current thread.
fn work(job: &PoolJob) {
    loop {
        let i = job.next.fetch_add(1, Ordering::Relaxed);
        if i >= job.n {
            return;
        }
        (job.task)(i);
    }
}

/// Where the next event to dispatch comes from.
enum Src {
    Near,
    Lane(usize),
}

impl<M: ShardableMedium> MacEngine<M>
where
    M::Event: Send,
{
    /// Runs the event loop to `duration` simulated seconds under the
    /// conservative sharded scheduler with `shards` spatial domains.
    /// `shards <= 1` is exactly [`MacEngine::run`]. Results — stats,
    /// telemetry, `events_processed`, every RNG draw — are byte-identical
    /// to the sequential engine for every shard count.
    pub fn run_sharded(&mut self, duration: f64, shards: usize) {
        if shards <= 1 {
            self.run(duration);
            return;
        }
        let pool = ShardPool::sized(shards, self.medium.pool_workers());
        self.core.sync_ledger();
        let h = self.medium.lookahead();
        debug_assert!(h > 0.0, "lookahead must be positive");
        let n_senders = self.core.lanes.n_senders();
        self.core.route = Some(Box::new(ShardRoute {
            horizon: h,
            domain_of: (0..n_senders)
                .map(|s| self.medium.domain_of(s, shards) as u32)
                .collect(),
            stage: (0..shards).map(|_| Vec::new()).collect(),
        }));
        self.medium.set_mutation_logging(true);
        self.medium.kickoff(&mut self.core);
        let r_inval2 = self.medium.inval_radius2();

        let mut lanes: Vec<DomainLane<M::Event>> = (0..shards)
            .map(|_| DomainLane {
                wheel: EventQueue::with_capacity(64),
                incoming: Vec::new(),
                batch: Vec::new(),
                sense: Vec::new(),
            })
            .collect();
        let mut scratches: Vec<M::Scratch> =
            (0..shards).map(|_| self.medium.make_scratch()).collect();
        let mut cohort: Vec<MacEv<M::Event>> = Vec::new();

        let mut horizon = h;
        'run: loop {
            // ---- Window barrier: collect staged cross-domain events. ----
            {
                let rt = self.core.route.as_deref_mut().expect("route installed");
                rt.horizon = horizon;
                for (d, lane) in lanes.iter_mut().enumerate() {
                    std::mem::swap(&mut rt.stage[d], &mut lane.incoming);
                }
            }
            self.medium.clear_mutations();

            // ---- Parallel phase: apply stages, drain wheels, precompute
            // senses against the frozen active set. ----
            let t0 = self.profile.as_deref().map(|_| std::time::Instant::now());
            {
                let medium = &self.medium;
                let lane_cells = LaneCells::new(&mut lanes);
                let scratch_cells = LaneCells::new(&mut scratches);
                pool.scatter(shards, &|d| {
                    // SAFETY: index `d` is handed out exactly once.
                    let lane = unsafe { lane_cells.lane(d) };
                    let scratch = unsafe { scratch_cells.lane(d) };
                    for &(t, seq, ev) in &lane.incoming {
                        lane.wheel.schedule_with_seq(t, seq, ev);
                    }
                    lane.incoming.clear();
                    lane.batch.clear();
                    lane.wheel.drain_until(horizon, &mut lane.batch);
                    lane.sense.clear();
                    lane.sense.reserve(lane.batch.len());
                    for ev in &lane.batch {
                        lane.sense.push(match ev.event {
                            MacEv::TxStart { sender } => {
                                let (sensed, (x, y)) = medium.sense_pure(scratch, sender, ev.time);
                                PreSense {
                                    sensed,
                                    x,
                                    y,
                                    valid: true,
                                }
                            }
                            _ => NO_SENSE,
                        });
                    }
                });
            }
            if let (Some(t0), Some(p)) = (t0, self.profile.as_deref_mut()) {
                p.sync_s += t0.elapsed().as_secs_f64();
            }

            // ---- Sequential phase: dispatch the window in exact global
            // (time, seq) order, merging the sorted batches with the live
            // near queue. ----
            let mut cursor = vec![0usize; shards];
            let mut prepared_t = f64::NAN;
            loop {
                let mut best: Option<(f64, u64, Src)> = None;
                for (d, lane) in lanes.iter().enumerate() {
                    if let Some(ev) = lane.batch.get(cursor[d]) {
                        if best
                            .as_ref()
                            .is_none_or(|(t, s, _)| (ev.time, ev.seq) < (*t, *s))
                        {
                            best = Some((ev.time, ev.seq, Src::Lane(d)));
                        }
                    }
                }
                if let Some((t, s)) = self.core.events.peek_key() {
                    if t <= horizon && best.as_ref().is_none_or(|(bt, bs, _)| (t, s) < (*bt, *bs)) {
                        best = Some((t, s, Src::Near));
                    }
                }
                let Some((t, _seq, src)) = best else {
                    break; // window fully dispatched
                };
                if t > duration {
                    break 'run;
                }
                // Same-tick cohort prewarm across the lane batches: the
                // lane wheels hold only channel-access events, so a tick
                // that spans lanes is a TxStart cohort whose geometry and
                // envelope memos one batched kernel sweep can warm before
                // the members dispatch. Best-effort (near-queue events are
                // only peekable, not readable) — prewarm is
                // value-transparent, so partial coverage is still exact.
                if self.core.batch && t != prepared_t {
                    prepared_t = t;
                    cohort.clear();
                    for (d, lane) in lanes.iter().enumerate() {
                        let mut i = cursor[d];
                        while let Some(ev) = lane.batch.get(i) {
                            if ev.time != t {
                                break;
                            }
                            cohort.push(ev.event);
                            i += 1;
                        }
                    }
                    if cohort.len() >= 2 {
                        let t0 = self.profile.as_deref().map(|_| std::time::Instant::now());
                        self.medium.prepare_cohort(&self.core, t, &cohort);
                        if let (Some(t0), Some(p)) = (t0, self.profile.as_deref_mut()) {
                            p.kernel_s += t0.elapsed().as_secs_f64();
                        }
                        if let Some(p) = self.profile.as_deref_mut() {
                            p.cohorts += 1;
                            p.cohort_max = p.cohort_max.max(cohort.len() as u64);
                            p.cohort_hist[(cohort.len() - 1).min(15)] += 1;
                        }
                    }
                }
                let (event, pre) = match src {
                    Src::Near => (self.core.events.pop().expect("peeked").event, NO_SENSE),
                    Src::Lane(d) => {
                        self.core.events.force_now(t);
                        let i = cursor[d];
                        cursor[d] += 1;
                        (lanes[d].batch[i].event, lanes[d].sense[i])
                    }
                };
                self.core.stats.events_processed += 1;
                match event {
                    MacEv::TxStart { sender } => {
                        // Inject the precomputed sense unless an active-set
                        // mutation landed inside its invalidation band this
                        // window; invalidated verdicts re-evaluate in place.
                        let inj = if pre.valid {
                            let clean = self.medium.mutations().iter().all(|&(mx, my)| {
                                let (dx, dy) = (mx - pre.x, my - pre.y);
                                dx * dx + dy * dy > r_inval2
                            });
                            clean.then_some(pre.sensed)
                        } else {
                            None
                        };
                        self.on_tx_start_with(sender, inj);
                    }
                    MacEv::TxEnd { tx } => self.on_tx_end(tx),
                    MacEv::Outcome { tx } => self.on_outcome(tx),
                    MacEv::Medium(e) => {
                        let t0 = self.profile.as_deref().map(|_| std::time::Instant::now());
                        let transport = t0.is_some() && self.medium.event_is_transport(&e);
                        self.medium.on_event(&mut self.core, e);
                        if let (Some(t0), Some(p)) = (t0, self.profile.as_deref_mut()) {
                            if transport {
                                p.transport_s += t0.elapsed().as_secs_f64();
                            } else {
                                p.medium_ev_s += t0.elapsed().as_secs_f64();
                            }
                        }
                    }
                }
            }

            // ---- Advance the window (teleporting over idle gaps). ----
            let mut next = f64::INFINITY;
            if let Some((t, _)) = self.core.events.peek_key() {
                next = next.min(t);
            }
            for lane in &mut lanes {
                if let Some((t, _)) = lane.wheel.peek_key() {
                    next = next.min(t);
                }
            }
            if let Some(rt) = self.core.route.as_deref() {
                for stage in &rt.stage {
                    for &(t, _, _) in stage {
                        next = next.min(t);
                    }
                }
            }
            if next > duration {
                break; // idle past the end — identical cut to sequential
            }
            horizon = next + h;
        }
        self.medium.set_mutation_logging(false);
        self.medium.clear_mutations();
        self.core.route = None;
    }

    /// [`MacEngine::run_sharded`] with per-phase wall-time accounting
    /// (identical results; see [`MacEngine::run_profiled`]). The window
    /// machinery — staging, parallel drains and sense precompute, and the
    /// barriers — lands in [`crate::mac::PhaseProfile::sync_s`].
    pub fn run_profiled_sharded(
        &mut self,
        duration: f64,
        shards: usize,
    ) -> crate::mac::PhaseProfile {
        self.profile = Some(Box::default());
        let started = std::time::Instant::now();
        self.run_sharded(duration, shards);
        self.finish_profile(started)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// The pool must hand every index out exactly once per scatter,
    /// across repeated scatters, worker threads or not — including on a
    /// single-core host (condvar parking, no livelock).
    #[test]
    fn pool_scatters_every_index_once() {
        for workers in [0, 1, 3] {
            let pool = ShardPool::new(workers);
            for n in [0usize, 1, 4, 33] {
                let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
                pool.scatter(n, &|i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "workers={workers} n={n}"
                );
            }
        }
    }

    /// Lane cells alias-check: disjoint indices, one writer each.
    #[test]
    fn lane_cells_give_disjoint_access() {
        let mut lanes = vec![0u64; 8];
        let cells = LaneCells::new(&mut lanes);
        let pool = ShardPool::new(2);
        pool.scatter(8, &|i| {
            let lane = unsafe { cells.lane(i) };
            *lane = i as u64 + 1;
        });
        assert_eq!(lanes, (1..=8).collect::<Vec<u64>>());
    }

    /// A panicking task must propagate out of `scatter` (not hang the
    /// barrier), and the pool must stay usable for later scatters.
    #[test]
    fn pool_propagates_task_panics_and_survives() {
        let pool = ShardPool::new(2);
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scatter(8, &|i| {
                if i == 5 {
                    panic!("boom");
                }
            });
        }));
        assert!(res.is_err(), "panic in a task must escape scatter");
        let hits: Vec<AtomicU64> = (0..8).map(|_| AtomicU64::new(0)).collect();
        pool.scatter(8, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}
