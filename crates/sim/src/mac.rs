//! The generic discrete-event MAC engine shared by every simulator in the
//! workspace.
//!
//! Both network simulators — the trace-backed single-cell one
//! ([`crate::netsim`]) and the streaming multi-cell spatial one
//! (`softrate-net`) — run the *same* 802.11-like DCF: DIFS plus
//! binary-exponential backoff, in-flight transmission tracking with
//! collision-overlap bookkeeping, a base-rate feedback window after SIFS
//! resolved through [`crate::feedback`], a retry limit, and per-sender
//! rate-adapter plumbing. What differs between them is the *medium*: how
//! frame fates are sampled (trace lookup vs streaming draw), how carrier
//! sense works (a configured probability vs physical SNR), and what a
//! concurrent transmission corrupts (everything in one collision domain vs
//! receivers within SIR-capture range).
//!
//! [`MacEngine`] owns the shared state machine; the [`Medium`] trait is
//! the seam where the two environments plug in. Keeping the DCF in one
//! place is what guarantees the simulators cannot drift apart — the
//! paper's central claim (§6) is that SoftRate's cross-layer feedback is
//! independent of the environment it runs in, and the engine makes that
//! independence structural.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use softrate_core::adapter::{DecisionCtx, DecisionTrigger, RateAdapter, TxAttempt, TxOutcome};
use softrate_telemetry::{DecisionEvent, LossCause, OutcomeEvent, Recorder, TelemetryReport};
use softrate_trace::schema::{hash_uniform, FrameFate};

use crate::event::EventQueue;
use crate::fault::{FaultDriver, FaultLoss};
use crate::feedback::{apply_collision_feedback, CollisionTiming, HEADER_AIRTIME_FRAC};
use crate::timing::{
    attempt_airtime, data_airtime, feedback_airtime, rts_cts_overhead, CW_MAX, CW_MIN, DIFS,
    MAX_RETRIES, SIFS, SLOT,
};

/// Rate-selection accuracy tallies (Figures 14 and 18).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RateAudit {
    /// Frames sent above the highest rate that would have succeeded.
    pub overselect: u64,
    /// Frames sent exactly at the oracle rate.
    pub accurate: u64,
    /// Frames sent below the oracle rate.
    pub underselect: u64,
}

impl RateAudit {
    /// Total audited frames.
    pub fn total(&self) -> u64 {
        self.overselect + self.accurate + self.underselect
    }

    /// Fractions `(over, accurate, under)`.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total().max(1) as f64;
        (
            self.overselect as f64 / t,
            self.accurate as f64 / t,
            self.underselect as f64 / t,
        )
    }
}

/// One recorded handoff (spatial media only).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HandoffRecord {
    /// When, seconds.
    pub t: f64,
    /// Which station.
    pub station: usize,
    /// AP roamed away from.
    pub from: usize,
    /// AP roamed to.
    pub to: usize,
}

/// Results of one simulation run, for every medium.
///
/// The union of what the trace-backed and spatial simulators report.
/// Single-cell runs leave the spatial fields at their defaults
/// (`inter_cell_corruptions = 0`, empty handoff log); spatial runs leave
/// `rate_timeline` empty.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Algorithm under test.
    pub adapter_name: String,
    /// Sum of per-flow goodputs, bit/s.
    pub aggregate_goodput_bps: f64,
    /// Per-flow goodput, bit/s (one entry per flow or station).
    pub per_flow_goodput_bps: Vec<f64>,
    /// Rate-selection accuracy over audited data frames.
    pub audit: RateAudit,
    /// Data frames transmitted on the air.
    pub frames_sent: u64,
    /// Data frames delivered intact.
    pub frames_delivered: u64,
    /// Frames corrupted by concurrent transmissions.
    pub collisions: u64,
    /// Attempts that produced no feedback at all.
    pub silent_losses: u64,
    /// `(time, rate_idx)` of every audited data-frame attempt on the
    /// observed link (the Figure 15 timeline; single-cell only).
    pub rate_timeline: Vec<(f64, usize)>,
    /// Corruption events whose interferer belonged to a different BSS than
    /// the victim receiver (spatial media only).
    pub inter_cell_corruptions: u64,
    /// Completed handoffs (spatial media only).
    pub handoffs: u64,
    /// Initial association (station -> AP; spatial media only).
    pub initial_assoc: Vec<usize>,
    /// Every handoff, in order (spatial media only).
    pub handoff_log: Vec<HandoffRecord>,
    /// Events processed by the discrete-event loop.
    pub events_processed: u64,
    /// Telemetry streams, when a [`Recorder`] was installed for the run.
    pub telemetry: Option<TelemetryReport>,
}

/// Engine events. `Medium(E)` carries everything above or beside the MAC —
/// transport timers, wired deliveries, roaming checks.
#[derive(Debug, Clone, Copy)]
pub enum MacEv<E> {
    /// A sender's backoff expired: try to transmit.
    TxStart {
        /// The sender whose backoff expired.
        sender: usize,
    },
    /// A transmission's air time ended.
    TxEnd {
        /// Transmission id.
        tx: u64,
    },
    /// Feedback window closed: resolve the attempt at the sender.
    Outcome {
        /// Transmission id.
        tx: u64,
    },
    /// A medium-specific event, dispatched to [`Medium::on_event`].
    Medium(E),
}

/// The per-station hot state in struct-of-arrays form: every field the
/// dispatch loop touches per event, as parallel dense `Vec`s indexed by
/// sender id (`busy`/`start_pending`) or port id (the rest).
///
/// This replaces the old per-station structs (`Sender { busy,
/// start_pending }` and the retry/attempt counters that rode on `Port`
/// next to its boxed adapter): a TxStart that defers now reads
/// `start_pending`/`busy`/`cw` from three contiguous arrays instead of
/// dragging a pointer-chased `Port` (vtable and all) through the cache,
/// and an outcome bumps `retries`/`attempts`/`cw` in dense lanes. The
/// trailing gauges (`last_rate`, `last_snr_db`, `queue_depth`) are
/// observability lanes: the engine and media keep them current, nothing
/// in the dispatch path reads them back, so they can never perturb
/// results.
#[derive(Debug, Clone, Default)]
pub struct StationLanes {
    /// Per sender: a transmission is on the air or awaiting its outcome.
    pub busy: Vec<bool>,
    /// Per sender: a TxStart event is already scheduled.
    pub start_pending: Vec<bool>,
    /// Per port: current contention window (the deferral hot path reads
    /// it on every carrier-sensed TxStart).
    pub cw: Vec<u32>,
    /// Per port: consecutive failed attempts for the head-of-line frame.
    pub retries: Vec<u32>,
    /// Per port: lifetime attempt counter (keys trace fate draws).
    pub attempts: Vec<u64>,
    /// Per port: the rate the decision ledger believes the port is at
    /// (`new_rate` of its last row, or its last transmitted rate; `None`
    /// until the port first transmits).
    pub last_rate: Vec<Option<usize>>,
    /// Per port: adapter was rebuilt by a Reset handoff since the last
    /// transmission (the next transmission files the rate change under
    /// `handoff_reset`).
    pub handoff_reset: Vec<bool>,
    /// Per port, gauge: SNR feedback of the last resolved attempt that
    /// carried any (dB). `NAN` until then.
    pub last_snr_db: Vec<f64>,
    /// Per port, gauge: frames queued behind the head-of-line frame.
    /// Maintained by queue-owning media (flow mode); saturated sources
    /// leave it at zero.
    pub queue_depth: Vec<u32>,
}

impl StationLanes {
    /// Lanes for `n_senders` transmitters driving `n_ports` links.
    pub fn new(n_senders: usize, n_ports: usize) -> Self {
        StationLanes {
            busy: vec![false; n_senders],
            start_pending: vec![false; n_senders],
            cw: vec![CW_MIN; n_ports],
            retries: vec![0; n_ports],
            attempts: vec![0; n_ports],
            last_rate: vec![None; n_ports],
            handoff_reset: vec![false; n_ports],
            last_snr_db: vec![f64::NAN; n_ports],
            queue_depth: vec![0; n_ports],
        }
    }

    /// Number of transmitters.
    pub fn n_senders(&self) -> usize {
        self.busy.len()
    }
}

/// One rate-adapted unidirectional link: the adapter driving it.
/// Single-cell media have one port per wireless link (the AP owns
/// several); spatial media one per station.
///
/// All the hot per-port counters (contention window, retries, attempts)
/// live in [`MacCore::lanes`], not here: the dispatch loop touches them
/// every event, and keeping them in dense arrays avoids dragging the
/// adapter box through the cache for a few integers.
pub struct Port {
    /// The rate-adaptation algorithm driving this link.
    pub adapter: Box<dyn RateAdapter>,
}

impl Port {
    /// A fresh port around `adapter`.
    pub fn new(adapter: Box<dyn RateAdapter>) -> Self {
        Port { adapter }
    }
}

/// An in-flight (or feedback-pending) transmission. `I` is the medium's
/// per-attempt payload: the single-cell simulator stores the MAC payload,
/// the spatial one the receiver AP and the signal SNR at transmit time.
#[derive(Debug, Clone, Copy)]
pub struct ActiveTx<I> {
    /// Transmission id.
    pub id: u64,
    /// Transmitting sender.
    pub sender: usize,
    /// Port the frame left from.
    pub port: usize,
    /// Transmission start, seconds.
    pub start: f64,
    /// Transmission end, seconds.
    pub end: f64,
    /// End of the preamble + header window, seconds.
    pub header_end: f64,
    /// Rate the frame is sent at.
    pub rate_idx: usize,
    /// Whether the frame is RTS/CTS-protected.
    pub use_rts: bool,
    /// On-air payload size, bytes.
    pub payload_bytes: usize,
    /// The port's attempt counter at transmit time.
    pub attempt: u64,
    /// Whether this frame counts toward `frames_sent` (data frames only).
    pub counts_as_data: bool,
    /// A concurrent transmission corrupted this one.
    pub collided: bool,
    /// A corrupting transmission came from the same cell (telemetry loss
    /// attribution: same-cell corruption is a collision).
    pub corrupt_same_cell: bool,
    /// A corrupting transmission came from a different BSS (telemetry
    /// loss attribution: inter-cell corruption is interference capture).
    pub corrupt_inter_cell: bool,
    /// Earliest start among corrupting transmissions.
    pub first_other_start: f64,
    /// Latest end among corrupting transmissions.
    pub max_other_end: f64,
    /// Medium-specific attempt data.
    pub info: I,
}

/// What the medium decides about an attempt at transmit time.
#[derive(Debug, Clone, Copy)]
pub struct AttemptInfo<I> {
    /// On-air payload size, bytes.
    pub payload_bytes: usize,
    /// Whether this frame counts toward `frames_sent` (data frames only).
    pub counts_as_data: bool,
    /// Oracle rate to audit the attempt against, if it should be audited.
    pub audit_best: Option<usize>,
    /// Record the attempt in the Figure 15 rate timeline.
    pub timeline: bool,
    /// Medium-specific attempt data carried on the [`ActiveTx`].
    pub info: I,
}

/// Engine parameters every medium supplies at construction.
#[derive(Debug, Clone, Copy)]
pub struct MacParams {
    /// Whether frames carry postambles (ideal SoftRate).
    pub postambles: bool,
    /// Probability the receiver's collision detector flags a collision.
    pub detect_prob: f64,
    /// Seed of the backoff RNG.
    pub backoff_seed: u64,
    /// Seed salting collision-detector verdict draws.
    pub collision_seed: u64,
}

/// Shared counters every run reports.
#[derive(Debug, Clone, Default)]
pub struct MacStats {
    /// Data frames transmitted on the air.
    pub frames_sent: u64,
    /// Data frames delivered intact.
    pub frames_delivered: u64,
    /// Frames corrupted by concurrent transmissions.
    pub collisions: u64,
    /// Attempts that produced no feedback at all.
    pub silent_losses: u64,
    /// Rate-selection accuracy over audited frames.
    pub audit: RateAudit,
    /// The Figure 15 rate timeline.
    pub rate_timeline: Vec<(f64, usize)>,
    /// Events processed by the discrete-event loop.
    pub events_processed: u64,
}

/// Decision-ledger bookkeeping threaded through the engine: the reusable
/// sink handed to every adapter `_ctx` call plus the per-port rate the
/// ledger last reported. Inert (the sink is disabled, nothing is read or
/// written) unless the installed recorder's ledger is on — the same
/// zero-cost-when-off contract as the recorder itself.
#[derive(Debug, Default)]
pub struct LedgerState {
    /// The decision sink handed to adapter `next_attempt_ctx` /
    /// `on_outcome_ctx` calls; drained by the engine after each call.
    pub ctx: DecisionCtx,
}

/// The engine state a [`Medium`] implementation may inspect and drive:
/// the event queue, sender/port state, in-flight transmissions, and the
/// shared statistics. Splitting this from the medium itself is what lets
/// medium hooks take `&mut self` alongside `&mut MacCore` without borrow
/// conflicts.
pub struct MacCore<E, I> {
    /// The discrete-event queue.
    pub events: EventQueue<MacEv<E>>,
    /// The per-sender / per-port hot state, in struct-of-arrays lanes.
    pub lanes: StationLanes,
    /// Adapter per port (cold beside [`MacCore::lanes`]).
    pub ports: Vec<Port>,
    /// Whether dispatch forms same-tick cohorts (the default). `false`
    /// forces cohort width 1 through the identical code path — the
    /// `--batch off` escape hatch; results are byte-identical either way
    /// (cohort prewarm is value-transparent by contract).
    pub batch: bool,
    /// Transmissions currently on the air.
    pub active: Vec<ActiveTx<I>>,
    /// Transmissions past TxEnd awaiting their feedback window.
    pub pending: Vec<ActiveTx<I>>,
    /// Shared run statistics.
    pub stats: MacStats,
    /// The telemetry seam: `None` (the default) costs one branch per
    /// hook; `Some` observes the run without perturbing it (the recorder
    /// never draws randomness or schedules events). Installed by the
    /// simulators at construction, taken back out at report time.
    pub recorder: Option<Box<Recorder>>,
    /// Decision-ledger state; enabled at run start iff the recorder's
    /// ledger is on (see [`MacCore::sync_ledger`]).
    pub ledger: LedgerState,
    /// The SoftPHY hint-corruption seam (`softrate-faults`): `None` (the
    /// default) costs one branch per resolved outcome; `Some` degrades
    /// the feedback the *adapter* sees after the ground-truth fate is
    /// drawn and recorded — telemetry keeps observing the truth.
    pub faults: Option<FaultDriver>,
    /// Sharded-run routing, installed only by the PDES scheduler
    /// (`crate::shard`): channel-access schedules beyond the window
    /// horizon are staged to their sender's domain wheel instead of the
    /// near queue. `None` on sequential runs — one branch of overhead.
    pub(crate) route: Option<Box<ShardRoute<E>>>,
    params: MacParams,
    rng: SmallRng,
    next_tx_id: u64,
}

/// Cross-domain event routing for sharded runs (see `crate::shard`). The
/// near queue (`MacCore::events`) keeps everything inside the current
/// window plus the rare engine-scheduled events (TxEnd, Outcome, medium
/// timers); the overwhelming bulk — channel-access schedules — is staged
/// per spatial domain and applied to the domain wheels at the next window
/// barrier.
pub(crate) struct ShardRoute<E> {
    /// End of the window being dispatched: schedules earlier than this
    /// join the near queue (they must interleave with the live merge).
    pub(crate) horizon: f64,
    /// Sender → spatial domain (load-balance only: ordering is restored
    /// by the global `(time, seq)` merge, so the map may go stale across
    /// handoffs without affecting results).
    pub(crate) domain_of: Vec<u32>,
    /// Staged `(time, seq, event)` triples per domain, applied to the
    /// domain wheels in parallel at the window barrier.
    pub(crate) stage: Vec<Vec<(f64, u64, MacEv<E>)>>,
}

impl<E, I> MacCore<E, I> {
    /// A core for `n_senders` transmitters driving `ports`, with the event
    /// queue preallocated for a few in-flight events per sender (the same
    /// sizing the spatial simulator established; reallocation pauses show
    /// up directly in events/sec at scale).
    pub fn new(n_senders: usize, ports: Vec<Port>, params: MacParams) -> Self {
        let n_ports = ports.len();
        MacCore {
            events: EventQueue::with_capacity(n_senders * 8),
            lanes: StationLanes::new(n_senders, n_ports),
            ports,
            batch: true,
            active: Vec::new(),
            pending: Vec::new(),
            stats: MacStats::default(),
            recorder: None,
            ledger: LedgerState {
                ctx: DecisionCtx::disabled(),
            },
            faults: None,
            route: None,
            rng: SmallRng::seed_from_u64(params.backoff_seed),
            params,
            next_tx_id: 1,
        }
    }

    /// Aligns the decision-ledger sink with the installed recorder's
    /// configuration. Called once at run start, after the simulator has
    /// installed (or not installed) the recorder.
    pub fn sync_ledger(&mut self) {
        let on = self
            .recorder
            .as_deref()
            .is_some_and(|r| r.wants_decisions());
        if on != self.ledger.ctx.is_enabled() {
            self.ledger.ctx = if on {
                DecisionCtx::enabled()
            } else {
                DecisionCtx::disabled()
            };
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> f64 {
        self.events.now()
    }

    /// Schedules `sender`'s next channel-access attempt after DIFS plus a
    /// backoff drawn from contention window `cw` (callers read it from the
    /// port the sender would serve, or pass [`CW_MIN`]).
    pub fn schedule_tx_start(&mut self, sender: usize, after: Option<f64>, cw: u32) {
        if let Some(rec) = self.recorder.as_deref_mut() {
            // Channel access starts the moment the sender begins
            // contending; deferrals keep the same period open.
            rec.mark_access_start(sender, self.events.now());
        }
        let slots = self.rng.gen_range(0..=cw) as f64;
        let at = after.unwrap_or(self.events.now()) + DIFS + slots * SLOT;
        self.lanes.start_pending[sender] = true;
        match self.route.as_deref_mut() {
            None => self.events.schedule(at, MacEv::TxStart { sender }),
            Some(rt) => {
                // Sharded run: the sequence number still comes from the
                // near queue's counter (identical assignment order to the
                // sequential engine); only the storage differs.
                let seq = self.events.alloc_seq();
                // `<=`: an arrival exactly at the horizon must dispatch in
                // the *current* window — the merge includes near events with
                // `t <= horizon`, so staging it would let a same-time event
                // with a larger seq jump ahead (seen on the 10k city rung,
                // where roam-wave timers make exact-horizon hits routine).
                if at <= rt.horizon {
                    self.events
                        .schedule_with_seq(at, seq, MacEv::TxStart { sender });
                } else {
                    let d = rt.domain_of[sender] as usize;
                    rt.stage[d].push((at, seq, MacEv::TxStart { sender }));
                }
            }
        }
    }
}

/// The environment a [`MacEngine`] runs in: everything that differs
/// between the trace-backed single-cell world and the streaming spatial
/// one.
///
/// Hook order within one transmission: [`Medium::pick_port`] →
/// [`Medium::carrier_sense`] → the port adapter's `next_attempt` →
/// [`Medium::begin_attempt`] → [`Medium::mark_collisions`]; then at the
/// feedback window [`Medium::fate`] → [`Medium::fault_loss`] →
/// (`on_acked` | retry | `on_dropped`) → [`Medium::after_outcome`].
pub trait Medium {
    /// Medium-specific events (transport timers, wired hops, roaming).
    type Event: Copy;
    /// Per-attempt data carried on in-flight transmissions.
    type TxInfo: Copy;

    /// Schedules the initial events (traffic kickoff, roaming timers).
    fn kickoff(&mut self, core: &mut MacCore<Self::Event, Self::TxInfo>);

    /// The port `sender` would transmit on next, if it has a frame.
    fn pick_port(&mut self, sender: usize) -> Option<usize>;

    /// If the medium is sensed busy at `sender`, the time the latest
    /// audible transmission ends (the engine defers until then).
    fn carrier_sense(
        &mut self,
        core: &MacCore<Self::Event, Self::TxInfo>,
        sender: usize,
    ) -> Option<f64>;

    /// Resolves the head-of-line frame on `port`: payload size, audit
    /// oracle, and the medium's per-attempt data. May override the
    /// adapter's `attempt` (the spatial omniscient oracle does).
    fn begin_attempt(
        &mut self,
        sender: usize,
        port: usize,
        now: f64,
        attempt: &mut TxAttempt,
    ) -> AttemptInfo<Self::TxInfo>;

    /// Marks mutual corruption between the new transmission and the ones
    /// already on the air. The engine always pushes `tx` onto the active
    /// set right after this hook, so a medium that indexes active
    /// transmitters (the spatial grid) inserts here.
    fn mark_collisions(
        &mut self,
        tx: &mut ActiveTx<Self::TxInfo>,
        active: &mut [ActiveTx<Self::TxInfo>],
    );

    /// The transmission's air time ended and it left the active set (it
    /// still awaits its feedback window). Media that index active
    /// transmitters drop `tx` here; the default does nothing.
    fn on_air_end(&mut self, _tx: &ActiveTx<Self::TxInfo>) {}

    /// The interference-free fate of `tx` (also consulted under collision
    /// for the §6.4 interference-free BER feedback).
    fn fate(&mut self, tx: &ActiveTx<Self::TxInfo>) -> FrameFate;

    /// Whether an injected fault kills `tx` at its feedback window: an
    /// [`FaultLoss::Outage`] (the receiver is dark — a silent loss) or a
    /// [`FaultLoss::Jamming`] burst (the reception is swamped — resolved
    /// like a collision the detector may flag). Consulted *after*
    /// [`Medium::fate`] so the fate stream is drawn uniformly whether or
    /// not faults fire, and takes precedence over organic collision
    /// resolution (exactly one cause per failure). Defaults to `None`:
    /// faults-off media never see this seam.
    fn fault_loss(&mut self, _tx: &ActiveTx<Self::TxInfo>) -> Option<FaultLoss> {
        None
    }

    /// The frame was delivered: advance queues and hand the payload up.
    fn on_acked(
        &mut self,
        core: &mut MacCore<Self::Event, Self::TxInfo>,
        tx: &ActiveTx<Self::TxInfo>,
    );

    /// The frame exhausted its retries and was dropped.
    fn on_dropped(
        &mut self,
        core: &mut MacCore<Self::Event, Self::TxInfo>,
        tx: &ActiveTx<Self::TxInfo>,
    );

    /// The attempt fully resolved and the sender is idle again: apply
    /// deferred state changes (handoffs) and schedule the next access.
    fn after_outcome(&mut self, core: &mut MacCore<Self::Event, Self::TxInfo>, sender: usize);

    /// Dispatches a medium-specific event.
    fn on_event(&mut self, core: &mut MacCore<Self::Event, Self::TxInfo>, ev: Self::Event);

    /// The station (flow) index that owns `port`'s frames, for telemetry
    /// attribution. Downlink ports map to the *receiving* station so the
    /// per-station view covers both directions. Defaults to the port
    /// index (one port per station).
    fn telemetry_station(&self, port: usize) -> usize {
        port
    }

    /// Whether `ev` is transport-layer work (TCP/UDP timers, wired-hop
    /// deliveries, source arrivals) rather than a medium-native event
    /// (roaming checks). Drives the `transport` row of
    /// `netscale --profile`; defaults to `false`.
    fn event_is_transport(&self, _ev: &Self::Event) -> bool {
        false
    }

    /// Called once per same-tick cohort of width ≥ 2, after the cohort
    /// was drained from the queue and before any member dispatches. The
    /// medium may batch-warm its memo layers through the contiguous-lane
    /// channel kernels (`gain_many`/`gain_x4`, `eval_many`) so the
    /// per-event dispatch that follows hits warm slots instead of doing N
    /// scattered kernel evaluations.
    ///
    /// **Contract: value-transparent.** The hook must not consume
    /// randomness, schedule events, or mutate any state an event handler
    /// reads for *values* — only memo caches, whose misses recompute the
    /// identical numbers. That is what makes batched dispatch provably
    /// byte-identical to `--batch off` with no ordering argument at all.
    /// Defaults to nothing (trace-backed and loopback media have no
    /// kernels to warm).
    fn prepare_cohort(
        &mut self,
        _core: &MacCore<Self::Event, Self::TxInfo>,
        _t: f64,
        _cohort: &[MacEv<Self::Event>],
    ) {
    }
}

/// Wall-time breakdown of one profiled run: seconds spent inside each
/// medium hook, with everything unaccounted (event-queue push/pop, engine
/// dispatch, adapter calls, stats) folded into `queue_s`. Produced by
/// [`MacEngine::run_profiled`]; the `netscale --profile` bench prints it so
/// perf work knows where the time actually goes.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseProfile {
    /// Seconds inside [`Medium::carrier_sense`].
    pub sense_s: f64,
    /// Seconds inside [`Medium::begin_attempt`] (plus the adapter's
    /// `next_attempt`, which the engine calls back-to-back with it).
    pub begin_s: f64,
    /// Seconds inside [`Medium::mark_collisions`].
    pub collision_s: f64,
    /// Seconds inside [`Medium::fate`].
    pub fate_s: f64,
    /// Seconds inside [`Medium::on_event`] for medium-native events
    /// (roaming checks).
    pub medium_ev_s: f64,
    /// Seconds inside [`Medium::on_event`] for transport-layer events
    /// (TCP timers, wired hops, arrivals — see
    /// [`Medium::event_is_transport`]).
    pub transport_s: f64,
    /// Seconds resolving outcomes after the fate draw: ACK/drop
    /// bookkeeping plus `on_acked`/`on_dropped`/`after_outcome`, where
    /// transport pumps new segments into the MAC queues.
    pub outcome_s: f64,
    /// Residual: event-queue push/pop, dispatch, stats.
    pub queue_s: f64,
    /// Sharded runs only: wall seconds in the PDES window machinery —
    /// applying cross-domain staged events, draining domain wheels to the
    /// window horizon, precomputing carrier senses against the frozen
    /// active set, and the window barriers themselves. Zero on sequential
    /// runs.
    pub sync_s: f64,
    /// Seconds inside [`Medium::prepare_cohort`] — the batched kernel
    /// sweeps that warm the memo layers ahead of same-tick dispatch.
    pub kernel_s: f64,
    /// Whole-run wall seconds.
    pub total_s: f64,
    /// TxStart events that found the medium busy and deferred.
    pub deferrals: u64,
    /// TxStart events that transmitted.
    pub transmissions: u64,
    /// Batched dispatch cohorts formed (same-tick groups of width ≥ 2;
    /// singleton ticks go down the ordinary scalar path uncounted).
    pub cohorts: u64,
    /// Widest cohort seen.
    pub cohort_max: u64,
    /// Cohort-width histogram over the counted (width ≥ 2) cohorts:
    /// bucket `i < 15` counts cohorts of width `i + 1`; bucket 15 counts
    /// widths ≥ 16. Percentiles (p50/p95) fall out of the cumulative sum.
    pub cohort_hist: [u64; 16],
}

/// The generic DCF discrete-event engine: one MAC, many media.
pub struct MacEngine<M: Medium> {
    /// The shared MAC state.
    pub core: MacCore<M::Event, M::TxInfo>,
    /// The environment.
    pub medium: M,
    /// Phase timers, populated only by [`MacEngine::run_profiled`] (the
    /// unprofiled [`MacEngine::run`] never looks at the clock).
    pub(crate) profile: Option<Box<PhaseProfile>>,
}

impl<M: Medium> MacEngine<M> {
    /// An engine over `medium` with `n_senders` transmitters and `ports`.
    pub fn new(n_senders: usize, ports: Vec<Port>, params: MacParams, medium: M) -> Self {
        MacEngine {
            core: MacCore::new(n_senders, ports, params),
            medium,
            profile: None,
        }
    }

    /// Runs the event loop to `duration` simulated seconds.
    ///
    /// Dispatch is batch-first: each pop drains the rest of its exact
    /// tick into a cohort, hands the cohort to
    /// [`Medium::prepare_cohort`] (one coherent kernel sweep over the
    /// medium's memo layers), then dispatches the members one by one.
    /// Sequence numbers are allocated monotonically at schedule time, so
    /// every event already queued at this tick precedes anything a
    /// cohort member's handler can newly schedule — pre-draining the
    /// tick and dispatching in pop order *is* the sequential `(time,
    /// seq)` order, and a handler-scheduled same-tick event simply forms
    /// the next cohort. With `core.batch` off the drain is skipped and
    /// every cohort has width 1 through this same code path.
    pub fn run(&mut self, duration: f64) {
        self.core.sync_ledger();
        self.medium.kickoff(&mut self.core);
        let mut cohort: Vec<MacEv<M::Event>> = Vec::new();
        while let Some(ev) = self.core.events.pop() {
            if ev.time > duration {
                break;
            }
            self.core.stats.events_processed += 1;
            cohort.clear();
            cohort.push(ev.event);
            if self.core.batch {
                while self
                    .core
                    .events
                    .peek_key()
                    .is_some_and(|(t, _)| t == ev.time)
                {
                    let next = self.core.events.pop().expect("peeked non-empty");
                    self.core.stats.events_processed += 1;
                    cohort.push(next.event);
                }
            }
            if cohort.len() >= 2 {
                if let Some(p) = self.profile.as_deref_mut() {
                    p.cohorts += 1;
                    p.cohort_max = p.cohort_max.max(cohort.len() as u64);
                    p.cohort_hist[(cohort.len() - 1).min(15)] += 1;
                }
                let t0 = self.profile.as_deref().map(|_| std::time::Instant::now());
                self.medium.prepare_cohort(&self.core, ev.time, &cohort);
                if let (Some(t0), Some(p)) = (t0, self.profile.as_deref_mut()) {
                    p.kernel_s += t0.elapsed().as_secs_f64();
                }
            }
            for &e in &cohort {
                self.dispatch(e);
            }
        }
    }

    /// Dispatches one engine event — the single body behind both the
    /// cohort loop above and the sharded merge loop.
    pub(crate) fn dispatch(&mut self, ev: MacEv<M::Event>) {
        match ev {
            MacEv::TxStart { sender } => self.on_tx_start(sender),
            MacEv::TxEnd { tx } => self.on_tx_end(tx),
            MacEv::Outcome { tx } => self.on_outcome(tx),
            MacEv::Medium(e) => {
                let t0 = self.profile.as_deref().map(|_| std::time::Instant::now());
                let transport = t0.is_some() && self.medium.event_is_transport(&e);
                self.medium.on_event(&mut self.core, e);
                if let (Some(t0), Some(p)) = (t0, self.profile.as_deref_mut()) {
                    if transport {
                        p.transport_s += t0.elapsed().as_secs_f64();
                    } else {
                        p.medium_ev_s += t0.elapsed().as_secs_f64();
                    }
                }
            }
        }
    }

    /// [`MacEngine::run`] with per-phase wall-time accounting. Results are
    /// identical to an unprofiled run (the timers observe, never steer);
    /// the run is slightly slower from the clock reads around every hook.
    pub fn run_profiled(&mut self, duration: f64) -> PhaseProfile {
        self.profile = Some(Box::default());
        let started = std::time::Instant::now();
        self.run(duration);
        self.finish_profile(started)
    }

    /// Closes out a profiled run started by [`MacEngine::run_profiled`]
    /// or the sharded equivalent: folds everything unattributed into
    /// `queue_s`.
    pub(crate) fn finish_profile(&mut self, started: std::time::Instant) -> PhaseProfile {
        let mut p = *self.profile.take().expect("profiling was enabled");
        p.total_s = started.elapsed().as_secs_f64();
        p.queue_s = p.total_s
            - p.sense_s
            - p.begin_s
            - p.collision_s
            - p.fate_s
            - p.medium_ev_s
            - p.transport_s
            - p.outcome_s
            - p.sync_s
            - p.kernel_s;
        p
    }

    /// Drains adapter-recorded decisions into the ledger and, at transmit
    /// time (`tx_rate = Some`), reconciles the ledger's view of the
    /// port's rate with the rate actually going on the air. The
    /// reconciliation catches the two rate changes no adapter observes:
    /// a medium override of the attempt (the spatial omniscient oracle)
    /// and the first frame after a Reset handoff rebuilt the adapter.
    fn drain_decisions(&mut self, now: f64, port: usize, tx_rate: Option<usize>) {
        let core = &mut self.core;
        if !core.ledger.ctx.is_enabled() {
            return;
        }
        let station = self.medium.telemetry_station(port);
        let adapter = core.ports[port].adapter.name();
        let mut pending = std::mem::take(&mut core.ledger.ctx.decisions);
        for d in pending.drain(..) {
            core.lanes.last_rate[port] = Some(d.new_rate);
            if let Some(rec) = core.recorder.as_deref_mut() {
                rec.on_decision(
                    now,
                    DecisionEvent {
                        station,
                        port,
                        adapter,
                        old_rate: d.old_rate,
                        new_rate: d.new_rate,
                        trigger: d.trigger.name(),
                        snr_db: d.snr_db,
                        ber: d.ber,
                        reason: d.reason,
                    },
                );
            }
        }
        core.ledger.ctx.decisions = pending; // keep the sink's capacity
        let Some(tx_rate) = tx_rate else {
            return;
        };
        let prev = core.lanes.last_rate[port];
        let reset = std::mem::replace(&mut core.lanes.handoff_reset[port], false);
        let engine_row = if reset {
            // A Reset handoff rebuilt the adapter: file the (possibly
            // identical) rate under handoff_reset exactly once.
            Some((
                prev.unwrap_or(tx_rate),
                DecisionTrigger::HandoffReset.name(),
                "adapter-reset",
            ))
        } else {
            match prev {
                Some(r) if r != tx_rate => {
                    // The medium overrode the adapter's attempt — decided
                    // at transmit time, so it files under the probe class
                    // (DESIGN.md §10).
                    Some((r, DecisionTrigger::Probe.name(), "medium-override"))
                }
                _ => None,
            }
        };
        if let Some((old_rate, trigger, reason)) = engine_row {
            if let Some(rec) = core.recorder.as_deref_mut() {
                rec.on_decision(
                    now,
                    DecisionEvent {
                        station,
                        port,
                        adapter,
                        old_rate,
                        new_rate: tx_rate,
                        trigger,
                        snr_db: None,
                        ber: None,
                        reason,
                    },
                );
            }
        }
        core.lanes.last_rate[port] = Some(tx_rate);
    }

    fn on_tx_start(&mut self, sender: usize) {
        self.on_tx_start_with(sender, None);
    }

    /// [`MacEngine::on_tx_start`] with an optionally injected carrier-sense
    /// verdict. The shard scheduler precomputes senses against the frozen
    /// window-start active set in parallel and injects any that survived
    /// the range-band invalidation check; `None` (and the sequential
    /// engine always) evaluates [`Medium::carrier_sense`] in place. An
    /// injected verdict must equal what `carrier_sense` would return at
    /// this exact dispatch point — the shard-invariance suite pins that.
    pub(crate) fn on_tx_start_with(&mut self, sender: usize, pre: Option<Option<f64>>) {
        let core = &mut self.core;
        core.lanes.start_pending[sender] = false;
        if core.lanes.busy[sender] {
            return; // will reschedule when freed
        }
        let Some(port) = self.medium.pick_port(sender) else {
            if let Some(rec) = core.recorder.as_deref_mut() {
                // Nothing to send: whatever access period was open ends.
                rec.clear_access_start(sender);
            }
            return;
        };

        let sensed = match pre {
            Some(sensed) => sensed,
            None => {
                let t0 = self.profile.as_deref().map(|_| std::time::Instant::now());
                let sensed = self.medium.carrier_sense(core, sender);
                if let (Some(t0), Some(p)) = (t0, self.profile.as_deref_mut()) {
                    p.sense_s += t0.elapsed().as_secs_f64();
                }
                sensed
            }
        };
        if let Some(until) = sensed {
            if let Some(p) = self.profile.as_deref_mut() {
                p.deferrals += 1;
            }
            if core.recorder.is_some() {
                let station = self.medium.telemetry_station(port);
                let now = core.events.now();
                if let Some(rec) = core.recorder.as_deref_mut() {
                    rec.on_defer(now, station, sender);
                }
            }
            let cw = core.lanes.cw[port];
            core.schedule_tx_start(sender, Some(until), cw);
            return;
        }

        // Transmit.
        let now = core.events.now();
        let t0 = self.profile.as_deref().map(|_| std::time::Instant::now());
        let mut attempt = core.ports[port]
            .adapter
            .next_attempt_ctx(now, &mut core.ledger.ctx);
        let info = self.medium.begin_attempt(sender, port, now, &mut attempt);
        if let (Some(t0), Some(p)) = (t0, self.profile.as_deref_mut()) {
            p.begin_s += t0.elapsed().as_secs_f64();
            p.transmissions += 1;
        }
        // Ledger: adapter decisions from `next_attempt` (sampling probes,
        // oracle moves), then reconcile against the rate going on the air.
        self.drain_decisions(now, port, Some(attempt.rate_idx));
        let core = &mut self.core;
        let rate = softrate_phy::rates::PAPER_RATES[attempt.rate_idx];
        let air = data_airtime(rate, info.payload_bytes, core.params.postambles)
            + if attempt.use_rts {
                rts_cts_overhead()
            } else {
                0.0
            };
        let id = core.next_tx_id;
        core.next_tx_id += 1;
        core.lanes.attempts[port] += 1;

        let mut tx = ActiveTx {
            id,
            sender,
            port,
            start: now,
            end: now + air,
            header_end: now + air * HEADER_AIRTIME_FRAC,
            rate_idx: attempt.rate_idx,
            use_rts: attempt.use_rts,
            payload_bytes: info.payload_bytes,
            attempt: core.lanes.attempts[port],
            counts_as_data: info.counts_as_data,
            collided: false,
            corrupt_same_cell: false,
            corrupt_inter_cell: false,
            first_other_start: f64::INFINITY,
            max_other_end: f64::NEG_INFINITY,
            info: info.info,
        };
        let t0 = self.profile.as_deref().map(|_| std::time::Instant::now());
        self.medium.mark_collisions(&mut tx, &mut core.active);
        if let (Some(t0), Some(p)) = (t0, self.profile.as_deref_mut()) {
            p.collision_s += t0.elapsed().as_secs_f64();
        }

        if core.recorder.is_some() {
            let station = self.medium.telemetry_station(port);
            if let Some(rec) = core.recorder.as_deref_mut() {
                rec.on_tx(now, station, sender, id, tx.rate_idx, tx.attempt, air);
            }
        }

        core.lanes.busy[sender] = true;
        core.events.schedule(tx.end, MacEv::TxEnd { tx: id });
        core.active.push(tx);

        if info.counts_as_data {
            core.stats.frames_sent += 1;
        }
        if let Some(best) = info.audit_best {
            match attempt.rate_idx.cmp(&best) {
                std::cmp::Ordering::Greater => core.stats.audit.overselect += 1,
                std::cmp::Ordering::Equal => core.stats.audit.accurate += 1,
                std::cmp::Ordering::Less => core.stats.audit.underselect += 1,
            }
        }
        if info.timeline {
            core.stats.rate_timeline.push((now, attempt.rate_idx));
        }
    }

    pub(crate) fn on_tx_end(&mut self, tx_id: u64) {
        let core = &mut self.core;
        let idx = core
            .active
            .iter()
            .position(|t| t.id == tx_id)
            .expect("unknown tx");
        let tx = core.active.swap_remove(idx);
        self.medium.on_air_end(&tx);
        // Sender waits a feedback window before concluding anything.
        core.events.schedule(
            tx.end + SIFS + feedback_airtime(),
            MacEv::Outcome { tx: tx_id },
        );
        core.pending.push(tx);
    }

    pub(crate) fn on_outcome(&mut self, tx_id: u64) {
        let core = &mut self.core;
        let idx = core
            .pending
            .iter()
            .position(|t| t.id == tx_id)
            .expect("unknown pending tx");
        let tx = core.pending.swap_remove(idx);
        let now = core.events.now();
        let rate = softrate_phy::rates::PAPER_RATES[tx.rate_idx];
        let postambles = core.params.postambles;

        // Interference-free fate from the medium (also needed under
        // collision for the §6.4 interference-free BER feedback).
        let t0 = self.profile.as_deref().map(|_| std::time::Instant::now());
        let fate = self.medium.fate(&tx);
        if let (Some(t0), Some(p)) = (t0, self.profile.as_deref_mut()) {
            p.fate_s += t0.elapsed().as_secs_f64();
        }

        let mut outcome = TxOutcome {
            rate_idx: tx.rate_idx,
            acked: false,
            feedback_received: false,
            ber_feedback: None,
            interference_flagged: false,
            postamble_ack: false,
            snr_feedback_db: None,
            airtime: attempt_airtime(rate, tx.payload_bytes, postambles, tx.use_rts),
            now,
        };

        // Injected faults resolve first (exactly one cause per failure;
        // a frame that is both jammed and collided counts as jammed —
        // the adversarial event wins the attribution).
        let fault = self.medium.fault_loss(&tx);
        match fault {
            Some(FaultLoss::Outage) => {
                // The receiver is powered off: nothing decodes, nothing
                // feeds back. A silent loss with a name.
                core.stats.silent_losses += 1;
            }
            Some(FaultLoss::Jamming) => {
                // The jammer swamps the whole reception, RTS-protected or
                // not (the exchange shields against *802.11* contenders,
                // not a wideband interferer). Resolved with the collision
                // feedback machinery — the receiver's detector may flag
                // the interference — under a distinct draw salt so the
                // jam stream never correlates with organic collisions.
                let flagged = hash_uniform(&[tx.id, 0x4A41_4D00, core.params.collision_seed])
                    < core.params.detect_prob;
                let timing = CollisionTiming {
                    start: tx.start,
                    header_end: tx.header_end,
                    end: tx.end,
                    first_other_start: tx.start,
                    max_other_end: tx.end,
                };
                if apply_collision_feedback(&mut outcome, &timing, &fate, flagged, postambles) {
                    core.stats.silent_losses += 1;
                }
            }
            None if tx.collided && !tx.use_rts => {
                core.stats.collisions += 1;
                let flagged = hash_uniform(&[tx.id, 0x00DE_7EC7, core.params.collision_seed])
                    < core.params.detect_prob;
                let timing = CollisionTiming {
                    start: tx.start,
                    header_end: tx.header_end,
                    end: tx.end,
                    first_other_start: tx.first_other_start,
                    max_other_end: tx.max_other_end,
                };
                if apply_collision_feedback(&mut outcome, &timing, &fate, flagged, postambles) {
                    core.stats.silent_losses += 1;
                }
            }
            None if fate.detected && fate.header_ok => {
                // Clean medium: the fate decides.
                outcome.feedback_received = true;
                outcome.acked = fate.delivered;
                outcome.ber_feedback = fate.ber_feedback;
                outcome.snr_feedback_db = fate.snr_feedback_db;
            }
            None => {
                core.stats.silent_losses += 1;
            }
        }

        // SoftPHY hint corruption degrades what the *adapter* sees; the
        // recorder below keeps the ground-truth fate (telemetry observes
        // the world, the adapter observes the pipeline).
        if let Some(fd) = core.faults.as_mut() {
            fd.corrupt_hints(tx.id, &mut outcome);
        }

        core.ports[tx.port]
            .adapter
            .on_outcome_ctx(&outcome, &mut core.ledger.ctx);
        self.drain_decisions(now, tx.port, None);
        let core = &mut self.core;

        if core.recorder.is_some() {
            // Attribution happens here because this is where the fate is
            // decided: the medium marked *who* corrupted the frame at
            // transmit time, the feedback window just resolved *whether*
            // it survived. Exactly one cause per failure:
            //   - killed by an injected fault            -> outage/jamming
            //   - corrupted by a same-cell transmission  -> collision
            //   - corrupted only by another BSS          -> capture
            //   - failed with no interferer (incl. RTS-protected
            //     collisions, which the exchange shields) -> fading
            let cause = if outcome.acked {
                None
            } else if let Some(fl) = fault {
                Some(match fl {
                    FaultLoss::Outage => LossCause::Outage,
                    FaultLoss::Jamming => LossCause::Jamming,
                })
            } else if tx.collided && !tx.use_rts {
                if tx.corrupt_same_cell {
                    Some(LossCause::Collision)
                } else {
                    Some(LossCause::InterferenceCapture)
                }
            } else {
                Some(LossCause::Fading)
            };
            let dropped = !outcome.acked && core.lanes.retries[tx.port] + 1 > MAX_RETRIES;
            let station = self.medium.telemetry_station(tx.port);
            if let Some(rec) = core.recorder.as_deref_mut() {
                rec.on_outcome(
                    now,
                    OutcomeEvent {
                        station,
                        sender: tx.sender,
                        tx_id: tx.id,
                        rate_idx: tx.rate_idx,
                        attempt: tx.attempt,
                        acked: outcome.acked,
                        dropped,
                        counts_as_data: tx.counts_as_data,
                        payload_bytes: tx.payload_bytes,
                        airtime_s: tx.end - tx.start,
                        snr_db: fate.snr_feedback_db,
                        cause,
                    },
                );
            }
        }

        if let Some(snr) = fate.snr_feedback_db {
            core.lanes.last_snr_db[tx.port] = snr;
        }
        let t0 = self.profile.as_deref().map(|_| std::time::Instant::now());
        if outcome.acked {
            core.lanes.retries[tx.port] = 0;
            core.lanes.cw[tx.port] = CW_MIN;
            self.medium.on_acked(core, &tx);
        } else {
            core.lanes.retries[tx.port] += 1;
            if core.lanes.retries[tx.port] > MAX_RETRIES {
                core.lanes.retries[tx.port] = 0;
                core.lanes.cw[tx.port] = CW_MIN;
                self.medium.on_dropped(core, &tx);
            } else {
                core.lanes.cw[tx.port] = (core.lanes.cw[tx.port] * 2 + 1).min(CW_MAX);
            }
        }

        core.lanes.busy[tx.sender] = false;
        self.medium.after_outcome(core, tx.sender);
        if let (Some(t0), Some(p)) = (t0, self.profile.as_deref_mut()) {
            p.outcome_s += t0.elapsed().as_secs_f64();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softrate_adapt::misc::FixedRate;

    /// A loopback medium: one saturated sender on a perfect channel.
    struct Loopback {
        delivered: u64,
    }

    impl Medium for Loopback {
        type Event = ();
        type TxInfo = ();

        fn kickoff(&mut self, core: &mut MacCore<(), ()>) {
            core.schedule_tx_start(0, None, CW_MIN);
        }

        fn pick_port(&mut self, _sender: usize) -> Option<usize> {
            Some(0)
        }

        fn carrier_sense(&mut self, _core: &MacCore<(), ()>, _sender: usize) -> Option<f64> {
            None
        }

        fn begin_attempt(
            &mut self,
            _sender: usize,
            _port: usize,
            _now: f64,
            _attempt: &mut TxAttempt,
        ) -> AttemptInfo<()> {
            AttemptInfo {
                payload_bytes: 1440,
                counts_as_data: true,
                audit_best: Some(3),
                timeline: false,
                info: (),
            }
        }

        fn mark_collisions(&mut self, _tx: &mut ActiveTx<()>, _active: &mut [ActiveTx<()>]) {}

        fn fate(&mut self, _tx: &ActiveTx<()>) -> FrameFate {
            FrameFate {
                detected: true,
                header_ok: true,
                delivered: true,
                ber_feedback: Some(1e-9),
                snr_feedback_db: Some(25.0),
            }
        }

        fn on_acked(&mut self, core: &mut MacCore<(), ()>, _tx: &ActiveTx<()>) {
            core.stats.frames_delivered += 1;
            self.delivered += 1;
        }

        fn on_dropped(&mut self, _core: &mut MacCore<(), ()>, _tx: &ActiveTx<()>) {}

        fn after_outcome(&mut self, core: &mut MacCore<(), ()>, sender: usize) {
            if !core.lanes.start_pending[sender] {
                let cw = core.lanes.cw[0];
                core.schedule_tx_start(sender, None, cw);
            }
        }

        fn on_event(&mut self, _core: &mut MacCore<(), ()>, _ev: ()) {}
    }

    fn engine() -> MacEngine<Loopback> {
        let params = MacParams {
            postambles: false,
            detect_prob: 0.8,
            backoff_seed: 7,
            collision_seed: 7,
        };
        let ports = vec![Port::new(Box::new(FixedRate::new(3, 6)))];
        MacEngine::new(1, ports, params, Loopback { delivered: 0 })
    }

    #[test]
    fn loopback_medium_saturates_the_engine() {
        let mut e = engine();
        e.run(0.5);
        assert!(
            e.core.stats.frames_sent > 100,
            "{}",
            e.core.stats.frames_sent
        );
        // The final frame may still be inside its feedback window when the
        // clock runs out.
        assert!(e.core.stats.frames_sent - e.core.stats.frames_delivered <= 1);
        assert_eq!(e.core.stats.collisions, 0);
        assert_eq!(e.core.stats.silent_losses, 0);
        assert_eq!(e.core.stats.audit.accurate, e.core.stats.frames_sent);
        // Each resolved frame is >= 3 events (TxStart, TxEnd, Outcome).
        assert!(e.core.stats.events_processed >= 3 * e.core.stats.frames_delivered);
        assert_eq!(e.medium.delivered, e.core.stats.frames_delivered);
    }

    #[test]
    fn engine_runs_are_deterministic() {
        let (mut a, mut b) = (engine(), engine());
        a.run(0.3);
        b.run(0.3);
        assert_eq!(a.core.stats.frames_sent, b.core.stats.frames_sent);
        assert_eq!(a.core.stats.events_processed, b.core.stats.events_processed);
    }

    #[test]
    fn batch_off_is_byte_identical() {
        let (mut on, mut off) = (engine(), engine());
        off.core.batch = false;
        on.run(0.3);
        off.run(0.3);
        assert_eq!(on.core.stats.frames_sent, off.core.stats.frames_sent);
        assert_eq!(
            on.core.stats.frames_delivered,
            off.core.stats.frames_delivered
        );
        assert_eq!(
            on.core.stats.events_processed,
            off.core.stats.events_processed
        );
    }

    #[test]
    fn event_queue_is_preallocated_from_sender_count() {
        let e = engine();
        assert!(e.core.events.capacity() >= 8);
    }

    #[test]
    fn audit_fractions_sum_to_one() {
        let a = RateAudit {
            overselect: 1,
            accurate: 2,
            underselect: 1,
        };
        let (o, acc, u) = a.fractions();
        assert!((o + acc + u - 1.0).abs() < 1e-12);
        assert_eq!(a.total(), 4);
    }
}
