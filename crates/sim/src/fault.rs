//! Deterministic fault injection: the `softrate-faults` subsystem.
//!
//! SoftRate's headline claim is robustness — it keeps adapting correctly
//! when the channel misbehaves — yet organic Jakes fading and DCF
//! collisions are the only adversity the simulators produce on their
//! own. This module supplies the storm: a declarative, *deterministic*
//! fault model that the media translate into concrete channel and
//! topology events, so the telemetry taxonomy (collision / fading /
//! capture, PR 6) can be tested against outages, jammers, SNR cliffs,
//! station churn, and corrupted SoftPHY hints.
//!
//! Design rules (load-bearing — see DESIGN.md §12):
//!
//! * **Faults are data, not threads.** Every fault is either a timed
//!   event (scheduled into the engine's event queue at config time, so
//!   it dispatches in exact global `(time, seq)` order under any shard
//!   count) or a seeded-stochastic draw keyed by stable identifiers
//!   (`hash_uniform` over transmission ids / station indices), never by
//!   host state. Faults-on output is therefore byte-identical across
//!   `--threads` and `--shards`, and faults-off runs never touch this
//!   module at all.
//! * **Faults act at dispatch points only.** A fault may change what a
//!   transmission *experiences* (its fate, its feedback, whether its
//!   sender may transmit) but never what a concurrent carrier sense
//!   *observes*: the sharded engine precomputes senses in parallel
//!   against frozen active sets, so anything that altered a sense
//!   verdict between barriers would break shard invariance. All five
//!   fault classes respect this (the jammer, in particular, corrupts
//!   receptions rather than occupying the medium).
//! * **Every loss is attributed.** Frames killed by an outage or a
//!   jammer carry their own [`FaultLoss`] cause through the engine into
//!   telemetry, keeping the per-station balance invariant
//!   `retries == Σ loss causes` intact under any fault load.
//!
//! The plain-data configuration types here are the *lowered* form the
//! simulators consume; the serde-facing `[faults]` scenario table lives
//! in `softrate-scenario` (the spec crate owns parsing and validation,
//! mirroring how `TrafficSpec` lowers into `TrafficModel`).

use softrate_core::adapter::TxOutcome;
use softrate_trace::schema::hash_uniform;

/// Salt for the per-frame SoftPHY-hint drop draw (distinct from the
/// collision-detector salt `0x00DE_7EC7` so the two streams never
/// correlate).
const HINT_DROP_SALT: u64 = 0x4849_4E54; // "HINT"

/// Why a fault killed a frame — folded into the engine's loss
/// attribution alongside collision/fading/capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultLoss {
    /// The receiver (AP or station) was powered off: nothing decodes,
    /// nothing feeds back. A silent loss with a name.
    Outage,
    /// A jammer burst swamped the reception below the capture SIR:
    /// the frame is corrupt end-to-end, like an inter-cell collision
    /// the MAC never saw coming.
    Jamming,
}

/// Timed AP death and restart: at `at` the AP stops receiving,
/// acking, and transmitting; queued downlink frames are dropped with
/// explicit accounting; stations re-home via the existing
/// RSSI-hysteresis roaming. At `at + duration` the AP returns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApOutage {
    /// Index of the AP to kill (row-major grid order).
    pub ap: usize,
    /// Outage start, seconds into the run.
    pub at: f64,
    /// Outage length, seconds. The AP restarts at `at + duration`.
    pub duration: f64,
}

/// A stationary wideband jammer burst: while on, any reception whose
/// signal-to-jammer ratio at the receiver falls below the capture SIR
/// threshold is corrupted (a [`FaultLoss::Jamming`] loss). The jammer
/// does not occupy the medium for carrier sense — it attacks
/// receptions, not airtime, which is both physically defensible for a
/// non-802.11 interferer and required for shard invariance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Jammer {
    /// Jammer x position, metres.
    pub x: f64,
    /// Jammer y position, metres.
    pub y: f64,
    /// Transmit power relative to an AP's reference power, dB
    /// (0 = as loud as an AP; positive = louder).
    pub power_db: f64,
    /// Burst start, seconds into the run.
    pub at: f64,
    /// Burst length, seconds.
    pub duration: f64,
}

/// A step change in the noise floor: every link's SNR drops by
/// `delta_db` at `at` (an SNR cliff), recovering after `duration` if
/// one is given, else holding to the end of the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseStep {
    /// Step start, seconds into the run.
    pub at: f64,
    /// SNR reduction while active, dB (positive = worse channel).
    pub delta_db: f64,
    /// Step length, seconds; `None` holds the step until the run ends.
    pub duration: Option<f64>,
}

/// Station churn: a flash crowd of late joiners and/or mid-run
/// leavers. Joiners are the *last* `join_count` stations of the
/// deployment; they stay dormant until their individual join time
/// `join_at + U(0, join_ramp_s)` (a seeded draw keyed by station
/// index), then start transmitting. Leavers are the *first*
/// `leave_count` stations; they fall silent at
/// `leave_at + U(0, leave_ramp_s)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Churn {
    /// How many stations join late (taken from the end of the index
    /// range).
    pub join_count: usize,
    /// Earliest join time, seconds.
    pub join_at: f64,
    /// Width of the join wave, seconds (0 = all at once).
    pub join_ramp_s: f64,
    /// How many stations leave mid-run (taken from the start of the
    /// index range).
    pub leave_count: usize,
    /// Earliest leave time, seconds.
    pub leave_at: f64,
    /// Width of the leave wave, seconds.
    pub leave_ramp_s: f64,
}

/// SoftPHY hint corruption: the paper's own robustness knob. Per-frame
/// BER/SNR feedback is dropped with probability `drop_prob` (the
/// adapter sees an ACK-only world for that frame) and otherwise
/// quantized to `quantize_db`-dB steps, degrading SoftRate toward
/// frame-level adapters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HintFaults {
    /// Probability a frame's SoftPHY hints are lost entirely.
    pub drop_prob: f64,
    /// Quantization step for surviving hints, dB (0 = exact). SNR
    /// feedback is rounded to multiples of this; BER feedback is
    /// rounded in the log10 domain with a `quantize_db / 10` decade
    /// step (one dB of SNR moves BER about a tenth of a decade on the
    /// waterfall).
    pub quantize_db: f64,
}

/// The lowered `[faults]` table a simulator consumes: at most one
/// fault of each class per run (sweep the scenario axis for families).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultConfig {
    /// Timed AP blackout + restart.
    pub ap_outage: Option<ApOutage>,
    /// Timed jammer burst.
    pub jammer: Option<Jammer>,
    /// Timed noise-floor step.
    pub noise_step: Option<NoiseStep>,
    /// Join/leave flash crowd.
    pub churn: Option<Churn>,
    /// SoftPHY hint corruption (the only class that also applies to the
    /// single-cell trace medium).
    pub hint: Option<HintFaults>,
}

impl FaultConfig {
    /// True when no fault class is configured: an empty `[faults]`
    /// table must behave exactly like no table at all (pinned by
    /// test), so the media skip all fault state when this holds.
    pub fn is_noop(&self) -> bool {
        self.ap_outage.is_none()
            && self.jammer.is_none()
            && self.noise_step.is_none()
            && self.churn.is_none()
            && self.hint.is_none()
    }
}

/// The engine-side fault seam: owned by `MacCore`, consulted at the
/// feedback window to corrupt SoftPHY hints *after* the ground-truth
/// fate is drawn and recorded (telemetry observes the truth; only the
/// adapter sees the degraded feedback). Inert unless installed — the
/// faults-off hot path pays one `Option` check per outcome.
#[derive(Debug, Clone)]
pub struct FaultDriver {
    hint: HintFaults,
    seed: u64,
    /// Frames whose hints were dropped entirely (accounting only).
    pub hints_dropped: u64,
    /// Frames whose hints were quantized (accounting only).
    pub hints_quantized: u64,
}

impl FaultDriver {
    /// A driver applying `hint` corruption, keyed by the run's MAC seed
    /// so repeat runs corrupt the same frames.
    pub fn new(hint: HintFaults, seed: u64) -> Self {
        Self {
            hint,
            seed,
            hints_dropped: 0,
            hints_quantized: 0,
        }
    }

    /// Degrades the SoftPHY feedback on `outcome` in place. Keyed by
    /// `tx_id` (globally ordered by construction) so the draw stream is
    /// independent of thread/shard scheduling. ACK state is never
    /// touched: hint loss models a degraded SoftPHY pipeline, not a
    /// broken link layer.
    pub fn corrupt_hints(&mut self, tx_id: u64, outcome: &mut TxOutcome) {
        if outcome.ber_feedback.is_none() && outcome.snr_feedback_db.is_none() {
            return;
        }
        if self.hint.drop_prob > 0.0
            && hash_uniform(&[tx_id, HINT_DROP_SALT, self.seed]) < self.hint.drop_prob
        {
            outcome.ber_feedback = None;
            outcome.snr_feedback_db = None;
            self.hints_dropped += 1;
            return;
        }
        let q = self.hint.quantize_db;
        if q > 0.0 {
            if let Some(snr) = outcome.snr_feedback_db.as_mut() {
                *snr = (*snr / q).round() * q;
            }
            if let Some(ber) = outcome.ber_feedback.as_mut() {
                if *ber > 0.0 {
                    let step = q / 10.0; // decades per dB on the waterfall
                    *ber = 10f64.powf((ber.log10() / step).round() * step);
                }
            }
            self.hints_quantized += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome_with(ber: Option<f64>, snr: Option<f64>) -> TxOutcome {
        TxOutcome {
            rate_idx: 3,
            acked: true,
            feedback_received: true,
            ber_feedback: ber,
            interference_flagged: false,
            postamble_ack: false,
            snr_feedback_db: snr,
            airtime: 1e-3,
            now: 0.5,
        }
    }

    #[test]
    fn noop_config_detects_empty_table() {
        assert!(FaultConfig::default().is_noop());
        let cfg = FaultConfig {
            noise_step: Some(NoiseStep {
                at: 1.0,
                delta_db: 10.0,
                duration: None,
            }),
            ..FaultConfig::default()
        };
        assert!(!cfg.is_noop());
    }

    #[test]
    fn hint_drop_is_deterministic_and_total() {
        let mut a = FaultDriver::new(
            HintFaults {
                drop_prob: 0.5,
                quantize_db: 0.0,
            },
            0xFA_17,
        );
        let mut b = a.clone();
        let mut dropped = 0u32;
        for tx_id in 0..200 {
            let mut oa = outcome_with(Some(1e-4), Some(17.3));
            let mut ob = outcome_with(Some(1e-4), Some(17.3));
            a.corrupt_hints(tx_id, &mut oa);
            b.corrupt_hints(tx_id, &mut ob);
            assert_eq!(oa.ber_feedback, ob.ber_feedback);
            assert_eq!(oa.snr_feedback_db, ob.snr_feedback_db);
            // Drops take both hints together, never one of the pair.
            assert_eq!(oa.ber_feedback.is_none(), oa.snr_feedback_db.is_none());
            assert!(oa.acked && oa.feedback_received, "ACK state untouched");
            if oa.ber_feedback.is_none() {
                dropped += 1;
            }
        }
        assert!(
            (50..150).contains(&dropped),
            "drop rate wildly off: {dropped}"
        );
        assert_eq!(a.hints_dropped, u64::from(dropped));
    }

    #[test]
    fn quantization_rounds_snr_and_log_ber() {
        let mut d = FaultDriver::new(
            HintFaults {
                drop_prob: 0.0,
                quantize_db: 2.0,
            },
            1,
        );
        let mut o = outcome_with(Some(3.1e-4), Some(17.3));
        d.corrupt_hints(7, &mut o);
        assert_eq!(o.snr_feedback_db, Some(18.0));
        let ber = o.ber_feedback.unwrap();
        // log10(3.1e-4) ≈ -3.509, step 0.2 rounds to -3.6 → 10^-3.6.
        assert!((ber.log10() - (-3.6)).abs() < 1e-9, "got {ber}");
        assert_eq!(d.hints_quantized, 1);
    }

    #[test]
    fn zero_config_driver_is_identity() {
        let mut d = FaultDriver::new(
            HintFaults {
                drop_prob: 0.0,
                quantize_db: 0.0,
            },
            9,
        );
        let mut o = outcome_with(Some(1e-5), Some(22.0));
        d.corrupt_hints(42, &mut o);
        assert_eq!(o.ber_feedback, Some(1e-5));
        assert_eq!(o.snr_feedback_db, Some(22.0));
    }
}
