//! TCP NewReno, in segment units.
//!
//! The paper evaluates rate adaptation under *TCP* rather than UDP because
//! "gains obtained on UDP transfers without congestion control are hard to
//! realize in most practical applications" (§6): burst losses from slow
//! rate adaptation make TCP collapse its window, which is precisely the
//! effect Figures 13/16/17 measure. This module implements the classic
//! NewReno loss recovery: slow start, congestion avoidance, fast
//! retransmit/recovery with partial-ACK handling, and Jacobson/Karn RTO
//! estimation with exponential backoff.
//!
//! Sequence numbers count MSS-sized segments (the simulator transfers bulk
//! data, so byte granularity adds nothing).

use std::collections::{BTreeSet, HashMap};

/// TCP configuration.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Maximum segment size in bytes (1400 in the paper's setup).
    pub mss: usize,
    /// Initial congestion window, segments.
    pub initial_cwnd: f64,
    /// Initial slow-start threshold, segments.
    pub initial_ssthresh: f64,
    /// Minimum retransmission timeout, seconds.
    pub rto_min: f64,
    /// Maximum retransmission timeout, seconds.
    pub rto_max: f64,
    /// Receiver window (sender never has more than this outstanding),
    /// segments.
    pub rcv_wnd: f64,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1400,
            initial_cwnd: 2.0,
            initial_ssthresh: 64.0,
            rto_min: 0.2,
            rto_max: 60.0,
            rcv_wnd: 256.0,
        }
    }
}

/// The NewReno sender state machine.
#[derive(Debug)]
pub struct TcpSender {
    cfg: TcpConfig,
    /// Next never-sent segment.
    next_new: u64,
    /// Oldest unacknowledged segment.
    snd_una: u64,
    /// Congestion window in segments (fractional during CA growth).
    cwnd: f64,
    ssthresh: f64,
    dup_acks: u32,
    /// NewReno fast-recovery state: `Some(recover)` while in recovery.
    recovery: Option<u64>,
    /// Pending retransmission (one at a time: cumulative ACKs drive the
    /// next).
    retransmit_now: Option<u64>,
    /// Send time per in-flight segment for RTT sampling; `true` when the
    /// segment was retransmitted (Karn's rule: no sample).
    sent_at: HashMap<u64, (f64, bool)>,
    srtt: Option<f64>,
    rttvar: f64,
    rto: f64,
    /// The most recent clean RTT sample, until telemetry takes it.
    last_rtt: Option<f64>,
    /// Exponential RTO backoff exponent.
    backoff: u32,
    /// Total segments newly delivered (goodput accounting).
    pub delivered: u64,
    /// Total retransmissions sent.
    pub retransmissions: u64,
    /// Total RTO events.
    pub timeouts: u64,
}

impl TcpSender {
    /// Creates a bulk-transfer sender (infinite application backlog).
    pub fn new(cfg: TcpConfig) -> Self {
        TcpSender {
            next_new: 0,
            snd_una: 0,
            cwnd: cfg.initial_cwnd,
            ssthresh: cfg.initial_ssthresh,
            dup_acks: 0,
            recovery: None,
            retransmit_now: None,
            sent_at: HashMap::new(),
            srtt: None,
            rttvar: 0.0,
            rto: 1.0,
            last_rtt: None,
            backoff: 0,
            delivered: 0,
            retransmissions: 0,
            timeouts: 0,
            cfg,
        }
    }

    /// Segments currently in flight.
    pub fn in_flight(&self) -> u64 {
        self.next_new - self.snd_una
    }

    /// Oldest unacknowledged segment.
    pub fn snd_una(&self) -> u64 {
        self.snd_una
    }

    /// Next never-sent segment.
    pub fn next_new(&self) -> u64 {
        self.next_new
    }

    /// Current receiver-window limit from the configuration, segments.
    pub fn rcv_wnd(&self) -> f64 {
        self.cfg.rcv_wnd
    }

    /// Current congestion window (segments).
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Current retransmission timeout with backoff applied.
    pub fn current_rto(&self) -> f64 {
        (self.rto * (1u64 << self.backoff.min(16)) as f64).clamp(self.cfg.rto_min, self.cfg.rto_max)
    }

    /// The next segment to transmit, if the window allows: retransmissions
    /// take priority over new data. Call repeatedly; returns `None` when
    /// the window is full.
    pub fn next_segment(&mut self, now: f64) -> Option<u64> {
        if let Some(seq) = self.retransmit_now.take() {
            self.retransmissions += 1;
            self.sent_at.insert(seq, (now, true));
            return Some(seq);
        }
        let wnd = self.cwnd.min(self.cfg.rcv_wnd).floor() as u64;
        if self.in_flight() < wnd.max(1) {
            let seq = self.next_new;
            self.next_new += 1;
            self.sent_at.insert(seq, (now, false));
            return Some(seq);
        }
        None
    }

    /// Digests a cumulative ACK (`cum_ack` = next segment the receiver
    /// expects). Returns `true` if the RTO timer should be restarted.
    pub fn on_ack(&mut self, cum_ack: u64, now: f64) -> bool {
        if cum_ack > self.snd_una {
            // --- New data acknowledged -----------------------------------
            let newly = cum_ack - self.snd_una;
            self.delivered += newly;

            // RTT sample from the latest cleanly-sent segment in the acked
            // range (Karn: retransmitted segments are ambiguous — their ACK
            // may answer either copy — but segments sent exactly once are
            // fair game even when the ACK that covers them also covers a
            // retransmission, e.g. the one that just filled the hole).
            // When that happens the sample measures send-to-cumulative-ACK
            // time, which a hole-induced stall inflates; taking the
            // *latest* clean segment minimizes the inflation, and the
            // residual bias is deliberately conservative — it only ever
            // raises the post-recovery RTO.
            let mut sample = None;
            for s in (self.snd_una..cum_ack).rev() {
                if let Some(&(sent, retx)) = self.sent_at.get(&s) {
                    if !retx {
                        sample = Some(now - sent);
                        break;
                    }
                }
            }
            if let Some(rtt) = sample {
                self.rtt_sample(rtt);
            }
            for s in self.snd_una..cum_ack {
                self.sent_at.remove(&s);
            }
            self.snd_una = cum_ack;
            self.backoff = 0;
            self.dup_acks = 0;

            match self.recovery {
                Some(recover) if cum_ack > recover => {
                    // Full ACK: leave fast recovery.
                    self.recovery = None;
                    self.cwnd = self.ssthresh;
                }
                Some(_) => {
                    // Partial ACK (NewReno): retransmit the next hole,
                    // deflate by the amount acked.
                    self.retransmit_now = Some(self.snd_una);
                    self.cwnd = (self.cwnd - newly as f64 + 1.0).max(1.0);
                }
                None => {
                    // Normal growth.
                    if self.cwnd < self.ssthresh {
                        self.cwnd += newly as f64; // slow start
                    } else {
                        self.cwnd += newly as f64 / self.cwnd; // CA
                    }
                }
            }
            true
        } else {
            // --- Duplicate ACK -------------------------------------------
            if self.in_flight() == 0 {
                return false;
            }
            self.dup_acks += 1;
            if self.recovery.is_some() {
                // Window inflation during recovery.
                self.cwnd += 1.0;
            } else if self.dup_acks == 3 {
                // Fast retransmit.
                self.ssthresh = (self.in_flight() as f64 / 2.0).max(2.0);
                self.cwnd = self.ssthresh + 3.0;
                self.recovery = Some(self.next_new.saturating_sub(1));
                self.retransmit_now = Some(self.snd_una);
            }
            false
        }
    }

    /// Handles an RTO expiry: collapse to one segment, back off the timer,
    /// retransmit the oldest hole.
    pub fn on_timeout(&mut self) {
        self.timeouts += 1;
        self.ssthresh = (self.in_flight() as f64 / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.dup_acks = 0;
        self.recovery = None;
        self.retransmit_now = Some(self.snd_una);
        self.backoff += 1;
        // Karn's rule only makes *retransmitted* segments ambiguous; the
        // retransmission itself is flagged when `next_segment` sends it.
        // Segments sent exactly once keep their clean timestamps, so the
        // ACK that ends the recovery can still contribute an RTT sample.
    }

    /// Whether any data is outstanding (RTO timer should be armed).
    pub fn needs_timer(&self) -> bool {
        self.in_flight() > 0
    }

    /// The latest clean (Karn-valid) RTT sample, consumed on read so each
    /// sample is observed once. Telemetry only; never steers the sender.
    pub fn take_rtt_sample(&mut self) -> Option<f64> {
        self.last_rtt.take()
    }

    fn rtt_sample(&mut self, rtt: f64) {
        self.last_rtt = Some(rtt);
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2.0;
            }
            Some(srtt) => {
                self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - rtt).abs();
                self.srtt = Some(0.875 * srtt + 0.125 * rtt);
            }
        }
        self.rto =
            (self.srtt.unwrap() + 4.0 * self.rttvar).clamp(self.cfg.rto_min, self.cfg.rto_max);
    }
}

/// The receiver: cumulative ACKs with out-of-order buffering, bounded by
/// the advertised receive window.
#[derive(Debug)]
pub struct TcpReceiver {
    rcv_nxt: u64,
    /// Advertised window, segments: nothing at or above
    /// `rcv_nxt + rcv_wnd` is buffered (a conforming sender never sends
    /// there; a misbehaving one must not balloon receiver memory).
    rcv_wnd: u64,
    out_of_order: BTreeSet<u64>,
}

impl TcpReceiver {
    /// Creates a receiver expecting segment 0 that buffers at most
    /// `rcv_wnd` segments ahead of the cumulative ACK point.
    pub fn new(rcv_wnd: u64) -> Self {
        TcpReceiver {
            rcv_nxt: 0,
            rcv_wnd: rcv_wnd.max(1),
            out_of_order: BTreeSet::new(),
        }
    }

    /// Accepts a segment; returns the cumulative ACK to send back (the
    /// next expected segment). Segments beyond the receive window are
    /// discarded (still answered with the current cumulative ACK, as a
    /// real receiver would).
    pub fn on_segment(&mut self, seq: u64) -> u64 {
        if seq == self.rcv_nxt {
            self.rcv_nxt += 1;
            while self.out_of_order.remove(&self.rcv_nxt) {
                self.rcv_nxt += 1;
            }
        } else if seq > self.rcv_nxt && seq < self.rcv_nxt + self.rcv_wnd {
            self.out_of_order.insert(seq);
        }
        self.rcv_nxt
    }

    /// Next expected segment (current cumulative ACK value).
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// Out-of-order segments currently buffered (test/diagnostic surface;
    /// bounded by the receive window).
    pub fn buffered(&self) -> usize {
        self.out_of_order.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(sender: &mut TcpSender, now: f64) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some(s) = sender.next_segment(now) {
            out.push(s);
        }
        out
    }

    #[test]
    fn slow_start_doubles_window() {
        let mut s = TcpSender::new(TcpConfig::default());
        let w0 = drain(&mut s, 0.0);
        assert_eq!(w0, vec![0, 1], "initial window of 2");
        // ACK both: cwnd 2 -> 4.
        s.on_ack(1, 0.1);
        s.on_ack(2, 0.1);
        let w1 = drain(&mut s, 0.1);
        assert_eq!(w1.len(), 4);
    }

    #[test]
    fn congestion_avoidance_grows_linearly() {
        let cfg = TcpConfig {
            initial_ssthresh: 2.0, // CA from the start
            ..Default::default()
        };
        let mut s = TcpSender::new(cfg);
        let w = drain(&mut s, 0.0);
        let base = s.cwnd();
        for &seq in &w {
            s.on_ack(seq + 1, 0.05);
        }
        // One window of ACKs grows cwnd by ~1 segment in CA.
        assert!(
            (s.cwnd() - base - 1.0).abs() < 0.2,
            "cwnd {} from {base}",
            s.cwnd()
        );
    }

    #[test]
    fn receiver_cumulative_and_out_of_order() {
        let mut r = TcpReceiver::new(256);
        assert_eq!(r.on_segment(0), 1);
        assert_eq!(r.on_segment(2), 1, "gap holds the ACK");
        assert_eq!(r.on_segment(3), 1);
        assert_eq!(r.on_segment(1), 4, "filling the hole releases the run");
        assert_eq!(r.on_segment(1), 4, "duplicate segment re-acks");
    }

    #[test]
    fn fast_retransmit_on_three_dupacks() {
        let mut s = TcpSender::new(TcpConfig {
            initial_cwnd: 8.0,
            ..Default::default()
        });
        let w = drain(&mut s, 0.0);
        assert_eq!(w.len(), 8);
        // Segment 0 lost; receiver acks "expect 0" for segments 1,2,3.
        assert!(!s.on_ack(0, 0.1));
        assert!(!s.on_ack(0, 0.11));
        assert!(!s.on_ack(0, 0.12));
        let next = s.next_segment(0.13);
        assert_eq!(next, Some(0), "fast retransmit of the hole");
        assert_eq!(s.retransmissions, 1);
        assert!(s.recovery.is_some());
        assert!(s.ssthresh >= 2.0 && s.ssthresh <= 4.0);
    }

    #[test]
    fn newreno_partial_ack_retransmits_next_hole() {
        let mut s = TcpSender::new(TcpConfig {
            initial_cwnd: 8.0,
            ..Default::default()
        });
        drain(&mut s, 0.0); // 0..8 in flight
                            // Lose 0 and 4: dupacks for 0.
        for t in [0.1, 0.11, 0.12] {
            s.on_ack(0, t);
        }
        assert_eq!(s.next_segment(0.13), Some(0));
        // Retransmitted 0 arrives; receiver now has 0..4 but not 4: partial
        // ACK to 4 (recovery point is 7).
        s.on_ack(4, 0.2);
        assert!(s.recovery.is_some(), "partial ACK stays in recovery");
        assert_eq!(
            s.next_segment(0.21),
            Some(4),
            "next hole retransmitted immediately"
        );
        // Full ACK exits recovery.
        s.on_ack(8, 0.3);
        assert!(s.recovery.is_none());
        assert!((s.cwnd() - s.ssthresh).abs() < 1e-9);
    }

    #[test]
    fn timeout_collapses_window_and_backs_off() {
        let mut s = TcpSender::new(TcpConfig {
            initial_cwnd: 8.0,
            ..Default::default()
        });
        drain(&mut s, 0.0);
        let rto0 = s.current_rto();
        s.on_timeout();
        assert_eq!(s.cwnd(), 1.0);
        assert_eq!(s.next_segment(1.0), Some(0), "oldest hole retransmitted");
        assert!(s.current_rto() >= 2.0 * rto0 || s.current_rto() == s.cfg.rto_max);
        s.on_timeout();
        assert!(s.current_rto() >= 2.0 * rto0);
    }

    #[test]
    fn rtt_estimation_converges() {
        let mut s = TcpSender::new(TcpConfig::default());
        let mut now = 0.0;
        for _ in 0..50 {
            let segs = drain(&mut s, now);
            now += 0.05; // constant 50 ms RTT
            for &seq in &segs {
                s.on_ack(seq + 1, now);
            }
        }
        let srtt = s.srtt.unwrap();
        assert!((srtt - 0.05).abs() < 0.005, "srtt {srtt}");
        assert_eq!(
            s.current_rto(),
            s.cfg.rto_min,
            "tight RTT -> clamped at rto_min"
        );
    }

    #[test]
    fn karns_rule_skips_retransmitted_segments() {
        let mut s = TcpSender::new(TcpConfig::default());
        drain(&mut s, 0.0);
        s.on_timeout();
        assert_eq!(s.next_segment(10.0), Some(0));
        // ACK arrives for the retransmitted segment much later; no RTT
        // sample must be taken (srtt stays None).
        s.on_ack(1, 30.0);
        assert!(s.srtt.is_none());
    }

    /// Regression (Karn sampling bug): a cumulative ACK released by a
    /// retransmission filling the hole also covers segments that were
    /// cleanly sent exactly once — those must contribute an RTT sample.
    /// Pre-fix, `on_timeout` marked every in-flight segment retransmitted
    /// and `on_ack` looked only at `cum_ack - 1`, so the whole range was
    /// discarded and `srtt` stayed `None`.
    #[test]
    fn karn_mixed_range_samples_latest_clean_segment() {
        let mut s = TcpSender::new(TcpConfig {
            initial_cwnd: 4.0,
            ..Default::default()
        });
        let w = drain(&mut s, 0.0);
        assert_eq!(w, vec![0, 1, 2, 3]);
        // Segment 0 is lost; 1..4 reach the receiver and raise two dup
        // ACKs (the third ACK frame is lost) — below the fast-retransmit
        // threshold, so the sender stalls until the RTO fires.
        assert!(!s.on_ack(0, 0.02));
        assert!(!s.on_ack(0, 0.03));
        s.on_timeout();
        assert_eq!(s.next_segment(1.0), Some(0), "RTO retransmits the hole");
        // The retransmission fills the hole: one cumulative ACK covers the
        // retransmitted 0 *and* the cleanly-sent 1..4.
        s.on_ack(4, 1.05);
        let srtt = s.srtt.expect("clean segments 1..4 must yield a sample");
        assert!(
            (srtt - 1.05).abs() < 1e-9,
            "sample must come from the latest clean segment (sent at 0.0): {srtt}"
        );
    }

    /// Regression (Karn strictness): segments sent exactly once keep their
    /// clean timestamps across a timeout — only actual retransmissions are
    /// ambiguous.
    #[test]
    fn timeout_does_not_taint_unretransmitted_segments() {
        let mut s = TcpSender::new(TcpConfig {
            initial_cwnd: 4.0,
            ..Default::default()
        });
        drain(&mut s, 0.0);
        s.on_timeout();
        assert_eq!(s.next_segment(0.9), Some(0));
        // ACK of just the retransmitted hole: ambiguous, no sample.
        s.on_ack(1, 1.0);
        assert!(s.srtt.is_none(), "retransmitted segment must not sample");
        // ACK of the cleanly-sent 1..4: valid sample.
        s.on_ack(4, 1.1);
        assert!(s.srtt.is_some(), "clean segments must sample");
    }

    /// Regression (receive-window bug): a misbehaving sender pushing
    /// segments arbitrarily far above `rcv_nxt` must not balloon the
    /// receiver's out-of-order buffer — pre-fix, `out_of_order` grew
    /// without bound.
    #[test]
    fn receiver_window_bounds_out_of_order_buffer() {
        let mut r = TcpReceiver::new(8);
        for k in 0..10_000u64 {
            // Way beyond any plausible window.
            assert_eq!(r.on_segment(100 + k * 131), 0, "gap at 0 holds the ACK");
        }
        assert!(
            r.buffered() <= 8,
            "out-of-order buffer must stay within the window, got {}",
            r.buffered()
        );
        // In-window out-of-order data still buffers and releases normally.
        assert_eq!(r.on_segment(3), 0);
        assert_eq!(r.on_segment(1), 0);
        assert_eq!(r.on_segment(0), 2);
        assert_eq!(r.on_segment(2), 4);
    }

    #[test]
    fn delivered_counts_unique_segments() {
        let mut s = TcpSender::new(TcpConfig {
            initial_cwnd: 4.0,
            ..Default::default()
        });
        drain(&mut s, 0.0);
        s.on_ack(4, 0.1);
        assert_eq!(s.delivered, 4);
        s.on_ack(4, 0.2); // dupack adds nothing
        assert_eq!(s.delivered, 4);
    }

    #[test]
    fn window_respects_receiver_limit() {
        let cfg = TcpConfig {
            initial_cwnd: 1000.0,
            rcv_wnd: 10.0,
            ..Default::default()
        };
        let mut s = TcpSender::new(cfg);
        assert_eq!(drain(&mut s, 0.0).len(), 10);
    }
}
