//! # softrate-sim — trace-driven discrete-event network simulator
//!
//! The evaluation substrate of §6: the paper replaces ns-3's PHY models
//! with software-radio traces; this crate is the surrounding machinery,
//! built from scratch:
//!
//! * [`event`] — deterministic event queue.
//! * [`timing`] — 802.11a/g-like MAC timing and air-time model.
//! * [`tcp`] — TCP NewReno endpoints (slow start, congestion avoidance,
//!   fast retransmit/recovery, RTO with Karn + backoff).
//! * [`config`] — topology + algorithm selection ([`config::AdapterKind`]).
//! * [`fault`] — deterministic fault injection (`softrate-faults`): AP
//!   outages, jammer bursts, noise-floor steps, station churn, and
//!   SoftPHY hint corruption, all timed-event or seeded-stochastic so
//!   faulted runs stay byte-identical across thread and shard counts.
//! * [`feedback`] — the §6.4 collision-feedback semantics, shared with the
//!   multi-cell spatial simulator (`softrate-net`).
//! * [`mac`] — the generic DCF engine ([`mac::MacEngine`]) behind every
//!   simulator: DIFS/backoff/CW, in-flight tracking, feedback-window
//!   resolution, retries, and rate-adapter plumbing, generic over a
//!   [`mac::Medium`] that supplies frame fates, carrier sense, and
//!   collision topology.
//! * [`transport`] — the pluggable transport layer shared by every
//!   medium: TCP NewReno flows (both directions), saturated UDP, a
//!   non-saturated Poisson on–off source, the wired AP↔LAN segment, and
//!   RFC 6298 RTO timer plumbing, all behind the
//!   [`transport::TransportHost`] seam.
//! * [`netsim`] — the Figure 12 simulation: the engine configured with a
//!   trace-backed single-collision-domain medium (probabilistic carrier
//!   sense, drop-tail queues, a 50 Mbps / 10 ms wired segment, TCP/UDP
//!   flows, and rate-selection auditing against the omniscient oracle).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod config;
pub mod event;
pub mod fault;
pub mod feedback;
pub mod mac;
pub mod netsim;
pub mod shard;
pub mod tcp;
pub mod timing;
pub mod transport;

/// Convenient glob-import of the most common items.
pub mod prelude {
    pub use crate::config::{AdapterKind, SimConfig};
    pub use crate::event::EventQueue;
    pub use crate::mac::{HandoffRecord, MacEngine, Medium, RateAudit, RunReport};
    pub use crate::netsim::NetSim;
    pub use crate::tcp::{TcpConfig, TcpReceiver, TcpSender};
    pub use crate::timing::{attempt_airtime, data_airtime, lossless_airtimes};
    pub use crate::transport::{Payload, TransportConfig, TransportEv, TransportLayer};
}
