//! The trace-driven network simulator: Figure 12's topology end to end.
//!
//! N wireless clients exchange TCP bulk data with LAN hosts through an AP.
//! The wireless hop is a single collision domain with an 802.11-like DCF
//! (DIFS + binary-exponential backoff, base-rate feedback frames after
//! SIFS, retry limit) and *probabilistic carrier sense* between client
//! senders (§6.4). The DCF itself — backoff, in-flight tracking, the
//! feedback-window state machine — lives in the shared
//! [`MacEngine`](crate::mac::MacEngine); this module contributes
//! [`TraceMedium`], the environment where frame fates on a clean medium
//! come from per-link [`LinkTrace`]s, overlapping transmissions corrupt
//! each other ("we assume both colliding frames are lost", §6.1), and the
//! SoftRate feedback under collision follows §6.4: if the receiver's
//! detector flags the collision (80 % of the time, 100 % for ideal
//! SoftRate), the feedback carries the interference-free BER from the
//! trace; otherwise a very high BER indicating a noise loss. Silent losses
//! (preamble lost) yield no feedback at all, except that
//! postamble-carrying frames whose tail outlives the interferer produce a
//! postamble-only ACK (ideal mode).

use std::collections::VecDeque;
use std::sync::Arc;

use softrate_trace::schema::{hash_uniform, FrameFate, LinkTrace};

use crate::config::{SimConfig, TrafficKind};
use crate::mac::{
    ActiveTx, AttemptInfo, MacCore, MacEngine, MacEv, MacParams, Medium, Port, RunReport,
};
use crate::tcp::{TcpReceiver, TcpSender};
use crate::timing::{CW_MIN, IP_TCP_HEADER};

pub use crate::mac::RateAudit;

/// Payload of a wireless MAC frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Payload {
    /// A TCP data segment.
    Segment(u64),
    /// A TCP cumulative ACK.
    Ack(u64),
}

/// Events above the MAC: transport timers and the wired segment.
#[derive(Debug, Clone, Copy)]
enum NetEv {
    /// A packet crossed the wired link.
    WiredDeliver {
        flow: usize,
        payload_is_segment: bool,
        value: u64,
        to_lan: bool,
    },
    /// TCP retransmission timer.
    Rto { flow: usize, epoch: u64 },
}

/// One unidirectional wireless link (client->AP data, or AP->client ACK
/// path — and the converse for download flows). The rate adapter and
/// retry/CW state live in the engine's matching [`Port`].
struct WLink {
    src: usize,
    flow: usize,
    trace: Arc<LinkTrace>,
    queue: VecDeque<Payload>,
}

/// One wireless node's link service order (0 = AP, 1.. = clients); the
/// busy/backoff state lives in the engine's matching `Sender`.
struct WNode {
    links_out: Vec<usize>,
    rr: usize,
}

/// One TCP flow and its endpoints.
struct SimFlow {
    sender: TcpSender,
    receiver: TcpReceiver,
    rto_epoch: u64,
    /// Link carrying this flow's data segments over the air.
    data_link: usize,
    /// Link carrying this flow's TCP ACKs over the air.
    ack_link: usize,
    /// Next datagram sequence number (UDP bulk traffic only).
    udp_next: u64,
    /// Datagrams delivered end to end (UDP bulk traffic only).
    udp_delivered: u64,
}

type Core = MacCore<NetEv, Payload>;

/// The trace-backed single-collision-domain environment: probabilistic
/// carrier sense, everything-corrupts-everything collisions, per-link
/// [`LinkTrace`] fates, and the TCP/UDP + wired-segment layers above the
/// MAC.
struct TraceMedium {
    cfg: SimConfig,
    links: Vec<WLink>,
    nodes: Vec<WNode>,
    flows: Vec<SimFlow>,
    wired_busy_to_lan: f64,
    wired_busy_to_ap: f64,
}

impl TraceMedium {
    // --- TCP plumbing -----------------------------------------------------

    /// Moves sendable TCP segments of `flow` into its data link's MAC
    /// queue, respecting the queue cap, and keeps the RTO timer armed.
    fn pump_flow(&mut self, core: &mut Core, flow: usize) {
        let now = core.now();
        let data_link = self.flows[flow].data_link;
        let upload = self.cfg.upload;
        if self.cfg.traffic == TrafficKind::UdpBulk {
            // Saturated source: keep the data link's MAC queue topped up.
            // The queue lives at whichever node originates the data (client
            // for uploads, AP for downloads); there is no transport-layer
            // feedback and no retransmission timer.
            while self.links[data_link].queue.len() < self.cfg.queue_cap {
                let seq = self.flows[flow].udp_next;
                self.flows[flow].udp_next += 1;
                self.enqueue(core, data_link, Payload::Segment(seq));
            }
            return;
        }
        loop {
            if upload {
                // Sender sits on the client; segments enter the uplink MAC
                // queue directly.
                if self.links[data_link].queue.len() >= self.cfg.queue_cap {
                    break;
                }
                match self.flows[flow].sender.next_segment(now) {
                    Some(seq) => {
                        self.enqueue(core, data_link, Payload::Segment(seq));
                    }
                    None => break,
                }
            } else {
                // Sender sits on the LAN host; segments cross the wire
                // first. The wired link is not the bottleneck; window
                // limits apply at the sender.
                match self.flows[flow].sender.next_segment(now) {
                    Some(seq) => self.send_wired(core, flow, true, seq, false),
                    None => break,
                }
            }
        }
        self.arm_rto(core, flow);
    }

    fn arm_rto(&mut self, core: &mut Core, flow: usize) {
        if self.cfg.traffic == TrafficKind::UdpBulk {
            return;
        }
        if !self.flows[flow].sender.needs_timer() {
            return;
        }
        self.flows[flow].rto_epoch += 1;
        let epoch = self.flows[flow].rto_epoch;
        let rto = self.flows[flow].sender.current_rto();
        core.events
            .schedule_in(rto, MacEv::Medium(NetEv::Rto { flow, epoch }));
    }

    fn on_rto(&mut self, core: &mut Core, flow: usize, epoch: u64) {
        if self.cfg.traffic == TrafficKind::UdpBulk && epoch != 0 {
            return;
        }
        // Epoch 0 is the kick-off pseudo-timer.
        if epoch != 0 && epoch != self.flows[flow].rto_epoch {
            return; // stale timer
        }
        if epoch != 0 {
            if !self.flows[flow].sender.needs_timer() {
                return;
            }
            self.flows[flow].sender.on_timeout();
        }
        self.pump_flow(core, flow);
    }

    /// Sends a packet across the wired link (AP<->LAN gateway).
    fn send_wired(
        &mut self,
        core: &mut Core,
        flow: usize,
        payload_is_segment: bool,
        value: u64,
        to_lan: bool,
    ) {
        let now = core.now();
        let bytes = if payload_is_segment {
            self.cfg.tcp.mss + IP_TCP_HEADER
        } else {
            40
        };
        let ser = bytes as f64 * 8.0 / self.cfg.wired_rate_bps;
        let busy = if to_lan {
            &mut self.wired_busy_to_lan
        } else {
            &mut self.wired_busy_to_ap
        };
        let start = busy.max(now);
        *busy = start + ser;
        let deliver = start + ser + self.cfg.wired_delay;
        core.events.schedule(
            deliver,
            MacEv::Medium(NetEv::WiredDeliver {
                flow,
                payload_is_segment,
                value,
                to_lan,
            }),
        );
    }

    fn on_wired(
        &mut self,
        core: &mut Core,
        flow: usize,
        payload_is_segment: bool,
        value: u64,
        to_lan: bool,
    ) {
        if to_lan {
            if payload_is_segment {
                // Upload data reaching the LAN host: receive, ACK back.
                let cum = self.flows[flow].receiver.on_segment(value);
                self.send_wired(core, flow, false, cum, false);
            } else {
                // Download ACK reaching the LAN sender.
                let restart = self.flows[flow].sender.on_ack(value, core.now());
                if restart {
                    self.arm_rto(core, flow);
                }
                self.pump_flow(core, flow);
            }
        } else {
            // Arriving at the AP: onto the appropriate wireless queue.
            let link = if payload_is_segment {
                self.flows[flow].data_link // download data
            } else {
                self.flows[flow].ack_link // upload ACK path
            };
            if self.links[link].queue.len() < self.cfg.queue_cap {
                let payload = if payload_is_segment {
                    Payload::Segment(value)
                } else {
                    Payload::Ack(value)
                };
                self.enqueue(core, link, payload);
            }
            // else: drop-tail; TCP recovers.
        }
    }

    // --- Wireless MAC -------------------------------------------------------

    fn enqueue(&mut self, core: &mut Core, link: usize, payload: Payload) {
        self.links[link].queue.push_back(payload);
        let node = self.links[link].src;
        if !core.senders[node].busy && !core.senders[node].start_pending {
            let cw = self.pick_port(node).map(|l| core.cw[l]).unwrap_or(CW_MIN);
            core.schedule_tx_start(node, None, cw);
        }
    }

    /// Hands a delivered wireless frame to the next layer.
    fn deliver_payload(&mut self, core: &mut Core, link: usize, payload: Payload) {
        let flow = self.links[link].flow;
        let upload = self.cfg.upload;
        if self.cfg.traffic == TrafficKind::UdpBulk {
            // Datagram reached the far side of the wireless hop; count it
            // and keep the source saturated. (The wired segment is never
            // the bottleneck and UDP has no return traffic.)
            if matches!(payload, Payload::Segment(_)) {
                self.flows[flow].udp_delivered += 1;
            }
            self.pump_flow(core, flow);
            return;
        }
        match payload {
            Payload::Segment(seq) => {
                if upload {
                    // Client -> AP -> wired -> LAN receiver.
                    self.send_wired(core, flow, true, seq, true);
                } else {
                    // AP -> client: the client is the TCP receiver; its ACK
                    // rides the uplink.
                    let cum = self.flows[flow].receiver.on_segment(seq);
                    let ack_link = self.flows[flow].ack_link;
                    if self.links[ack_link].queue.len() < self.cfg.queue_cap {
                        self.enqueue(core, ack_link, Payload::Ack(cum));
                    }
                }
            }
            Payload::Ack(cum) => {
                if upload {
                    // AP -> client TCP ACK: feed the client-side sender.
                    let restart = self.flows[flow].sender.on_ack(cum, core.now());
                    if restart {
                        self.arm_rto(core, flow);
                    }
                    self.pump_flow(core, flow);
                } else {
                    // Client -> AP TCP ACK: forward to the LAN sender.
                    self.send_wired(core, flow, false, cum, true);
                }
            }
        }
        // Frame left the queue: the flow may have new room.
        self.pump_flow(core, flow);
    }
}

impl Medium for TraceMedium {
    type Event = NetEv;
    type TxInfo = Payload;

    fn kickoff(&mut self, core: &mut Core) {
        // Kick flows off, slightly staggered.
        for f in 0..self.flows.len() {
            let t0 = 0.002 * f as f64;
            core.events
                .schedule(t0, MacEv::Medium(NetEv::Rto { flow: f, epoch: 0 }));
        }
        for f in 0..self.flows.len() {
            self.pump_flow(core, f);
        }
    }

    /// Round-robin choice among the node's links with queued frames.
    fn pick_port(&mut self, node: usize) -> Option<usize> {
        let n = self.nodes[node].links_out.len();
        for k in 0..n {
            let idx = self.nodes[node].links_out[(self.nodes[node].rr + k) % n];
            if !self.links[idx].queue.is_empty() {
                return Some(idx);
            }
        }
        None
    }

    /// Probabilistic carrier sense: the AP and clients always hear each
    /// other; between clients the probability is configured (hidden
    /// terminals, §6.4).
    fn carrier_sense(&mut self, core: &Core, node: usize) -> Option<f64> {
        let mut sensed_until: Option<f64> = None;
        for tx in &core.active {
            let other_src = tx.sender;
            if other_src == node {
                continue;
            }
            let p = if node == 0 || other_src == 0 {
                1.0
            } else {
                self.cfg.carrier_sense_prob
            };
            let heard = hash_uniform(&[tx.id, node as u64, self.cfg.seed]) < p;
            if heard {
                sensed_until = Some(sensed_until.map_or(tx.end, |u: f64| u.max(tx.end)));
            }
        }
        sensed_until
    }

    fn begin_attempt(
        &mut self,
        _node: usize,
        port: usize,
        now: f64,
        _attempt: &mut softrate_core::adapter::TxAttempt,
    ) -> AttemptInfo<Payload> {
        let payload = *self.links[port]
            .queue
            .front()
            .expect("picked link has a frame");
        let payload_bytes = match payload {
            Payload::Segment(_) => self.cfg.tcp.mss + IP_TCP_HEADER,
            Payload::Ack(_) => 40,
        };
        let is_segment = matches!(payload, Payload::Segment(_));
        AttemptInfo {
            payload_bytes,
            counts_as_data: is_segment,
            // Audit against the omniscient oracle (Figures 14/18).
            audit_best: is_segment.then(|| {
                self.links[port]
                    .trace
                    .best_rate_at(now, self.cfg.frame_bits())
            }),
            timeline: is_segment && self.links[port].flow == 0 && port == self.flows[0].data_link,
            info: payload,
        }
    }

    /// Single collision domain: every pair of overlapping non-RTS
    /// transmissions corrupts each other. RTS-protected transmissions
    /// reserved the medium and neither corrupt nor get corrupted.
    fn mark_collisions(&mut self, tx: &mut ActiveTx<Payload>, active: &mut [ActiveTx<Payload>]) {
        if tx.use_rts {
            return;
        }
        for o in active.iter_mut().filter(|o| !o.use_rts) {
            o.collided = true;
            o.first_other_start = o.first_other_start.min(tx.start);
            o.max_other_end = o.max_other_end.max(tx.end);
            tx.collided = true;
            tx.first_other_start = tx.first_other_start.min(o.start);
            tx.max_other_end = tx.max_other_end.max(o.end);
        }
    }

    /// Clean-channel fate from the trace.
    fn fate(&mut self, tx: &ActiveTx<Payload>) -> FrameFate {
        self.links[tx.port].trace.frame_fate(
            tx.rate_idx,
            tx.start,
            tx.payload_bytes * 8,
            tx.port as u64,
            tx.attempt,
        )
    }

    fn on_acked(&mut self, core: &mut Core, tx: &ActiveTx<Payload>) {
        core.stats.frames_delivered += u64::from(matches!(tx.info, Payload::Segment(_)));
        self.links[tx.port].queue.pop_front();
        let node = tx.sender;
        self.nodes[node].rr = (self.nodes[node].rr + 1) % self.nodes[node].links_out.len().max(1);
        self.deliver_payload(core, tx.port, tx.info);
    }

    fn on_dropped(&mut self, core: &mut Core, tx: &ActiveTx<Payload>) {
        self.links[tx.port].queue.pop_front();
        let flow = self.links[tx.port].flow;
        self.pump_flow(core, flow); // queue space may have opened
    }

    fn after_outcome(&mut self, core: &mut Core, node: usize) {
        if let Some(port) = self.pick_port(node) {
            if !core.senders[node].start_pending {
                let cw = core.cw[port];
                core.schedule_tx_start(node, None, cw);
            }
        }
    }

    fn on_event(&mut self, core: &mut Core, ev: NetEv) {
        match ev {
            NetEv::WiredDeliver {
                flow,
                payload_is_segment,
                value,
                to_lan,
            } => self.on_wired(core, flow, payload_is_segment, value, to_lan),
            NetEv::Rto { flow, epoch } => self.on_rto(core, flow, epoch),
        }
    }
}

/// The simulator: a [`MacEngine`] configured with a [`TraceMedium`].
pub struct NetSim {
    engine: MacEngine<TraceMedium>,
}

impl NetSim {
    /// Builds the Figure 12 topology. `traces[2*i]` drives client `i`'s
    /// uplink (client->AP) and `traces[2*i + 1]` its downlink, mirroring
    /// the paper's use of a distinct trace per unidirectional link.
    pub fn new(cfg: SimConfig, traces: Vec<Arc<LinkTrace>>) -> Self {
        assert!(cfg.n_clients >= 1);
        assert!(
            traces.len() >= 2 * cfg.n_clients,
            "need two traces (up/down) per client"
        );
        let frame_bits = cfg.frame_bits();
        let payload_bytes = cfg.tcp.mss + IP_TCP_HEADER;

        let mut nodes: Vec<WNode> = (0..=cfg.n_clients)
            .map(|_| WNode {
                links_out: Vec::new(),
                rr: 0,
            })
            .collect();
        let mut links = Vec::new();
        let mut ports = Vec::new();
        let mut flows = Vec::new();

        for c in 0..cfg.n_clients {
            let client = c + 1;
            let up_trace = Arc::clone(&traces[2 * c]);
            let down_trace = Arc::clone(&traces[2 * c + 1]);

            // Uplink: client -> AP.
            let up_id = links.len();
            ports.push(Port::new(cfg.adapter.build(
                &up_trace,
                frame_bits,
                payload_bytes,
                cfg.seed ^ up_id as u64,
            )));
            links.push(WLink {
                src: client,
                flow: c,
                trace: up_trace,
                queue: VecDeque::new(),
            });
            nodes[client].links_out.push(up_id);

            // Downlink: AP -> client.
            let down_id = links.len();
            ports.push(Port::new(cfg.adapter.build(
                &down_trace,
                frame_bits,
                payload_bytes,
                cfg.seed ^ down_id as u64 ^ 0xD0,
            )));
            links.push(WLink {
                src: 0,
                flow: c,
                trace: down_trace,
                queue: VecDeque::new(),
            });
            nodes[0].links_out.push(down_id);

            let (data_link, ack_link) = if cfg.upload {
                (up_id, down_id)
            } else {
                (down_id, up_id)
            };
            flows.push(SimFlow {
                sender: TcpSender::new(cfg.tcp),
                receiver: TcpReceiver::new(),
                rto_epoch: 0,
                data_link,
                ack_link,
                udp_next: 0,
                udp_delivered: 0,
            });
        }

        let params = MacParams {
            postambles: cfg.adapter.postambles(),
            detect_prob: cfg.adapter.detect_prob(),
            backoff_seed: cfg.seed ^ 0x4E455453,
            collision_seed: cfg.seed,
        };
        let n_senders = cfg.n_clients + 1;
        let medium = TraceMedium {
            cfg,
            links,
            nodes,
            flows,
            wired_busy_to_lan: 0.0,
            wired_busy_to_ap: 0.0,
        };
        NetSim {
            engine: MacEngine::new(n_senders, ports, params, medium),
        }
    }

    /// Runs to `cfg.duration` and reports.
    pub fn run(mut self) -> RunReport {
        let duration = self.engine.medium.cfg.duration;
        self.engine.run(duration);

        let m = &self.engine.medium;
        let stats = &mut self.engine.core.stats;
        let mss_bits = m.cfg.tcp.mss as f64 * 8.0;
        let per_flow: Vec<f64> = m
            .flows
            .iter()
            .map(|f| match m.cfg.traffic {
                TrafficKind::Tcp => f.sender.delivered as f64 * mss_bits / duration,
                TrafficKind::UdpBulk => f.udp_delivered as f64 * mss_bits / duration,
            })
            .collect();
        RunReport {
            adapter_name: m.cfg.adapter.name().to_string(),
            aggregate_goodput_bps: per_flow.iter().sum(),
            per_flow_goodput_bps: per_flow,
            audit: stats.audit,
            frames_sent: stats.frames_sent,
            frames_delivered: stats.frames_delivered,
            collisions: stats.collisions,
            silent_losses: stats.silent_losses,
            rate_timeline: std::mem::take(&mut stats.rate_timeline),
            events_processed: stats.events_processed,
            ..RunReport::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AdapterKind;
    use softrate_trace::schema::TraceEntry;

    /// A trace following the paper's Figure 5 profile: BER changes by one
    /// decade per rate step, anchored at 1e-6 for the `best` rate (the
    /// highest whose 1440-byte frames are near-guaranteed).
    fn synthetic_trace(best: usize) -> Arc<LinkTrace> {
        let entry = move |r: usize| {
            let ber = (1e-6 * 10f64.powi(r as i32 - best as i32)).clamp(1e-9, 0.5);
            TraceEntry {
                t: 0.0,
                rate_idx: r,
                detected: true,
                header_ok: true,
                delivered: r <= best,
                true_ber: Some(ber),
                softphy_ber: Some(ber),
                snr_est_db: Some(20.0),
                true_snr_db: 20.0,
                probe_bits: 832,
            }
        };
        Arc::new(LinkTrace {
            name: "synthetic".into(),
            mode_name: "simulation".into(),
            interval: 0.005,
            duration: 0.005,
            series: (0..6).map(|r| vec![entry(r)]).collect(),
            seed: 0,
        })
    }

    fn run_with(adapter: AdapterKind, n_clients: usize, cs: f64, best: usize) -> RunReport {
        let mut cfg = SimConfig::new(adapter, n_clients);
        cfg.duration = 3.0;
        cfg.carrier_sense_prob = cs;
        let traces = (0..2 * n_clients).map(|_| synthetic_trace(best)).collect();
        NetSim::new(cfg, traces).run()
    }

    #[test]
    fn fixed_rate_moves_data() {
        let r = run_with(AdapterKind::Fixed(3), 1, 1.0, 5);
        assert!(
            r.aggregate_goodput_bps > 1e6,
            "goodput {}",
            r.aggregate_goodput_bps
        );
        assert!(r.frames_delivered > 0);
        assert_eq!(r.collisions, 0, "perfect carrier sense, one client");
    }

    #[test]
    fn omniscient_beats_low_fixed() {
        let omni = run_with(AdapterKind::Omniscient, 1, 1.0, 4);
        let slow = run_with(AdapterKind::Fixed(0), 1, 1.0, 4);
        assert!(
            omni.aggregate_goodput_bps > 1.5 * slow.aggregate_goodput_bps,
            "omni {} vs fixed0 {}",
            omni.aggregate_goodput_bps,
            slow.aggregate_goodput_bps
        );
    }

    #[test]
    fn fixed_far_above_best_fails() {
        // Rate 5 carries BER 1e-4 in a best=2 trace: essentially nothing
        // survives an 11520-bit frame.
        let r = run_with(AdapterKind::Fixed(5), 1, 1.0, 2);
        assert!(
            (r.frames_delivered as f64) < 0.1 * r.frames_sent as f64,
            "delivered {}/{}",
            r.frames_delivered,
            r.frames_sent
        );
    }

    #[test]
    fn softrate_converges_to_best_rate() {
        // With the decade BER profile SoftRate should track the goodput
        // optimum, which sits at or one step above the oracle's
        // "guaranteed" rate; its throughput must be comparable to the
        // omniscient algorithm and far above the most robust fixed rate.
        let sr = run_with(AdapterKind::SoftRate, 1, 1.0, 3);
        let omni = run_with(AdapterKind::Omniscient, 1, 1.0, 3);
        let slow = run_with(AdapterKind::Fixed(0), 1, 1.0, 3);
        assert!(
            sr.aggregate_goodput_bps > 0.75 * omni.aggregate_goodput_bps,
            "SoftRate {} vs omniscient {}",
            sr.aggregate_goodput_bps,
            omni.aggregate_goodput_bps
        );
        assert!(sr.aggregate_goodput_bps > 1.5 * slow.aggregate_goodput_bps);
        let (over, accurate, under) = sr.audit.fractions();
        assert!(
            accurate + over > 0.5,
            "SoftRate stuck below the channel: over {over:.2} acc {accurate:.2} under {under:.2}"
        );
    }

    #[test]
    fn goodput_reflects_oracle_rate() {
        let high = run_with(AdapterKind::Omniscient, 1, 1.0, 5);
        let low = run_with(AdapterKind::Omniscient, 1, 1.0, 1);
        assert!(high.aggregate_goodput_bps > 2.0 * low.aggregate_goodput_bps);
    }

    #[test]
    fn hidden_terminals_cause_collisions() {
        let visible = run_with(AdapterKind::Fixed(3), 3, 1.0, 5);
        let hidden = run_with(AdapterKind::Fixed(3), 3, 0.0, 5);
        assert_eq!(visible.collisions, 0);
        assert!(hidden.collisions > 0, "hidden terminals must collide");
        assert!(
            hidden.aggregate_goodput_bps < visible.aggregate_goodput_bps,
            "collisions must cost throughput"
        );
    }

    #[test]
    fn multiple_clients_share_medium() {
        let one = run_with(AdapterKind::Omniscient, 1, 1.0, 5);
        let three = run_with(AdapterKind::Omniscient, 3, 1.0, 5);
        // Aggregate stays in the same ballpark (the medium is shared).
        assert!(three.aggregate_goodput_bps > 0.5 * one.aggregate_goodput_bps);
        assert!(three.aggregate_goodput_bps < 1.5 * one.aggregate_goodput_bps);
        // And every flow gets something.
        for (i, g) in three.per_flow_goodput_bps.iter().enumerate() {
            assert!(*g > 1e5, "flow {i} starved: {g}");
        }
    }

    #[test]
    fn download_direction_works() {
        let mut cfg = SimConfig::new(AdapterKind::Fixed(3), 1);
        cfg.duration = 3.0;
        cfg.upload = false;
        let traces = (0..2).map(|_| synthetic_trace(5)).collect();
        let r = NetSim::new(cfg, traces).run();
        assert!(
            r.aggregate_goodput_bps > 1e6,
            "download goodput {}",
            r.aggregate_goodput_bps
        );
    }

    #[test]
    fn udp_bulk_saturates_the_link() {
        let mut cfg = SimConfig::new(AdapterKind::Fixed(3), 1);
        cfg.duration = 3.0;
        cfg.traffic = TrafficKind::UdpBulk;
        let traces = (0..2).map(|_| synthetic_trace(5)).collect();
        let r = NetSim::new(cfg, traces).run();
        assert!(
            r.aggregate_goodput_bps > 1e6,
            "UDP goodput {}",
            r.aggregate_goodput_bps
        );
        // Without TCP's window/ACK clocking, UDP keeps the queue full:
        // goodput must be at least what TCP achieves on the same channel.
        let mut tcp_cfg = SimConfig::new(AdapterKind::Fixed(3), 1);
        tcp_cfg.duration = 3.0;
        let tcp_traces = (0..2).map(|_| synthetic_trace(5)).collect();
        let tcp = NetSim::new(tcp_cfg, tcp_traces).run();
        assert!(
            r.aggregate_goodput_bps >= 0.95 * tcp.aggregate_goodput_bps,
            "UDP {} must not trail TCP {}",
            r.aggregate_goodput_bps,
            tcp.aggregate_goodput_bps
        );
    }

    #[test]
    fn udp_bulk_download_direction_works() {
        let mut cfg = SimConfig::new(AdapterKind::Fixed(3), 1);
        cfg.duration = 2.0;
        cfg.upload = false;
        cfg.traffic = TrafficKind::UdpBulk;
        let traces = (0..2).map(|_| synthetic_trace(5)).collect();
        let r = NetSim::new(cfg, traces).run();
        assert!(
            r.aggregate_goodput_bps > 1e6,
            "download UDP goodput {}",
            r.aggregate_goodput_bps
        );
    }

    #[test]
    fn report_is_deterministic() {
        let a = run_with(AdapterKind::SoftRate, 2, 0.5, 4);
        let b = run_with(AdapterKind::SoftRate, 2, 0.5, 4);
        assert_eq!(a.aggregate_goodput_bps, b.aggregate_goodput_bps);
        assert_eq!(a.frames_sent, b.frames_sent);
        assert_eq!(a.collisions, b.collisions);
    }

    #[test]
    fn spatial_only_report_fields_stay_at_defaults() {
        let r = run_with(AdapterKind::Fixed(3), 1, 1.0, 5);
        assert_eq!(r.inter_cell_corruptions, 0);
        assert_eq!(r.handoffs, 0);
        assert!(r.initial_assoc.is_empty() && r.handoff_log.is_empty());
        assert!(r.events_processed > 0, "the unified engine counts events");
    }
}
