//! The trace-driven network simulator: Figure 12's topology end to end.
//!
//! N wireless clients exchange TCP bulk data with LAN hosts through an AP.
//! The wireless hop is a single collision domain with an 802.11-like DCF
//! (DIFS + binary-exponential backoff, base-rate feedback frames after
//! SIFS, retry limit) and *probabilistic carrier sense* between client
//! senders (§6.4). The DCF itself — backoff, in-flight tracking, the
//! feedback-window state machine — lives in the shared
//! [`MacEngine`](crate::mac::MacEngine); everything above the MAC — TCP
//! NewReno flows in either direction, saturated UDP, the bursty on–off
//! source, the wired AP↔LAN hop, and the RTO plumbing — lives in the
//! shared [`TransportLayer`](crate::transport::TransportLayer). This
//! module contributes [`TraceMedium`], the environment where frame fates
//! on a clean medium come from per-link [`LinkTrace`]s, overlapping
//! transmissions corrupt each other ("we assume both colliding frames are
//! lost", §6.1), and the SoftRate feedback under collision follows §6.4:
//! if the receiver's detector flags the collision (80 % of the time, 100 %
//! for ideal SoftRate), the feedback carries the interference-free BER
//! from the trace; otherwise a very high BER indicating a noise loss.
//! Silent losses (preamble lost) yield no feedback at all, except that
//! postamble-carrying frames whose tail outlives the interferer produce a
//! postamble-only ACK (ideal mode).

use std::collections::VecDeque;
use std::sync::Arc;

use softrate_trace::schema::{hash_uniform, FrameFate, LinkTrace};

use crate::config::SimConfig;
use crate::mac::{
    ActiveTx, AttemptInfo, MacCore, MacEngine, MacEv, MacParams, Medium, Port, RunReport,
};
use crate::timing::CW_MIN;
use crate::transport::{Payload, TransportConfig, TransportEv, TransportHost, TransportLayer};

pub use crate::mac::RateAudit;

/// One unidirectional wireless link (client->AP data, or AP->client ACK
/// path — and the converse for download flows). The rate adapter and
/// retry/CW state live in the engine's matching [`Port`].
struct WLink {
    src: usize,
    flow: usize,
    trace: Arc<LinkTrace>,
    queue: VecDeque<Payload>,
}

/// One wireless node's link service order (0 = AP, 1.. = clients); the
/// busy/backoff state lives in the engine's [`crate::mac::StationLanes`]
/// slots.
struct WNode {
    links_out: Vec<usize>,
    rr: usize,
}

type Core = MacCore<TransportEv, Payload>;

/// Round-robin choice among the node's links with queued frames (free
/// function: the transport host needs it while the medium is split into
/// fields).
fn pick_link(nodes: &[WNode], links: &[WLink], node: usize) -> Option<usize> {
    let n = nodes[node].links_out.len();
    for k in 0..n {
        let idx = nodes[node].links_out[(nodes[node].rr + k) % n];
        if !links[idx].queue.is_empty() {
            return Some(idx);
        }
    }
    None
}

/// The [`TransportHost`] over the trace-backed medium: MAC queues indexed
/// by link id, sender pokes through the engine core.
struct TraceHost<'a> {
    links: &'a mut Vec<WLink>,
    nodes: &'a mut Vec<WNode>,
    core: &'a mut Core,
}

impl TransportHost for TraceHost<'_> {
    fn now(&self) -> f64 {
        self.core.now()
    }

    fn queue_len(&self, link: usize) -> usize {
        self.links[link].queue.len()
    }

    fn enqueue(&mut self, link: usize, payload: Payload) {
        self.links[link].queue.push_back(payload);
        if self.core.recorder.is_some() {
            let station = self.links[link].flow;
            let depth = self.links[link].queue.len();
            let now = self.core.now();
            if let Some(rec) = self.core.recorder.as_deref_mut() {
                rec.on_enqueue(now, station, depth);
            }
        }
        let node = self.links[link].src;
        if !self.core.lanes.busy[node] && !self.core.lanes.start_pending[node] {
            let cw = pick_link(self.nodes, self.links, node)
                .map(|l| self.core.lanes.cw[l])
                .unwrap_or(CW_MIN);
            self.core.schedule_tx_start(node, None, cw);
        }
    }

    fn schedule_in(&mut self, delay: f64, ev: TransportEv) {
        self.core.events.schedule_in(delay, MacEv::Medium(ev));
    }

    fn recorder(&mut self) -> Option<&mut softrate_telemetry::Recorder> {
        self.core.recorder.as_deref_mut()
    }
}

/// The trace-backed single-collision-domain environment: probabilistic
/// carrier sense, everything-corrupts-everything collisions, per-link
/// [`LinkTrace`] fates, and the shared transport layer above the MAC.
struct TraceMedium {
    cfg: SimConfig,
    links: Vec<WLink>,
    nodes: Vec<WNode>,
    transport: TransportLayer,
    /// Flow 0's data link (the Figure 15 rate-timeline observation point).
    timeline_link: usize,
}

impl Medium for TraceMedium {
    type Event = TransportEv;
    type TxInfo = Payload;

    fn kickoff(&mut self, core: &mut Core) {
        let mut host = TraceHost {
            links: &mut self.links,
            nodes: &mut self.nodes,
            core,
        };
        self.transport.kickoff(&mut host);
    }

    /// Round-robin choice among the node's links with queued frames.
    fn pick_port(&mut self, node: usize) -> Option<usize> {
        pick_link(&self.nodes, &self.links, node)
    }

    /// Probabilistic carrier sense: the AP and clients always hear each
    /// other; between clients the probability is configured (hidden
    /// terminals, §6.4).
    fn carrier_sense(&mut self, core: &Core, node: usize) -> Option<f64> {
        let mut sensed_until: Option<f64> = None;
        for tx in &core.active {
            let other_src = tx.sender;
            if other_src == node {
                continue;
            }
            let p = if node == 0 || other_src == 0 {
                1.0
            } else {
                self.cfg.carrier_sense_prob
            };
            let heard = hash_uniform(&[tx.id, node as u64, self.cfg.seed]) < p;
            if heard {
                sensed_until = Some(sensed_until.map_or(tx.end, |u: f64| u.max(tx.end)));
            }
        }
        sensed_until
    }

    fn begin_attempt(
        &mut self,
        _node: usize,
        port: usize,
        now: f64,
        _attempt: &mut softrate_core::adapter::TxAttempt,
    ) -> AttemptInfo<Payload> {
        let payload = *self.links[port]
            .queue
            .front()
            .expect("picked link has a frame");
        let payload_bytes = payload.on_air_bytes(self.cfg.tcp.mss);
        let is_segment = payload.is_segment();
        AttemptInfo {
            payload_bytes,
            counts_as_data: is_segment,
            // Audit against the omniscient oracle (Figures 14/18).
            audit_best: is_segment.then(|| {
                self.links[port]
                    .trace
                    .best_rate_at(now, self.cfg.frame_bits())
            }),
            timeline: is_segment && self.links[port].flow == 0 && port == self.timeline_link,
            info: payload,
        }
    }

    /// Single collision domain: every pair of overlapping non-RTS
    /// transmissions corrupts each other. RTS-protected transmissions
    /// reserved the medium and neither corrupt nor get corrupted.
    fn mark_collisions(&mut self, tx: &mut ActiveTx<Payload>, active: &mut [ActiveTx<Payload>]) {
        if tx.use_rts {
            return;
        }
        for o in active.iter_mut().filter(|o| !o.use_rts) {
            o.collided = true;
            o.corrupt_same_cell = true;
            o.first_other_start = o.first_other_start.min(tx.start);
            o.max_other_end = o.max_other_end.max(tx.end);
            tx.collided = true;
            tx.corrupt_same_cell = true;
            tx.first_other_start = tx.first_other_start.min(o.start);
            tx.max_other_end = tx.max_other_end.max(o.end);
        }
    }

    /// Clean-channel fate from the trace.
    fn fate(&mut self, tx: &ActiveTx<Payload>) -> FrameFate {
        self.links[tx.port].trace.frame_fate(
            tx.rate_idx,
            tx.start,
            tx.payload_bytes * 8,
            tx.port as u64,
            tx.attempt,
        )
    }

    fn on_acked(&mut self, core: &mut Core, tx: &ActiveTx<Payload>) {
        core.stats.frames_delivered += u64::from(tx.info.is_segment());
        self.links[tx.port].queue.pop_front();
        let node = tx.sender;
        self.nodes[node].rr = (self.nodes[node].rr + 1) % self.nodes[node].links_out.len().max(1);
        let flow = self.links[tx.port].flow;
        let mut host = TraceHost {
            links: &mut self.links,
            nodes: &mut self.nodes,
            core,
        };
        self.transport.on_frame_delivered(&mut host, flow, tx.info);
    }

    fn on_dropped(&mut self, core: &mut Core, tx: &ActiveTx<Payload>) {
        self.links[tx.port].queue.pop_front();
        let flow = self.links[tx.port].flow;
        let mut host = TraceHost {
            links: &mut self.links,
            nodes: &mut self.nodes,
            core,
        };
        self.transport.on_frame_dropped(&mut host, flow); // queue space may have opened
    }

    fn after_outcome(&mut self, core: &mut Core, node: usize) {
        if let Some(port) = self.pick_port(node) {
            if !core.lanes.start_pending[node] {
                let cw = core.lanes.cw[port];
                core.schedule_tx_start(node, None, cw);
            }
        }
    }

    fn on_event(&mut self, core: &mut Core, ev: TransportEv) {
        let mut host = TraceHost {
            links: &mut self.links,
            nodes: &mut self.nodes,
            core,
        };
        self.transport.on_event(&mut host, ev);
    }

    /// Telemetry groups per wireless flow: both directions of flow `f`
    /// (client `f`'s uplink and downlink) report as station `f`.
    fn telemetry_station(&self, port: usize) -> usize {
        self.links[port].flow
    }

    /// Every Medium event here is transport work (TCP timers, wired-hop
    /// deliveries, on-off source arrivals).
    fn event_is_transport(&self, _ev: &TransportEv) -> bool {
        true
    }
}

/// The simulator: a [`MacEngine`] configured with a [`TraceMedium`].
pub struct NetSim {
    engine: MacEngine<TraceMedium>,
}

impl NetSim {
    /// Builds the Figure 12 topology. `traces[2*i]` drives client `i`'s
    /// uplink (client->AP) and `traces[2*i + 1]` its downlink, mirroring
    /// the paper's use of a distinct trace per unidirectional link.
    pub fn new(cfg: SimConfig, traces: Vec<Arc<LinkTrace>>) -> Self {
        assert!(cfg.n_clients >= 1);
        assert!(
            traces.len() >= 2 * cfg.n_clients,
            "need two traces (up/down) per client"
        );
        let frame_bits = cfg.frame_bits();
        let payload_bytes = cfg.tcp.mss + crate::timing::IP_TCP_HEADER;

        let mut nodes: Vec<WNode> = (0..=cfg.n_clients)
            .map(|_| WNode {
                links_out: Vec::new(),
                rr: 0,
            })
            .collect();
        let mut links = Vec::new();
        let mut ports = Vec::new();
        let mut flow_links = Vec::new();

        for c in 0..cfg.n_clients {
            let client = c + 1;
            let up_trace = Arc::clone(&traces[2 * c]);
            let down_trace = Arc::clone(&traces[2 * c + 1]);

            // Uplink: client -> AP.
            let up_id = links.len();
            ports.push(Port::new(cfg.adapter.build(
                &up_trace,
                frame_bits,
                payload_bytes,
                cfg.seed ^ up_id as u64,
            )));
            links.push(WLink {
                src: client,
                flow: c,
                trace: up_trace,
                queue: VecDeque::new(),
            });
            nodes[client].links_out.push(up_id);

            // Downlink: AP -> client.
            let down_id = links.len();
            ports.push(Port::new(cfg.adapter.build(
                &down_trace,
                frame_bits,
                payload_bytes,
                cfg.seed ^ down_id as u64 ^ 0xD0,
            )));
            links.push(WLink {
                src: 0,
                flow: c,
                trace: down_trace,
                queue: VecDeque::new(),
            });
            nodes[0].links_out.push(down_id);

            flow_links.push(if cfg.upload {
                (up_id, down_id)
            } else {
                (down_id, up_id)
            });
        }

        let params = MacParams {
            postambles: cfg.adapter.postambles(),
            detect_prob: cfg.adapter.detect_prob(),
            backoff_seed: cfg.seed ^ 0x4E455453,
            collision_seed: cfg.seed,
        };
        let n_senders = cfg.n_clients + 1;
        let timeline_link = flow_links[0].0;
        let transport = TransportLayer::new(
            TransportConfig {
                traffic: cfg.traffic,
                upload: cfg.upload,
                tcp: cfg.tcp,
                queue_cap: cfg.queue_cap,
                wired_rate_bps: cfg.wired_rate_bps,
                wired_delay: cfg.wired_delay,
                seed: cfg.seed,
            },
            flow_links,
        );
        let medium = TraceMedium {
            cfg,
            links,
            nodes,
            transport,
            timeline_link,
        };
        let mut engine = MacEngine::new(n_senders, ports, params, medium);
        if let Some(tcfg) = engine.medium.cfg.telemetry.clone() {
            engine.core.recorder = Some(Box::new(softrate_telemetry::Recorder::new(
                tcfg,
                engine.medium.cfg.n_clients,
                n_senders,
            )));
        }
        // SoftPHY hint corruption (`softrate-faults`): installed in the
        // engine core so the adapter sees degraded feedback while the
        // recorder keeps observing the ground truth.
        if let Some(h) = engine.medium.cfg.hint_faults {
            if h.drop_prob > 0.0 || h.quantize_db > 0.0 {
                let seed = engine.medium.cfg.seed ^ 0x4849_4E54;
                engine.core.faults = Some(crate::fault::FaultDriver::new(h, seed));
            }
        }
        NetSim { engine }
    }

    /// Runs to `cfg.duration` and reports.
    pub fn run(mut self) -> RunReport {
        let duration = self.engine.medium.cfg.duration;
        self.engine.run(duration);

        let telemetry = self
            .engine
            .core
            .recorder
            .take()
            .map(|rec| rec.finish(duration));
        let m = &self.engine.medium;
        let stats = &mut self.engine.core.stats;
        let per_flow: Vec<f64> = (0..m.transport.n_flows())
            .map(|f| m.transport.flow_goodput_bps(f, duration))
            .collect();
        RunReport {
            adapter_name: m.cfg.adapter.name().to_string(),
            aggregate_goodput_bps: per_flow.iter().sum(),
            per_flow_goodput_bps: per_flow,
            audit: stats.audit,
            frames_sent: stats.frames_sent,
            frames_delivered: stats.frames_delivered,
            collisions: stats.collisions,
            silent_losses: stats.silent_losses,
            rate_timeline: std::mem::take(&mut stats.rate_timeline),
            events_processed: stats.events_processed,
            telemetry,
            ..RunReport::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AdapterKind, TrafficKind};
    use softrate_trace::schema::TraceEntry;

    /// A trace following the paper's Figure 5 profile: BER changes by one
    /// decade per rate step, anchored at 1e-6 for the `best` rate (the
    /// highest whose 1440-byte frames are near-guaranteed).
    fn synthetic_trace(best: usize) -> Arc<LinkTrace> {
        let entry = move |r: usize| {
            let ber = (1e-6 * 10f64.powi(r as i32 - best as i32)).clamp(1e-9, 0.5);
            TraceEntry {
                t: 0.0,
                rate_idx: r,
                detected: true,
                header_ok: true,
                delivered: r <= best,
                true_ber: Some(ber),
                softphy_ber: Some(ber),
                snr_est_db: Some(20.0),
                true_snr_db: 20.0,
                probe_bits: 832,
            }
        };
        Arc::new(LinkTrace {
            name: "synthetic".into(),
            mode_name: "simulation".into(),
            interval: 0.005,
            duration: 0.005,
            series: (0..6).map(|r| vec![entry(r)]).collect(),
            seed: 0,
        })
    }

    fn run_with(adapter: AdapterKind, n_clients: usize, cs: f64, best: usize) -> RunReport {
        let mut cfg = SimConfig::new(adapter, n_clients);
        cfg.duration = 3.0;
        cfg.carrier_sense_prob = cs;
        let traces = (0..2 * n_clients).map(|_| synthetic_trace(best)).collect();
        NetSim::new(cfg, traces).run()
    }

    #[test]
    fn fixed_rate_moves_data() {
        let r = run_with(AdapterKind::Fixed(3), 1, 1.0, 5);
        assert!(
            r.aggregate_goodput_bps > 1e6,
            "goodput {}",
            r.aggregate_goodput_bps
        );
        assert!(r.frames_delivered > 0);
        assert_eq!(r.collisions, 0, "perfect carrier sense, one client");
    }

    #[test]
    fn omniscient_beats_low_fixed() {
        let omni = run_with(AdapterKind::Omniscient, 1, 1.0, 4);
        let slow = run_with(AdapterKind::Fixed(0), 1, 1.0, 4);
        assert!(
            omni.aggregate_goodput_bps > 1.5 * slow.aggregate_goodput_bps,
            "omni {} vs fixed0 {}",
            omni.aggregate_goodput_bps,
            slow.aggregate_goodput_bps
        );
    }

    #[test]
    fn fixed_far_above_best_fails() {
        // Rate 5 carries BER 1e-4 in a best=2 trace: essentially nothing
        // survives an 11520-bit frame.
        let r = run_with(AdapterKind::Fixed(5), 1, 1.0, 2);
        assert!(
            (r.frames_delivered as f64) < 0.1 * r.frames_sent as f64,
            "delivered {}/{}",
            r.frames_delivered,
            r.frames_sent
        );
    }

    #[test]
    fn softrate_converges_to_best_rate() {
        // With the decade BER profile SoftRate should track the goodput
        // optimum, which sits at or one step above the oracle's
        // "guaranteed" rate; its throughput must be comparable to the
        // omniscient algorithm and far above the most robust fixed rate.
        let sr = run_with(AdapterKind::SoftRate, 1, 1.0, 3);
        let omni = run_with(AdapterKind::Omniscient, 1, 1.0, 3);
        let slow = run_with(AdapterKind::Fixed(0), 1, 1.0, 3);
        assert!(
            sr.aggregate_goodput_bps > 0.75 * omni.aggregate_goodput_bps,
            "SoftRate {} vs omniscient {}",
            sr.aggregate_goodput_bps,
            omni.aggregate_goodput_bps
        );
        assert!(sr.aggregate_goodput_bps > 1.5 * slow.aggregate_goodput_bps);
        let (over, accurate, under) = sr.audit.fractions();
        assert!(
            accurate + over > 0.5,
            "SoftRate stuck below the channel: over {over:.2} acc {accurate:.2} under {under:.2}"
        );
    }

    #[test]
    fn goodput_reflects_oracle_rate() {
        let high = run_with(AdapterKind::Omniscient, 1, 1.0, 5);
        let low = run_with(AdapterKind::Omniscient, 1, 1.0, 1);
        assert!(high.aggregate_goodput_bps > 2.0 * low.aggregate_goodput_bps);
    }

    #[test]
    fn hidden_terminals_cause_collisions() {
        let visible = run_with(AdapterKind::Fixed(3), 3, 1.0, 5);
        let hidden = run_with(AdapterKind::Fixed(3), 3, 0.0, 5);
        assert_eq!(visible.collisions, 0);
        assert!(hidden.collisions > 0, "hidden terminals must collide");
        assert!(
            hidden.aggregate_goodput_bps < visible.aggregate_goodput_bps,
            "collisions must cost throughput"
        );
    }

    #[test]
    fn multiple_clients_share_medium() {
        let one = run_with(AdapterKind::Omniscient, 1, 1.0, 5);
        let three = run_with(AdapterKind::Omniscient, 3, 1.0, 5);
        // Aggregate stays in the same ballpark (the medium is shared).
        assert!(three.aggregate_goodput_bps > 0.5 * one.aggregate_goodput_bps);
        assert!(three.aggregate_goodput_bps < 1.5 * one.aggregate_goodput_bps);
        // And every flow gets something.
        for (i, g) in three.per_flow_goodput_bps.iter().enumerate() {
            assert!(*g > 1e5, "flow {i} starved: {g}");
        }
    }

    #[test]
    fn download_direction_works() {
        let mut cfg = SimConfig::new(AdapterKind::Fixed(3), 1);
        cfg.duration = 3.0;
        cfg.upload = false;
        let traces = (0..2).map(|_| synthetic_trace(5)).collect();
        let r = NetSim::new(cfg, traces).run();
        assert!(
            r.aggregate_goodput_bps > 1e6,
            "download goodput {}",
            r.aggregate_goodput_bps
        );
    }

    #[test]
    fn udp_bulk_saturates_the_link() {
        let mut cfg = SimConfig::new(AdapterKind::Fixed(3), 1);
        cfg.duration = 3.0;
        cfg.traffic = TrafficKind::UdpBulk;
        let traces = (0..2).map(|_| synthetic_trace(5)).collect();
        let r = NetSim::new(cfg, traces).run();
        assert!(
            r.aggregate_goodput_bps > 1e6,
            "UDP goodput {}",
            r.aggregate_goodput_bps
        );
        // Without TCP's window/ACK clocking, UDP keeps the queue full:
        // goodput must be at least what TCP achieves on the same channel.
        let mut tcp_cfg = SimConfig::new(AdapterKind::Fixed(3), 1);
        tcp_cfg.duration = 3.0;
        let tcp_traces = (0..2).map(|_| synthetic_trace(5)).collect();
        let tcp = NetSim::new(tcp_cfg, tcp_traces).run();
        assert!(
            r.aggregate_goodput_bps >= 0.95 * tcp.aggregate_goodput_bps,
            "UDP {} must not trail TCP {}",
            r.aggregate_goodput_bps,
            tcp.aggregate_goodput_bps
        );
    }

    #[test]
    fn udp_bulk_download_direction_works() {
        let mut cfg = SimConfig::new(AdapterKind::Fixed(3), 1);
        cfg.duration = 2.0;
        cfg.upload = false;
        cfg.traffic = TrafficKind::UdpBulk;
        let traces = (0..2).map(|_| synthetic_trace(5)).collect();
        let r = NetSim::new(cfg, traces).run();
        assert!(
            r.aggregate_goodput_bps > 1e6,
            "download UDP goodput {}",
            r.aggregate_goodput_bps
        );
    }

    #[test]
    fn onoff_traffic_is_paced_by_the_source_not_the_link() {
        // 300 pkt/s at a 50 % duty cycle on a clean fast channel: the
        // wireless link could carry far more, so goodput must track the
        // offered load (~150 pkt/s × 11200 bits ≈ 1.7 Mbit/s), not the
        // link capacity.
        let mut cfg = SimConfig::new(AdapterKind::Fixed(3), 1);
        cfg.duration = 4.0;
        cfg.traffic = TrafficKind::OnOff {
            rate_pps: 300.0,
            on_s: 0.25,
            off_s: 0.25,
        };
        let traces = (0..2).map(|_| synthetic_trace(5)).collect();
        let r = NetSim::new(cfg, traces).run();
        let offered_bps = 150.0 * 1400.0 * 8.0;
        assert!(
            r.aggregate_goodput_bps > 0.5 * offered_bps,
            "on-off goodput {} must approach the offered {offered_bps}",
            r.aggregate_goodput_bps
        );
        assert!(
            r.aggregate_goodput_bps < 2.0 * offered_bps,
            "on-off goodput {} must stay near the offered load, not saturate",
            r.aggregate_goodput_bps
        );
        // A saturated source on the same channel moves far more.
        let mut sat = SimConfig::new(AdapterKind::Fixed(3), 1);
        sat.duration = 4.0;
        sat.traffic = TrafficKind::UdpBulk;
        let traces = (0..2).map(|_| synthetic_trace(5)).collect();
        let s = NetSim::new(sat, traces).run();
        assert!(s.aggregate_goodput_bps > 3.0 * r.aggregate_goodput_bps);
    }

    #[test]
    fn report_is_deterministic() {
        let a = run_with(AdapterKind::SoftRate, 2, 0.5, 4);
        let b = run_with(AdapterKind::SoftRate, 2, 0.5, 4);
        assert_eq!(a.aggregate_goodput_bps, b.aggregate_goodput_bps);
        assert_eq!(a.frames_sent, b.frames_sent);
        assert_eq!(a.collisions, b.collisions);
    }

    #[test]
    fn spatial_only_report_fields_stay_at_defaults() {
        let r = run_with(AdapterKind::Fixed(3), 1, 1.0, 5);
        assert_eq!(r.inter_cell_corruptions, 0);
        assert_eq!(r.handoffs, 0);
        assert!(r.initial_assoc.is_empty() && r.handoff_log.is_empty());
        assert!(r.events_processed > 0, "the unified engine counts events");
    }
}
