//! The trace-driven network simulator: Figure 12's topology end to end.
//!
//! N wireless clients exchange TCP bulk data with LAN hosts through an AP.
//! The wireless hop is a single collision domain with an 802.11-like DCF
//! (DIFS + binary-exponential backoff, base-rate feedback frames after
//! SIFS, retry limit) and *probabilistic carrier sense* between client
//! senders (§6.4). Frame fates on a clean medium come from per-link
//! [`LinkTrace`]s; overlapping transmissions corrupt each other ("we assume
//! both colliding frames are lost", §6.1), and the SoftRate feedback under
//! collision follows §6.4: if the receiver's detector flags the collision
//! (80 % of the time, 100 % for ideal SoftRate), the feedback carries the
//! interference-free BER from the trace; otherwise a very high BER
//! indicating a noise loss. Silent losses (preamble lost) yield no feedback
//! at all, except that postamble-carrying frames whose tail outlives the
//! interferer produce a postamble-only ACK (ideal mode).

use std::collections::VecDeque;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use softrate_core::adapter::{RateAdapter, TxOutcome};
use softrate_trace::schema::{hash_uniform, LinkTrace};

use crate::config::{SimConfig, TrafficKind};
use crate::event::EventQueue;
use crate::feedback::{apply_collision_feedback, CollisionTiming, HEADER_AIRTIME_FRAC};
use crate::tcp::{TcpReceiver, TcpSender};
use crate::timing::{
    attempt_airtime, data_airtime, feedback_airtime, rts_cts_overhead, CW_MAX, CW_MIN, DIFS,
    IP_TCP_HEADER, MAX_RETRIES, SIFS, SLOT,
};

/// Payload of a wireless MAC frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Payload {
    /// A TCP data segment.
    Segment(u64),
    /// A TCP cumulative ACK.
    Ack(u64),
}

/// Simulator events.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A node's backoff expired: try to transmit.
    TxStart { node: usize },
    /// A transmission's air time ended.
    TxEnd { tx: u64 },
    /// Feedback window closed: resolve the attempt at the sender.
    Outcome { tx: u64 },
    /// A packet crossed the wired link.
    WiredDeliver {
        flow: usize,
        payload_is_segment: bool,
        value: u64,
        to_lan: bool,
    },
    /// TCP retransmission timer.
    Rto { flow: usize, epoch: u64 },
}

/// One unidirectional wireless link (client->AP data, or AP->client ACK
/// path — and the converse for download flows).
struct WLink {
    src: usize,
    flow: usize,
    trace: Arc<LinkTrace>,
    adapter: Box<dyn RateAdapter>,
    queue: VecDeque<Payload>,
    retries: u32,
    cw: u32,
    attempts: u64,
}

/// One wireless node (0 = AP, 1.. = clients).
struct WNode {
    links_out: Vec<usize>,
    rr: usize,
    busy: bool,
    start_pending: bool,
}

/// An in-flight wireless transmission.
#[derive(Debug, Clone)]
struct ActiveTx {
    id: u64,
    link: usize,
    start: f64,
    end: f64,
    header_end: f64,
    rate_idx: usize,
    use_rts: bool,
    payload: Payload,
    attempt: u64,
    collided: bool,
    first_other_start: f64,
    max_other_end: f64,
    done: bool,
}

/// One TCP flow and its endpoints.
struct SimFlow {
    sender: TcpSender,
    receiver: TcpReceiver,
    rto_epoch: u64,
    /// Link carrying this flow's data segments over the air.
    data_link: usize,
    /// Link carrying this flow's TCP ACKs over the air.
    ack_link: usize,
    /// Next datagram sequence number (UDP bulk traffic only).
    udp_next: u64,
    /// Datagrams delivered end to end (UDP bulk traffic only).
    udp_delivered: u64,
}

/// Rate-selection accuracy tallies (Figures 14 and 18).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RateAudit {
    /// Frames sent above the highest rate that would have succeeded.
    pub overselect: u64,
    /// Frames sent exactly at the oracle rate.
    pub accurate: u64,
    /// Frames sent below the oracle rate.
    pub underselect: u64,
}

impl RateAudit {
    /// Total audited frames.
    pub fn total(&self) -> u64 {
        self.overselect + self.accurate + self.underselect
    }

    /// Fractions `(over, accurate, under)`.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total().max(1) as f64;
        (
            self.overselect as f64 / t,
            self.accurate as f64 / t,
            self.underselect as f64 / t,
        )
    }
}

/// Results of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Algorithm under test.
    pub adapter_name: String,
    /// Sum of per-flow TCP goodputs, bit/s.
    pub aggregate_goodput_bps: f64,
    /// Per-flow TCP goodput, bit/s.
    pub per_flow_goodput_bps: Vec<f64>,
    /// Rate-selection accuracy over audited data frames.
    pub audit: RateAudit,
    /// Data frames transmitted on the air.
    pub frames_sent: u64,
    /// Data frames delivered intact.
    pub frames_delivered: u64,
    /// Frames corrupted by collisions.
    pub collisions: u64,
    /// Attempts that produced no feedback at all.
    pub silent_losses: u64,
    /// `(time, rate_idx)` of every data-frame attempt on flow 0's data
    /// link (the Figure 15 timeline).
    pub rate_timeline: Vec<(f64, usize)>,
}

/// The simulator.
pub struct NetSim {
    cfg: SimConfig,
    events: EventQueue<Ev>,
    links: Vec<WLink>,
    nodes: Vec<WNode>,
    flows: Vec<SimFlow>,
    active: Vec<ActiveTx>,
    /// Transmissions past TxEnd awaiting Outcome.
    pending: Vec<ActiveTx>,
    next_tx_id: u64,
    rng: SmallRng,
    wired_busy_to_lan: f64,
    wired_busy_to_ap: f64,
    // statistics
    frames_sent: u64,
    frames_delivered: u64,
    collisions: u64,
    silent_losses: u64,
    audit: RateAudit,
    rate_timeline: Vec<(f64, usize)>,
}

impl NetSim {
    /// Builds the Figure 12 topology. `traces[2*i]` drives client `i`'s
    /// uplink (client->AP) and `traces[2*i + 1]` its downlink, mirroring
    /// the paper's use of a distinct trace per unidirectional link.
    pub fn new(cfg: SimConfig, traces: Vec<Arc<LinkTrace>>) -> Self {
        assert!(cfg.n_clients >= 1);
        assert!(
            traces.len() >= 2 * cfg.n_clients,
            "need two traces (up/down) per client"
        );
        let frame_bits = cfg.frame_bits();
        let payload_bytes = cfg.tcp.mss + IP_TCP_HEADER;

        let mut nodes: Vec<WNode> = (0..=cfg.n_clients)
            .map(|_| WNode {
                links_out: Vec::new(),
                rr: 0,
                busy: false,
                start_pending: false,
            })
            .collect();
        let mut links = Vec::new();
        let mut flows = Vec::new();

        for c in 0..cfg.n_clients {
            let client = c + 1;
            let up_trace = Arc::clone(&traces[2 * c]);
            let down_trace = Arc::clone(&traces[2 * c + 1]);

            // Uplink: client -> AP.
            let up_id = links.len();
            links.push(WLink {
                src: client,
                flow: c,
                adapter: cfg.adapter.build(
                    &up_trace,
                    frame_bits,
                    payload_bytes,
                    cfg.seed ^ up_id as u64,
                ),
                trace: up_trace,
                queue: VecDeque::new(),
                retries: 0,
                cw: CW_MIN,
                attempts: 0,
            });
            nodes[client].links_out.push(up_id);

            // Downlink: AP -> client.
            let down_id = links.len();
            links.push(WLink {
                src: 0,
                flow: c,
                adapter: cfg.adapter.build(
                    &down_trace,
                    frame_bits,
                    payload_bytes,
                    cfg.seed ^ down_id as u64 ^ 0xD0,
                ),
                trace: down_trace,
                queue: VecDeque::new(),
                retries: 0,
                cw: CW_MIN,
                attempts: 0,
            });
            nodes[0].links_out.push(down_id);

            let (data_link, ack_link) = if cfg.upload {
                (up_id, down_id)
            } else {
                (down_id, up_id)
            };
            flows.push(SimFlow {
                sender: TcpSender::new(cfg.tcp),
                receiver: TcpReceiver::new(),
                rto_epoch: 0,
                data_link,
                ack_link,
                udp_next: 0,
                udp_delivered: 0,
            });
        }

        let rng = SmallRng::seed_from_u64(cfg.seed ^ 0x4E455453);
        NetSim {
            events: EventQueue::new(),
            links,
            nodes,
            flows,
            active: Vec::new(),
            pending: Vec::new(),
            next_tx_id: 1,
            rng,
            wired_busy_to_lan: 0.0,
            wired_busy_to_ap: 0.0,
            frames_sent: 0,
            frames_delivered: 0,
            collisions: 0,
            silent_losses: 0,
            audit: RateAudit::default(),
            rate_timeline: Vec::new(),
            cfg,
        }
    }

    /// Runs to `cfg.duration` and reports.
    pub fn run(mut self) -> SimReport {
        // Kick flows off, slightly staggered.
        for f in 0..self.flows.len() {
            let t0 = 0.002 * f as f64;
            self.events.schedule(t0, Ev::Rto { flow: f, epoch: 0 });
        }
        for f in 0..self.flows.len() {
            self.pump_flow(f);
        }

        while let Some(ev) = self.events.pop() {
            if ev.time > self.cfg.duration {
                break;
            }
            match ev.event {
                Ev::TxStart { node } => self.on_tx_start(node),
                Ev::TxEnd { tx } => self.on_tx_end(tx),
                Ev::Outcome { tx } => self.on_outcome(tx),
                Ev::WiredDeliver {
                    flow,
                    payload_is_segment,
                    value,
                    to_lan,
                } => self.on_wired(flow, payload_is_segment, value, to_lan),
                Ev::Rto { flow, epoch } => self.on_rto(flow, epoch),
            }
        }

        let duration = self.cfg.duration;
        let mss_bits = self.cfg.tcp.mss as f64 * 8.0;
        let per_flow: Vec<f64> = self
            .flows
            .iter()
            .map(|f| match self.cfg.traffic {
                TrafficKind::Tcp => f.sender.delivered as f64 * mss_bits / duration,
                TrafficKind::UdpBulk => f.udp_delivered as f64 * mss_bits / duration,
            })
            .collect();
        SimReport {
            adapter_name: self.cfg.adapter.name().to_string(),
            aggregate_goodput_bps: per_flow.iter().sum(),
            per_flow_goodput_bps: per_flow,
            audit: self.audit,
            frames_sent: self.frames_sent,
            frames_delivered: self.frames_delivered,
            collisions: self.collisions,
            silent_losses: self.silent_losses,
            rate_timeline: self.rate_timeline,
        }
    }

    // --- TCP plumbing -----------------------------------------------------

    /// Moves sendable TCP segments of `flow` into its data link's MAC
    /// queue, respecting the queue cap, and keeps the RTO timer armed.
    fn pump_flow(&mut self, flow: usize) {
        let now = self.events.now();
        let data_link = self.flows[flow].data_link;
        let upload = self.cfg.upload;
        if self.cfg.traffic == TrafficKind::UdpBulk {
            // Saturated source: keep the data link's MAC queue topped up.
            // The queue lives at whichever node originates the data (client
            // for uploads, AP for downloads); there is no transport-layer
            // feedback and no retransmission timer.
            while self.links[data_link].queue.len() < self.cfg.queue_cap {
                let seq = self.flows[flow].udp_next;
                self.flows[flow].udp_next += 1;
                self.enqueue(data_link, Payload::Segment(seq));
            }
            return;
        }
        loop {
            if upload {
                // Sender sits on the client; segments enter the uplink MAC
                // queue directly.
                if self.links[data_link].queue.len() >= self.cfg.queue_cap {
                    break;
                }
                match self.flows[flow].sender.next_segment(now) {
                    Some(seq) => {
                        self.enqueue(data_link, Payload::Segment(seq));
                    }
                    None => break,
                }
            } else {
                // Sender sits on the LAN host; segments cross the wire
                // first. The wired link is not the bottleneck; window
                // limits apply at the sender.
                match self.flows[flow].sender.next_segment(now) {
                    Some(seq) => self.send_wired(flow, true, seq, false),
                    None => break,
                }
            }
        }
        self.arm_rto(flow);
    }

    fn arm_rto(&mut self, flow: usize) {
        if self.cfg.traffic == TrafficKind::UdpBulk {
            return;
        }
        if !self.flows[flow].sender.needs_timer() {
            return;
        }
        self.flows[flow].rto_epoch += 1;
        let epoch = self.flows[flow].rto_epoch;
        let rto = self.flows[flow].sender.current_rto();
        self.events.schedule_in(rto, Ev::Rto { flow, epoch });
    }

    fn on_rto(&mut self, flow: usize, epoch: u64) {
        if self.cfg.traffic == TrafficKind::UdpBulk && epoch != 0 {
            return;
        }
        // Epoch 0 is the kick-off pseudo-timer.
        if epoch != 0 && epoch != self.flows[flow].rto_epoch {
            return; // stale timer
        }
        if epoch != 0 {
            if !self.flows[flow].sender.needs_timer() {
                return;
            }
            self.flows[flow].sender.on_timeout();
        }
        self.pump_flow(flow);
    }

    /// Sends a packet across the wired link (AP<->LAN gateway).
    fn send_wired(&mut self, flow: usize, payload_is_segment: bool, value: u64, to_lan: bool) {
        let now = self.events.now();
        let bytes = if payload_is_segment {
            self.cfg.tcp.mss + IP_TCP_HEADER
        } else {
            40
        };
        let ser = bytes as f64 * 8.0 / self.cfg.wired_rate_bps;
        let busy = if to_lan {
            &mut self.wired_busy_to_lan
        } else {
            &mut self.wired_busy_to_ap
        };
        let start = busy.max(now);
        *busy = start + ser;
        let deliver = start + ser + self.cfg.wired_delay;
        self.events.schedule(
            deliver,
            Ev::WiredDeliver {
                flow,
                payload_is_segment,
                value,
                to_lan,
            },
        );
    }

    fn on_wired(&mut self, flow: usize, payload_is_segment: bool, value: u64, to_lan: bool) {
        if to_lan {
            if payload_is_segment {
                // Upload data reaching the LAN host: receive, ACK back.
                let cum = self.flows[flow].receiver.on_segment(value);
                self.send_wired(flow, false, cum, false);
            } else {
                // Download ACK reaching the LAN sender.
                let restart = self.flows[flow].sender.on_ack(value, self.events.now());
                if restart {
                    self.arm_rto(flow);
                }
                self.pump_flow(flow);
            }
        } else {
            // Arriving at the AP: onto the appropriate wireless queue.
            let link = if payload_is_segment {
                self.flows[flow].data_link // download data
            } else {
                self.flows[flow].ack_link // upload ACK path
            };
            if self.links[link].queue.len() < self.cfg.queue_cap {
                let payload = if payload_is_segment {
                    Payload::Segment(value)
                } else {
                    Payload::Ack(value)
                };
                self.enqueue(link, payload);
            }
            // else: drop-tail; TCP recovers.
        }
    }

    // --- Wireless MAC -------------------------------------------------------

    fn enqueue(&mut self, link: usize, payload: Payload) {
        self.links[link].queue.push_back(payload);
        let node = self.links[link].src;
        if !self.nodes[node].busy && !self.nodes[node].start_pending {
            self.schedule_tx_start(node, None);
        }
    }

    /// Schedules the node's next channel-access attempt after DIFS plus a
    /// backoff drawn from the given link's contention window (or CW_MIN).
    fn schedule_tx_start(&mut self, node: usize, after: Option<f64>) {
        let cw = self.next_link_cw(node).unwrap_or(CW_MIN);
        let slots = self.rng.gen_range(0..=cw) as f64;
        let at = after.unwrap_or(self.events.now()) + DIFS + slots * SLOT;
        self.nodes[node].start_pending = true;
        self.events.schedule(at, Ev::TxStart { node });
    }

    /// Contention window of the link the node would serve next.
    fn next_link_cw(&self, node: usize) -> Option<u32> {
        self.pick_link(node).map(|l| self.links[l].cw)
    }

    /// Round-robin choice among the node's links with queued frames.
    fn pick_link(&self, node: usize) -> Option<usize> {
        let n = self.nodes[node].links_out.len();
        for k in 0..n {
            let idx = self.nodes[node].links_out[(self.nodes[node].rr + k) % n];
            if !self.links[idx].queue.is_empty() {
                return Some(idx);
            }
        }
        None
    }

    fn on_tx_start(&mut self, node: usize) {
        self.nodes[node].start_pending = false;
        if self.nodes[node].busy {
            return; // will reschedule when freed
        }
        let Some(link) = self.pick_link(node) else {
            return;
        };

        // Carrier sense: the AP and clients always hear each other; between
        // clients the probability is configured (hidden terminals, §6.4).
        let mut sensed_until: Option<f64> = None;
        for tx in &self.active {
            let other_src = self.links[tx.link].src;
            if other_src == node {
                continue;
            }
            let p = if node == 0 || other_src == 0 {
                1.0
            } else {
                self.cfg.carrier_sense_prob
            };
            let heard = hash_uniform(&[tx.id, node as u64, self.cfg.seed]) < p;
            if heard {
                sensed_until = Some(sensed_until.map_or(tx.end, |u: f64| u.max(tx.end)));
            }
        }
        if let Some(until) = sensed_until {
            self.schedule_tx_start(node, Some(until));
            return;
        }

        // Transmit.
        let now = self.events.now();
        let l = &mut self.links[link];
        let attempt = l.adapter.next_attempt(now);
        let rate = softrate_phy::rates::PAPER_RATES[attempt.rate_idx];
        let payload = *l.queue.front().expect("picked link has a frame");
        let payload_bytes = match payload {
            Payload::Segment(_) => self.cfg.tcp.mss + IP_TCP_HEADER,
            Payload::Ack(_) => 40,
        };
        let postamble = self.cfg.adapter.postambles();
        let rts = attempt.use_rts;
        let air = data_airtime(rate, payload_bytes, postamble)
            + if rts { rts_cts_overhead() } else { 0.0 };
        let id = self.next_tx_id;
        self.next_tx_id += 1;
        l.attempts += 1;
        let attempt_no = l.attempts;

        let tx = ActiveTx {
            id,
            link,
            start: now,
            end: now + air,
            header_end: now + air * HEADER_AIRTIME_FRAC,
            rate_idx: attempt.rate_idx,
            use_rts: rts,
            payload,
            attempt: attempt_no,
            collided: false,
            first_other_start: f64::INFINITY,
            max_other_end: f64::NEG_INFINITY,
            done: false,
        };

        // Overlap bookkeeping (single collision domain). RTS-protected
        // transmissions reserved the medium and neither corrupt nor get
        // corrupted.
        if !rts {
            // Two-phase to appease the borrow checker: collect first.
            let mut others: Vec<(f64, f64)> = Vec::new();
            for o in self.active.iter_mut().filter(|o| !o.use_rts) {
                o.collided = true;
                o.first_other_start = o.first_other_start.min(now);
                o.max_other_end = o.max_other_end.max(now + air);
                others.push((o.start, o.end));
            }
            let mut tx = tx;
            for (os, oe) in others {
                tx.collided = true;
                tx.first_other_start = tx.first_other_start.min(os);
                tx.max_other_end = tx.max_other_end.max(oe);
            }
            self.nodes[node].busy = true;
            self.events.schedule(tx.end, Ev::TxEnd { tx: id });
            self.active.push(tx);
        } else {
            self.nodes[node].busy = true;
            self.events.schedule(tx.end, Ev::TxEnd { tx: id });
            self.active.push(tx);
        }

        if matches!(payload, Payload::Segment(_)) {
            self.frames_sent += 1;
            // Audit against the omniscient oracle (Figures 14/18).
            let best = self.links[link]
                .trace
                .best_rate_at(now, self.cfg.frame_bits());
            match attempt.rate_idx.cmp(&best) {
                std::cmp::Ordering::Greater => self.audit.overselect += 1,
                std::cmp::Ordering::Equal => self.audit.accurate += 1,
                std::cmp::Ordering::Less => self.audit.underselect += 1,
            }
            if self.links[link].flow == 0 && link == self.flows[0].data_link {
                self.rate_timeline.push((now, attempt.rate_idx));
            }
        }
    }

    fn on_tx_end(&mut self, tx_id: u64) {
        let idx = self
            .active
            .iter()
            .position(|t| t.id == tx_id)
            .expect("unknown tx");
        let mut tx = self.active.swap_remove(idx);
        tx.done = true;
        // Sender waits a feedback window before concluding anything.
        self.events.schedule(
            tx.end + SIFS + feedback_airtime(),
            Ev::Outcome { tx: tx_id },
        );
        self.pending.push(tx);
    }

    fn on_outcome(&mut self, tx_id: u64) {
        let idx = self
            .pending
            .iter()
            .position(|t| t.id == tx_id)
            .expect("unknown pending tx");
        let tx = self.pending.swap_remove(idx);
        let now = self.events.now();
        let link = tx.link;
        let node = self.links[link].src;
        let payload_bytes = match tx.payload {
            Payload::Segment(_) => self.cfg.tcp.mss + IP_TCP_HEADER,
            Payload::Ack(_) => 40,
        };
        let frame_bits = payload_bytes * 8;
        let rate = softrate_phy::rates::PAPER_RATES[tx.rate_idx];

        // Clean-channel fate from the trace (also needed under collision
        // for the interference-free BER feedback).
        let fate = self.links[link].trace.frame_fate(
            tx.rate_idx,
            tx.start,
            frame_bits,
            link as u64,
            tx.attempt,
        );

        let postambles = self.cfg.adapter.postambles();
        let mut outcome = TxOutcome {
            rate_idx: tx.rate_idx,
            acked: false,
            feedback_received: false,
            ber_feedback: None,
            interference_flagged: false,
            postamble_ack: false,
            snr_feedback_db: None,
            airtime: attempt_airtime(rate, payload_bytes, postambles, tx.use_rts),
            now,
        };

        if tx.collided && !tx.use_rts {
            self.collisions += 1;
            let flagged =
                hash_uniform(&[tx.id, 0x00DE_7EC7, self.cfg.seed]) < self.cfg.adapter.detect_prob();
            let timing = CollisionTiming {
                start: tx.start,
                header_end: tx.header_end,
                end: tx.end,
                first_other_start: tx.first_other_start,
                max_other_end: tx.max_other_end,
            };
            if apply_collision_feedback(&mut outcome, &timing, &fate, flagged, postambles) {
                self.silent_losses += 1;
            }
        } else {
            // Clean medium: the trace decides.
            if fate.detected && fate.header_ok {
                outcome.feedback_received = true;
                outcome.acked = fate.delivered;
                outcome.ber_feedback = fate.ber_feedback;
                outcome.snr_feedback_db = fate.snr_feedback_db;
            } else {
                self.silent_losses += 1;
            }
        }

        self.links[link].adapter.on_outcome(&outcome);

        if outcome.acked {
            self.frames_delivered += u64::from(matches!(tx.payload, Payload::Segment(_)));
            self.links[link].queue.pop_front();
            self.links[link].retries = 0;
            self.links[link].cw = CW_MIN;
            self.nodes[node].rr =
                (self.nodes[node].rr + 1) % self.nodes[node].links_out.len().max(1);
            self.deliver_payload(link, tx.payload);
        } else {
            let l = &mut self.links[link];
            l.retries += 1;
            if l.retries > MAX_RETRIES {
                l.queue.pop_front();
                l.retries = 0;
                l.cw = CW_MIN;
                let flow = l.flow;
                self.pump_flow(flow); // queue space may have opened
            } else {
                l.cw = (l.cw * 2 + 1).min(CW_MAX);
            }
        }

        self.nodes[node].busy = false;
        if self.pick_link(node).is_some() && !self.nodes[node].start_pending {
            self.schedule_tx_start(node, None);
        }
    }

    /// Hands a delivered wireless frame to the next layer.
    fn deliver_payload(&mut self, link: usize, payload: Payload) {
        let flow = self.links[link].flow;
        let upload = self.cfg.upload;
        if self.cfg.traffic == TrafficKind::UdpBulk {
            // Datagram reached the far side of the wireless hop; count it
            // and keep the source saturated. (The wired segment is never
            // the bottleneck and UDP has no return traffic.)
            if matches!(payload, Payload::Segment(_)) {
                self.flows[flow].udp_delivered += 1;
            }
            self.pump_flow(flow);
            return;
        }
        match payload {
            Payload::Segment(seq) => {
                if upload {
                    // Client -> AP -> wired -> LAN receiver.
                    self.send_wired(flow, true, seq, true);
                } else {
                    // AP -> client: the client is the TCP receiver; its ACK
                    // rides the uplink.
                    let cum = self.flows[flow].receiver.on_segment(seq);
                    let ack_link = self.flows[flow].ack_link;
                    if self.links[ack_link].queue.len() < self.cfg.queue_cap {
                        self.enqueue(ack_link, Payload::Ack(cum));
                    }
                }
            }
            Payload::Ack(cum) => {
                if upload {
                    // AP -> client TCP ACK: feed the client-side sender.
                    let restart = self.flows[flow].sender.on_ack(cum, self.events.now());
                    if restart {
                        self.arm_rto(flow);
                    }
                    self.pump_flow(flow);
                } else {
                    // Client -> AP TCP ACK: forward to the LAN sender.
                    self.send_wired(flow, false, cum, true);
                }
            }
        }
        // Frame left the queue: the flow may have new room.
        self.pump_flow(flow);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AdapterKind;
    use softrate_trace::schema::TraceEntry;

    /// A trace following the paper's Figure 5 profile: BER changes by one
    /// decade per rate step, anchored at 1e-6 for the `best` rate (the
    /// highest whose 1440-byte frames are near-guaranteed).
    fn synthetic_trace(best: usize) -> Arc<LinkTrace> {
        let entry = move |r: usize| {
            let ber = (1e-6 * 10f64.powi(r as i32 - best as i32)).clamp(1e-9, 0.5);
            TraceEntry {
                t: 0.0,
                rate_idx: r,
                detected: true,
                header_ok: true,
                delivered: r <= best,
                true_ber: Some(ber),
                softphy_ber: Some(ber),
                snr_est_db: Some(20.0),
                true_snr_db: 20.0,
                probe_bits: 832,
            }
        };
        Arc::new(LinkTrace {
            name: "synthetic".into(),
            mode_name: "simulation".into(),
            interval: 0.005,
            duration: 0.005,
            series: (0..6).map(|r| vec![entry(r)]).collect(),
            seed: 0,
        })
    }

    fn run_with(adapter: AdapterKind, n_clients: usize, cs: f64, best: usize) -> SimReport {
        let mut cfg = SimConfig::new(adapter, n_clients);
        cfg.duration = 3.0;
        cfg.carrier_sense_prob = cs;
        let traces = (0..2 * n_clients).map(|_| synthetic_trace(best)).collect();
        NetSim::new(cfg, traces).run()
    }

    #[test]
    fn fixed_rate_moves_data() {
        let r = run_with(AdapterKind::Fixed(3), 1, 1.0, 5);
        assert!(
            r.aggregate_goodput_bps > 1e6,
            "goodput {}",
            r.aggregate_goodput_bps
        );
        assert!(r.frames_delivered > 0);
        assert_eq!(r.collisions, 0, "perfect carrier sense, one client");
    }

    #[test]
    fn omniscient_beats_low_fixed() {
        let omni = run_with(AdapterKind::Omniscient, 1, 1.0, 4);
        let slow = run_with(AdapterKind::Fixed(0), 1, 1.0, 4);
        assert!(
            omni.aggregate_goodput_bps > 1.5 * slow.aggregate_goodput_bps,
            "omni {} vs fixed0 {}",
            omni.aggregate_goodput_bps,
            slow.aggregate_goodput_bps
        );
    }

    #[test]
    fn fixed_far_above_best_fails() {
        // Rate 5 carries BER 1e-4 in a best=2 trace: essentially nothing
        // survives an 11520-bit frame.
        let r = run_with(AdapterKind::Fixed(5), 1, 1.0, 2);
        assert!(
            (r.frames_delivered as f64) < 0.1 * r.frames_sent as f64,
            "delivered {}/{}",
            r.frames_delivered,
            r.frames_sent
        );
    }

    #[test]
    fn softrate_converges_to_best_rate() {
        // With the decade BER profile SoftRate should track the goodput
        // optimum, which sits at or one step above the oracle's
        // "guaranteed" rate; its throughput must be comparable to the
        // omniscient algorithm and far above the most robust fixed rate.
        let sr = run_with(AdapterKind::SoftRate, 1, 1.0, 3);
        let omni = run_with(AdapterKind::Omniscient, 1, 1.0, 3);
        let slow = run_with(AdapterKind::Fixed(0), 1, 1.0, 3);
        assert!(
            sr.aggregate_goodput_bps > 0.75 * omni.aggregate_goodput_bps,
            "SoftRate {} vs omniscient {}",
            sr.aggregate_goodput_bps,
            omni.aggregate_goodput_bps
        );
        assert!(sr.aggregate_goodput_bps > 1.5 * slow.aggregate_goodput_bps);
        let (over, accurate, under) = sr.audit.fractions();
        assert!(
            accurate + over > 0.5,
            "SoftRate stuck below the channel: over {over:.2} acc {accurate:.2} under {under:.2}"
        );
    }

    #[test]
    fn goodput_reflects_oracle_rate() {
        let high = run_with(AdapterKind::Omniscient, 1, 1.0, 5);
        let low = run_with(AdapterKind::Omniscient, 1, 1.0, 1);
        assert!(high.aggregate_goodput_bps > 2.0 * low.aggregate_goodput_bps);
    }

    #[test]
    fn hidden_terminals_cause_collisions() {
        let visible = run_with(AdapterKind::Fixed(3), 3, 1.0, 5);
        let hidden = run_with(AdapterKind::Fixed(3), 3, 0.0, 5);
        assert_eq!(visible.collisions, 0);
        assert!(hidden.collisions > 0, "hidden terminals must collide");
        assert!(
            hidden.aggregate_goodput_bps < visible.aggregate_goodput_bps,
            "collisions must cost throughput"
        );
    }

    #[test]
    fn multiple_clients_share_medium() {
        let one = run_with(AdapterKind::Omniscient, 1, 1.0, 5);
        let three = run_with(AdapterKind::Omniscient, 3, 1.0, 5);
        // Aggregate stays in the same ballpark (the medium is shared).
        assert!(three.aggregate_goodput_bps > 0.5 * one.aggregate_goodput_bps);
        assert!(three.aggregate_goodput_bps < 1.5 * one.aggregate_goodput_bps);
        // And every flow gets something.
        for (i, g) in three.per_flow_goodput_bps.iter().enumerate() {
            assert!(*g > 1e5, "flow {i} starved: {g}");
        }
    }

    #[test]
    fn download_direction_works() {
        let mut cfg = SimConfig::new(AdapterKind::Fixed(3), 1);
        cfg.duration = 3.0;
        cfg.upload = false;
        let traces = (0..2).map(|_| synthetic_trace(5)).collect();
        let r = NetSim::new(cfg, traces).run();
        assert!(
            r.aggregate_goodput_bps > 1e6,
            "download goodput {}",
            r.aggregate_goodput_bps
        );
    }

    #[test]
    fn udp_bulk_saturates_the_link() {
        let mut cfg = SimConfig::new(AdapterKind::Fixed(3), 1);
        cfg.duration = 3.0;
        cfg.traffic = TrafficKind::UdpBulk;
        let traces = (0..2).map(|_| synthetic_trace(5)).collect();
        let r = NetSim::new(cfg, traces).run();
        assert!(
            r.aggregate_goodput_bps > 1e6,
            "UDP goodput {}",
            r.aggregate_goodput_bps
        );
        // Without TCP's window/ACK clocking, UDP keeps the queue full:
        // goodput must be at least what TCP achieves on the same channel.
        let mut tcp_cfg = SimConfig::new(AdapterKind::Fixed(3), 1);
        tcp_cfg.duration = 3.0;
        let tcp_traces = (0..2).map(|_| synthetic_trace(5)).collect();
        let tcp = NetSim::new(tcp_cfg, tcp_traces).run();
        assert!(
            r.aggregate_goodput_bps >= 0.95 * tcp.aggregate_goodput_bps,
            "UDP {} must not trail TCP {}",
            r.aggregate_goodput_bps,
            tcp.aggregate_goodput_bps
        );
    }

    #[test]
    fn udp_bulk_download_direction_works() {
        let mut cfg = SimConfig::new(AdapterKind::Fixed(3), 1);
        cfg.duration = 2.0;
        cfg.upload = false;
        cfg.traffic = TrafficKind::UdpBulk;
        let traces = (0..2).map(|_| synthetic_trace(5)).collect();
        let r = NetSim::new(cfg, traces).run();
        assert!(
            r.aggregate_goodput_bps > 1e6,
            "download UDP goodput {}",
            r.aggregate_goodput_bps
        );
    }

    #[test]
    fn report_is_deterministic() {
        let a = run_with(AdapterKind::SoftRate, 2, 0.5, 4);
        let b = run_with(AdapterKind::SoftRate, 2, 0.5, 4);
        assert_eq!(a.aggregate_goodput_bps, b.aggregate_goodput_bps);
        assert_eq!(a.frames_sent, b.frames_sent);
        assert_eq!(a.collisions, b.collisions);
    }
}
