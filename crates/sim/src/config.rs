//! Simulation configuration: topology, adapter choice, MAC options.

use std::sync::Arc;

use softrate_adapt::misc::{FixedRate, Omniscient};
use softrate_adapt::rraa::Rraa;
use softrate_adapt::samplerate::SampleRate;
use softrate_adapt::snr::{SnrAdapter, SnrTable};
use softrate_core::adapter::RateAdapter;
use softrate_core::softrate::{SoftRate, SoftRateConfig};
use softrate_trace::schema::LinkTrace;

use crate::tcp::TcpConfig;
use crate::timing::lossless_airtimes;

/// Which rate-adaptation algorithm the wireless senders run.
#[derive(Debug, Clone)]
pub enum AdapterKind {
    /// SoftRate as implemented in the paper's evaluation: interference
    /// detection succeeds 80 % of the time, no postambles (§6.4).
    SoftRate,
    /// The "ideal" SoftRate: postambles enabled and perfect interference
    /// detection (§6.4).
    SoftRateIdeal,
    /// SoftRate with its interference detector disabled (ablation: reacts
    /// to collision BER like a naive protocol would).
    SoftRateNoDetect,
    /// SampleRate with the paper's 1-second averaging window.
    SampleRate,
    /// RRAA with adaptive RTS.
    Rraa,
    /// Per-frame SNR feedback against a trained threshold table.
    Snr(SnrTable),
    /// CHARM-like averaged SNR against a trained table.
    Charm(SnrTable),
    /// Oracle: highest rate guaranteed to succeed, from the trace.
    Omniscient,
    /// Fixed rate (debugging / bounds).
    Fixed(usize),
}

impl AdapterKind {
    /// Short display name matching the paper's figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            AdapterKind::SoftRate => "SoftRate",
            AdapterKind::SoftRateIdeal => "SoftRate (Ideal)",
            AdapterKind::SoftRateNoDetect => "SoftRate (no detect)",
            AdapterKind::SampleRate => "SampleRate",
            AdapterKind::Rraa => "RRAA",
            AdapterKind::Snr(_) => "SNR (trained)",
            AdapterKind::Charm(_) => "CHARM",
            AdapterKind::Omniscient => "Omniscient",
            AdapterKind::Fixed(_) => "Fixed",
        }
    }

    /// Probability that the receiver's collision detector flags a
    /// collision-damaged frame (paper §6.4: 80 % for present SoftRate,
    /// 100 % for ideal).
    pub fn detect_prob(&self) -> f64 {
        match self {
            AdapterKind::SoftRateIdeal => 1.0,
            AdapterKind::SoftRateNoDetect => 0.0,
            _ => 0.8,
        }
    }

    /// Whether frames carry postambles (ideal SoftRate only).
    pub fn postambles(&self) -> bool {
        matches!(self, AdapterKind::SoftRateIdeal)
    }

    /// Builds one adapter instance for a link whose fates come from
    /// `trace` (the omniscient oracle looks its answers up in the trace).
    pub fn build(
        &self,
        trace: &Arc<LinkTrace>,
        frame_bits: usize,
        payload: usize,
        seed: u64,
    ) -> Box<dyn RateAdapter> {
        let trace = Arc::clone(trace);
        self.build_with_oracle(
            frame_bits,
            payload,
            seed,
            Box::new(move |t| trace.best_rate_at(t, frame_bits)),
        )
    }

    /// Builds one adapter instance without a [`LinkTrace`]: the omniscient
    /// variant consults the injected `time -> best rate` closure instead of
    /// a trace. The streaming spatial simulator (`softrate-net`) builds its
    /// adapters through this path because it has no traces; note that its
    /// oracle depends on sim state (the station's *current* link changes at
    /// handoff), so it injects the omniscient rate at transmit time and
    /// passes a dummy closure here.
    pub fn build_with_oracle(
        &self,
        frame_bits: usize,
        payload: usize,
        seed: u64,
        oracle: Box<dyn FnMut(f64) -> usize + Send>,
    ) -> Box<dyn RateAdapter> {
        match self {
            AdapterKind::SoftRate | AdapterKind::SoftRateIdeal | AdapterKind::SoftRateNoDetect => {
                let cfg = SoftRateConfig {
                    frame_bits,
                    ..Default::default()
                };
                Box::new(SoftRate::new(cfg))
            }
            AdapterKind::SampleRate => {
                Box::new(SampleRate::new(lossless_airtimes(payload), 1.0, seed))
            }
            AdapterKind::Rraa => Box::new(Rraa::new(lossless_airtimes(payload))),
            AdapterKind::Snr(table) => Box::new(SnrAdapter::rbar(table.clone())),
            AdapterKind::Charm(table) => Box::new(SnrAdapter::charm(table.clone())),
            AdapterKind::Omniscient => {
                Box::new(Omniscient::new(softrate_trace::recipes::N_RATES, oracle))
            }
            AdapterKind::Fixed(idx) => {
                Box::new(FixedRate::new(*idx, softrate_trace::recipes::N_RATES))
            }
        }
    }
}

/// What the flows carry over the wireless hop.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum TrafficKind {
    /// TCP NewReno bulk transfer (the paper's Figure 12 workload).
    #[default]
    Tcp,
    /// Saturated UDP: the sender keeps the MAC queue topped up and goodput
    /// counts delivered datagrams — isolates MAC + rate adaptation from
    /// transport dynamics.
    UdpBulk,
    /// Non-saturated bursty datagram source: Poisson arrivals at
    /// `rate_pps` during `on_s`-second bursts separated by `off_s`-second
    /// silences (each flow's duty cycle is phase-staggered). Arrivals that
    /// find the source queue full are dropped.
    OnOff {
        /// Mean arrival rate while the source is on, packets/second.
        rate_pps: f64,
        /// Burst duration, seconds (> 0).
        on_s: f64,
        /// Silence duration between bursts, seconds (>= 0).
        off_s: f64,
    },
}

/// Full simulation configuration (Figure 12 topology).
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Simulated seconds.
    pub duration: f64,
    /// Number of wireless clients (N flows).
    pub n_clients: usize,
    /// `true`: clients upload to LAN hosts; `false`: download.
    pub upload: bool,
    /// Transport workload carried by each flow.
    pub traffic: TrafficKind,
    /// Probability that one wireless sender carrier-senses another's
    /// ongoing transmission (1.0 = perfect carrier sense, §6.4).
    pub carrier_sense_prob: f64,
    /// Rate adaptation algorithm under test.
    pub adapter: AdapterKind,
    /// MAC queue capacity in frames ("slightly exceeds the
    /// bandwidth-delay product of the bottleneck wireless link", §6.1).
    pub queue_cap: usize,
    /// TCP parameters.
    pub tcp: TcpConfig,
    /// Wired link rate, bit/s (50 Mbps in Figure 12).
    pub wired_rate_bps: f64,
    /// Wired one-way propagation delay, seconds (10 ms in Figure 12).
    pub wired_delay: f64,
    /// Master seed.
    pub seed: u64,
    /// Telemetry recorder configuration; `None` (the default) disables the
    /// recorder entirely — the disabled path must leave every simulation
    /// result byte-identical.
    pub telemetry: Option<softrate_telemetry::RecorderConfig>,
    /// SoftPHY hint corruption (`softrate-faults`) — the only fault class
    /// that applies to the single-collision-domain trace medium (the
    /// others need geometry). `None` keeps the seam untouched.
    pub hint_faults: Option<crate::fault::HintFaults>,
}

impl SimConfig {
    /// The paper's default setup for `n_clients` uploading flows.
    pub fn new(adapter: AdapterKind, n_clients: usize) -> Self {
        SimConfig {
            duration: 10.0,
            n_clients,
            upload: true,
            traffic: TrafficKind::Tcp,
            carrier_sense_prob: 1.0,
            adapter,
            queue_cap: 50,
            tcp: TcpConfig::default(),
            wired_rate_bps: 50e6,
            wired_delay: 0.010,
            seed: 0x51AB,
            telemetry: None,
            hint_faults: None,
        }
    }

    /// Nominal data-frame size on the air, bits (MSS + TCP/IP headers).
    pub fn frame_bits(&self) -> usize {
        (self.tcp.mss + crate::timing::IP_TCP_HEADER) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softrate_trace::schema::{LinkTrace, TraceEntry};

    fn dummy_trace() -> Arc<LinkTrace> {
        let entry = |r: usize| TraceEntry {
            t: 0.0,
            rate_idx: r,
            detected: true,
            header_ok: true,
            delivered: true,
            true_ber: Some(1e-9),
            softphy_ber: Some(1e-9),
            snr_est_db: Some(20.0),
            true_snr_db: 20.0,
            probe_bits: 832,
        };
        Arc::new(LinkTrace {
            name: "dummy".into(),
            mode_name: "simulation".into(),
            interval: 0.005,
            duration: 0.005,
            series: (0..6).map(|r| vec![entry(r)]).collect(),
            seed: 0,
        })
    }

    #[test]
    fn all_kinds_build() {
        let trace = dummy_trace();
        let table = SnrTable::new(vec![2.0, 4.0, 6.0, 8.0, 10.0, 14.0]);
        let kinds = [
            AdapterKind::SoftRate,
            AdapterKind::SoftRateIdeal,
            AdapterKind::SoftRateNoDetect,
            AdapterKind::SampleRate,
            AdapterKind::Rraa,
            AdapterKind::Snr(table.clone()),
            AdapterKind::Charm(table),
            AdapterKind::Omniscient,
            AdapterKind::Fixed(3),
        ];
        for kind in kinds {
            let mut a = kind.build(&trace, 1440 * 8, 1440, 1);
            let attempt = a.next_attempt(0.0);
            assert!(attempt.rate_idx < 6, "{}", kind.name());
            assert_eq!(a.num_rates(), 6);
        }
    }

    #[test]
    fn detect_prob_matches_paper() {
        assert_eq!(AdapterKind::SoftRate.detect_prob(), 0.8);
        assert_eq!(AdapterKind::SoftRateIdeal.detect_prob(), 1.0);
        assert!(AdapterKind::SoftRateIdeal.postambles());
        assert!(!AdapterKind::SoftRate.postambles());
    }

    #[test]
    fn omniscient_uses_trace_oracle() {
        let trace = dummy_trace();
        let mut a = AdapterKind::Omniscient.build(&trace, 1440 * 8, 1440, 0);
        // All rates clean in the dummy trace: oracle picks the top.
        assert_eq!(a.next_attempt(0.0).rate_idx, 5);
    }

    #[test]
    fn traceless_build_uses_injected_oracle() {
        let mut a =
            AdapterKind::Omniscient.build_with_oracle(1440 * 8, 1440, 0, Box::new(|t| t as usize));
        assert_eq!(a.next_attempt(2.0).rate_idx, 2);
        assert_eq!(a.next_attempt(4.0).rate_idx, 4);
        // Non-oracle kinds ignore the closure entirely.
        let mut f = AdapterKind::Fixed(1).build_with_oracle(1440 * 8, 1440, 0, Box::new(|_| 5));
        assert_eq!(f.next_attempt(0.0).rate_idx, 1);
    }

    #[test]
    fn frame_bits_includes_headers() {
        let cfg = SimConfig::new(AdapterKind::SoftRate, 1);
        assert_eq!(cfg.frame_bits(), (1400 + 40) * 8);
    }
}
