//! The §6.4 collision-feedback semantics, shared by the single-cell
//! trace-driven simulator ([`crate::netsim`]) and the multi-cell spatial
//! simulator (`softrate-net`).
//!
//! When a frame collides, what the sender learns depends on timing: if the
//! victim's preamble and header went out before any interferer started,
//! the receiver locks on and sends feedback — carrying the
//! interference-free BER when its collision detector flags the overlap,
//! or a catastrophic BER when it mistakes the damage for noise. If the
//! header was destroyed, the loss is silent, unless postambles are enabled
//! and the frame's tail outlived every interferer (a postamble-only ACK,
//! ideal SoftRate). Keeping this decision in one place is what guarantees
//! the two simulators cannot drift apart.

use softrate_core::adapter::TxOutcome;
use softrate_trace::schema::FrameFate;

/// Preamble + header share of a frame's air time (the window interferers
/// must miss for the receiver to lock on).
pub const HEADER_AIRTIME_FRAC: f64 = 0.12;

/// Air time of the postamble at the frame's tail: one OFDM symbol.
pub const POSTAMBLE_TAIL_S: f64 = 8e-6;

/// Timing of a collided transmission relative to its interferers
/// (absolute seconds).
#[derive(Debug, Clone, Copy)]
pub struct CollisionTiming {
    /// Transmission start.
    pub start: f64,
    /// End of the preamble + header window.
    pub header_end: f64,
    /// Transmission end.
    pub end: f64,
    /// Earliest start among overlapping transmissions.
    pub first_other_start: f64,
    /// Latest end among overlapping transmissions.
    pub max_other_end: f64,
}

/// Fills in `outcome`'s feedback fields for a collided frame per §6.4.
/// `flagged` is the (caller-drawn) verdict of the receiver's collision
/// detector; `fate` is the frame's interference-free fate. Returns `true`
/// when the attempt was a silent loss (no feedback of any kind).
pub fn apply_collision_feedback(
    outcome: &mut TxOutcome,
    timing: &CollisionTiming,
    fate: &FrameFate,
    flagged: bool,
    postambles: bool,
) -> bool {
    let first = timing.start < timing.first_other_start;
    let header_clean = first && timing.first_other_start > timing.header_end;
    if header_clean && fate.detected && fate.header_ok {
        // Feedback frame goes out; did the detector flag the collision?
        outcome.feedback_received = true;
        if flagged {
            outcome.interference_flagged = true;
            outcome.ber_feedback = fate.ber_feedback.or(Some(1e-6));
        } else {
            // Mistaken for a noise loss: report a very high BER.
            outcome.ber_feedback = Some(0.1);
        }
        outcome.snr_feedback_db = fate.snr_feedback_db;
        false
    } else {
        // Receiver never locked on (or header destroyed): silent, unless
        // the postamble survived past the interference.
        let tail_clear = timing.end - POSTAMBLE_TAIL_S > timing.max_other_end;
        if postambles && tail_clear && fate.detected {
            outcome.postamble_ack = true;
            outcome.interference_flagged = true;
            false
        } else {
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fate(detected: bool, header_ok: bool) -> FrameFate {
        FrameFate {
            detected,
            header_ok,
            delivered: false,
            ber_feedback: header_ok.then_some(2e-5),
            snr_feedback_db: header_ok.then_some(14.0),
        }
    }

    fn outcome() -> TxOutcome {
        TxOutcome {
            rate_idx: 3,
            acked: false,
            feedback_received: false,
            ber_feedback: None,
            interference_flagged: false,
            postamble_ack: false,
            snr_feedback_db: None,
            airtime: 1e-3,
            now: 1.0,
        }
    }

    /// Victim started first, interferer arrived after the header.
    fn header_clean_timing() -> CollisionTiming {
        CollisionTiming {
            start: 0.0,
            header_end: 0.1e-3,
            end: 1.0e-3,
            first_other_start: 0.5e-3,
            max_other_end: 1.5e-3,
        }
    }

    #[test]
    fn flagged_collision_feeds_back_interference_free_ber() {
        let mut o = outcome();
        let silent = apply_collision_feedback(
            &mut o,
            &header_clean_timing(),
            &fate(true, true),
            true,
            false,
        );
        assert!(!silent);
        assert!(o.feedback_received && o.interference_flagged);
        assert_eq!(o.ber_feedback, Some(2e-5));
        assert_eq!(o.snr_feedback_db, Some(14.0));
    }

    #[test]
    fn unflagged_collision_reports_catastrophic_ber() {
        let mut o = outcome();
        let silent = apply_collision_feedback(
            &mut o,
            &header_clean_timing(),
            &fate(true, true),
            false,
            false,
        );
        assert!(!silent);
        assert!(o.feedback_received && !o.interference_flagged);
        assert_eq!(o.ber_feedback, Some(0.1));
    }

    #[test]
    fn destroyed_header_is_silent_without_postambles() {
        let mut t = header_clean_timing();
        t.first_other_start = 0.05e-3; // inside the header window
        let mut o = outcome();
        assert!(apply_collision_feedback(
            &mut o,
            &t,
            &fate(true, true),
            true,
            false
        ));
        assert!(!o.feedback_received && !o.postamble_ack);
    }

    #[test]
    fn postamble_ack_when_tail_outlives_interference() {
        let mut t = header_clean_timing();
        t.first_other_start = 0.05e-3;
        t.max_other_end = 0.8e-3; // interferer ends before the tail
        let mut o = outcome();
        let silent = apply_collision_feedback(&mut o, &t, &fate(true, true), true, true);
        assert!(!silent);
        assert!(o.postamble_ack && o.interference_flagged && !o.feedback_received);
    }
}
