//! SNR-based rate adaptation (paper §2.2, §6.1): an RBAR-like protocol
//! using per-frame SNR feedback, and a CHARM-like variant using an averaged
//! SNR.
//!
//! Both select the fastest rate whose *trained* minimum-SNR threshold the
//! (fed back) SNR clears. The training table is everything: the paper shows
//! that a table trained in one propagation environment (e.g. static or
//! walking) picks wrong rates in another (vehicular), because the SNR-BER
//! relationship shifts with channel coherence time — while SoftRate needs
//! no training at all. Tables are built from traces by
//! `softrate-trace::snr_training`.

use serde::{Deserialize, Serialize};
use softrate_core::adapter::{
    DecisionCtx, DecisionTrigger, RateAdapter, RateDecision, RateIdx, TxAttempt, TxOutcome,
};

/// A trained SNR threshold table: the minimum preamble SNR (dB) at which
/// each rate sustains acceptably low loss in the training environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnrTable {
    /// Per-rate minimum usable SNR in dB; must be non-decreasing.
    pub min_snr_db: Vec<f64>,
}

impl SnrTable {
    /// Creates a table, asserting monotonicity.
    pub fn new(min_snr_db: Vec<f64>) -> Self {
        assert!(!min_snr_db.is_empty());
        for w in min_snr_db.windows(2) {
            assert!(
                w[1] >= w[0],
                "thresholds must be non-decreasing: {min_snr_db:?}"
            );
        }
        SnrTable { min_snr_db }
    }

    /// The fastest rate usable at `snr_db` (rate 0 if none qualifies).
    pub fn select(&self, snr_db: f64) -> RateIdx {
        let mut pick = 0;
        for (i, &thr) in self.min_snr_db.iter().enumerate() {
            if snr_db >= thr {
                pick = i;
            }
        }
        pick
    }

    /// Number of rates covered.
    pub fn len(&self) -> usize {
        self.min_snr_db.len()
    }

    /// Whether the table is empty (never; API completeness).
    pub fn is_empty(&self) -> bool {
        self.min_snr_db.is_empty()
    }
}

/// How the adapter digests SNR feedback.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SnrMode {
    /// Use the most recent per-frame SNR (RBAR-like, but fed back in the
    /// link-layer ACK instead of an RTS/CTS exchange — §6.1).
    Instantaneous,
    /// Exponentially averaged SNR (CHARM-like): slower, smoother.
    Ewma {
        /// Smoothing factor in (0, 1]; weight of the newest sample.
        alpha: f64,
    },
}

/// The SNR-feedback rate adapter.
pub struct SnrAdapter {
    table: SnrTable,
    mode: SnrMode,
    label: &'static str,
    snr_state: Option<f64>,
    current: RateIdx,
    silent_losses: u32,
}

impl SnrAdapter {
    /// RBAR-like instantaneous-SNR adapter.
    pub fn rbar(table: SnrTable) -> Self {
        SnrAdapter {
            table,
            mode: SnrMode::Instantaneous,
            label: "SNR",
            snr_state: None,
            current: 0,
            silent_losses: 0,
        }
    }

    /// CHARM-like averaged-SNR adapter.
    pub fn charm(table: SnrTable) -> Self {
        SnrAdapter {
            table,
            mode: SnrMode::Ewma { alpha: 0.1 },
            label: "CHARM",
            snr_state: None,
            current: 0,
            silent_losses: 0,
        }
    }

    /// The smoothed/last SNR the adapter is acting on.
    pub fn tracked_snr(&self) -> Option<f64> {
        self.snr_state
    }
}

impl RateAdapter for SnrAdapter {
    fn name(&self) -> &'static str {
        self.label
    }

    fn next_attempt_ctx(&mut self, _now: f64, _ctx: &mut DecisionCtx) -> TxAttempt {
        TxAttempt {
            rate_idx: self.current,
            use_rts: false,
        }
    }

    fn on_outcome_ctx(&mut self, outcome: &TxOutcome, ctx: &mut DecisionCtx) {
        if let Some(snr) = outcome.snr_feedback_db {
            self.silent_losses = 0;
            let tracked = match self.mode {
                SnrMode::Instantaneous => snr,
                SnrMode::Ewma { alpha } => match self.snr_state {
                    Some(prev) => prev + alpha * (snr - prev),
                    None => snr,
                },
            };
            self.snr_state = Some(tracked);
            let to = self.table.select(tracked);
            if to != self.current {
                ctx.record(RateDecision {
                    old_rate: self.current,
                    new_rate: to,
                    trigger: if outcome.acked {
                        DecisionTrigger::Ack
                    } else {
                        DecisionTrigger::Loss
                    },
                    snr_db: Some(tracked),
                    ber: None,
                    reason: "snr-table-lookup",
                });
            }
            self.current = to;
        } else if outcome.is_silent_loss() {
            // No SNR measurement at all: like other protocols, back off
            // after a run of silent losses.
            self.silent_losses += 1;
            if self.silent_losses >= 3 {
                self.silent_losses = 0;
                self.snr_state = None;
                if self.current > 0 {
                    ctx.record(RateDecision {
                        old_rate: self.current,
                        new_rate: self.current - 1,
                        trigger: DecisionTrigger::Timeout,
                        snr_db: None,
                        ber: None,
                        reason: "silent-loss-limit",
                    });
                    self.current -= 1;
                }
            }
        }
    }

    fn num_rates(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SnrTable {
        SnrTable::new(vec![2.0, 5.0, 8.0, 11.0, 14.0, 18.0])
    }

    fn outcome_with_snr(rate_idx: usize, snr: Option<f64>) -> TxOutcome {
        TxOutcome {
            rate_idx,
            acked: snr.is_some(),
            feedback_received: snr.is_some(),
            ber_feedback: None,
            interference_flagged: false,
            postamble_ack: false,
            snr_feedback_db: snr,
            airtime: 1e-3,
            now: 0.0,
        }
    }

    #[test]
    fn table_select_picks_fastest_qualifying() {
        let t = table();
        assert_eq!(t.select(1.0), 0, "below every threshold falls to base rate");
        assert_eq!(t.select(5.0), 1);
        assert_eq!(t.select(13.9), 3);
        assert_eq!(t.select(14.0), 4);
        assert_eq!(t.select(50.0), 5);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn table_rejects_nonmonotone() {
        SnrTable::new(vec![3.0, 2.0]);
    }

    #[test]
    fn rbar_follows_instantaneous_snr() {
        let mut a = SnrAdapter::rbar(table());
        a.on_outcome(&outcome_with_snr(0, Some(15.0)));
        assert_eq!(a.next_attempt(0.0).rate_idx, 4);
        a.on_outcome(&outcome_with_snr(4, Some(3.0)));
        assert_eq!(a.next_attempt(0.0).rate_idx, 0);
    }

    #[test]
    fn charm_smooths_snr() {
        let mut a = SnrAdapter::charm(table());
        a.on_outcome(&outcome_with_snr(0, Some(20.0)));
        assert_eq!(
            a.next_attempt(0.0).rate_idx,
            5,
            "first sample initializes the EWMA"
        );
        // A single dip barely moves the average.
        a.on_outcome(&outcome_with_snr(5, Some(0.0)));
        let tracked = a.tracked_snr().unwrap();
        assert!((tracked - 18.0).abs() < 1e-9);
        assert_eq!(a.next_attempt(0.0).rate_idx, 5);
        // Repeated dips eventually drag it down.
        for _ in 0..30 {
            a.on_outcome(&outcome_with_snr(5, Some(0.0)));
        }
        assert!(a.next_attempt(0.0).rate_idx < 2);
    }

    #[test]
    fn silent_losses_step_down() {
        let mut a = SnrAdapter::rbar(table());
        a.on_outcome(&outcome_with_snr(0, Some(12.0)));
        assert_eq!(a.current, 3);
        let silent = outcome_with_snr(3, None);
        a.on_outcome(&silent);
        a.on_outcome(&silent);
        assert_eq!(a.current, 3);
        a.on_outcome(&silent);
        assert_eq!(a.current, 2, "three silent losses step down");
    }

    #[test]
    fn rbar_beats_charm_in_responsiveness() {
        // After an abrupt SNR drop, RBAR reacts on the next frame while
        // CHARM is still high — the effect the paper reports (§6.2).
        let mut rbar = SnrAdapter::rbar(table());
        let mut charm = SnrAdapter::charm(table());
        for _ in 0..20 {
            rbar.on_outcome(&outcome_with_snr(0, Some(20.0)));
            charm.on_outcome(&outcome_with_snr(0, Some(20.0)));
        }
        rbar.on_outcome(&outcome_with_snr(5, Some(4.0)));
        charm.on_outcome(&outcome_with_snr(5, Some(4.0)));
        assert_eq!(
            rbar.next_attempt(0.0).rate_idx,
            0,
            "4 dB only clears the 2 dB threshold"
        );
        assert!(
            charm.next_attempt(0.0).rate_idx >= 4,
            "CHARM must lag the drop"
        );
    }
}
