//! Reference adapters: fixed-rate and the omniscient oracle of §6.1.

use softrate_core::adapter::{
    DecisionCtx, DecisionTrigger, RateAdapter, RateDecision, RateIdx, TxAttempt, TxOutcome,
};

/// An adapter pinned to one rate (baseline / debugging aid).
pub struct FixedRate {
    rate_idx: RateIdx,
    num_rates: usize,
}

impl FixedRate {
    /// Creates a fixed-rate adapter.
    pub fn new(rate_idx: RateIdx, num_rates: usize) -> Self {
        assert!(rate_idx < num_rates);
        FixedRate {
            rate_idx,
            num_rates,
        }
    }
}

impl RateAdapter for FixedRate {
    fn name(&self) -> &'static str {
        "Fixed"
    }

    fn next_attempt_ctx(&mut self, _now: f64, _ctx: &mut DecisionCtx) -> TxAttempt {
        TxAttempt {
            rate_idx: self.rate_idx,
            use_rts: false,
        }
    }

    fn on_outcome_ctx(&mut self, _outcome: &TxOutcome, _ctx: &mut DecisionCtx) {}

    fn num_rates(&self) -> usize {
        self.num_rates
    }
}

/// The "omniscient" algorithm of §6.1: "always picks the highest rate
/// guaranteed to succeed, which a simulator with a priori knowledge of
/// channel characteristics computes from the traces". The oracle closure
/// is injected by the simulator, which can look the answer up in its trace.
pub struct Omniscient {
    oracle: Box<dyn FnMut(f64) -> RateIdx + Send>,
    num_rates: usize,
    /// Last rate returned, for ledger change detection only.
    last_rate: Option<RateIdx>,
}

impl Omniscient {
    /// Creates an omniscient adapter around a `time -> best rate` oracle.
    pub fn new(num_rates: usize, oracle: Box<dyn FnMut(f64) -> RateIdx + Send>) -> Self {
        Omniscient {
            oracle,
            num_rates,
            last_rate: None,
        }
    }
}

impl RateAdapter for Omniscient {
    fn name(&self) -> &'static str {
        "Omniscient"
    }

    fn next_attempt_ctx(&mut self, now: f64, ctx: &mut DecisionCtx) -> TxAttempt {
        let r = (self.oracle)(now).min(self.num_rates - 1);
        if let Some(prev) = self.last_rate {
            if prev != r {
                // Not feedback-driven: the oracle reads the channel
                // directly, so the change files under the probe class
                // (decided at transmit time) — see DESIGN.md §10.
                ctx.record(RateDecision {
                    old_rate: prev,
                    new_rate: r,
                    trigger: DecisionTrigger::Probe,
                    snr_db: None,
                    ber: None,
                    reason: "oracle-lookup",
                });
            }
        }
        self.last_rate = Some(r);
        TxAttempt {
            rate_idx: r,
            use_rts: false,
        }
    }

    fn on_outcome_ctx(&mut self, _outcome: &TxOutcome, _ctx: &mut DecisionCtx) {}

    fn num_rates(&self) -> usize {
        self.num_rates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_never_moves() {
        let mut f = FixedRate::new(3, 6);
        for k in 0..10 {
            assert_eq!(f.next_attempt(k as f64).rate_idx, 3);
        }
    }

    #[test]
    #[should_panic]
    fn fixed_rejects_out_of_range() {
        FixedRate::new(6, 6);
    }

    #[test]
    fn omniscient_follows_oracle() {
        let mut o = Omniscient::new(6, Box::new(|t| if t < 1.0 { 5 } else { 1 }));
        assert_eq!(o.next_attempt(0.5).rate_idx, 5);
        assert_eq!(o.next_attempt(1.5).rate_idx, 1);
    }

    #[test]
    fn omniscient_clamps_to_table() {
        let mut o = Omniscient::new(4, Box::new(|_| 99));
        assert_eq!(o.next_attempt(0.0).rate_idx, 3);
    }
}
