//! RRAA — Robust Rate Adaptation Algorithm (Wong et al., MobiCom 2006),
//! the more opportunistic frame-level baseline (paper §2.1).
//!
//! RRAA estimates the short-term loss ratio `P` over a small window of
//! recent frames at the current rate and compares it against two
//! pre-computed thresholds: above `P_MTL` (maximum tolerable loss) the rate
//! steps down, below `P_ORI` (opportunistic rate increase) it steps up.
//! An adaptive RTS filter (A-RTS) turns RTS/CTS on when losses look like
//! collisions.

use softrate_core::adapter::{
    DecisionCtx, DecisionTrigger, RateAdapter, RateDecision, RateIdx, TxAttempt, TxOutcome,
};
use std::collections::VecDeque;

/// Scaling factor between `P_MTL` of the next rate and `P_ORI` of the
/// current rate (RRAA uses P_ORI = P_MTL(next)/alpha with alpha ~ 2).
const ORI_ALPHA: f64 = 2.0;

/// The RRAA adapter.
pub struct Rraa {
    /// Estimation window length per rate, in frames.
    ewnd: Vec<usize>,
    /// Loss-ratio threshold to step down, per rate.
    p_mtl: Vec<f64>,
    /// Loss-ratio threshold to step up, per rate.
    p_ori: Vec<f64>,
    /// Outcomes (true = lost) of recent frames at the current rate.
    window: VecDeque<bool>,
    current: RateIdx,
    /// A-RTS state: how many of the next frames get RTS protection.
    rts_window: u32,
    rts_counter: u32,
    /// Whether the previous frame used RTS (for the A-RTS update rule).
    last_used_rts: bool,
}

impl Rraa {
    /// Builds RRAA from the loss-free air time of a frame at each rate
    /// (frame + overhead), which determines the critical loss ratios.
    ///
    /// `P_MTL(i)` is the loss ratio at which the delivered throughput of
    /// rate `i` equals the loss-free throughput of rate `i-1`:
    /// `(1 - P) / airtime_i = 1 / airtime_{i-1}`.
    pub fn new(lossless_airtime: Vec<f64>) -> Self {
        let n = lossless_airtime.len();
        assert!(n >= 2);
        let mut p_mtl = vec![1.0; n]; // bottom rate: never forced down
        for i in 1..n {
            let p = 1.0 - lossless_airtime[i] / lossless_airtime[i - 1];
            p_mtl[i] = p.clamp(0.01, 0.95);
        }
        let mut p_ori = vec![0.0; n];
        for i in 0..n - 1 {
            p_ori[i] = p_mtl[i + 1] / ORI_ALPHA;
        }
        // Estimation windows: larger at higher rates (frames are shorter,
        // so more of them fit in the same wall-clock span) — RRAA's ewnd
        // table ranges over roughly 6..40.
        let ewnd = (0..n).map(|i| (10 + 5 * i).min(40)).collect();
        Rraa {
            ewnd,
            p_mtl,
            p_ori,
            window: VecDeque::new(),
            current: 0,
            rts_window: 0,
            rts_counter: 0,
            last_used_rts: false,
        }
    }

    /// Current loss ratio over the estimation window.
    fn loss_ratio(&self) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        self.window.iter().filter(|&&l| l).count() as f64 / self.window.len() as f64
    }

    fn change_rate(&mut self, to: RateIdx) {
        if to != self.current {
            self.current = to;
            self.window.clear();
        }
    }

    /// The per-rate thresholds, exposed for the threshold-table harness.
    pub fn thresholds(&self) -> (&[f64], &[f64]) {
        (&self.p_ori, &self.p_mtl)
    }
}

impl RateAdapter for Rraa {
    fn name(&self) -> &'static str {
        "RRAA"
    }

    fn next_attempt_ctx(&mut self, _now: f64, _ctx: &mut DecisionCtx) -> TxAttempt {
        let use_rts = self.rts_counter > 0;
        if self.rts_counter > 0 {
            self.rts_counter -= 1;
        }
        self.last_used_rts = use_rts;
        TxAttempt {
            rate_idx: self.current,
            use_rts,
        }
    }

    fn on_outcome_ctx(&mut self, outcome: &TxOutcome, ctx: &mut DecisionCtx) {
        // --- A-RTS filter (RRAA §4.3): grow the RTS window when unprotected
        // frames are lost, shrink it when RTS-protected frames are lost or
        // unprotected frames succeed.
        let lost = !outcome.acked;
        if !self.last_used_rts && lost {
            self.rts_window += 1;
            self.rts_counter = self.rts_window;
        } else if (self.last_used_rts && lost) || (!self.last_used_rts && !lost) {
            self.rts_window /= 2;
            self.rts_counter = self.rts_counter.min(self.rts_window);
        }

        // --- Loss-ratio estimation at the current rate only.
        if outcome.rate_idx != self.current {
            return;
        }
        let ewnd = self.ewnd[self.current];
        self.window.push_back(lost);
        while self.window.len() > ewnd {
            self.window.pop_front();
        }

        let p = self.loss_ratio();
        // Immediate down-shift when the short-term loss ratio exceeds MTL
        // with at least half a window of evidence.
        if self.window.len() >= ewnd / 2 && p > self.p_mtl[self.current] && self.current > 0 {
            let to = self.current - 1;
            ctx.record(RateDecision {
                old_rate: self.current,
                new_rate: to,
                trigger: DecisionTrigger::Loss,
                snr_db: outcome.snr_feedback_db,
                ber: None,
                reason: "p-above-mtl",
            });
            self.change_rate(to);
            return;
        }
        // Opportunistic up-shift evaluated on full windows.
        if self.window.len() >= ewnd {
            if p < self.p_ori[self.current] && self.current + 1 < self.p_mtl.len() {
                let to = self.current + 1;
                ctx.record(RateDecision {
                    old_rate: self.current,
                    new_rate: to,
                    trigger: DecisionTrigger::Ack,
                    snr_db: outcome.snr_feedback_db,
                    ber: None,
                    reason: "p-below-ori",
                });
                self.change_rate(to);
            } else {
                // Window complete without a decision: slide anew.
                self.window.clear();
            }
        }
    }

    fn num_rates(&self) -> usize {
        self.p_mtl.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn airtimes() -> Vec<f64> {
        vec![2.0e-3, 1.4e-3, 1.05e-3, 0.75e-3, 0.6e-3, 0.45e-3]
    }

    fn outcome(rate_idx: usize, acked: bool, now: f64) -> TxOutcome {
        TxOutcome {
            rate_idx,
            acked,
            feedback_received: acked,
            ber_feedback: None,
            interference_flagged: false,
            postamble_ack: false,
            snr_feedback_db: None,
            airtime: 1e-3,
            now,
        }
    }

    #[test]
    fn thresholds_are_ordered() {
        let r = Rraa::new(airtimes());
        let (ori, mtl) = r.thresholds();
        for i in 0..6 {
            assert!(ori[i] < mtl[i], "rate {i}: ori {} mtl {}", ori[i], mtl[i]);
            assert!((0.0..=1.0).contains(&mtl[i]));
        }
    }

    #[test]
    fn climbs_on_clean_channel() {
        let mut r = Rraa::new(airtimes());
        let mut now = 0.0;
        for _ in 0..500 {
            let a = r.next_attempt(now);
            r.on_outcome(&outcome(a.rate_idx, true, now));
            now += 1e-3;
        }
        assert_eq!(r.current, 5, "lossless channel must reach the top rate");
    }

    #[test]
    fn steps_down_under_heavy_loss() {
        let mut r = Rraa::new(airtimes());
        r.current = 4;
        let mut now = 0.0;
        for _ in 0..40 {
            let a = r.next_attempt(now);
            r.on_outcome(&outcome(a.rate_idx, false, now));
            now += 1e-3;
        }
        assert!(r.current < 4, "persistent loss must lower the rate");
    }

    #[test]
    fn holds_on_moderate_loss() {
        // A loss ratio between ORI and MTL must keep the rate.
        let mut r = Rraa::new(airtimes());
        r.current = 3;
        let (ori, mtl) = (r.p_ori[3], r.p_mtl[3]);
        let target = (ori + mtl) / 2.0;
        let mut now = 0.0;
        let mut lost_budget = 0.0;
        for _ in 0..200 {
            let a = r.next_attempt(now);
            lost_budget += target;
            let lose = lost_budget >= 1.0;
            if lose {
                lost_budget -= 1.0;
            }
            r.on_outcome(&outcome(a.rate_idx, !lose, now));
            now += 1e-3;
        }
        assert_eq!(r.current, 3, "loss ratio {target:.2} should hold rate 3");
    }

    #[test]
    fn rts_window_grows_on_unprotected_loss() {
        let mut r = Rraa::new(airtimes());
        let a = r.next_attempt(0.0);
        assert!(!a.use_rts);
        r.on_outcome(&outcome(a.rate_idx, false, 0.0));
        assert_eq!(r.rts_window, 1);
        let a2 = r.next_attempt(1e-3);
        assert!(
            a2.use_rts,
            "after an unprotected loss the next frame gets RTS"
        );
    }

    #[test]
    fn rts_window_shrinks_on_protected_loss() {
        let mut r = Rraa::new(airtimes());
        r.rts_window = 4;
        r.rts_counter = 4;
        let a = r.next_attempt(0.0);
        assert!(a.use_rts);
        r.on_outcome(&outcome(a.rate_idx, false, 0.0)); // lost *with* RTS: not a collision
        assert_eq!(r.rts_window, 2);
    }

    #[test]
    fn rts_window_shrinks_on_unprotected_success() {
        let mut r = Rraa::new(airtimes());
        r.rts_window = 4;
        let a = r.next_attempt(0.0);
        assert!(!a.use_rts);
        r.on_outcome(&outcome(a.rate_idx, true, 0.0));
        assert_eq!(r.rts_window, 2);
    }

    #[test]
    fn window_clears_on_rate_change() {
        let mut r = Rraa::new(airtimes());
        r.current = 2;
        for k in 0..30 {
            let a = r.next_attempt(k as f64 * 1e-3);
            r.on_outcome(&outcome(a.rate_idx, false, k as f64 * 1e-3));
            if r.current != 2 {
                break;
            }
        }
        assert!(r.current < 2);
        assert!(r.window.is_empty(), "window must reset after a rate change");
    }
}
