//! SampleRate (Bicket 2005), the frame-level protocol shipped in the Linux
//! Atheros driver (paper §2.1).
//!
//! SampleRate picks the bit rate minimizing the windowed average
//! transmission time per *successfully delivered* packet (air time spent at
//! a rate divided by deliveries at that rate), and devotes every tenth
//! frame to sampling a randomly chosen other rate that could plausibly do
//! better. The paper uses a one-second averaging window instead of Bicket's
//! ten-second default because it performed better in their setting (§6.1);
//! we do the same and expose the window as a parameter.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use softrate_core::adapter::{
    DecisionCtx, DecisionTrigger, RateAdapter, RateDecision, RateIdx, TxAttempt, TxOutcome,
};
use std::collections::VecDeque;

/// How often a sampling frame is inserted (every Nth frame).
const SAMPLE_EVERY: u64 = 10;

/// Consecutive failures at a sampled rate before it is temporarily
/// blacklisted from sampling.
const SAMPLE_FAIL_LIMIT: u32 = 4;

/// One remembered transmission.
#[derive(Debug, Clone, Copy)]
struct Record {
    t: f64,
    rate_idx: RateIdx,
    airtime: f64,
    delivered: bool,
}

/// The SampleRate adapter.
pub struct SampleRate {
    /// Averaging window in seconds (1.0 per the paper's tuning; Bicket's
    /// default was 10.0).
    window: f64,
    /// Loss-free air time per frame at each rate (frame + ACK + contention
    /// overhead), used to judge whether a rate "could do better".
    lossless_airtime: Vec<f64>,
    history: VecDeque<Record>,
    consecutive_failures: Vec<u32>,
    frames_sent: u64,
    current: RateIdx,
    /// Whether the most recent outcome was a delivery — classifies a
    /// best-rate change in the ledger (ack vs loss); ledger-only state,
    /// never read by the rate logic.
    last_acked: Option<bool>,
    rng: SmallRng,
}

impl SampleRate {
    /// Creates a SampleRate instance.
    ///
    /// `lossless_airtime[i]` is the air time of one loss-free data frame at
    /// rate `i` including fixed MAC overhead; the simulator computes it
    /// from its own timing model so adapter and simulator agree.
    pub fn new(lossless_airtime: Vec<f64>, window_secs: f64, seed: u64) -> Self {
        assert!(!lossless_airtime.is_empty());
        assert!(window_secs > 0.0);
        let n = lossless_airtime.len();
        SampleRate {
            window: window_secs,
            lossless_airtime,
            history: VecDeque::new(),
            consecutive_failures: vec![0; n],
            frames_sent: 0,
            // Bicket starts at the highest rate and backs off as failures
            // accumulate.
            current: n - 1,
            last_acked: None,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    fn prune(&mut self, now: f64) {
        while let Some(front) = self.history.front() {
            if now - front.t > self.window {
                self.history.pop_front();
            } else {
                break;
            }
        }
    }

    /// Windowed average air time per delivered packet at `rate`, or `None`
    /// if the window holds no delivery at that rate.
    fn avg_tx_time(&self, rate: RateIdx) -> Option<f64> {
        let mut airtime = 0.0;
        let mut delivered = 0u32;
        for r in &self.history {
            if r.rate_idx == rate {
                airtime += r.airtime;
                if r.delivered {
                    delivered += 1;
                }
            }
        }
        (delivered > 0).then(|| airtime / delivered as f64)
    }

    /// The non-sampling choice: the rate with the lowest average tx time.
    /// When nothing in the window has been delivered at any rate, Bicket's
    /// fallback applies: the fastest rate that hasn't failed repeatedly,
    /// or the most robust rate once everything is blacklisted.
    fn best_rate(&self) -> RateIdx {
        let mut best = None;
        for i in 0..self.lossless_airtime.len() {
            if let Some(avg) = self.avg_tx_time(i) {
                match best {
                    None => best = Some((i, avg)),
                    Some((_, b)) if avg < b => best = Some((i, avg)),
                    _ => {}
                }
            }
        }
        if let Some((i, _)) = best {
            return i;
        }
        (0..self.lossless_airtime.len())
            .rev() // fastest first (airtime is decreasing in rate index)
            .find(|&i| self.consecutive_failures[i] < SAMPLE_FAIL_LIMIT)
            .unwrap_or(0)
    }

    /// A sampling candidate: a random rate other than the current one whose
    /// loss-free tx time beats the current average (i.e. could win) and
    /// that hasn't recently failed repeatedly.
    fn sample_rate_candidate(&mut self, current_best: RateIdx) -> Option<RateIdx> {
        let n = self.lossless_airtime.len();
        // A rate with no delivery in the window has infinite average tx
        // time, so every non-blacklisted alternative is worth sampling.
        let current_avg = self.avg_tx_time(current_best).unwrap_or(f64::INFINITY);
        let candidates: Vec<RateIdx> = (0..n)
            .filter(|&i| {
                i != current_best
                    && self.lossless_airtime[i] < current_avg
                    && self.consecutive_failures[i] < SAMPLE_FAIL_LIMIT
            })
            .collect();
        if candidates.is_empty() {
            None
        } else {
            Some(candidates[self.rng.gen_range(0..candidates.len())])
        }
    }
}

impl RateAdapter for SampleRate {
    fn name(&self) -> &'static str {
        "SampleRate"
    }

    fn next_attempt_ctx(&mut self, now: f64, ctx: &mut DecisionCtx) -> TxAttempt {
        self.prune(now);
        let best = self.best_rate();
        self.frames_sent += 1;
        let sampling = self.frames_sent.is_multiple_of(SAMPLE_EVERY);
        let rate_idx = if sampling {
            self.sample_rate_candidate(best).unwrap_or(best)
        } else {
            best
        };
        if rate_idx != self.current {
            let (trigger, reason) = if sampling && rate_idx != best {
                (DecisionTrigger::Probe, "sampling")
            } else {
                (
                    match self.last_acked {
                        Some(true) | None => DecisionTrigger::Ack,
                        Some(false) => DecisionTrigger::Loss,
                    },
                    "airtime-table-winner",
                )
            };
            ctx.record(RateDecision {
                old_rate: self.current,
                new_rate: rate_idx,
                trigger,
                snr_db: None,
                ber: None,
                reason,
            });
        }
        self.current = rate_idx;
        TxAttempt {
            rate_idx,
            use_rts: false,
        }
    }

    fn on_outcome_ctx(&mut self, outcome: &TxOutcome, _ctx: &mut DecisionCtx) {
        self.history.push_back(Record {
            t: outcome.now,
            rate_idx: outcome.rate_idx,
            airtime: outcome.airtime,
            delivered: outcome.acked,
        });
        if outcome.acked {
            self.consecutive_failures[outcome.rate_idx] = 0;
        } else {
            self.consecutive_failures[outcome.rate_idx] += 1;
        }
        self.last_acked = Some(outcome.acked);
        self.prune(outcome.now);
    }

    fn num_rates(&self) -> usize {
        self.lossless_airtime.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn airtimes() -> Vec<f64> {
        // 6 rates; faster rate = shorter loss-free airtime.
        vec![2.0e-3, 1.4e-3, 1.05e-3, 0.75e-3, 0.6e-3, 0.45e-3]
    }

    fn outcome(rate_idx: usize, acked: bool, now: f64, airtime: f64) -> TxOutcome {
        TxOutcome {
            rate_idx,
            acked,
            feedback_received: acked,
            ber_feedback: None,
            interference_flagged: false,
            postamble_ack: false,
            snr_feedback_db: None,
            airtime,
            now,
        }
    }

    #[test]
    fn starts_at_highest_rate() {
        let mut sr = SampleRate::new(airtimes(), 1.0, 1);
        assert_eq!(sr.next_attempt(0.0).rate_idx, 5);
    }

    #[test]
    fn settles_on_delivering_rate() {
        let mut sr = SampleRate::new(airtimes(), 1.0, 2);
        let mut now = 0.0;
        // Rate 5 always fails; rate 3 always succeeds; others fail.
        for _ in 0..200 {
            let a = sr.next_attempt(now);
            let ok = a.rate_idx == 3;
            let at = airtimes()[a.rate_idx] * if ok { 1.0 } else { 4.0 };
            sr.on_outcome(&outcome(a.rate_idx, ok, now, at));
            now += 1e-3;
        }
        // After exploration, the steady choice must be rate 3.
        let picks: Vec<usize> = (0..20)
            .map(|k| {
                let a = sr.next_attempt(now + k as f64 * 1e-3);
                sr.on_outcome(&outcome(
                    a.rate_idx,
                    a.rate_idx == 3,
                    now + k as f64 * 1e-3,
                    1e-3,
                ));
                a.rate_idx
            })
            .collect();
        let three = picks.iter().filter(|&&p| p == 3).count();
        assert!(three >= 15, "picks {picks:?}");
    }

    #[test]
    fn samples_other_rates_occasionally() {
        let mut sr = SampleRate::new(airtimes(), 1.0, 3);
        let mut now = 0.0;
        let mut seen = std::collections::HashSet::new();
        // Rate 2 delivers; anything faster fails. Sampling should still
        // probe faster rates now and then.
        for _ in 0..300 {
            let a = sr.next_attempt(now);
            seen.insert(a.rate_idx);
            let ok = a.rate_idx <= 2;
            sr.on_outcome(&outcome(a.rate_idx, ok, now, airtimes()[a.rate_idx]));
            now += 1e-3;
        }
        assert!(seen.len() >= 2, "never sampled alternatives: {seen:?}");
    }

    #[test]
    fn blacklists_repeatedly_failing_sample() {
        let mut sr = SampleRate::new(airtimes(), 1.0, 4);
        // Fail rate 5 four times.
        for k in 0..4 {
            sr.on_outcome(&outcome(5, false, k as f64 * 1e-3, 2e-3));
        }
        assert_eq!(sr.consecutive_failures[5], 4);
        // It must no longer be offered as a sampling candidate.
        assert!(sr.sample_rate_candidate(3) != Some(5));
        // A success clears the blacklist.
        sr.on_outcome(&outcome(5, true, 0.01, 0.45e-3));
        assert_eq!(sr.consecutive_failures[5], 0);
    }

    #[test]
    fn old_history_expires() {
        let mut sr = SampleRate::new(airtimes(), 1.0, 5);
        sr.on_outcome(&outcome(1, true, 0.0, 1.4e-3));
        assert!(sr.avg_tx_time(1).is_some());
        sr.prune(2.0); // 2 s later, outside the 1 s window
        assert!(sr.avg_tx_time(1).is_none());
    }

    #[test]
    fn avg_tx_time_counts_losses_airtime() {
        let mut sr = SampleRate::new(airtimes(), 10.0, 6);
        // Two attempts: one loss (1 ms), one delivery (1 ms): average per
        // *delivered* packet = 2 ms.
        sr.on_outcome(&outcome(2, false, 0.0, 1e-3));
        sr.on_outcome(&outcome(2, true, 0.001, 1e-3));
        let avg = sr.avg_tx_time(2).unwrap();
        assert!((avg - 2e-3).abs() < 1e-12);
    }
}
