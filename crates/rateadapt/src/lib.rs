//! # softrate-adapt — baseline bit-rate adaptation algorithms
//!
//! Every protocol SoftRate is evaluated against in the paper's §6, behind
//! the shared [`softrate_core::adapter::RateAdapter`] trait:
//!
//! * [`samplerate::SampleRate`] — windowed mean transmission time +
//!   periodic sampling (Bicket 2005; the Linux Atheros default).
//! * [`rraa::Rraa`] — short-term loss-ratio windows with P_ORI/P_MTL
//!   thresholds and the adaptive RTS filter (Wong et al. 2006).
//! * [`snr::SnrAdapter`] — trained-table SNR protocols: RBAR-like
//!   instantaneous feedback and CHARM-like EWMA.
//! * [`misc::FixedRate`], [`misc::Omniscient`] — the reference points.
//!
//! SoftRate itself lives in `softrate-core` (it *is* the paper's system);
//! this crate holds the competition.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod misc;
pub mod rraa;
pub mod samplerate;
pub mod snr;

/// Convenient glob-import of all adapters.
pub mod prelude {
    pub use crate::misc::{FixedRate, Omniscient};
    pub use crate::rraa::Rraa;
    pub use crate::samplerate::SampleRate;
    pub use crate::snr::{SnrAdapter, SnrMode, SnrTable};
    pub use softrate_core::adapter::{RateAdapter, TxAttempt, TxOutcome};
}
