//! Figure 1: SNR fluctuations and BER over a fading channel with
//! walking-speed mobility — 10-second window plus a 350 ms detail, and the
//! BPSK 1/2 BER track.

use softrate_bench::{banner, smoke_mode, write_json};
use softrate_trace::generate::walking_trace;
use softrate_trace::recipes::WalkingRecipe;

fn main() {
    let smoke = smoke_mode();
    banner("Figure 1: experimental SNR fluctuations over a walking fading channel");
    let recipe = if smoke {
        WalkingRecipe {
            duration: 2.0,
            ..Default::default()
        }
    } else {
        WalkingRecipe::default()
    };
    let trace = walking_trace(0, &recipe);
    let bpsk = &trace.series[0];

    println!("\n-- upper panel: SNR vs time (50 ms decimation) --");
    println!("{:>8} {:>10} {:>12}", "t (s)", "SNR (dB)", "BER(BPSK1/2)");
    let stride = (0.05 / trace.interval) as usize;
    let mut rows = Vec::new();
    for e in bpsk.iter().step_by(stride.max(1)) {
        let snr = e.snr_est_db.unwrap_or(f64::NAN);
        let ber = e.true_ber.unwrap_or(f64::NAN);
        println!("{:>8.2} {:>10.2} {:>12.2e}", e.t, snr, ber);
        rows.push((e.t, snr, ber));
    }

    println!("\n-- middle panel: 350 ms detail at mid-trace (every probe) --");
    let mid = trace.duration * 0.5;
    println!("{:>8} {:>10} {:>12}", "t (s)", "SNR (dB)", "BER(BPSK1/2)");
    let mut detail = Vec::new();
    for e in bpsk.iter().filter(|e| e.t >= mid && e.t < mid + 0.35) {
        let snr = e.snr_est_db.unwrap_or(f64::NAN);
        let ber = e.true_ber.unwrap_or(f64::NAN);
        println!("{:>8.3} {:>10.2} {:>12.2e}", e.t, snr, ber);
        detail.push((e.t, snr, ber));
    }

    // Quantify the two fading scales of the figure's caption.
    let snrs: Vec<f64> = bpsk.iter().filter_map(|e| e.snr_est_db).collect();
    let (first, last) = (
        snrs[..snrs.len() / 10].to_vec(),
        snrs[snrs.len() * 9 / 10..].to_vec(),
    );
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nlarge-scale fade over the trace: {:.1} dB -> {:.1} dB",
        mean(&first),
        mean(&last)
    );
    let mut fades = 0;
    let mut in_fade = false;
    let trace_mean = mean(&snrs);
    for &s in &snrs {
        if s < trace_mean - 8.0 && !in_fade {
            fades += 1;
            in_fade = true;
        } else if s > trace_mean - 4.0 {
            in_fade = false;
        }
    }
    println!(
        "deep (>8 dB) fades observed: {fades} over {:.0} s (tens-of-ms durations)",
        trace.duration
    );
    write_json("fig01_fading_trace.json", &rows);
}
