//! Figure 5: measured BER at QPSK 3/4 vs the BER at other rates on the
//! walking trace — validating the two prediction observations of §3.3
//! (monotonicity in rate, >= one decade per step). Also reports the §6.1
//! cross-rate monotonicity statistic (96 % in the paper).

use softrate_bench::{banner, cached_walking_traces, smoke_mode, write_json};

fn main() {
    let smoke = smoke_mode();
    banner("Figure 5: BER at QPSK 3/4 vs BER at other bit rates (walking trace)");
    let traces = cached_walking_traces(if smoke { 2 } else { 10 }, smoke);

    // Collect (ber@rate3, ber@other) pairs per time step.
    let mut pairs: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 6];
    let mut cycles = 0usize;
    let mut monotone = 0usize;
    for tr in &traces {
        for step in 0..tr.n_steps() {
            let bers: Vec<Option<f64>> = (0..6).map(|r| tr.series[r][step].softphy_ber).collect();
            if let Some(base) = bers[3] {
                for (r, b) in bers.iter().enumerate() {
                    if let Some(b) = b {
                        pairs[r].push((base, *b));
                    }
                }
            }
            // Monotonicity check over the defined entries.
            let defined: Vec<f64> = bers.iter().flatten().copied().collect();
            if defined.len() >= 4 {
                cycles += 1;
                if defined.windows(2).all(|w| w[1] >= w[0] * 0.5) {
                    monotone += 1;
                }
            }
        }
    }

    println!("\nBinned median BER at each rate given the BER at QPSK 3/4 (rate idx 3):");
    println!(
        "{:>14} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "BER@QPSK3/4", "BPSK 1/2", "QPSK 1/2", "QPSK 3/4", "QAM16 1/2", "QAM16 3/4"
    );
    let mut json_rows = Vec::new();
    for decade in -8..0 {
        let lo = 10f64.powi(decade);
        let hi = 10f64.powi(decade + 1);
        let median_for = |r: usize| -> Option<f64> {
            let mut v: Vec<f64> = pairs[r]
                .iter()
                .filter(|(b3, _)| *b3 >= lo && *b3 < hi)
                .map(|(_, b)| *b)
                .collect();
            if v.len() < 3 {
                return None;
            }
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            Some(v[v.len() / 2])
        };
        let cols: Vec<Option<f64>> = [0usize, 2, 3, 4, 5]
            .iter()
            .map(|&r| median_for(r))
            .collect();
        if cols.iter().all(|c| c.is_none()) {
            continue;
        }
        let fmt = |c: &Option<f64>| c.map_or("-".to_string(), |v| format!("{v:.1e}"));
        println!(
            "{:>6.0e}..{:<6.0e} {:>12} {:>12} {:>12} {:>12} {:>12}",
            lo,
            hi,
            fmt(&cols[0]),
            fmt(&cols[1]),
            fmt(&cols[2]),
            fmt(&cols[3]),
            fmt(&cols[4])
        );
        json_rows.push((lo, cols));
    }
    println!(
        "\ncross-rate BER monotonic in {:.1}% of probe cycles (paper: 96%)",
        100.0 * monotone as f64 / cycles.max(1) as f64
    );
    write_json("fig05_ber_across_rates.json", &json_rows);
}
