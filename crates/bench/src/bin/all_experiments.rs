//! Runs every table/figure harness in sequence (same process), printing
//! each one's output. Pass `--smoke` for the scaled-down pass used by CI.

use std::process::Command;

fn main() {
    let smoke = softrate_bench::smoke_mode();
    let bins = [
        "table2_table3_rates_modes",
        "thresholds_table",
        "fig01_fading_trace",
        "fig03_hint_patterns",
        "table1_fig4_silent_losses",
        "fig05_ber_across_rates",
        "fig07_ber_estimation_static",
        "fig08_09_ber_estimation_mobile",
        "fig10_11_interference_detection",
        "fig13_tcp_slow_fading",
        "fig14_rate_selection_accuracy",
        "fig15_convergence",
        "fig16_fast_fading",
        "fig17_18_interference",
        "ablations",
    ];
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.to_path_buf()))
        .expect("cannot locate sibling binaries");
    let mut failed = Vec::new();
    for bin in bins {
        println!("\n################ {bin} ################\n");
        let mut cmd = Command::new(exe_dir.join(bin));
        if smoke {
            cmd.arg("--smoke");
        }
        match cmd.status() {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                failed.push(bin);
            }
            Err(e) => {
                eprintln!("{bin} failed to start: {e}");
                failed.push(bin);
            }
        }
    }
    if failed.is_empty() {
        println!("\nall experiments completed");
    } else {
        println!("\nFAILED: {failed:?}");
        std::process::exit(1);
    }
}
