//! Figure 13: aggregate TCP throughput vs number of clients over slow
//! fading (walking) channels, for every algorithm of §6.1.

use std::sync::Arc;

use softrate_bench::{banner, cached_walking_traces, smoke_mode, write_json};
use softrate_sim::config::{AdapterKind, SimConfig};
use softrate_sim::netsim::NetSim;
use softrate_trace::snr_training::{observations_from_trace, train_snr_table};

fn main() {
    let smoke = smoke_mode();
    banner("Figure 13: aggregate TCP throughput, slow-fading mobility (walking traces)");
    let max_clients = if smoke { 2 } else { 5 };
    let traces = cached_walking_traces(2 * max_clients, smoke);
    let duration = if smoke { 2.0 } else { 10.0 };

    // Train the SNR table on the evaluation traces themselves (§6.1).
    let mut obs = Vec::new();
    for t in &traces {
        obs.extend(observations_from_trace(t));
    }
    let table = train_snr_table(&obs);
    println!("trained SNR thresholds (dB): {:?}", table.min_snr_db);

    let adapters = [
        AdapterKind::Omniscient,
        AdapterKind::SoftRate,
        AdapterKind::Snr(table.clone()),
        AdapterKind::Charm(table),
        AdapterKind::Rraa,
        AdapterKind::SampleRate,
    ];

    println!(
        "\n{:>20} {}",
        "algorithm",
        (1..=max_clients)
            .map(|n| format!("{:>9}", format!("N={n}")))
            .collect::<String>()
    );
    let mut json = Vec::new();
    for kind in adapters {
        let mut row = format!("{:>20}", kind.name());
        let mut series = Vec::new();
        for n in 1..=max_clients {
            let mut cfg = SimConfig::new(kind.clone(), n);
            cfg.duration = duration;
            let report = NetSim::new(cfg, traces.iter().map(Arc::clone).collect()).run();
            let mbps = report.aggregate_goodput_bps / 1e6;
            row.push_str(&format!("{mbps:>9.2}"));
            series.push(mbps);
        }
        println!("{row}  Mbps");
        json.push((kind.name().to_string(), series));
    }
    println!("\nexpected shape: SoftRate ~ omniscient, ~20% over trained SNR,");
    println!("~2x over RRAA, up to ~4x over SampleRate (paper §6.2)");
    write_json("fig13_tcp_slow_fading.json", &json);
}
