//! Figure 7: BER estimation quality in a static channel.
//! (a) per-frame SoftPHY estimate vs ground truth,
//! (b) aggregated estimate reaching down to ~1e-7,
//! (c) SNR as a (poor) BER predictor for two rates.

use softrate_bench::{banner, mean_std, smoke_mode, write_json};
use softrate_trace::generate::static_ber_samples;
use softrate_trace::recipes::StaticRecipe;

fn log_bin(v: f64, per_decade: f64) -> i64 {
    (v.max(1e-12).log10() * per_decade).floor() as i64
}

fn main() {
    let smoke = smoke_mode();
    banner("Figure 7: SoftPHY-based and SNR-based BER estimation (static channel)");
    let recipe = if smoke {
        StaticRecipe::smoke()
    } else {
        StaticRecipe::default()
    };
    println!(
        "recipe: {} pairs x {} powers x 6 rates x {} frames of {} B",
        recipe.n_pairs,
        recipe.tx_powers_db.len(),
        recipe.frames_per_point,
        recipe.payload_len
    );
    let samples = static_ber_samples(&recipe);
    println!("collected {} probes", samples.len());

    // ---- (a) per-frame estimate vs truth, binned by the estimate --------
    println!("\n(a) per-frame: ground-truth BER vs SoftPHY estimate (quarter-decade bins)");
    println!(
        "{:>14} {:>14} {:>14} {:>8}",
        "estimate bin", "mean true BER", "std", "frames"
    );
    let mut bins: std::collections::BTreeMap<i64, Vec<f64>> = Default::default();
    for s in &samples {
        if let (Some(est), Some(truth)) = (s.softphy_ber, s.true_ber) {
            if truth > 0.0 {
                bins.entry(log_bin(est, 4.0)).or_default().push(truth);
            }
        }
    }
    let mut panel_a = Vec::new();
    for (bin, truths) in &bins {
        if truths.len() < 5 {
            continue;
        }
        let center = 10f64.powf((*bin as f64 + 0.5) / 4.0);
        let (m, s) = mean_std(truths);
        println!(
            "{:>14.2e} {:>14.2e} {:>14.2e} {:>8}",
            center,
            m,
            s,
            truths.len()
        );
        panel_a.push((center, m, s, truths.len()));
    }

    // ---- (b) aggregated: weight every frame's bits together --------------
    println!("\n(b) aggregated: bit-weighted true BER per estimate bin (reaches ~1e-7)");
    println!(
        "{:>14} {:>14} {:>10}",
        "estimate bin", "agg true BER", "Mbits"
    );
    let mut agg: std::collections::BTreeMap<i64, (f64, f64)> = Default::default();
    for s in &samples {
        if let (Some(est), Some(truth)) = (s.softphy_ber, s.true_ber) {
            let e = agg.entry(log_bin(est, 2.0)).or_insert((0.0, 0.0));
            e.0 += truth * s.probe_bits as f64; // expected error bits
            e.1 += s.probe_bits as f64;
        }
    }
    let mut panel_b = Vec::new();
    for (bin, (errs, bits)) in &agg {
        if *bits < 1e5 {
            continue;
        }
        let center = 10f64.powf((*bin as f64 + 0.5) / 2.0);
        let measured = errs / bits;
        println!("{:>14.2e} {:>14.2e} {:>10.2}", center, measured, bits / 1e6);
        panel_b.push((center, measured, *bits));
    }

    // ---- (c) SNR-based prediction for QPSK 3/4 and QAM16 1/2 -------------
    println!("\n(c) SNR vs ground-truth BER (1 dB bins) — note the spread");
    for (rate_idx, label) in [(3usize, "QPSK 3/4"), (4usize, "QAM16 1/2")] {
        println!("  rate {label}:");
        println!(
            "  {:>8} {:>14} {:>14} {:>8}",
            "SNR dB", "mean true BER", "std", "frames"
        );
        let mut bins: std::collections::BTreeMap<i64, Vec<f64>> = Default::default();
        for s in samples.iter().filter(|s| s.rate_idx == rate_idx) {
            if let (Some(snr), Some(truth)) = (s.snr_est_db, s.true_ber) {
                if truth > 0.0 {
                    bins.entry(snr.floor() as i64).or_default().push(truth);
                }
            }
        }
        let mut variance_acc = Vec::new();
        for (snr, truths) in &bins {
            if truths.len() < 5 {
                continue;
            }
            let (m, sd) = mean_std(truths);
            println!(
                "  {:>8} {:>14.2e} {:>14.2e} {:>8}",
                snr,
                m,
                sd,
                truths.len()
            );
            variance_acc.push(sd * sd);
        }
        let mean_var = variance_acc.iter().sum::<f64>() / variance_acc.len().max(1) as f64;
        println!("  mean error variance: {mean_var:.2e} (paper: 2.8e-3 / 1.7e-3)");
    }
    write_json("fig07_ber_estimation_static.json", &(panel_a, panel_b));
}
