//! Ablation studies beyond the paper's figures (DESIGN.md §7):
//! 1. SoftRate without interference detection under hidden terminals.
//! 2. One-level vs two-level rate jumps (convergence after fades).
//! 3. Threshold tables under frame-ARQ vs chunked-HARQ (see
//!    `thresholds_table`).
//! 4. BCJR vs SOVA vs hard-Viterbi hint quality.

use std::sync::Arc;

use softrate_bench::{banner, cached_static_short_traces, mean_std, smoke_mode, write_json};
use softrate_core::adapter::RateAdapter;
use softrate_core::hints::FrameHints;
use softrate_core::softrate::{SoftRate, SoftRateConfig};
use softrate_phy::bits::{bytes_to_bits, deterministic_payload};
use softrate_phy::convolutional::{coded_len, depuncture, encode, puncture, TAIL_BITS};
use softrate_phy::rates::PAPER_RATES;
use softrate_sim::config::{AdapterKind, SimConfig};
use softrate_sim::netsim::NetSim;

fn main() {
    let smoke = smoke_mode();
    banner("Ablations");

    // ---- 1. interference detection on/off under hidden terminals --------
    println!("\n[1] SoftRate with vs without interference detection (Pr[CS]=0.2, 3 clients)");
    let traces = cached_static_short_traces(6, smoke);
    let mut json1 = Vec::new();
    for kind in [AdapterKind::SoftRate, AdapterKind::SoftRateNoDetect] {
        let mut cfg = SimConfig::new(kind.clone(), 3);
        cfg.duration = if smoke { 2.0 } else { 10.0 };
        cfg.carrier_sense_prob = 0.2;
        let r = NetSim::new(cfg, traces.iter().map(Arc::clone).collect()).run();
        println!(
            "  {:>22}: {:.2} Mbps (underselect fraction {:.3})",
            kind.name(),
            r.aggregate_goodput_bps / 1e6,
            r.audit.fractions().2
        );
        json1.push((kind.name().to_string(), r.aggregate_goodput_bps / 1e6));
    }

    // ---- 2. jump width -----------------------------------------------------
    println!("\n[2] One-level vs two-level jumps: decisions to recover from a deep fade");
    let mut json2 = Vec::new();
    for max_jump in [1usize, 2, 3] {
        let cfg = SoftRateConfig {
            max_jump,
            initial_rate: 5,
            ..Default::default()
        };
        let mut sr = SoftRate::new(cfg);
        // Feed a catastrophic BER, then clean feedback, count decisions to
        // travel 5 -> 1 -> 5.
        let mut steps_down = 0;
        while sr.current_rate_idx() > 1 && steps_down < 10 {
            let mut o = softrate_core::adapter::TxOutcome {
                rate_idx: sr.current_rate_idx(),
                acked: false,
                feedback_received: true,
                ber_feedback: Some(0.2),
                interference_flagged: false,
                postamble_ack: false,
                snr_feedback_db: None,
                airtime: 1e-3,
                now: 0.0,
            };
            sr.on_outcome(&o);
            steps_down += 1;
            let _ = &mut o;
        }
        let mut steps_up = 0;
        while sr.current_rate_idx() < 5 && steps_up < 10 {
            let o = softrate_core::adapter::TxOutcome {
                rate_idx: sr.current_rate_idx(),
                acked: true,
                feedback_received: true,
                ber_feedback: Some(1e-9),
                interference_flagged: false,
                postamble_ack: false,
                snr_feedback_db: None,
                airtime: 1e-3,
                now: 0.0,
            };
            sr.on_outcome(&o);
            steps_up += 1;
        }
        println!("  max_jump={max_jump}: {steps_down} frames to descend, {steps_up} to climb back");
        json2.push((max_jump, steps_down, steps_up));
    }

    // ---- 4. hint source quality: BCJR vs SOVA ------------------------------
    println!("\n[4] Hint calibration: BCJR posteriors vs SOVA reliabilities");
    let payload = deterministic_payload(3, if smoke { 60 } else { 200 });
    let info = bytes_to_bits(&payload);
    let rate = PAPER_RATES[2];
    let coded = puncture(&encode(&info), rate.code_rate);
    let n_info = info.len();
    let mother = 2 * (n_info + TAIL_BITS);
    let _ = coded_len(n_info, rate.code_rate);
    let mut bcjr_err = Vec::new();
    let mut sova_err = Vec::new();
    let decoder = softrate_phy::bcjr::BcjrDecoder::new();
    let mut noise = softrate_channel::noise::NoiseSource::new(9);
    for trial in 0..(if smoke { 6 } else { 20 }) {
        // BPSK-like soft channel at ~ 2 dB: measurable BER.
        let sigma = 0.85;
        let llrs_tx: Vec<f64> = coded
            .iter()
            .map(|&b| {
                let x = if b == 1 { 1.0 } else { -1.0 };
                let y = x + sigma * noise.sample_real();
                2.0 * y / (sigma * sigma)
            })
            .collect();
        let llrs = depuncture(&llrs_tx, rate.code_rate, mother);
        let soft = decoder.decode(&llrs);
        let true_ber = softrate_phy::bits::bit_error_rate(&info, &soft.bits);
        let est = FrameHints::from_llrs(&soft.llrs, 64).frame_ber();
        bcjr_err.push((est.max(1e-9).log10() - true_ber.max(1e-9).log10()).abs());

        let (vbits, rel) = softrate_phy::viterbi::sova_decode(&llrs);
        let vber = softrate_phy::bits::bit_error_rate(&info, &vbits);
        let vest = FrameHints::from_llrs(
            &rel.iter()
                .zip(&vbits)
                .map(|(r, &b)| if b == 1 { *r } else { -*r })
                .collect::<Vec<_>>(),
            64,
        )
        .frame_ber();
        sova_err.push((vest.max(1e-9).log10() - vber.max(1e-9).log10()).abs());
        let _ = trial;
    }
    let (bm, bs) = mean_std(&bcjr_err);
    let (sm, ss) = mean_std(&sova_err);
    println!("  |log10 est - log10 truth|: BCJR {bm:.2} +- {bs:.2}, SOVA {sm:.2} +- {ss:.2}");
    println!("  (lower is better; exact posteriors should calibrate best)");
    write_json("ablations.json", &(json1, json2, bm, sm));
}
