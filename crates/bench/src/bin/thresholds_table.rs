//! The SoftRate optimal-threshold tables (alpha_i, beta_i) of §3.3 for the
//! two error-recovery models — the modularity demonstration: changing the
//! recovery scheme only recomputes this table.

use softrate_bench::banner;
use softrate_core::recovery::{ChunkedHarq, ErrorRecovery, FrameArq};
use softrate_core::thresholds::RateThresholds;
use softrate_phy::rates::PAPER_RATES;

fn print_table(recovery: &dyn ErrorRecovery, frame_bits: usize) {
    println!(
        "\nrecovery model: {} (frames of {} bits)",
        recovery.name(),
        frame_bits
    );
    let t = RateThresholds::compute(PAPER_RATES, frame_bits, recovery);
    println!("{:>12} {:>12} {:>12}", "rate", "alpha_i", "beta_i");
    for (i, rate) in PAPER_RATES.iter().enumerate() {
        println!(
            "{:>12} {:>12.2e} {:>12.2e}",
            rate.label(),
            t.alpha[i],
            t.beta[i]
        );
    }
}

fn main() {
    banner("SoftRate optimal thresholds (paper §3.3)");
    println!("Paper example: 18 Mbps with frame ARQ and 10^4-bit frames should have");
    println!("an optimal window of roughly (1e-7..1e-6, ~1e-5); with a smarter ARQ");
    println!("the window moves up orders of magnitude (~1e-5, ~1e-3).");
    print_table(&FrameArq, 10_000);
    print_table(&ChunkedHarq::default(), 10_000);
    print_table(&FrameArq, 1440 * 8);
}
