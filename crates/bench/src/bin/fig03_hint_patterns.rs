//! Figure 3: per-bit SoftPHY hint patterns for a frame lost to a collision
//! (sharp rectangular dip over the overlapped symbols) versus one lost to
//! channel fading (diffuse low-confidence bits).

use softrate_bench::{banner, write_json};
use softrate_channel::interference::{interferer_frame, Interferer};
use softrate_channel::link::{Link, LinkConfig};
use softrate_channel::model::{ChannelInstance, FadingSpec};
use softrate_channel::pathloss::Attenuation;
use softrate_core::collision::CollisionDetector;
use softrate_core::hints::FrameHints;
use softrate_phy::ofdm::SIMULATION;
use softrate_phy::rates::PAPER_RATES;

fn hint_summary(label: &str, llrs: &[f64], bits_per_symbol: usize) -> Vec<(usize, f64)> {
    let hints = FrameHints::from_llrs(llrs, bits_per_symbol);
    println!("\n-- {label} --");
    println!(
        "bits: {}   frame BER estimate: {:.3e}",
        llrs.len(),
        hints.frame_ber()
    );
    println!("{:>10} {:>12}", "bit", "hint |LLR|");
    let stride = (llrs.len() / 40).max(1);
    let mut rows = Vec::new();
    for (k, l) in llrs.iter().enumerate().step_by(stride) {
        println!("{k:>10} {:>12.2}", l.abs());
        rows.push((k, l.abs()));
    }
    let sym = hints.symbol_bers();
    println!("per-symbol BER profile (Eq. 4): ");
    for (j, p) in sym.iter().enumerate() {
        println!("  symbol {j:>3}: {p:.3e}");
    }
    let verdict = CollisionDetector::default().detect(&hints);
    println!(
        "collision detector: detected={} interference-free BER={:.3e} full BER={:.3e}",
        verdict.collision_detected, verdict.interference_free_ber, verdict.full_ber
    );
    rows
}

fn main() {
    banner("Figure 3: SoftPHY hint patterns — collision vs fading loss");
    let rate = PAPER_RATES[3]; // QPSK 3/4
    let payload = 500;

    // --- Collision case: clean strong link, interferer over the middle.
    let mut cfg = LinkConfig::new(SIMULATION);
    cfg.noise_power_db = -22.0;
    cfg.seed = 11;
    let mut link = Link::new(cfg);
    let (tx0, _) = link.probe(rate, payload, 0.0, &[], false);
    let n = tx0.n_symbols();
    let intf = Interferer {
        symbols: interferer_frame(&SIMULATION, PAPER_RATES[2], 200, 5),
        start_symbol: (n / 2) as isize,
        power_db: 2.0,
        channel: ChannelInstance::new(FadingSpec::None, Attenuation::NONE, SIMULATION.n_used(), 3),
    };
    let (_, obs) = link.probe(rate, payload, 1.0, std::slice::from_ref(&intf), false);
    let rx = obs.rx.expect("preamble was clean");
    let collision_rows = hint_summary(
        "frame lost to a COLLISION (upper panel)",
        &rx.llrs,
        rx.info_bits_per_symbol,
    );

    // --- Fading case: marginal SNR, walking-to-vehicular Doppler. Prefer a
    //     frame the detector does NOT flag (fading is gradual); fall back
    //     to any errored frame.
    let mut cfg = LinkConfig::new(SIMULATION);
    cfg.noise_power_db = -10.5;
    cfg.fading = FadingSpec::Flat { doppler_hz: 150.0 };
    cfg.seed = 23;
    let mut link = Link::new(cfg);
    let detector = CollisionDetector::default();
    let mut best: Option<(Vec<f64>, usize)> = None;
    for k in 0..400 {
        let (_, obs) = link.probe(rate, payload, k as f64 * 0.003, &[], false);
        if let Some(rx) = &obs.rx {
            if !rx.crc_ok && rx.header.is_some() && obs.true_ber.unwrap_or(0.0) > 1e-3 {
                let hints = FrameHints::from_llrs(&rx.llrs, rx.info_bits_per_symbol);
                let flagged = detector.detect(&hints).collision_detected;
                if !flagged {
                    best = Some((rx.llrs.clone(), rx.info_bits_per_symbol));
                    break;
                }
                if best.is_none() {
                    best = Some((rx.llrs.clone(), rx.info_bits_per_symbol));
                }
            }
        }
    }
    let (llrs, bps) = best.expect("no faded frame found — retune the fading case");
    let fade_rows = hint_summary("frame lost to channel FADING (lower panel)", &llrs, bps);
    write_json("fig03_hint_patterns.json", &(collision_rows, fade_rows));
}
