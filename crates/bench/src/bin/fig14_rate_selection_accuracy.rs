//! Figure 14: rate-selection accuracy with one TCP flow over the walking
//! trace — fraction of frames over-/accurately/under-selected relative to
//! the omniscient choice.

use std::sync::Arc;

use softrate_bench::{banner, cached_walking_traces, smoke_mode, write_json};
use softrate_sim::config::{AdapterKind, SimConfig};
use softrate_sim::netsim::NetSim;
use softrate_trace::snr_training::{observations_from_trace, train_snr_table};

fn main() {
    let smoke = smoke_mode();
    banner("Figure 14: rate selection accuracy (1 TCP flow, slow fading)");
    let traces = cached_walking_traces(2, smoke);
    let mut obs = Vec::new();
    for t in &traces {
        obs.extend(observations_from_trace(t));
    }
    let table = train_snr_table(&obs);

    let adapters = [
        AdapterKind::SoftRate,
        AdapterKind::Snr(table.clone()),
        AdapterKind::Charm(table),
        AdapterKind::Rraa,
        AdapterKind::SampleRate,
    ];
    println!(
        "\n{:>20} {:>12} {:>12} {:>12} {:>9}",
        "algorithm", "overselect", "accurate", "underselect", "frames"
    );
    let mut json = Vec::new();
    for kind in adapters {
        let mut cfg = SimConfig::new(kind.clone(), 1);
        cfg.duration = if smoke { 2.0 } else { 10.0 };
        let report = NetSim::new(cfg, traces.iter().map(Arc::clone).collect()).run();
        let (over, acc, under) = report.audit.fractions();
        println!(
            "{:>20} {:>12.3} {:>12.3} {:>12.3} {:>9}",
            kind.name(),
            over,
            acc,
            under,
            report.audit.total()
        );
        json.push((kind.name().to_string(), over, acc, under));
    }
    println!("\npaper: SoftRate picks the correct rate over 80% of the time;");
    println!("frame-level algorithms frequently over- and under-select");
    write_json("fig14_rate_selection_accuracy.json", &json);
}
