//! Figures 8 and 9: BER estimation over *mobile* channels. The SoftPHY
//! estimate stays calibrated across Doppler spreads (Fig 8), while the
//! SNR-BER relationship shifts with mobility speed (Fig 9) — the reason
//! SNR protocols need retraining and SoftRate does not.

use softrate_bench::{banner, mean_std, smoke_mode, write_json};
use softrate_trace::generate::mobile_ber_samples;
use softrate_trace::schema::BerSample;

fn collect(doppler: f64, smoke: bool) -> Vec<BerSample> {
    let powers: Vec<f64> = if smoke {
        (0..6).map(|k| -18.0 + 3.0 * k as f64).collect()
    } else {
        (0..20).map(|k| -20.0 + 1.25 * k as f64).collect()
    };
    let frames = if smoke { 20 } else { 100 };
    mobile_ber_samples(
        doppler,
        &powers,
        frames,
        if smoke { 240 } else { 960 },
        -26.0,
    )
}

fn main() {
    let smoke = smoke_mode();
    banner("Figures 8/9: BER estimation in mobile channels (walking vs vehicular)");
    let walking = collect(40.0, smoke); // ~10 ms coherence
    let vehicular = collect(400.0, smoke); // ~1 ms coherence
    println!(
        "collected {} walking + {} vehicular probes",
        walking.len(),
        vehicular.len()
    );

    println!("\nFigure 8: ground-truth BER vs SoftPHY estimate (half-decade bins)");
    println!(
        "{:>16} {:>16} {:>16}",
        "estimate bin", "truth @40 Hz", "truth @400 Hz"
    );
    let bin_of = |v: f64| (v.max(1e-12).log10() * 2.0).floor() as i64;
    let binned = |samples: &[BerSample]| {
        let mut m: std::collections::BTreeMap<i64, Vec<f64>> = Default::default();
        for s in samples {
            if let (Some(est), Some(truth)) = (s.softphy_ber, s.true_ber) {
                if truth > 0.0 {
                    m.entry(bin_of(est)).or_default().push(truth);
                }
            }
        }
        m
    };
    let (wb, vb) = (binned(&walking), binned(&vehicular));
    let mut fig8 = Vec::new();
    for bin in wb
        .keys()
        .chain(vb.keys())
        .copied()
        .collect::<std::collections::BTreeSet<_>>()
    {
        let center = 10f64.powf((bin as f64 + 0.5) / 2.0);
        let w = wb.get(&bin).filter(|v| v.len() >= 5).map(|v| mean_std(v).0);
        let v = vb.get(&bin).filter(|v| v.len() >= 5).map(|v| mean_std(v).0);
        if w.is_none() && v.is_none() {
            continue;
        }
        let fmt = |x: Option<f64>| x.map_or("-".into(), |x| format!("{x:.2e}"));
        println!("{:>16.2e} {:>16} {:>16}", center, fmt(w), fmt(v));
        fig8.push((center, w, v));
    }
    println!("-> the two columns should agree: SoftPHY is insensitive to mobility speed");

    println!("\nFigure 9: SNR vs ground-truth BER at QAM16 1/2 (1 dB bins)");
    println!("{:>8} {:>16} {:>16}", "SNR dB", "BER @40 Hz", "BER @400 Hz");
    let snr_binned = |samples: &[BerSample]| {
        let mut m: std::collections::BTreeMap<i64, Vec<f64>> = Default::default();
        for s in samples.iter().filter(|s| s.rate_idx == 4) {
            if let (Some(snr), Some(truth)) = (s.snr_est_db, s.true_ber) {
                if truth > 0.0 {
                    m.entry(snr.floor() as i64).or_default().push(truth);
                }
            }
        }
        m
    };
    let (ws, vs) = (snr_binned(&walking), snr_binned(&vehicular));
    let mut fig9 = Vec::new();
    let mut shifted_bins = 0usize;
    let mut compared = 0usize;
    for bin in ws
        .keys()
        .chain(vs.keys())
        .copied()
        .collect::<std::collections::BTreeSet<_>>()
    {
        let w = ws.get(&bin).filter(|v| v.len() >= 5).map(|v| mean_std(v).0);
        let v = vs.get(&bin).filter(|v| v.len() >= 5).map(|v| mean_std(v).0);
        if w.is_none() && v.is_none() {
            continue;
        }
        if let (Some(w), Some(v)) = (w, v) {
            compared += 1;
            if v > 2.0 * w {
                shifted_bins += 1;
            }
        }
        let fmt = |x: Option<f64>| x.map_or("-".into(), |x| format!("{x:.2e}"));
        println!("{:>8} {:>16} {:>16}", bin, fmt(w), fmt(v));
        fig9.push((bin, w, v));
    }
    println!(
        "-> vehicular BER exceeds 2x the walking BER at the same SNR in {shifted_bins}/{compared} bins:"
    );
    println!("   the SNR-BER curve shifts with coherence time (why SNR tables need retraining)");
    write_json("fig08_09_ber_estimation_mobile.json", &(fig8, fig9));
}
