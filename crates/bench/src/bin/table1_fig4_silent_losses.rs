//! Table 1 and Figure 4: how often collisions destroy *both* the preamble
//! and the postamble of a frame (silent losses), and the run length of
//! consecutive silent losses — the justification for SoftRate's
//! three-silent-losses rule (§3.2).
//!
//! Two saturated senders that cannot carrier-sense each other transmit
//! back-to-back frames at random rates (matching the paper's ns-3 setup in
//! which "only collisions result in frame losses").

use softrate_bench::{banner, smoke_mode, write_json};
use softrate_phy::rates::PAPER_RATES;
use softrate_sim::timing::{data_airtime, DIFS, SLOT};
use softrate_trace::schema::hash_uniform;

/// One sender's frame schedule: saturated, random rates, DCF-style
/// backoff. Crucially, a lost frame doubles the contention window —
/// the mechanism the paper leans on: "channel access protocols typically
/// implement a backoff mechanism on a frame loss, which changes the
/// relative alignment between the frames on the retry" (§3.2).
#[derive(Clone, Copy)]
struct Tx {
    start: f64,
    end: f64,
}

/// Builds both senders' schedules jointly so backoff can react to losses.
fn schedules(p1: usize, p2: usize, duration: f64) -> (Vec<Tx>, Vec<Tx>) {
    let payloads = [p1, p2];
    let mut t = [0.0f64, hash_uniform(&[7, 0]) * 2e-3];
    let mut cw = [15u64, 15u64];
    let mut k = [0u64, 0u64];
    let mut out: [Vec<Tx>; 2] = [Vec::new(), Vec::new()];
    while t[0] < duration || t[1] < duration {
        // Advance whichever sender transmits next.
        let who = if t[0] <= t[1] { 0 } else { 1 };
        let other = 1 - who;
        let seed = [0xA1u64, 0xB2][who];
        let rate = PAPER_RATES[(hash_uniform(&[seed, k[who], 1]) * 6.0) as usize % 6];
        let air = data_airtime(rate, payloads[who], true); // postamble on
        let (start, end) = (t[who], t[who] + air);
        out[who].push(Tx { start, end });
        // Did it overlap the other's most recent frames?
        let lost = out[other]
            .iter()
            .rev()
            .take(8)
            .any(|o| start < o.end && o.start < end);
        cw[who] = if lost {
            (cw[who] * 2 + 1).min(1023)
        } else {
            15
        };
        let backoff =
            DIFS + (hash_uniform(&[seed, k[who], 2]) * (cw[who] + 1) as f64).floor() * SLOT;
        t[who] = end + backoff;
        k[who] += 1;
    }
    (out[0].clone(), out[1].clone())
}

/// Preamble/postamble occupancy windows (2 symbols / 1 symbol of 8 us).
const T_PRE: f64 = 16e-6;
const T_POST: f64 = 8e-6;

fn overlaps(a0: f64, a1: f64, b0: f64, b1: f64) -> bool {
    a0 < b1 && b0 < a1
}

fn run_pair(p1: usize, p2: usize, duration: f64) -> (f64, f64, Vec<usize>, Vec<usize>) {
    let (s1, s2) = schedules(p1, p2, duration);
    let mut fractions = [0.0f64; 2];
    let mut runs: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
    for (me, other, slot) in [(&s1, &s2, 0usize), (&s2, &s1, 1)] {
        let mut both_lost = 0usize;
        let mut run = 0usize;
        for f in me {
            let pre_hit = other
                .iter()
                .any(|o| overlaps(f.start, f.start + T_PRE, o.start, o.end));
            let post_hit = other
                .iter()
                .any(|o| overlaps(f.end - T_POST, f.end, o.start, o.end));
            if pre_hit && post_hit {
                both_lost += 1;
                run += 1;
            } else if run > 0 {
                runs[slot].push(run);
                run = 0;
            }
        }
        if run > 0 {
            runs[slot].push(run);
        }
        fractions[slot] = both_lost as f64 / me.len().max(1) as f64;
    }
    (fractions[0], fractions[1], runs[0].clone(), runs[1].clone())
}

fn ccdf(runs: &[usize]) -> Vec<(usize, f64)> {
    let n = runs.len().max(1) as f64;
    (1..=9)
        .map(|k| (k, runs.iter().filter(|&&r| r >= k).count() as f64 / n))
        .collect()
}

fn main() {
    let smoke = smoke_mode();
    banner("Table 1 / Figure 4: silent losses under pure collisions (postambles on)");
    let duration = if smoke { 10.0 } else { 120.0 };

    println!("\nTable 1: fraction of frames with BOTH preamble and postamble lost");
    println!(
        "{:>22} {:>22} {:>8} {:>8}",
        "frame size of s1", "frame size of s2", "f1", "f2"
    );
    let mut json = Vec::new();
    for (p1, p2, label) in [(1400, 1400, "equal"), (100, 1400, "unequal")] {
        let (f1, f2, r1, r2) = run_pair(p1, p2, duration);
        println!(
            "{:>20} B {:>20} B {:>7.1}% {:>7.1}%",
            p1,
            p2,
            100.0 * f1,
            100.0 * f2
        );

        println!("  Figure 4 CCDF of consecutive both-lost run lengths ({label} sizes):");
        println!("  {:>6} {:>14} {:>14}", "len>=", "P(s1)", "P(s2)");
        let (c1, c2) = (ccdf(&r1), ccdf(&r2));
        for k in 0..c1.len() {
            println!("  {:>6} {:>14.4} {:>14.4}", c1[k].0, c1[k].1, c2[k].1);
        }
        let p3 = c1.get(2).map(|x| x.1).unwrap_or(0.0);
        println!(
            "  -> P(run >= 3) for s1: {:.4} (paper: long runs are 'very uncommon')",
            p3
        );
        json.push((p1, p2, f1, f2, c1, c2));
    }
    write_json("table1_fig4_silent_losses.json", &json);
}
