//! Figures 17 and 18: interference-dominated channels. Five uploading
//! clients with imperfect carrier sense; aggregate TCP throughput vs the
//! carrier-sense probability, and rate-selection accuracy at Pr[CS]=0.8.
//!
//! A thin wrapper over the scenario engine: one PHY-backed scenario with a
//! `topology.carrier_sense_prob` sweep axis and five adapters; the binary
//! only renders the two figures from the engine's result rows.

use softrate_bench::{banner, smoke_mode, write_json};
use softrate_scenario::engine::run_spec;
use softrate_scenario::prelude::*;
use softrate_scenario::spec::{Sweep, SweepAxis};

fn main() {
    let smoke = smoke_mode();
    banner("Figures 17/18: TCP throughput vs carrier-sense probability (static links)");
    let n_clients = if smoke { 3 } else { 5 };
    let duration = if smoke { 2.0 } else { 10.0 };
    let probs: Vec<f64> = if smoke {
        vec![0.0, 0.5, 1.0]
    } else {
        vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
    };
    let audited_cs = if smoke { 0.5 } else { 0.8 };

    let adapters = [
        AdapterSpec::SoftRateIdeal,
        AdapterSpec::SoftRate,
        AdapterSpec::Rraa,
        AdapterSpec::SampleRate,
        AdapterSpec::SoftRateNoDetect,
    ];
    let spec = ScenarioSpec {
        name: "fig17-18-interference".into(),
        description: Some("figs. 17/18: carrier-sense sweep over the full PHY".into()),
        duration,
        seed: 0xF17,
        topology: TopologySpec {
            n_clients: Some(n_clients),
            carrier_sense_prob: Some(probs[0]),
            queue_cap: None,
            spatial: None,
        },
        channel: ChannelSpec {
            model: ChannelModel::Phy,
            snr_db: 17.0,
            fading: softrate_channel::model::FadingSpec::None,
            attenuation: None,
            interference: None,
            probe_interval: None,
        },
        traffic: TrafficSpec {
            kind: TrafficModel::Tcp,
            direction: None,
        },
        faults: None,
        adapters: Some(adapters.to_vec()),
        sweep: Some(Sweep(vec![SweepAxis {
            param: "topology.carrier_sense_prob".into(),
            values: probs.iter().map(|&p| serde::Value::Float(p)).collect(),
        }])),
    };

    eprintln!("(PHY trace generation is cached under results/traces; first run is slow)");
    let results = run_spec(&spec, None).expect("fig17/18 scenario runs");

    // Matrix order: carrier-sense axis outermost, adapters innermost.
    println!(
        "\nFigure 17: aggregate TCP throughput (Mbps), {n_clients} uploading clients\n{:>22} {}",
        "algorithm",
        probs
            .iter()
            .map(|p| format!("{:>9}", format!("cs={p:.1}")))
            .collect::<String>()
    );
    let mut fig17 = Vec::new();
    let mut fig18 = Vec::new();
    for (a, adapter) in adapters.iter().enumerate() {
        let mut row = format!("{:>22}", adapter.label());
        let mut series = Vec::new();
        for (p, prob) in probs.iter().enumerate() {
            let r = &results[p * adapters.len() + a];
            row.push_str(&format!("{:>9.2}", r.goodput_bps / 1e6));
            series.push(r.goodput_bps / 1e6);
            if (prob - audited_cs).abs() < 1e-9 {
                fig18.push((adapter.label(), r.overselect, r.accurate, r.underselect));
            }
        }
        println!("{row}");
        fig17.push((adapter.label(), series));
    }

    println!("\nFigure 18: rate selection accuracy at Pr[carrier sense] = {audited_cs}");
    println!(
        "{:>22} {:>12} {:>12} {:>12}",
        "algorithm", "overselect", "accurate", "underselect"
    );
    for (name, over, acc, under) in &fig18 {
        println!("{name:>22} {over:>12.3} {acc:>12.3} {under:>12.3}");
    }
    println!("\npaper: RRAA reduces rate on collisions and underselects badly;");
    println!("SoftRate's interference detection avoids that penalty, and the ideal");
    println!("version (postambles + perfect detection) tracks the omniscient curve");
    write_json("fig17_18_interference.json", &(fig17, fig18));
}
