//! Figures 17 and 18: interference-dominated channels. Five uploading
//! clients with imperfect carrier sense; aggregate TCP throughput vs the
//! carrier-sense probability, and rate-selection accuracy at Pr[CS]=0.8.

use std::sync::Arc;

use softrate_bench::{banner, cached_static_short_traces, smoke_mode, write_json};
use softrate_sim::config::{AdapterKind, SimConfig};
use softrate_sim::netsim::NetSim;

fn main() {
    let smoke = smoke_mode();
    banner("Figures 17/18: TCP throughput vs carrier-sense probability (static links)");
    let n_clients = if smoke { 3 } else { 5 };
    let traces = cached_static_short_traces(2 * n_clients, smoke);
    let duration = if smoke { 2.0 } else { 10.0 };
    let probs: Vec<f64> =
        if smoke { vec![0.0, 0.5, 1.0] } else { vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0] };

    let adapters = [
        AdapterKind::SoftRateIdeal,
        AdapterKind::SoftRate,
        AdapterKind::Rraa,
        AdapterKind::SampleRate,
        AdapterKind::SoftRateNoDetect,
    ];

    println!(
        "\nFigure 17: aggregate TCP throughput (Mbps), {n_clients} uploading clients\n{:>22} {}",
        "algorithm",
        probs.iter().map(|p| format!("{:>9}", format!("cs={p:.1}"))).collect::<String>()
    );
    let mut fig17 = Vec::new();
    let mut audits_at_08 = Vec::new();
    for kind in adapters {
        let mut row = format!("{:>22}", kind.name());
        let mut series = Vec::new();
        for &p in &probs {
            let mut cfg = SimConfig::new(kind.clone(), n_clients);
            cfg.duration = duration;
            cfg.carrier_sense_prob = p;
            let r = NetSim::new(cfg, traces.iter().map(Arc::clone).collect()).run();
            row.push_str(&format!("{:>9.2}", r.aggregate_goodput_bps / 1e6));
            series.push(r.aggregate_goodput_bps / 1e6);
            if (p - 0.8).abs() < 1e-9 || (smoke && (p - 0.5).abs() < 1e-9) {
                audits_at_08.push((kind.name().to_string(), r.audit));
            }
        }
        println!("{row}");
        fig17.push((kind.name().to_string(), series));
    }

    println!("\nFigure 18: rate selection accuracy at Pr[carrier sense] = 0.8");
    println!(
        "{:>22} {:>12} {:>12} {:>12}",
        "algorithm", "overselect", "accurate", "underselect"
    );
    let mut fig18 = Vec::new();
    for (name, audit) in audits_at_08 {
        let (over, acc, under) = audit.fractions();
        println!("{name:>22} {over:>12.3} {acc:>12.3} {under:>12.3}");
        fig18.push((name, over, acc, under));
    }
    println!("\npaper: RRAA reduces rate on collisions and underselects badly;");
    println!("SoftRate's interference detection avoids that penalty, and the ideal");
    println!("version (postambles + perfect detection) tracks the omniscient curve");
    write_json("fig17_18_interference.json", &(fig17, fig18));
}
