//! Figure 16: normalized TCP throughput in simulated fast-fading channels
//! as coherence time shrinks from 1 ms to 100 us. The SNR protocol uses a
//! table trained on *walking* data (untrained for this environment) and
//! collapses; SoftRate needs no retraining.

use std::sync::Arc;

use softrate_bench::{banner, cached_walking_traces, results_dir, smoke_mode, write_json};
use softrate_sim::config::{AdapterKind, SimConfig};
use softrate_sim::netsim::NetSim;
use softrate_trace::cache::load_or_generate;
use softrate_trace::generate::doppler_trace;
use softrate_trace::recipes::DopplerRecipe;
use softrate_trace::snr_training::{observations_from_trace, train_snr_table};

fn main() {
    let smoke = smoke_mode();
    banner("Figure 16: TCP throughput in fast fading, normalized to omniscient");
    let dopplers: Vec<f64> =
        if smoke { vec![400.0, 4000.0] } else { vec![400.0, 800.0, 2000.0, 4000.0] };
    let duration = if smoke { 2.0 } else { 10.0 };

    // Untrained table: trained on walking-speed traces (§6.3: "SNR-BER
    // relationships used by the SNR-based protocol are obtained over the
    // walking traces used in §6.2").
    let walking = cached_walking_traces(2, smoke);
    let mut obs = Vec::new();
    for t in &walking {
        obs.extend(observations_from_trace(t));
    }
    let untrained = train_snr_table(&obs);
    println!("SNR table trained on walking traces: {:?}", untrained.min_snr_db);

    println!(
        "\n{:>20} {}",
        "algorithm",
        dopplers
            .iter()
            .map(|d| format!("{:>12}", format!("Tc={:.0}us", 0.4 / d * 1e6)))
            .collect::<String>()
    );

    let tag = if smoke { "smoke" } else { "full" };
    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    let mut omni_abs = Vec::new();
    // First compute the omniscient reference per Doppler.
    let mut traces_by_doppler = Vec::new();
    for &d in &dopplers {
        let recipe = DopplerRecipe { doppler_hz: d, duration, ..Default::default() };
        let up = Arc::new(load_or_generate(
            results_dir().join(format!("traces/doppler-{tag}-{d}-up.json")),
            || doppler_trace(0, &recipe),
        ));
        let down = Arc::new(load_or_generate(
            results_dir().join(format!("traces/doppler-{tag}-{d}-down.json")),
            || doppler_trace(1, &recipe),
        ));
        let mut cfg = SimConfig::new(AdapterKind::Omniscient, 1);
        cfg.duration = duration;
        let r = NetSim::new(cfg, vec![Arc::clone(&up), Arc::clone(&down)]).run();
        omni_abs.push(r.aggregate_goodput_bps);
        traces_by_doppler.push((up, down));
    }
    println!(
        "{:>20} {}",
        "Omniscient (Mbps)",
        omni_abs.iter().map(|g| format!("{:>12.2}", g / 1e6)).collect::<String>()
    );

    for kind in [
        AdapterKind::SoftRate,
        AdapterKind::Snr(untrained.clone()),
        AdapterKind::Rraa,
        AdapterKind::SampleRate,
    ] {
        let label = if matches!(kind, AdapterKind::Snr(_)) {
            "SNR (untrained)".to_string()
        } else {
            kind.name().to_string()
        };
        let mut row = format!("{label:>20}");
        let mut series = Vec::new();
        for (i, _) in dopplers.iter().enumerate() {
            let (up, down) = &traces_by_doppler[i];
            let mut cfg = SimConfig::new(kind.clone(), 1);
            cfg.duration = duration;
            let r = NetSim::new(cfg, vec![Arc::clone(up), Arc::clone(down)]).run();
            let norm = r.aggregate_goodput_bps / omni_abs[i].max(1.0);
            row.push_str(&format!("{norm:>12.2}"));
            series.push(norm);
        }
        println!("{row}  (normalized)");
        rows.push((label, series));
    }
    println!("\npaper: SoftRate stays flat; the untrained SNR protocol degrades to ~1/4");
    println!("of SoftRate at 100 us coherence (it picks rates above optimal)");
    write_json("fig16_fast_fading.json", &rows);
}
