//! Figure 16: normalized TCP throughput in simulated fast-fading channels
//! as coherence time shrinks from 1 ms to 100 us. The SNR protocol uses a
//! table trained on *walking* data (untrained for this environment) and
//! collapses; SoftRate needs no retraining.
//!
//! A thin wrapper over the scenario engine: the experiment is one
//! PHY-backed scenario with a Doppler sweep axis and five adapters; this
//! binary only injects the stale (walking-trained) SNR table and renders
//! the normalized table.

use softrate_bench::{banner, cached_walking_traces, smoke_mode, write_json};
use softrate_scenario::engine::run_spec;
use softrate_scenario::prelude::*;
use softrate_scenario::spec::{Sweep, SweepAxis};
use softrate_trace::snr_training::{observations_from_trace, train_snr_table};

fn main() {
    let smoke = smoke_mode();
    banner("Figure 16: TCP throughput in fast fading, normalized to omniscient");
    let dopplers: Vec<f64> = if smoke {
        vec![400.0, 4000.0]
    } else {
        vec![400.0, 800.0, 2000.0, 4000.0]
    };
    let duration = if smoke { 2.0 } else { 10.0 };

    // Untrained table: trained on walking-speed traces (§6.3: "SNR-BER
    // relationships used by the SNR-based protocol are obtained over the
    // walking traces used in §6.2").
    let walking = cached_walking_traces(2, smoke);
    let mut obs = Vec::new();
    for t in &walking {
        obs.extend(observations_from_trace(t));
    }
    let untrained = train_snr_table(&obs);
    println!(
        "SNR table trained on walking traces: {:?}",
        untrained.min_snr_db
    );

    // Omniscient first: the normalization reference for every column.
    let adapters = vec![
        AdapterSpec::Omniscient,
        AdapterSpec::SoftRate,
        AdapterSpec::Snr {
            table: Some(untrained.min_snr_db.clone()),
        },
        AdapterSpec::Rraa,
        AdapterSpec::SampleRate,
    ];

    let spec = ScenarioSpec {
        name: "fig16-fast-fading".into(),
        description: Some("fig. 16: Doppler sweep over the full PHY".into()),
        duration,
        seed: 0xF16,
        topology: TopologySpec {
            n_clients: Some(1),
            carrier_sense_prob: None,
            queue_cap: None,
            spatial: None,
        },
        channel: ChannelSpec {
            model: ChannelModel::Phy,
            snr_db: 16.0,
            fading: softrate_channel::model::FadingSpec::Flat {
                doppler_hz: dopplers[0],
            },
            attenuation: None,
            interference: None,
            probe_interval: None,
        },
        traffic: TrafficSpec {
            kind: TrafficModel::Tcp,
            direction: None,
        },
        faults: None,
        adapters: Some(adapters.clone()),
        sweep: Some(Sweep(vec![SweepAxis {
            param: "channel.fading.Flat.doppler_hz".into(),
            values: dopplers.iter().map(|&d| serde::Value::Float(d)).collect(),
        }])),
    };

    eprintln!("(PHY trace generation is cached under results/traces; first run is slow)");
    let results = run_spec(&spec, None).expect("fig16 scenario runs");

    // Group by Doppler (sweep order is deterministic: dopplers outermost,
    // adapters innermost) and normalize each column by the omniscient run.
    let n_adapters = adapters.len();
    let mut omni_abs = Vec::new();
    for (d, _) in dopplers.iter().enumerate() {
        omni_abs.push(results[d * n_adapters].goodput_bps);
    }
    println!(
        "\n{:>20} {}",
        "algorithm",
        dopplers
            .iter()
            .map(|d| format!("{:>12}", format!("Tc={:.0}us", 0.4 / d * 1e6)))
            .collect::<String>()
    );
    println!(
        "{:>20} {}",
        "Omniscient (Mbps)",
        omni_abs
            .iter()
            .map(|g| format!("{:>12.2}", g / 1e6))
            .collect::<String>()
    );

    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    for (a, adapter) in adapters.iter().enumerate().skip(1) {
        let label = match adapter {
            AdapterSpec::Snr { .. } => "SNR (untrained)".to_string(),
            other => other.label(),
        };
        let mut row = format!("{label:>20}");
        let mut series = Vec::new();
        for (d, _) in dopplers.iter().enumerate() {
            let r = &results[d * n_adapters + a];
            let norm = r.goodput_bps / omni_abs[d].max(1.0);
            row.push_str(&format!("{norm:>12.2}"));
            series.push(norm);
        }
        println!("{row}  (normalized)");
        rows.push((label, series));
    }
    println!("\npaper: SoftRate stays flat; the untrained SNR protocol degrades to ~1/4");
    println!("of SoftRate at 100 us coherence (it picks rates above optimal)");
    write_json("fig16_fast_fading.json", &rows);
}
