//! Tables 2 and 3: the bit-rate table and the OFDM operating modes, as
//! implemented — printed for comparison against the paper.

use softrate_bench::banner;
use softrate_phy::ofdm::ALL_MODES;
use softrate_phy::rates::{ALL_RATES, PAPER_RATES};

fn main() {
    banner("Table 2: modulation/code-rate combinations and raw 20 MHz throughput");
    println!(
        "{:>12} {:>10} {:>12} {:>13}",
        "Modulation", "Code Rate", "802.11 Mbps", "Implemented?"
    );
    for rate in ALL_RATES {
        let implemented_by_paper = PAPER_RATES.contains(&rate);
        println!(
            "{:>12} {:>10} {:>12.0} {:>13}",
            rate.modulation.name(),
            rate.code_rate.label(),
            rate.mbps(),
            if implemented_by_paper {
                "yes (paper: yes)"
            } else {
                "yes (paper: no)"
            }
        );
    }
    println!("\n(The paper's Table 2 lists QAM64 1/2 and 2/3 for 48/54 Mbps; the");
    println!(" self-consistent standard puncturings are 2/3 and 3/4 — see rates.rs.)");

    banner("Table 3: OFDM modes of operation");
    println!(
        "{:>12} {:>12} {:>8} {:>8} {:>12} {:>8}",
        "Mode", "Bandwidth", "Tones", "Data", "Pilots", "T"
    );
    for m in ALL_MODES {
        println!(
            "{:>12} {:>9.1} MHz {:>8} {:>8} {:>12} {:>7.2?}",
            m.name,
            m.bandwidth_hz / 1e6,
            m.n_tones,
            m.n_data,
            m.n_pilot,
            std::time::Duration::from_secs_f64(m.symbol_time()),
        );
    }
}
