//! `netscale` — events/sec and wall time of the multi-cell spatial
//! simulator versus station count.
//!
//! The scaling story of `softrate-net`: streaming channels keep memory
//! O(stations), so the only question is event-loop throughput. This bench
//! runs a roaming random-waypoint deployment at a ladder of station
//! counts — 3x3-AP floors up to 1600 stations, then constant-density
//! city-scale floors at 10k/50k/100k — and reports simulated seconds,
//! wall seconds, events/sec, and sim-time speedup, then drops
//! machine-readable results in `BENCH_netscale.json` at the repository
//! root — the seed of the repo's perf trajectory (compare across PRs).
//! Every rung (station count, AP grid, simulated seconds, kickoff
//! stagger) is defined once in [`LADDER`]; the traffic modes and the
//! smoke ladder select rungs from it rather than redefining them.
//!
//! Measurement hygiene: one unrecorded warmup run precedes the ladder
//! and every point reports the best of two timed runs (the simulation is
//! deterministic — only the wall clock varies), so a scheduler hiccup
//! does not land in the committed trajectory.
//!
//! `--smoke` (or `SOFTRATE_SMOKE=1`) shrinks the ladder and the duration.
//! `--profile` additionally prints a per-phase wall-time breakdown
//! (sense / begin / collision / fate / roam / transport / outcome /
//! sync / queue+dispatch) per ladder point, so future perf PRs know where
//! the time goes. Profiled rows keep identical simulation results but
//! carry timer overhead, so the JSON is only refreshed on unprofiled
//! runs. `--gate` is the CI perf check: one quick 400-station measurement
//! that must stay within 30% of the committed trajectory — plus, when the
//! committed file carries them, a 400-station TCP point and a sharded
//! 1600-station point (skipped with a notice when the host has fewer
//! cores than the committed row's shard count).
//!
//! `--shards N` runs the ladder under the conservative parallel scheduler
//! (`SpatialConfig::shards = N`). Results are byte-identical to the
//! sequential rows — the shard-invariance suite pins that — so the rung
//! table is shared and only the wall numbers differ; a full unprofiled
//! sharded UDP run rewrites the `sharded_rows` trajectory (tagged with
//! the shard count and the host cores the measurement had).
//!
//! `--traffic tcp|onoff|udp` swaps the workload: `tcp` runs the ladder
//! under per-station TCP NewReno uploads (AP transmitters carry the ACK
//! downlink through the shared transport layer), `onoff` under bursty
//! half-duty Poisson sources. The default saturated-UDP ladder rewrites
//! the `rows` trajectory in `BENCH_netscale.json`; the TCP ladder (a
//! shorter one — the gate only needs its 400-station point) rewrites
//! `tcp_rows`; `onoff` ladders are printed only.
//!
//! `--metrics <path>` attaches the telemetry recorder to every ladder run
//! and writes the per-station metrics JSONL to `path`; `--decisions
//! <path>` additionally streams the rate-decision ledger. The recorder
//! never touches the event queue or any RNG, so `events` at every ladder
//! point is unchanged — but the wall numbers carry recorder overhead, so
//! recorder runs never rewrite `BENCH_netscale.json`.

use serde::{Deserialize, Serialize};
use softrate_bench::{banner, smoke_mode};
use softrate_net::mobility::MobilitySpec;
use softrate_net::sim::{SpatialConfig, SpatialSim, SpatialTraffic};
use softrate_net::spatial::{HandoffPolicy, RoamingSpec, SpatialSpec};
use softrate_sim::config::{AdapterKind, TrafficKind};
use softrate_sim::mac::PhaseProfile;
use softrate_sim::transport::TransportConfig;

/// One ladder rung: the deployment and measurement window, defined once
/// for every traffic mode and shard count.
#[derive(Debug, Clone, Copy)]
struct Rung {
    stations: usize,
    /// AP grid (`cols x rows` at 25 m pitch) — scaled with the station
    /// count so per-AP density stays at the dense-enterprise ~160-180
    /// stations/AP, keeping per-event cost comparable across the ladder.
    ap_cols: usize,
    ap_rows: usize,
    /// Simulated seconds: long enough at the small rungs for a stable
    /// rate, shortened at city scale so the full ladder stays affordable.
    sim_seconds: f64,
    /// Saturated-uplink kickoff stagger — the default 200 µs up to 1600
    /// stations (the committed-trajectory shape), compressed at city
    /// scale so the whole floor still kicks off in the first fraction of
    /// the (shorter) run.
    stagger_s: f64,
}

const fn rung(stations: usize, ap_cols: usize, ap_rows: usize, sim_seconds: f64) -> Rung {
    Rung {
        stations,
        ap_cols,
        ap_rows,
        sim_seconds,
        stagger_s: 2e-4,
    }
}

const fn city(stations: usize, ap_cols: usize, ap_rows: usize, sim_seconds: f64) -> Rung {
    Rung {
        stations,
        ap_cols,
        ap_rows,
        sim_seconds,
        // Kick the whole floor off within the first fifth of the run.
        stagger_s: sim_seconds / (5.0 * stations as f64),
    }
}

/// The one ladder table. Traffic modes take prefixes/slices of it; the
/// 10k/50k/100k city rungs are UDP-only (the TCP gate needs only its
/// 400-station point).
const LADDER: &[Rung] = &[
    rung(50, 3, 3, 10.0),
    rung(100, 3, 3, 10.0),
    rung(200, 3, 3, 10.0),
    rung(400, 3, 3, 10.0),
    rung(800, 3, 3, 10.0),
    rung(1600, 3, 3, 10.0),
    city(10_000, 8, 8, 2.0),
    city(50_000, 18, 18, 1.0),
    city(100_000, 25, 25, 0.5),
];

/// The smoke ladder (tiny rungs, not part of [`LADDER`]'s trajectory).
const SMOKE_LADDER: &[Rung] = &[rung(20, 3, 3, 2.0), rung(60, 3, 3, 2.0)];

/// One ladder point.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct NetScaleRow {
    stations: usize,
    aps: usize,
    sim_seconds: f64,
    wall_seconds: f64,
    events: u64,
    events_per_sec: f64,
    /// Simulated seconds per wall second.
    speedup: f64,
    goodput_bps: f64,
    frames_sent: u64,
    handoffs: u64,
    /// Spatial domains the run was scheduled over (`None`/1 = sequential
    /// engine; pre-sharding rows carry `None`).
    shards: Option<usize>,
    /// Host cores available when the row was measured — the context a
    /// parallel-efficiency comparison needs (a 4-shard row measured on one
    /// core is a correctness datapoint, not a speedup claim).
    cores: Option<usize>,
}

/// The whole result file.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct NetScaleResults {
    bench: String,
    smoke: bool,
    /// The saturated-uplink-UDP trajectory (the primary CI gate).
    rows: Vec<NetScaleRow>,
    /// The TCP-traffic trajectory (`--traffic tcp`); absent until a full
    /// TCP ladder has been committed, at which point the gate also pins
    /// its 400-station row.
    tcp_rows: Option<Vec<NetScaleRow>>,
    /// The sharded-scheduler UDP trajectory (`--shards N`); once
    /// committed, the gate also pins its 1600-station row on hosts with
    /// enough cores.
    sharded_rows: Option<Vec<NetScaleRow>>,
}

fn spec(r: &Rung) -> SpatialSpec {
    SpatialSpec {
        ap_cols: r.ap_cols,
        ap_rows: r.ap_rows,
        ap_spacing_m: 25.0,
        n_stations: r.stations,
        snr_ref_db: None,
        path_loss_exp: None,
        // Sensing range of roughly one cell pitch: real spatial reuse,
        // real inter-cell interference (same shape as dense-enterprise).
        sense_snr_db: Some(13.0),
        capture_sir_db: None,
        doppler_hz: None,
        mobility: MobilitySpec::RandomWaypoint {
            speed_mps: 1.5,
            pause_s: 2.0,
        },
        roaming: Some(RoamingSpec {
            hysteresis_db: 3.0,
            check_interval_s: None,
            handoff: HandoffPolicy::Preserve,
        }),
    }
}

/// The run configuration for one rung (traffic, duration, stagger,
/// shards) — the single place a ladder row's parameters turn into a
/// [`SpatialConfig`].
fn config(r: &Rung, traffic: &SpatialTraffic, shards: usize, batch: bool) -> SpatialConfig {
    let mut cfg = SpatialConfig::new(AdapterKind::SoftRate, spec(r));
    cfg.traffic = traffic.clone();
    cfg.duration = r.sim_seconds;
    cfg.kickoff_stagger_s = r.stagger_s;
    cfg.shards = shards;
    cfg.batch = batch;
    cfg
}

/// The ladder workload selected by `--traffic` (default: the saturated
/// uplink UDP the committed trajectory is measured under).
fn traffic_for(mode: &str) -> SpatialTraffic {
    let flows = |traffic| SpatialTraffic::Flows(TransportConfig::enterprise(traffic, true, 0x5A7A));
    match mode {
        "udp" => SpatialTraffic::SaturatedUplinkUdp,
        "tcp" => flows(TrafficKind::Tcp),
        "onoff" => flows(TrafficKind::OnOff {
            rate_pps: 200.0,
            on_s: 0.5,
            off_s: 0.5,
        }),
        other => {
            eprintln!("netscale: unknown --traffic `{other}` (udp | tcp | onoff)");
            std::process::exit(2);
        }
    }
}

fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Prints one ladder point's per-phase wall-time breakdown.
fn print_profile(p: &PhaseProfile) {
    let pct = |s: f64| 100.0 * s / p.total_s.max(1e-12);
    println!(
        "          profile: sense {:6.3}s ({:4.1}%)  begin {:6.3}s ({:4.1}%)  \
         collision {:6.3}s ({:4.1}%)  fate {:6.3}s ({:4.1}%)",
        p.sense_s,
        pct(p.sense_s),
        p.begin_s,
        pct(p.begin_s),
        p.collision_s,
        pct(p.collision_s),
        p.fate_s,
        pct(p.fate_s),
    );
    println!(
        "                   roam  {:6.3}s ({:4.1}%)  transport {:6.3}s ({:4.1}%)  \
         outcome {:6.3}s ({:4.1}%)",
        p.medium_ev_s,
        pct(p.medium_ev_s),
        p.transport_s,
        pct(p.transport_s),
        p.outcome_s,
        pct(p.outcome_s),
    );
    println!(
        "                   sync  {:6.3}s ({:4.1}%)  queue+dispatch {:6.3}s ({:4.1}%)  \
         deferrals {}  transmissions {}",
        p.sync_s,
        pct(p.sync_s),
        p.queue_s,
        pct(p.queue_s),
        p.deferrals,
        p.transmissions,
    );
    // Batch statistics: kernel time plus the same-tick cohort-size
    // distribution (width ≥ 2 cohorts only — width-1 "cohorts" are the
    // ordinary scalar path and are not counted).
    let (p50, p95) = cohort_percentiles(&p.cohort_hist);
    println!(
        "                   kernel {:6.3}s ({:4.1}%)  cohorts {}  \
         width p50 {}  p95 {}  max {}",
        p.kernel_s,
        pct(p.kernel_s),
        p.cohorts,
        p50,
        p95,
        p.cohort_max,
    );
}

/// p50/p95 cohort widths from the profile's width histogram (bucket `i`
/// < 15 holds width `i + 1`; the final bucket is "16 or wider", reported
/// as 16+ via the max column).
fn cohort_percentiles(hist: &[u64; 16]) -> (u64, u64) {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return (0, 0);
    }
    let rank = |q: f64| -> u64 {
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in hist.iter().enumerate() {
            seen += c;
            if seen >= target {
                return (i + 1) as u64;
            }
        }
        16
    };
    (rank(0.50), rank(0.95))
}

/// The CI perf gate (`--gate`): quick measurements against the committed
/// trajectory. Tolerance is generous (events/sec may drop to 70% of the
/// committed row before the gate trips) because it has to absorb
/// runner-to-runner hardware variance on top of real regressions; the
/// committed numbers themselves come from full `netscale` runs on a
/// quiet machine.
fn run_gate() -> ! {
    const GATE_STATIONS: usize = 400;
    const GATE_SHARD_STATIONS: usize = 1600;
    const GATE_CITY_STATIONS: usize = 10_000;
    const GATE_SIM_SECONDS: f64 = 2.0;
    const GATE_CITY_SIM_SECONDS: f64 = 0.5;
    const GATE_TOLERANCE: f64 = 0.70;
    banner("netscale --gate — perf regression check vs BENCH_netscale.json");
    let committed: NetScaleResults = match std::fs::read_to_string("BENCH_netscale.json")
        .map_err(|e| e.to_string())
        .and_then(|s| serde_json::from_str(&s).map_err(|e| e.to_string()))
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gate: cannot read committed BENCH_netscale.json: {e}");
            std::process::exit(1);
        }
    };
    let Some(baseline) = committed.rows.iter().find(|r| r.stations == GATE_STATIONS) else {
        eprintln!("gate: committed file has no {GATE_STATIONS}-station row");
        std::process::exit(1);
    };
    // Warmup, then best of two (the simulation is deterministic; only the
    // clock varies).
    let measure = |stations: usize, traffic: &SpatialTraffic, duration: f64, shards| -> f64 {
        let rung = LADDER
            .iter()
            .find(|r| r.stations == stations)
            .expect("gate rungs are in the ladder table");
        let mut cfg = config(rung, traffic, shards, true);
        cfg.duration = duration;
        let sim = SpatialSim::new(cfg).expect("bench spec is valid");
        let started = std::time::Instant::now();
        let report = sim.run();
        report.events_processed as f64 / started.elapsed().as_secs_f64().max(1e-9)
    };
    let check = |label: &str,
                 stations: usize,
                 traffic: &SpatialTraffic,
                 shards,
                 sim_seconds: f64,
                 committed_eps| {
        measure(stations, traffic, sim_seconds / 4.0, shards);
        let events_per_sec = measure(stations, traffic, sim_seconds, shards).max(measure(
            stations,
            traffic,
            sim_seconds,
            shards,
        ));
        let floor: f64 = committed_eps * GATE_TOLERANCE;
        println!(
            "{label}: measured {events_per_sec:.0} events/s at {stations} stations; \
             committed {committed_eps:.0}; floor {floor:.0}"
        );
        if events_per_sec < floor {
            eprintln!(
                "gate FAILED ({label}): events/sec regressed more than {:.0}% below the \
                 committed trajectory",
                (1.0 - GATE_TOLERANCE) * 100.0
            );
            std::process::exit(1);
        }
    };
    check(
        "udp",
        GATE_STATIONS,
        &SpatialTraffic::SaturatedUplinkUdp,
        1,
        GATE_SIM_SECONDS,
        baseline.events_per_sec,
    );
    // The 10k-station city rung: pins throughput at ladder scale, where
    // the cohort-batched hot path and the memo layers carry the load. A
    // shorter window keeps the gate affordable (events/sec is a rate).
    if let Some(city) = committed
        .rows
        .iter()
        .find(|r| r.stations == GATE_CITY_STATIONS)
    {
        check(
            "udp-10k",
            GATE_CITY_STATIONS,
            &SpatialTraffic::SaturatedUplinkUdp,
            1,
            GATE_CITY_SIM_SECONDS,
            city.events_per_sec,
        );
    } else {
        println!("(no committed {GATE_CITY_STATIONS}-station row; small rung only)");
    }
    // The TCP ladder point, once a TCP trajectory has been committed.
    if let Some(tcp_baseline) = committed
        .tcp_rows
        .as_ref()
        .and_then(|rows| rows.iter().find(|r| r.stations == GATE_STATIONS))
    {
        check(
            "tcp",
            GATE_STATIONS,
            &traffic_for("tcp"),
            1,
            GATE_SIM_SECONDS,
            tcp_baseline.events_per_sec,
        );
    } else {
        println!("(no committed TCP trajectory with a {GATE_STATIONS}-station row; udp only)");
    }
    // The sharded ladder point: pins the parallel scheduler's throughput
    // at ≥70% of the committed sharded trajectory — but only on hosts
    // with at least as many cores as the committed row had shards (a
    // smaller host cannot reproduce the parallelism, only the results).
    if let Some(srow) = committed
        .sharded_rows
        .as_ref()
        .and_then(|rows| rows.iter().find(|r| r.stations == GATE_SHARD_STATIONS))
    {
        let cores = host_cores();
        let srow_shards = srow.shards.unwrap_or(1);
        if cores < srow_shards {
            println!(
                "(sharded gate skipped: host has {cores} core(s), committed row used \
                 {srow_shards} shards on {} core(s))",
                srow.cores.unwrap_or(1)
            );
        } else {
            check(
                "sharded-udp",
                GATE_SHARD_STATIONS,
                &SpatialTraffic::SaturatedUplinkUdp,
                srow_shards,
                GATE_SIM_SECONDS,
                srow.events_per_sec,
            );
        }
    } else {
        println!("(no committed sharded trajectory with a {GATE_SHARD_STATIONS}-station row)");
    }
    println!("gate passed");
    std::process::exit(0);
}

fn main() {
    let smoke = smoke_mode();
    let profile = std::env::args().any(|a| a == "--profile");
    if std::env::args().any(|a| a == "--gate") {
        run_gate();
    }
    let args: Vec<String> = std::env::args().collect();
    let traffic_mode = args
        .iter()
        .position(|a| a == "--traffic")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("udp")
        .to_string();
    let shards: usize = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--shards takes a positive integer"))
        .unwrap_or(1);
    // `--batch off` is the escape hatch: cohort width 1 through the same
    // dispatch path, byte-identical results (the equality suite pins it).
    let batch = match args
        .iter()
        .position(|a| a == "--batch")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("on")
    {
        "on" => true,
        "off" => false,
        other => {
            eprintln!("netscale: unknown --batch `{other}` (on | off)");
            std::process::exit(2);
        }
    };
    let metrics_path = args
        .iter()
        .position(|a| a == "--metrics")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let decisions_path = args
        .iter()
        .position(|a| a == "--decisions")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let traffic = traffic_for(&traffic_mode);
    let cores = host_cores();
    banner(&format!(
        "netscale — spatial simulator throughput vs station count \
         ({traffic_mode}, {shards} shard(s), {cores} core(s))"
    ));
    let ladder: &[Rung] = if smoke {
        SMOKE_LADDER
    } else if traffic_mode == "tcp" {
        // The TCP trajectory exists for the CI gate's 400-station point;
        // a short ladder around it keeps the full run affordable.
        &LADDER[..4]
    } else {
        LADDER
    };

    // Warm the allocator, page cache, and branch predictors before any
    // timed run — the first ladder point otherwise absorbs all the
    // cold-start cost.
    {
        let mut cfg = config(&LADDER[0], &traffic, shards, batch);
        cfg.duration = 1.0;
        SpatialSim::new(cfg).expect("bench spec is valid").run();
    }

    println!(
        "{:>9} {:>5} {:>7} {:>8} {:>9} {:>12} {:>13} {:>9} {:>11} {:>9}",
        "stations",
        "aps",
        "shards",
        "sim s",
        "wall s",
        "events",
        "events/s",
        "speedup",
        "Mbit/s",
        "handoffs"
    );
    let mut rows = Vec::new();
    let mut metrics_out = String::new();
    let mut decisions_out = String::new();
    for (ladder_idx, rung) in ladder.iter().enumerate() {
        // Best of two timed runs per point (identical results — the
        // simulation is deterministic; only the wall clock varies), so a
        // scheduler hiccup doesn't land in the committed trajectory.
        let mut wall = f64::INFINITY;
        let mut best: Option<(softrate_sim::mac::RunReport, Option<PhaseProfile>)> = None;
        for _ in 0..if profile { 1 } else { 2 } {
            let mut cfg = config(rung, &traffic, shards, batch);
            if metrics_path.is_some() || decisions_path.is_some() {
                cfg.telemetry = Some(softrate_telemetry::RecorderConfig {
                    decisions: decisions_path.is_some(),
                    ..softrate_telemetry::RecorderConfig::default()
                });
            }
            let sim = SpatialSim::new(cfg).expect("bench spec is valid");
            let started = std::time::Instant::now();
            let (report, phases) = if profile {
                let (report, phases) = sim.run_profiled();
                (report, Some(phases))
            } else {
                (sim.run(), None)
            };
            let w = started.elapsed().as_secs_f64();
            if w < wall {
                wall = w;
                best = Some((report, phases));
            }
        }
        let (mut report, phases) = best.expect("at least one run");
        if let Some(mut telemetry) = report.telemetry.take() {
            // One "run" per ladder point, in ladder order.
            telemetry.stamp_run_idx(ladder_idx as u64);
            metrics_out.push_str(&telemetry.metrics_jsonl());
            decisions_out.push_str(&telemetry.decisions_jsonl());
        }
        let row = NetScaleRow {
            stations: rung.stations,
            aps: rung.ap_cols * rung.ap_rows,
            sim_seconds: rung.sim_seconds,
            wall_seconds: wall,
            events: report.events_processed,
            events_per_sec: report.events_processed as f64 / wall.max(1e-9),
            speedup: rung.sim_seconds / wall.max(1e-9),
            goodput_bps: report.aggregate_goodput_bps,
            frames_sent: report.frames_sent,
            handoffs: report.handoffs,
            shards: Some(shards),
            cores: Some(cores),
        };
        println!(
            "{:>9} {:>5} {:>7} {:>8.1} {:>9.3} {:>12} {:>13.0} {:>9.1} {:>11.2} {:>9}",
            row.stations,
            row.aps,
            row.shards.unwrap_or(1),
            row.sim_seconds,
            row.wall_seconds,
            row.events,
            row.events_per_sec,
            row.speedup,
            row.goodput_bps / 1e6,
            row.handoffs
        );
        if let Some(p) = &phases {
            print_profile(p);
        }
        rows.push(row);
    }

    if metrics_path.is_some() || decisions_path.is_some() {
        for (path, out) in [
            (&metrics_path, &metrics_out),
            (&decisions_path, &decisions_out),
        ] {
            let Some(path) = path else { continue };
            if let Some(parent) = std::path::Path::new(path).parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            match std::fs::write(path, out) {
                Ok(()) => eprintln!("[wrote {path}]"),
                Err(e) => eprintln!("warning: cannot write {path}: {e}"),
            }
        }
        // Recorder overhead is in the wall numbers: never commit them.
        eprintln!("[recorder run: BENCH_netscale.json left untouched (recorder overhead)]");
        return;
    }
    if traffic_mode == "onoff" || (shards > 1 && traffic_mode != "udp") {
        // Only the UDP, TCP, and sharded-UDP trajectories are committed.
        eprintln!(
            "[--traffic {traffic_mode} run: BENCH_netscale.json left untouched \
             (uncommitted workload)]"
        );
        return;
    }
    if profile {
        eprintln!("[--profile run: BENCH_netscale.json left untouched (timer overhead)]");
        return;
    }
    if !batch {
        // The committed trajectory is the default (batched) hot path.
        eprintln!("[--batch off run: BENCH_netscale.json left untouched (escape hatch)]");
        return;
    }
    if smoke {
        // Smoke ladders have no 400-station row and must not clobber the
        // committed trajectory the CI gate compares against.
        eprintln!("[--smoke run: BENCH_netscale.json left untouched (partial ladder)]");
        return;
    }
    // Full unprofiled run: refresh this workload's trajectory, preserving
    // the other ones from the committed file.
    let committed: Option<NetScaleResults> = std::fs::read_to_string("BENCH_netscale.json")
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok());
    let results = if traffic_mode == "tcp" {
        NetScaleResults {
            bench: "netscale".to_string(),
            smoke,
            rows: committed
                .as_ref()
                .map(|c| c.rows.clone())
                .unwrap_or_default(),
            tcp_rows: Some(rows),
            sharded_rows: committed.and_then(|c| c.sharded_rows),
        }
    } else if shards > 1 {
        NetScaleResults {
            bench: "netscale".to_string(),
            smoke,
            rows: committed
                .as_ref()
                .map(|c| c.rows.clone())
                .unwrap_or_default(),
            tcp_rows: committed.and_then(|c| c.tcp_rows),
            sharded_rows: Some(rows),
        }
    } else {
        NetScaleResults {
            bench: "netscale".to_string(),
            smoke,
            rows,
            tcp_rows: committed.as_ref().and_then(|c| c.tcp_rows.clone()),
            sharded_rows: committed.and_then(|c| c.sharded_rows),
        }
    };
    let path = "BENCH_netscale.json";
    match serde_json::to_string_pretty(&results) {
        Ok(s) => {
            if let Err(e) = std::fs::write(path, s) {
                eprintln!("warning: cannot write {path}: {e}");
            } else {
                eprintln!("[wrote {path}]");
            }
        }
        Err(e) => eprintln!("warning: cannot serialize results: {e}"),
    }
}
