//! `netscale` — events/sec and wall time of the multi-cell spatial
//! simulator versus station count.
//!
//! The scaling story of `softrate-net`: streaming channels keep memory
//! O(stations), so the only question is event-loop throughput. This bench
//! runs a roaming random-waypoint deployment on a 3x3 AP grid at a ladder
//! of station counts and reports simulated seconds, wall seconds,
//! events/sec, and sim-time speedup, then drops machine-readable results
//! in `BENCH_netscale.json` at the repository root — the seed of the
//! repo's perf trajectory (compare across PRs).
//!
//! `--smoke` (or `SOFTRATE_SMOKE=1`) shrinks the ladder and the duration.

use serde::Serialize;
use softrate_bench::{banner, smoke_mode};
use softrate_net::mobility::MobilitySpec;
use softrate_net::sim::{SpatialConfig, SpatialSim};
use softrate_net::spatial::{HandoffPolicy, RoamingSpec, SpatialSpec};
use softrate_sim::config::AdapterKind;

/// One ladder point.
#[derive(Debug, Clone, Serialize)]
struct NetScaleRow {
    stations: usize,
    aps: usize,
    sim_seconds: f64,
    wall_seconds: f64,
    events: u64,
    events_per_sec: f64,
    /// Simulated seconds per wall second.
    speedup: f64,
    goodput_bps: f64,
    frames_sent: u64,
    handoffs: u64,
}

/// The whole result file.
#[derive(Debug, Clone, Serialize)]
struct NetScaleResults {
    bench: String,
    smoke: bool,
    rows: Vec<NetScaleRow>,
}

fn spec(stations: usize) -> SpatialSpec {
    SpatialSpec {
        ap_cols: 3,
        ap_rows: 3,
        ap_spacing_m: 25.0,
        n_stations: stations,
        snr_ref_db: None,
        path_loss_exp: None,
        // Sensing range of roughly one cell pitch: real spatial reuse,
        // real inter-cell interference (same shape as dense-enterprise).
        sense_snr_db: Some(13.0),
        capture_sir_db: None,
        doppler_hz: None,
        mobility: MobilitySpec::RandomWaypoint {
            speed_mps: 1.5,
            pause_s: 2.0,
        },
        roaming: Some(RoamingSpec {
            hysteresis_db: 3.0,
            check_interval_s: None,
            handoff: HandoffPolicy::Preserve,
        }),
    }
}

fn main() {
    let smoke = smoke_mode();
    banner("netscale — spatial simulator throughput vs station count");
    let (ladder, sim_seconds): (&[usize], f64) = if smoke {
        (&[20, 60], 2.0)
    } else {
        (&[50, 100, 200, 400], 10.0)
    };

    println!(
        "{:>9} {:>5} {:>8} {:>9} {:>11} {:>13} {:>9} {:>11} {:>9}",
        "stations", "aps", "sim s", "wall s", "events", "events/s", "speedup", "Mbit/s", "handoffs"
    );
    let mut rows = Vec::new();
    for &stations in ladder {
        let mut cfg = SpatialConfig::new(AdapterKind::SoftRate, spec(stations));
        cfg.duration = sim_seconds;
        let sim = SpatialSim::new(cfg).expect("bench spec is valid");
        let started = std::time::Instant::now();
        let report = sim.run();
        let wall = started.elapsed().as_secs_f64();
        let row = NetScaleRow {
            stations,
            aps: 9,
            sim_seconds,
            wall_seconds: wall,
            events: report.events_processed,
            events_per_sec: report.events_processed as f64 / wall.max(1e-9),
            speedup: sim_seconds / wall.max(1e-9),
            goodput_bps: report.aggregate_goodput_bps,
            frames_sent: report.frames_sent,
            handoffs: report.handoffs,
        };
        println!(
            "{:>9} {:>5} {:>8.1} {:>9.3} {:>11} {:>13.0} {:>9.1} {:>11.2} {:>9}",
            row.stations,
            row.aps,
            row.sim_seconds,
            row.wall_seconds,
            row.events,
            row.events_per_sec,
            row.speedup,
            row.goodput_bps / 1e6,
            row.handoffs
        );
        rows.push(row);
    }

    let results = NetScaleResults {
        bench: "netscale".to_string(),
        smoke,
        rows,
    };
    let path = "BENCH_netscale.json";
    match serde_json::to_string_pretty(&results) {
        Ok(s) => {
            if let Err(e) = std::fs::write(path, s) {
                eprintln!("warning: cannot write {path}: {e}");
            } else {
                eprintln!("[wrote {path}]");
            }
        }
        Err(e) => eprintln!("warning: cannot serialize results: {e}"),
    }
}
