//! `netscale` — events/sec and wall time of the multi-cell spatial
//! simulator versus station count.
//!
//! The scaling story of `softrate-net`: streaming channels keep memory
//! O(stations), so the only question is event-loop throughput. This bench
//! runs a roaming random-waypoint deployment on a 3x3 AP grid at a ladder
//! of station counts and reports simulated seconds, wall seconds,
//! events/sec, and sim-time speedup, then drops machine-readable results
//! in `BENCH_netscale.json` at the repository root — the seed of the
//! repo's perf trajectory (compare across PRs).
//!
//! Measurement hygiene: one unrecorded warmup run precedes the ladder
//! and every point reports the best of two timed runs (the simulation is
//! deterministic — only the wall clock varies), so a scheduler hiccup
//! does not land in the committed trajectory.
//!
//! `--smoke` (or `SOFTRATE_SMOKE=1`) shrinks the ladder and the duration.
//! `--profile` additionally prints a per-phase wall-time breakdown
//! (sense / begin / collision / fate / roam / transport / outcome /
//! queue+dispatch) per ladder point, so future perf PRs know where the
//! time goes. Profiled rows keep identical simulation results but carry
//! timer overhead, so the JSON is only refreshed on unprofiled runs.
//! `--gate` is the CI perf check: one quick 400-station measurement that
//! must stay within 30% of the committed trajectory — and, when the
//! committed file carries a TCP trajectory, a second 400-station
//! TCP-traffic measurement against it.
//!
//! `--traffic tcp|onoff|udp` swaps the workload: `tcp` runs the ladder
//! under per-station TCP NewReno uploads (AP transmitters carry the ACK
//! downlink through the shared transport layer), `onoff` under bursty
//! half-duty Poisson sources. The default saturated-UDP ladder rewrites
//! the `rows` trajectory in `BENCH_netscale.json`; the TCP ladder (a
//! shorter one — the gate only needs its 400-station point) rewrites
//! `tcp_rows`; `onoff` ladders are printed only.
//!
//! `--metrics <path>` attaches the telemetry recorder to every ladder run
//! and writes the per-station metrics JSONL to `path`; `--decisions
//! <path>` additionally streams the rate-decision ledger. The recorder
//! never touches the event queue or any RNG, so `events` at every ladder
//! point is unchanged — but the wall numbers carry recorder overhead, so
//! recorder runs never rewrite `BENCH_netscale.json`.

use serde::{Deserialize, Serialize};
use softrate_bench::{banner, smoke_mode};
use softrate_net::mobility::MobilitySpec;
use softrate_net::sim::{SpatialConfig, SpatialSim, SpatialTraffic};
use softrate_net::spatial::{HandoffPolicy, RoamingSpec, SpatialSpec};
use softrate_sim::config::{AdapterKind, TrafficKind};
use softrate_sim::mac::PhaseProfile;
use softrate_sim::transport::TransportConfig;

/// One ladder point.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct NetScaleRow {
    stations: usize,
    aps: usize,
    sim_seconds: f64,
    wall_seconds: f64,
    events: u64,
    events_per_sec: f64,
    /// Simulated seconds per wall second.
    speedup: f64,
    goodput_bps: f64,
    frames_sent: u64,
    handoffs: u64,
}

/// The whole result file.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct NetScaleResults {
    bench: String,
    smoke: bool,
    /// The saturated-uplink-UDP trajectory (the primary CI gate).
    rows: Vec<NetScaleRow>,
    /// The TCP-traffic trajectory (`--traffic tcp`); absent until a full
    /// TCP ladder has been committed, at which point the gate also pins
    /// its 400-station row.
    tcp_rows: Option<Vec<NetScaleRow>>,
}

fn spec(stations: usize) -> SpatialSpec {
    SpatialSpec {
        ap_cols: 3,
        ap_rows: 3,
        ap_spacing_m: 25.0,
        n_stations: stations,
        snr_ref_db: None,
        path_loss_exp: None,
        // Sensing range of roughly one cell pitch: real spatial reuse,
        // real inter-cell interference (same shape as dense-enterprise).
        sense_snr_db: Some(13.0),
        capture_sir_db: None,
        doppler_hz: None,
        mobility: MobilitySpec::RandomWaypoint {
            speed_mps: 1.5,
            pause_s: 2.0,
        },
        roaming: Some(RoamingSpec {
            hysteresis_db: 3.0,
            check_interval_s: None,
            handoff: HandoffPolicy::Preserve,
        }),
    }
}

/// The ladder workload selected by `--traffic` (default: the saturated
/// uplink UDP the committed trajectory is measured under).
fn traffic_for(mode: &str) -> SpatialTraffic {
    let flows = |traffic| SpatialTraffic::Flows(TransportConfig::enterprise(traffic, true, 0x5A7A));
    match mode {
        "udp" => SpatialTraffic::SaturatedUplinkUdp,
        "tcp" => flows(TrafficKind::Tcp),
        "onoff" => flows(TrafficKind::OnOff {
            rate_pps: 200.0,
            on_s: 0.5,
            off_s: 0.5,
        }),
        other => {
            eprintln!("netscale: unknown --traffic `{other}` (udp | tcp | onoff)");
            std::process::exit(2);
        }
    }
}

/// Prints one ladder point's per-phase wall-time breakdown.
fn print_profile(p: &PhaseProfile) {
    let pct = |s: f64| 100.0 * s / p.total_s.max(1e-12);
    println!(
        "          profile: sense {:6.3}s ({:4.1}%)  begin {:6.3}s ({:4.1}%)  \
         collision {:6.3}s ({:4.1}%)  fate {:6.3}s ({:4.1}%)",
        p.sense_s,
        pct(p.sense_s),
        p.begin_s,
        pct(p.begin_s),
        p.collision_s,
        pct(p.collision_s),
        p.fate_s,
        pct(p.fate_s),
    );
    println!(
        "                   roam  {:6.3}s ({:4.1}%)  transport {:6.3}s ({:4.1}%)  \
         outcome {:6.3}s ({:4.1}%)",
        p.medium_ev_s,
        pct(p.medium_ev_s),
        p.transport_s,
        pct(p.transport_s),
        p.outcome_s,
        pct(p.outcome_s),
    );
    println!(
        "                   queue+dispatch {:6.3}s ({:4.1}%)  \
         deferrals {}  transmissions {}",
        p.queue_s,
        pct(p.queue_s),
        p.deferrals,
        p.transmissions,
    );
}

/// The CI perf gate (`--gate`): one quick 400-station measurement against
/// the committed trajectory. Tolerance is generous (events/sec may drop
/// to 70% of the committed row before the gate trips) because it has to
/// absorb runner-to-runner hardware variance on top of real regressions;
/// the committed numbers themselves come from full `netscale` runs on a
/// quiet machine.
fn run_gate() -> ! {
    const GATE_STATIONS: usize = 400;
    const GATE_SIM_SECONDS: f64 = 2.0;
    const GATE_TOLERANCE: f64 = 0.70;
    banner("netscale --gate — perf regression check vs BENCH_netscale.json");
    let committed: NetScaleResults = match std::fs::read_to_string("BENCH_netscale.json")
        .map_err(|e| e.to_string())
        .and_then(|s| serde_json::from_str(&s).map_err(|e| e.to_string()))
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gate: cannot read committed BENCH_netscale.json: {e}");
            std::process::exit(1);
        }
    };
    let Some(baseline) = committed.rows.iter().find(|r| r.stations == GATE_STATIONS) else {
        eprintln!("gate: committed file has no {GATE_STATIONS}-station row");
        std::process::exit(1);
    };
    // Warmup, then best of two (the simulation is deterministic; only the
    // clock varies).
    let measure = |traffic: &SpatialTraffic, duration: f64| -> f64 {
        let mut cfg = SpatialConfig::new(AdapterKind::SoftRate, spec(GATE_STATIONS));
        cfg.duration = duration;
        cfg.traffic = traffic.clone();
        let sim = SpatialSim::new(cfg).expect("bench spec is valid");
        let started = std::time::Instant::now();
        let report = sim.run();
        report.events_processed as f64 / started.elapsed().as_secs_f64().max(1e-9)
    };
    let check = |label: &str, traffic: &SpatialTraffic, committed_eps: f64| {
        measure(traffic, 0.5);
        let events_per_sec =
            measure(traffic, GATE_SIM_SECONDS).max(measure(traffic, GATE_SIM_SECONDS));
        let floor = committed_eps * GATE_TOLERANCE;
        println!(
            "{label}: measured {events_per_sec:.0} events/s at {GATE_STATIONS} stations; \
             committed {committed_eps:.0}; floor {floor:.0}"
        );
        if events_per_sec < floor {
            eprintln!(
                "gate FAILED ({label}): events/sec regressed more than {:.0}% below the \
                 committed trajectory",
                (1.0 - GATE_TOLERANCE) * 100.0
            );
            std::process::exit(1);
        }
    };
    check(
        "udp",
        &SpatialTraffic::SaturatedUplinkUdp,
        baseline.events_per_sec,
    );
    // The TCP ladder point, once a TCP trajectory has been committed.
    if let Some(tcp_baseline) = committed
        .tcp_rows
        .as_ref()
        .and_then(|rows| rows.iter().find(|r| r.stations == GATE_STATIONS))
    {
        check("tcp", &traffic_for("tcp"), tcp_baseline.events_per_sec);
    } else {
        println!("(no committed TCP trajectory with a {GATE_STATIONS}-station row; udp only)");
    }
    println!("gate passed");
    std::process::exit(0);
}

fn main() {
    let smoke = smoke_mode();
    let profile = std::env::args().any(|a| a == "--profile");
    if std::env::args().any(|a| a == "--gate") {
        run_gate();
    }
    let args: Vec<String> = std::env::args().collect();
    let traffic_mode = args
        .iter()
        .position(|a| a == "--traffic")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("udp")
        .to_string();
    let metrics_path = args
        .iter()
        .position(|a| a == "--metrics")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let decisions_path = args
        .iter()
        .position(|a| a == "--decisions")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let traffic = traffic_for(&traffic_mode);
    banner(&format!(
        "netscale — spatial simulator throughput vs station count ({traffic_mode})"
    ));
    let (ladder, sim_seconds): (&[usize], f64) = if smoke {
        (&[20, 60], 2.0)
    } else if traffic_mode == "tcp" {
        // The TCP trajectory exists for the CI gate's 400-station point;
        // a short ladder around it keeps the full run affordable.
        (&[50, 100, 200, 400], 10.0)
    } else {
        (&[50, 100, 200, 400, 800, 1600], 10.0)
    };

    // Warm the allocator, page cache, and branch predictors before any
    // timed run — the first ladder point otherwise absorbs all the
    // cold-start cost.
    {
        let mut cfg = SpatialConfig::new(AdapterKind::SoftRate, spec(50));
        cfg.traffic = traffic.clone();
        cfg.duration = 1.0;
        SpatialSim::new(cfg).expect("bench spec is valid").run();
    }

    println!(
        "{:>9} {:>5} {:>8} {:>9} {:>11} {:>13} {:>9} {:>11} {:>9}",
        "stations", "aps", "sim s", "wall s", "events", "events/s", "speedup", "Mbit/s", "handoffs"
    );
    let mut rows = Vec::new();
    let mut metrics_out = String::new();
    let mut decisions_out = String::new();
    for (ladder_idx, &stations) in ladder.iter().enumerate() {
        // Best of two timed runs per point (identical results — the
        // simulation is deterministic; only the wall clock varies), so a
        // scheduler hiccup doesn't land in the committed trajectory.
        let mut wall = f64::INFINITY;
        let mut best: Option<(softrate_sim::mac::RunReport, Option<PhaseProfile>)> = None;
        for _ in 0..if profile { 1 } else { 2 } {
            let mut cfg = SpatialConfig::new(AdapterKind::SoftRate, spec(stations));
            cfg.traffic = traffic.clone();
            cfg.duration = sim_seconds;
            if metrics_path.is_some() || decisions_path.is_some() {
                cfg.telemetry = Some(softrate_telemetry::RecorderConfig {
                    decisions: decisions_path.is_some(),
                    ..softrate_telemetry::RecorderConfig::default()
                });
            }
            let sim = SpatialSim::new(cfg).expect("bench spec is valid");
            let started = std::time::Instant::now();
            let (report, phases) = if profile {
                let (report, phases) = sim.run_profiled();
                (report, Some(phases))
            } else {
                (sim.run(), None)
            };
            let w = started.elapsed().as_secs_f64();
            if w < wall {
                wall = w;
                best = Some((report, phases));
            }
        }
        let (mut report, phases) = best.expect("at least one run");
        if let Some(mut telemetry) = report.telemetry.take() {
            // One "run" per ladder point, in ladder order.
            telemetry.stamp_run_idx(ladder_idx as u64);
            metrics_out.push_str(&telemetry.metrics_jsonl());
            decisions_out.push_str(&telemetry.decisions_jsonl());
        }
        let row = NetScaleRow {
            stations,
            aps: 9,
            sim_seconds,
            wall_seconds: wall,
            events: report.events_processed,
            events_per_sec: report.events_processed as f64 / wall.max(1e-9),
            speedup: sim_seconds / wall.max(1e-9),
            goodput_bps: report.aggregate_goodput_bps,
            frames_sent: report.frames_sent,
            handoffs: report.handoffs,
        };
        println!(
            "{:>9} {:>5} {:>8.1} {:>9.3} {:>11} {:>13.0} {:>9.1} {:>11.2} {:>9}",
            row.stations,
            row.aps,
            row.sim_seconds,
            row.wall_seconds,
            row.events,
            row.events_per_sec,
            row.speedup,
            row.goodput_bps / 1e6,
            row.handoffs
        );
        if let Some(p) = &phases {
            print_profile(p);
        }
        rows.push(row);
    }

    if metrics_path.is_some() || decisions_path.is_some() {
        for (path, out) in [
            (&metrics_path, &metrics_out),
            (&decisions_path, &decisions_out),
        ] {
            let Some(path) = path else { continue };
            if let Some(parent) = std::path::Path::new(path).parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            match std::fs::write(path, out) {
                Ok(()) => eprintln!("[wrote {path}]"),
                Err(e) => eprintln!("warning: cannot write {path}: {e}"),
            }
        }
        // Recorder overhead is in the wall numbers: never commit them.
        eprintln!("[recorder run: BENCH_netscale.json left untouched (recorder overhead)]");
        return;
    }
    if traffic_mode == "onoff" {
        // Only the UDP and TCP trajectories are committed; on-off ladders
        // are printed only.
        eprintln!(
            "[--traffic {traffic_mode} run: BENCH_netscale.json left untouched (uncommitted workload)]"
        );
        return;
    }
    if profile {
        eprintln!("[--profile run: BENCH_netscale.json left untouched (timer overhead)]");
        return;
    }
    if smoke {
        // Smoke ladders have no 400-station row and must not clobber the
        // committed trajectory the CI gate compares against.
        eprintln!("[--smoke run: BENCH_netscale.json left untouched (partial ladder)]");
        return;
    }
    // Full unprofiled run: refresh this workload's trajectory, preserving
    // the other one from the committed file.
    let committed: Option<NetScaleResults> = std::fs::read_to_string("BENCH_netscale.json")
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok());
    let results = if traffic_mode == "tcp" {
        NetScaleResults {
            bench: "netscale".to_string(),
            smoke,
            rows: committed.map(|c| c.rows).unwrap_or_default(),
            tcp_rows: Some(rows),
        }
    } else {
        NetScaleResults {
            bench: "netscale".to_string(),
            smoke,
            rows,
            tcp_rows: committed.and_then(|c| c.tcp_rows),
        }
    };
    let path = "BENCH_netscale.json";
    match serde_json::to_string_pretty(&results) {
        Ok(s) => {
            if let Err(e) = std::fs::write(path, s) {
                eprintln!("warning: cannot write {path}: {e}");
            } else {
                eprintln!("[wrote {path}]");
            }
        }
        Err(e) => eprintln!("warning: cannot serialize results: {e}"),
    }
}
