//! Figure 15: bit rates chosen by RRAA and SampleRate on the synthetic
//! alternating channel (best rate flips between QAM16 3/4 and QAM16 1/2
//! every second), with measured convergence times. SoftRate is included
//! for contrast.

use std::sync::Arc;

use softrate_bench::{banner, smoke_mode, write_json};
use softrate_sim::config::{AdapterKind, SimConfig};
use softrate_sim::netsim::NetSim;
use softrate_trace::generate::alternating_trace;
use softrate_trace::recipes::AlternatingRecipe;

/// Mean time from each state flip until the adapter first selects the new
/// best rate.
fn convergence_times(
    timeline: &[(f64, usize)],
    half_period: f64,
    duration: f64,
) -> (Vec<f64>, Vec<f64>) {
    let mut to_lower = Vec::new(); // good -> bad flips (t = odd multiples)
    let mut to_higher = Vec::new(); // bad -> good flips
    let mut flip = half_period;
    while flip < duration {
        let target_is_low = (flip / half_period) as u64 % 2 == 1;
        // Best rates: good state -> QAM16 3/4 (idx 5); bad -> QAM16 1/2 (4).
        let target = if target_is_low { 4 } else { 5 };
        if let Some(&(t, _)) = timeline
            .iter()
            .find(|(t, r)| *t >= flip && *t < flip + half_period && *r == target)
        {
            if target_is_low {
                to_lower.push(t - flip);
            } else {
                to_higher.push(t - flip);
            }
        }
        flip += half_period;
    }
    (to_lower, to_higher)
}

fn main() {
    let smoke = smoke_mode();
    banner("Figure 15: convergence on the alternating good/bad channel");
    let recipe = AlternatingRecipe {
        duration: if smoke { 4.0 } else { 10.0 },
        ..Default::default()
    };
    let trace = Arc::new(alternating_trace(&recipe, 77));
    println!(
        "channel flips every {:.0} ms between SNR {:.1} dB (best QAM16 3/4) and {:.1} dB (best QAM16 1/2)",
        recipe.half_period * 1e3,
        recipe.snr_good_db,
        recipe.snr_bad_db
    );

    let mut json = Vec::new();
    for kind in [
        AdapterKind::Rraa,
        AdapterKind::SampleRate,
        AdapterKind::SoftRate,
    ] {
        let mut cfg = SimConfig::new(kind.clone(), 1);
        cfg.duration = recipe.duration;
        let report = NetSim::new(cfg, vec![Arc::clone(&trace), Arc::clone(&trace)]).run();
        let (down, up) =
            convergence_times(&report.rate_timeline, recipe.half_period, recipe.duration);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        println!("\n{}:", kind.name());
        println!(
            "  convergence high->low: {:.1} ms (over {} flips), low->high: {:.1} ms (over {})",
            1e3 * mean(&down),
            down.len(),
            1e3 * mean(&up),
            up.len()
        );
        print!("  rate timeline (first 1.5 s after a flip, decimated): ");
        for (t, r) in report
            .rate_timeline
            .iter()
            .filter(|(t, _)| *t >= 1.0 && *t < 2.5)
            .step_by(8)
        {
            print!("({t:.2}s,r{r}) ");
        }
        println!();
        json.push((
            kind.name().to_string(),
            mean(&down),
            mean(&up),
            report.rate_timeline.clone(),
        ));
    }
    println!("\npaper: RRAA converges in ~15/85 ms, SampleRate in ~600/650 ms;");
    println!("RRAA's choice is also unstable in the good state");
    write_json("fig15_convergence.json", &json);
}
