//! Figures 10 and 11: interference detection accuracy as a function of
//! relative interferer power and of the sender's bit rate, plus the
//! false-positive check on interference-free channels (§5.3).

use softrate_bench::{banner, smoke_mode, write_json};
use softrate_channel::model::FadingSpec;
use softrate_phy::rates::PAPER_RATES;
use softrate_trace::generate::{
    interference_detection_samples, quiet_detection_run, DetectionOutcome, DetectionSample,
};
use softrate_trace::recipes::InterferenceRecipe;

#[derive(Default, Clone, Copy, serde::Serialize)]
struct Tally {
    correct: usize,
    flagged: usize,
    missed: usize,
    silent: usize,
}

impl Tally {
    fn add(&mut self, o: DetectionOutcome) {
        match o {
            DetectionOutcome::Correct => self.correct += 1,
            DetectionOutcome::ErroredFlagged => self.flagged += 1,
            DetectionOutcome::ErroredMissed => self.missed += 1,
            DetectionOutcome::SilentLoss => self.silent += 1,
        }
    }
    fn total(&self) -> usize {
        self.correct + self.flagged + self.missed + self.silent
    }
    fn accuracy(&self) -> f64 {
        let errored = self.flagged + self.missed;
        if errored == 0 {
            f64::NAN
        } else {
            self.flagged as f64 / errored as f64
        }
    }
    fn row(&self, label: &str) {
        let t = self.total().max(1) as f64;
        println!(
            "{label:>14} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9}",
            self.correct as f64 / t,
            (self.flagged + self.missed) as f64 / t,
            self.silent as f64 / t,
            self.accuracy(),
            self.total()
        );
    }
}

fn main() {
    let smoke = smoke_mode();
    banner("Figures 10/11: interference detection accuracy");
    let recipe = if smoke {
        InterferenceRecipe::smoke()
    } else {
        InterferenceRecipe::default()
    };
    let samples: Vec<DetectionSample> = interference_detection_samples(&recipe);
    println!("{} interference frames", samples.len());

    println!("\nFigure 10: by relative interferer power");
    println!(
        "{:>14} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "rel power dB", "correct", "errored", "silent", "accuracy", "frames"
    );
    let mut by_power = Vec::new();
    for &p in &recipe.rel_powers_db {
        let mut t = Tally::default();
        for s in samples
            .iter()
            .filter(|s| s.rel_power_db == p && s.truly_interfered)
        {
            t.add(s.outcome);
        }
        t.row(&format!("{p:.0}"));
        by_power.push((p, t));
    }

    println!("\nFigure 11: by sender bit rate");
    println!(
        "{:>14} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "rate", "correct", "errored", "silent", "accuracy", "frames"
    );
    let mut by_rate = Vec::new();
    #[allow(clippy::needless_range_loop)] // `r` is a rate index shared by several tables
    for r in 0..softrate_trace::recipes::N_RATES {
        let mut t = Tally::default();
        for s in samples
            .iter()
            .filter(|s| s.rate_idx == r && s.truly_interfered)
        {
            t.add(s.outcome);
        }
        t.row(&PAPER_RATES[r].label());
        by_rate.push((r, t));
    }

    println!("\nFalse positives on interference-free channels (paper: <1% of lost frames):");
    let n = if smoke { 80 } else { 400 };
    let mut total_err = 0;
    let mut total_flag = 0;
    for (fading, snr, label) in [
        (FadingSpec::None, 7.0, "static"),
        (FadingSpec::Flat { doppler_hz: 40.0 }, 13.0, "walking"),
    ] {
        let (errored, flagged) = quiet_detection_run(fading, snr, n, 200, 0xFA15E);
        println!(
            "  {label:>8}: {flagged}/{errored} errored frames flagged ({:.1}%)",
            100.0 * flagged as f64 / errored.max(1) as f64
        );
        total_err += errored;
        total_flag += flagged;
    }
    println!(
        "  overall: {:.2}% false positives",
        100.0 * total_flag as f64 / total_err.max(1) as f64
    );
    write_json("fig10_11_interference_detection.json", &(by_power, by_rate));
}
