//! # softrate-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the
//! index), plus criterion micro-benchmarks of the hot paths. Binaries print
//! the paper's rows/series to stdout and drop machine-readable JSON under
//! `results/`.
//!
//! Every binary accepts `--smoke` (or env `SOFTRATE_SMOKE=1`) to run a
//! scaled-down version in seconds instead of minutes; EXPERIMENTS.md
//! records full-scale outputs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use softrate_trace::cache::load_or_generate;
use softrate_trace::generate::{static_short_trace, walking_trace};
use softrate_trace::recipes::{StaticShortRecipe, WalkingRecipe};
use softrate_trace::schema::LinkTrace;

/// Whether the current invocation asked for the scaled-down run.
pub fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--smoke")
        || std::env::var("SOFTRATE_SMOKE")
            .map(|v| v == "1")
            .unwrap_or(false)
}

/// Repository-relative results directory (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("SOFTRATE_RESULTS").unwrap_or_else(|_| "results".to_string());
    let p = PathBuf::from(dir);
    let _ = fs::create_dir_all(&p);
    p
}

/// Writes a serializable value as pretty JSON under `results/`.
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) {
    let path = results_dir().join(name);
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = fs::write(&path, s) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                eprintln!("[wrote {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// Prints a header banner for an experiment.
pub fn banner(title: &str) {
    println!("{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

/// The walking traces (Table 4 row 2), cached under `results/traces/`.
/// `n` runs; smoke mode shortens each run.
pub fn cached_walking_traces(n: usize, smoke: bool) -> Vec<Arc<LinkTrace>> {
    let recipe = if smoke {
        WalkingRecipe {
            duration: 2.0,
            ..Default::default()
        }
    } else {
        WalkingRecipe::default()
    };
    let tag = if smoke { "smoke" } else { "full" };
    (0..n)
        .map(|run| {
            let path = results_dir().join(format!("traces/walking-{tag}-{run}.json"));
            Arc::new(load_or_generate(path, || walking_trace(run, &recipe)))
        })
        .collect()
}

/// The static short-range traces (Table 4 row 5), cached.
pub fn cached_static_short_traces(n: usize, smoke: bool) -> Vec<Arc<LinkTrace>> {
    let recipe = if smoke {
        StaticShortRecipe {
            duration: 2.0,
            ..Default::default()
        }
    } else {
        StaticShortRecipe::default()
    };
    let tag = if smoke { "smoke" } else { "full" };
    (0..n)
        .map(|run| {
            let path = results_dir().join(format!("traces/static-short-{tag}-{run}.json"));
            Arc::new(load_or_generate(path, || static_short_trace(run, &recipe)))
        })
        .collect()
}

/// Geometric-mean helper used when aggregating normalized throughputs.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let s: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (s / values.len() as f64).exp()
}

/// Mean and (population) standard deviation.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
    (mean, var.sqrt())
}

/// Ensures a file's parent directory exists (for custom outputs).
pub fn ensure_parent(path: &Path) {
    if let Some(p) = path.parent() {
        let _ = fs::create_dir_all(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[1.0, 3.0]);
        assert_eq!(m, 2.0);
        assert_eq!(s, 1.0);
    }

    #[test]
    fn results_dir_exists() {
        let d = results_dir();
        assert!(d.exists());
    }
}
