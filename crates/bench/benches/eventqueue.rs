//! Criterion micro-benchmarks of the discrete-event queue: push/pop churn
//! is the hot loop of the multi-cell spatial simulator (a few events in
//! flight per station, hundreds of stations, minutes of sim time), so its
//! throughput — and the effect of preallocating with `with_capacity` —
//! gets pinned down here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

use softrate_sim::event::EventQueue;

/// Deterministic pseudo-times with no ordering pattern.
fn times(n: usize) -> Vec<f64> {
    let mut x: u64 = 0x243F_6A88_85A3_08D3;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 11) as f64 / (1u64 << 53) as f64
        })
        .collect()
}

fn bench_eventqueue(c: &mut Criterion) {
    let mut g = c.benchmark_group("eventqueue");
    g.measurement_time(Duration::from_secs(2)).sample_size(30);

    // Fill-then-drain: the cost of building and consuming a backlog.
    for n in [1_000usize, 100_000] {
        let ts = times(n);
        g.throughput(Throughput::Elements(2 * n as u64));
        g.bench_with_input(BenchmarkId::new("fill_drain_new", n), &ts, |b, ts| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for (i, &t) in ts.iter().enumerate() {
                    q.schedule(t, i as u32);
                }
                let mut acc = 0u64;
                while let Some(e) = q.pop() {
                    acc = acc.wrapping_add(e.event as u64);
                }
                acc
            })
        });
        g.bench_with_input(
            BenchmarkId::new("fill_drain_with_capacity", n),
            &ts,
            |b, ts| {
                b.iter(|| {
                    let mut q = EventQueue::with_capacity(ts.len());
                    for (i, &t) in ts.iter().enumerate() {
                        q.schedule(t, i as u32);
                    }
                    let mut acc = 0u64;
                    while let Some(e) = q.pop() {
                        acc = acc.wrapping_add(e.event as u64);
                    }
                    acc
                })
            },
        );
    }

    // Steady-state churn: the simulator's actual shape — a bounded number
    // of pending events, every pop scheduling a successor.
    for pending in [256usize, 4_096] {
        let ts = times(pending);
        g.throughput(Throughput::Elements(100_000));
        g.bench_with_input(BenchmarkId::new("churn", pending), &ts, |b, ts| {
            b.iter(|| {
                let mut q = EventQueue::with_capacity(ts.len() + 1);
                for (i, &t) in ts.iter().enumerate() {
                    q.schedule(t, i as u32);
                }
                let mut acc = 0u64;
                for _ in 0..100_000u32 {
                    let e = q.pop().expect("queue stays populated");
                    acc = acc.wrapping_add(e.event as u64);
                    q.schedule_in(1e-3, e.event);
                }
                acc
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_eventqueue);
criterion_main!(benches);
