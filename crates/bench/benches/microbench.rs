//! Criterion micro-benchmarks of the reproduction's hot paths: the
//! BCJR decoder (SoftPHY hint source), soft demapping, encoding, fading
//! synthesis, the collision detector, the full link probe and a complete
//! one-second network simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use std::time::Duration;

use softrate_channel::link::{Link, LinkConfig};
use softrate_channel::model::FadingSpec;
use softrate_core::collision::CollisionDetector;
use softrate_core::hints::FrameHints;
use softrate_core::recovery::FrameArq;
use softrate_core::thresholds::RateThresholds;
use softrate_phy::bcjr::BcjrDecoder;
use softrate_phy::bits::{bytes_to_bits, deterministic_payload};
use softrate_phy::complex::Complex;
use softrate_phy::convolutional::encode;
use softrate_phy::modulation::{demap_soft, DemapMethod};
use softrate_phy::ofdm::SIMULATION;
use softrate_phy::rates::{Modulation, PAPER_RATES};
use softrate_phy::viterbi::viterbi_decode;
use softrate_sim::config::{AdapterKind, SimConfig};
use softrate_sim::netsim::NetSim;
use softrate_trace::schema::{LinkTrace, TraceEntry};

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    for bytes in [100usize, 960] {
        let info = bytes_to_bits(&deterministic_payload(1, bytes));
        let coded = encode(&info);
        let llrs: Vec<f64> = coded
            .iter()
            .map(|&b| if b == 1 { 4.0 } else { -4.0 })
            .collect();
        g.throughput(Throughput::Elements(info.len() as u64));
        g.bench_with_input(BenchmarkId::new("conv_encode", bytes), &info, |b, info| {
            b.iter(|| encode(info))
        });
        let dec = BcjrDecoder::new();
        g.bench_with_input(BenchmarkId::new("bcjr_decode", bytes), &llrs, |b, llrs| {
            b.iter(|| dec.decode(llrs))
        });
        g.bench_with_input(
            BenchmarkId::new("viterbi_decode", bytes),
            &llrs,
            |b, llrs| b.iter(|| viterbi_decode(llrs)),
        );
    }
    g.finish();
}

fn bench_modulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("modulation");
    g.measurement_time(Duration::from_secs(2)).sample_size(30);
    for (m, name) in [(Modulation::Qpsk, "qpsk"), (Modulation::Qam64, "qam64")] {
        let y = Complex::new(0.41, -0.73);
        g.bench_function(BenchmarkId::new("demap_exact", name), |b| {
            let mut out = Vec::with_capacity(8);
            b.iter(|| {
                out.clear();
                demap_soft(y, Complex::ONE, 0.05, m, DemapMethod::Exact, &mut out);
            })
        });
        g.bench_function(BenchmarkId::new("demap_maxlog", name), |b| {
            let mut out = Vec::with_capacity(8);
            b.iter(|| {
                out.clear();
                demap_soft(y, Complex::ONE, 0.05, m, DemapMethod::MaxLog, &mut out);
            })
        });
    }
    g.finish();
}

fn bench_channel(c: &mut Criterion) {
    let mut g = c.benchmark_group("channel");
    g.measurement_time(Duration::from_secs(2)).sample_size(30);
    let fading = softrate_channel::jakes::JakesFading::new(400.0, 7);
    g.bench_function("jakes_gain", |b| {
        let mut t = 0.0;
        b.iter(|| {
            t += 1e-5;
            fading.gain(t)
        })
    });

    // Full probe (frame build + channel + BCJR receive) at two rates.
    for (idx, name) in [(0usize, "bpsk12"), (5usize, "qam16_34")] {
        g.bench_function(BenchmarkId::new("link_probe_100B", name), |b| {
            let mut cfg = LinkConfig::new(SIMULATION);
            cfg.noise_power_db = -15.0;
            cfg.fading = FadingSpec::Flat { doppler_hz: 40.0 };
            let mut link = Link::new(cfg);
            let mut t = 0.0;
            b.iter(|| {
                t += 0.005;
                link.probe(PAPER_RATES[idx], 100, t, &[], false)
            })
        });
    }
    g.finish();
}

fn bench_core(c: &mut Criterion) {
    let mut g = c.benchmark_group("core");
    g.measurement_time(Duration::from_secs(2)).sample_size(50);
    // Detector over a realistic 60-symbol profile.
    let llrs: Vec<f64> = (0..60 * 96)
        .map(|k| {
            if (20 * 96..30 * 96).contains(&k) {
                0.4
            } else {
                14.0
            }
        })
        .collect();
    let hints = FrameHints::from_llrs(&llrs, 96);
    let det = CollisionDetector::default();
    g.bench_function("collision_detect_60sym", |b| b.iter(|| det.detect(&hints)));

    g.bench_function("threshold_table", |b| {
        b.iter(|| RateThresholds::compute(PAPER_RATES, 11_520, &FrameArq))
    });
    g.finish();
}

fn synthetic_trace() -> Arc<LinkTrace> {
    let entry = |r: usize| TraceEntry {
        t: 0.0,
        rate_idx: r,
        detected: true,
        header_ok: true,
        delivered: r <= 4,
        true_ber: Some((1e-6 * 10f64.powi(r as i32 - 4)).clamp(1e-9, 0.5)),
        softphy_ber: Some((1e-6 * 10f64.powi(r as i32 - 4)).clamp(1e-9, 0.5)),
        snr_est_db: Some(18.0),
        true_snr_db: 18.0,
        probe_bits: 832,
    };
    Arc::new(LinkTrace {
        name: "bench".into(),
        mode_name: "simulation".into(),
        interval: 0.005,
        duration: 0.005,
        series: (0..6).map(|r| vec![entry(r)]).collect(),
        seed: 0,
    })
}

fn bench_netsim(c: &mut Criterion) {
    let mut g = c.benchmark_group("netsim");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    g.bench_function("tcp_1s_softrate_2clients", |b| {
        b.iter(|| {
            let mut cfg = SimConfig::new(AdapterKind::SoftRate, 2);
            cfg.duration = 1.0;
            let traces = (0..4).map(|_| synthetic_trace()).collect();
            NetSim::new(cfg, traces).run()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_codec,
    bench_modulation,
    bench_channel,
    bench_core,
    bench_netsim
);
criterion_main!(benches);
