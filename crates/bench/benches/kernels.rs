//! Criterion micro-benchmarks of the three kernels on the spatial
//! simulator's hot path — the ones the fast-path PR reworked:
//!
//! * `snr_between` — log-distance path loss (distance + `log10`), the
//!   carrier-sense / interference arithmetic the pruning radii avoid;
//! * `Jakes::gain` — the fused single-pass sum-of-sinusoids evaluation
//!   over preinterleaved `(w, phase)` pairs;
//! * `analytic_frame_success` — the closed-form success kernel, raw and
//!   through the exact-key `FrameSuccessMemo` (hit and miss regimes);
//! * the contiguous-lane batch kernels (DESIGN.md §13) — `gain_many`/
//!   `gain_x4`, `ber_success_many`, and `eval_many` — against their
//!   scalar twins, amortized per lane.
//!
//! Numbers here anchor DESIGN.md §7/§13's cost models; the end-to-end
//! effect is tracked by `netscale` / `BENCH_netscale.json`.
//!
//! `SOFTRATE_BENCH_QUICK=1` shrinks every measurement budget to ~100 ms
//! so CI can smoke the bench harness without paying for statistics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use softrate_channel::analytic::{
    analytic_frame_success, ber_success_many, FrameSuccessMemo, OracleBands,
};
use softrate_channel::jakes::JakesFading;
use softrate_net::mobility::MobilitySpec;
use softrate_net::spatial::SpatialSpec;
use softrate_phy::complex::Complex;

/// Per-benchmark measurement budget (quick mode for CI smoke).
fn budget() -> Duration {
    if std::env::var_os("SOFTRATE_BENCH_QUICK").is_some() {
        Duration::from_millis(100)
    } else {
        Duration::from_secs(2)
    }
}

fn params() -> softrate_net::spatial::SpatialParams {
    SpatialSpec {
        ap_cols: 3,
        ap_rows: 3,
        ap_spacing_m: 25.0,
        n_stations: 4,
        snr_ref_db: None,
        path_loss_exp: None,
        sense_snr_db: Some(13.0),
        capture_sir_db: None,
        doppler_hz: None,
        mobility: MobilitySpec::Static,
        roaming: None,
    }
    .resolve()
    .expect("bench spec is valid")
}

fn bench_snr_between(c: &mut Criterion) {
    let mut g = c.benchmark_group("spatial_kernels");
    g.measurement_time(budget()).sample_size(30);
    let p = params();
    let from = softrate_net::geometry::Point { x: 3.7, y: 11.2 };
    g.bench_function("snr_between", |b| {
        let mut x = 0.0f64;
        b.iter(|| {
            x += 0.1;
            let to = softrate_net::geometry::Point {
                x: 40.0 + (x % 17.0),
                y: 20.0 - (x % 9.0),
            };
            p.snr_between(from, to)
        })
    });
    g.bench_function("range_band_inversion", |b| {
        let mut t = 0.0f64;
        b.iter(|| {
            t += 0.25;
            p.range_band(t % 30.0)
        })
    });
    g.finish();
}

fn bench_jakes_gain(c: &mut Criterion) {
    let mut g = c.benchmark_group("spatial_kernels");
    g.measurement_time(budget()).sample_size(30);
    for (doppler, name) in [(2.0, "static_2hz"), (400.0, "vehicular_400hz")] {
        let fading = JakesFading::new(doppler, 7);
        g.bench_function(BenchmarkId::new("jakes_gain_fused", name), |b| {
            let mut t = 0.0;
            b.iter(|| {
                t += 1e-5;
                fading.gain(t)
            })
        });
    }
    g.finish();
}

fn bench_frame_success(c: &mut Criterion) {
    let mut g = c.benchmark_group("spatial_kernels");
    g.measurement_time(budget()).sample_size(30);
    g.bench_function("analytic_frame_success_raw", |b| {
        let mut k = 0usize;
        b.iter(|| {
            k = k.wrapping_add(1);
            analytic_frame_success(5.0 + (k % 257) as f64 * 0.1, k % 6, 11_520)
        })
    });
    // Exact-key memo: the static-link regime (few distinct SNRs) hits,
    // the mobile regime (fresh SNR bits every call) misses.
    g.bench_function("analytic_frame_success_memo_hit", |b| {
        let mut memo = FrameSuccessMemo::new();
        let mut k = 0usize;
        b.iter(|| {
            k = k.wrapping_add(1);
            memo.success(5.0 + (k % 8) as f64, k % 6, 11_520)
        })
    });
    g.bench_function("analytic_frame_success_memo_miss", |b| {
        let mut memo = FrameSuccessMemo::new();
        let mut snr = 0.0f64;
        b.iter(|| {
            snr += 1.3e-4;
            memo.success(5.0 + (snr % 25.0), 3, 11_520)
        })
    });
    g.bench_function("oracle_bands_best_rate", |b| {
        let bands = OracleBands::new(11_520);
        let mut snr = 0.0f64;
        b.iter(|| {
            snr += 1.7e-3;
            bands.best_rate(-5.0 + (snr % 40.0))
        })
    });
    g.finish();
}

fn bench_batched_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("batched_kernels");
    g.measurement_time(budget()).sample_size(30);
    // Per-lane cost of the batch Jakes kernels vs the scalar loop, over
    // a cohort-sized slab of 16 instants.
    const W: usize = 16;
    let fading = JakesFading::new(400.0, 7);
    let lanes: Vec<JakesFading> = (0..4).map(|s| JakesFading::new(400.0, s)).collect();
    g.bench_function(BenchmarkId::new("jakes_gain_scalar_loop", W), |b| {
        let mut t = 0.0f64;
        let mut out = vec![Complex::new(0.0, 0.0); W];
        b.iter(|| {
            t += 1e-5;
            for (i, o) in out.iter_mut().enumerate() {
                *o = fading.gain(t + i as f64 * 1e-4);
            }
            out[W - 1]
        })
    });
    g.bench_function(BenchmarkId::new("jakes_gain_many", W), |b| {
        let mut t = 0.0f64;
        let mut ts = vec![0.0f64; W];
        let mut out = vec![Complex::new(0.0, 0.0); W];
        b.iter(|| {
            t += 1e-5;
            for (i, x) in ts.iter_mut().enumerate() {
                *x = t + i as f64 * 1e-4;
            }
            fading.gain_many(&ts, &mut out);
            out[W - 1]
        })
    });
    g.bench_function("jakes_gain_x4", |b| {
        let mut t = 0.0f64;
        b.iter(|| {
            t += 1e-5;
            JakesFading::gain_x4(
                [&lanes[0], &lanes[1], &lanes[2], &lanes[3]],
                [t, t + 1e-4, t + 2e-4, t + 3e-4],
            )
        })
    });
    // The BER/success batch kernel and the memoized probe, per lane.
    let mut snrs = vec![0.0f64; W];
    let rates: Vec<u32> = (0..W as u32).map(|i| i % 6).collect();
    let bits = vec![11_520u64; W];
    g.bench_function(BenchmarkId::new("ber_success_many", W), |b| {
        let mut base = 0.0f64;
        let mut out = vec![(0.0, 0.0); W];
        b.iter(|| {
            base += 1.3e-4;
            for (i, s) in snrs.iter_mut().enumerate() {
                *s = 5.0 + ((base + i as f64 * 0.37) % 25.0);
            }
            ber_success_many(&snrs, &rates, &bits, &mut out);
            out[W - 1]
        })
    });
    g.bench_function(BenchmarkId::new("eval_many_memo_miss", W), |b| {
        let mut memo = FrameSuccessMemo::new();
        let mut base = 0.0f64;
        let mut out = vec![(0.0, 0.0); W];
        b.iter(|| {
            base += 1.3e-4;
            for (i, s) in snrs.iter_mut().enumerate() {
                *s = 5.0 + ((base + i as f64 * 0.37) % 25.0);
            }
            memo.eval_many(&snrs, &rates, &bits, &mut out);
            out[W - 1]
        })
    });
    g.bench_function(BenchmarkId::new("eval_many_memo_hit", W), |b| {
        let mut memo = FrameSuccessMemo::new();
        for (i, s) in snrs.iter_mut().enumerate() {
            *s = 5.0 + i as f64 * 0.37;
        }
        let mut out = vec![(0.0, 0.0); W];
        memo.eval_many(&snrs, &rates, &bits, &mut out);
        b.iter(|| {
            memo.eval_many(&snrs, &rates, &bits, &mut out);
            out[W - 1]
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_snr_between,
    bench_jakes_gain,
    bench_frame_success,
    bench_batched_kernels
);
criterion_main!(benches);
