//! Criterion micro-benchmarks of the three kernels on the spatial
//! simulator's hot path — the ones the fast-path PR reworked:
//!
//! * `snr_between` — log-distance path loss (distance + `log10`), the
//!   carrier-sense / interference arithmetic the pruning radii avoid;
//! * `Jakes::gain` — the fused single-pass sum-of-sinusoids evaluation
//!   over preinterleaved `(w, phase)` pairs;
//! * `analytic_frame_success` — the closed-form success kernel, raw and
//!   through the exact-key `FrameSuccessMemo` (hit and miss regimes).
//!
//! Numbers here anchor DESIGN.md §7's cost model; the end-to-end effect
//! is tracked by `netscale` / `BENCH_netscale.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use softrate_channel::analytic::{analytic_frame_success, FrameSuccessMemo, OracleBands};
use softrate_channel::jakes::JakesFading;
use softrate_net::mobility::MobilitySpec;
use softrate_net::spatial::SpatialSpec;

fn params() -> softrate_net::spatial::SpatialParams {
    SpatialSpec {
        ap_cols: 3,
        ap_rows: 3,
        ap_spacing_m: 25.0,
        n_stations: 4,
        snr_ref_db: None,
        path_loss_exp: None,
        sense_snr_db: Some(13.0),
        capture_sir_db: None,
        doppler_hz: None,
        mobility: MobilitySpec::Static,
        roaming: None,
    }
    .resolve()
    .expect("bench spec is valid")
}

fn bench_snr_between(c: &mut Criterion) {
    let mut g = c.benchmark_group("spatial_kernels");
    g.measurement_time(Duration::from_secs(2)).sample_size(30);
    let p = params();
    let from = softrate_net::geometry::Point { x: 3.7, y: 11.2 };
    g.bench_function("snr_between", |b| {
        let mut x = 0.0f64;
        b.iter(|| {
            x += 0.1;
            let to = softrate_net::geometry::Point {
                x: 40.0 + (x % 17.0),
                y: 20.0 - (x % 9.0),
            };
            p.snr_between(from, to)
        })
    });
    g.bench_function("range_band_inversion", |b| {
        let mut t = 0.0f64;
        b.iter(|| {
            t += 0.25;
            p.range_band(t % 30.0)
        })
    });
    g.finish();
}

fn bench_jakes_gain(c: &mut Criterion) {
    let mut g = c.benchmark_group("spatial_kernels");
    g.measurement_time(Duration::from_secs(2)).sample_size(30);
    for (doppler, name) in [(2.0, "static_2hz"), (400.0, "vehicular_400hz")] {
        let fading = JakesFading::new(doppler, 7);
        g.bench_function(BenchmarkId::new("jakes_gain_fused", name), |b| {
            let mut t = 0.0;
            b.iter(|| {
                t += 1e-5;
                fading.gain(t)
            })
        });
    }
    g.finish();
}

fn bench_frame_success(c: &mut Criterion) {
    let mut g = c.benchmark_group("spatial_kernels");
    g.measurement_time(Duration::from_secs(2)).sample_size(30);
    g.bench_function("analytic_frame_success_raw", |b| {
        let mut k = 0usize;
        b.iter(|| {
            k = k.wrapping_add(1);
            analytic_frame_success(5.0 + (k % 257) as f64 * 0.1, k % 6, 11_520)
        })
    });
    // Exact-key memo: the static-link regime (few distinct SNRs) hits,
    // the mobile regime (fresh SNR bits every call) misses.
    g.bench_function("analytic_frame_success_memo_hit", |b| {
        let mut memo = FrameSuccessMemo::new();
        let mut k = 0usize;
        b.iter(|| {
            k = k.wrapping_add(1);
            memo.success(5.0 + (k % 8) as f64, k % 6, 11_520)
        })
    });
    g.bench_function("analytic_frame_success_memo_miss", |b| {
        let mut memo = FrameSuccessMemo::new();
        let mut snr = 0.0f64;
        b.iter(|| {
            snr += 1.3e-4;
            memo.success(5.0 + (snr % 25.0), 3, 11_520)
        })
    });
    g.bench_function("oracle_bands_best_rate", |b| {
        let bands = OracleBands::new(11_520);
        let mut snr = 0.0f64;
        b.iter(|| {
            snr += 1.7e-3;
            bands.best_rate(-5.0 + (snr % 40.0))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_snr_between,
    bench_jakes_gain,
    bench_frame_success
);
criterion_main!(benches);
