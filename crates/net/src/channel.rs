//! Streaming channel sampling: per-link frame fates drawn on demand.
//!
//! The paper's methodology (§6.1) precomputes a [`LinkTrace`] per link —
//! every `(time, rate)` probe materialized up front. That is exactly right
//! for a handful of links and infeasible for a multi-cell deployment with
//! hundreds of stations roaming between APs. A [`StreamingLink`] replaces
//! the trace with O(1) state: a seeded Jakes fading process (the *same*
//! Zheng–Xiao model the trace generators use, a pure function of absolute
//! time) plus a per-link SplitMix64 stream for the frame-success coin. The
//! fate of a frame is computed at transmit time from the instantaneous SNR
//! through the calibrated analytic SNR→BER map — the identical model the
//! scenario engine's `Analytic` traces are built from, so single-cell
//! results line up between the two backends.
//!
//! [`LinkTrace`]: softrate_trace::schema::LinkTrace

use softrate_channel::analytic::{
    analytic_ber, frame_success_prob, FrameSuccessMemo, DETECT_SNR_DB, HEADER_FAIL_BER,
};
use softrate_channel::jakes::JakesFading;
use softrate_phy::complex::Complex;
use softrate_trace::schema::FrameFate;

use crate::stream::SplitMix64;

/// Deep-fade floor: envelope power below -40 dB is indistinguishable
/// (nothing decodes either way), matching the analytic trace generator.
const ENVELOPE_FLOOR: f64 = 1e-4;

/// One unidirectional wireless link sampled on demand.
///
/// The fading process is keyed by the link's *endpoints* (it is a physical
/// field between two places), while the fate stream is additionally keyed
/// by association epoch, so a station that roams away and back never
/// replays coin flips.
#[derive(Debug, Clone)]
pub struct StreamingLink {
    jakes: JakesFading,
    stream: SplitMix64,
}

impl StreamingLink {
    /// A link whose fading derives from `fading_seed` and whose fate coin
    /// stream derives from `stream_seed`.
    pub fn new(fading_seed: u64, stream_seed: u64, doppler_hz: f64) -> Self {
        StreamingLink {
            jakes: JakesFading::new(doppler_hz, fading_seed),
            stream: SplitMix64::new(stream_seed),
        }
    }

    /// Small-scale fading gain at absolute time `t`, dB (floored).
    pub fn envelope_db(&self, t: f64) -> f64 {
        10.0 * self.jakes.gain(t).norm_sqr().max(ENVELOPE_FLOOR).log10()
    }

    /// Instantaneous SNR at `t` given the link's mean (path-loss) SNR.
    pub fn snr_db(&self, mean_snr_db: f64, t: f64) -> f64 {
        mean_snr_db + self.envelope_db(t)
    }

    /// [`StreamingLink::envelope_db`] over many times on one link:
    /// `out[i] = self.envelope_db(ts[i])` bit for bit, via the batched
    /// Jakes kernel.
    pub fn envelope_db_many(&self, ts: &[f64], out: &mut [f64]) {
        let mut gains = [Complex::new(0.0, 0.0); 4];
        for (t4, o4) in ts.chunks(4).zip(out.chunks_mut(4)) {
            let g = &mut gains[..t4.len()];
            self.jakes.gain_many(t4, g);
            for (o, g) in o4.iter_mut().zip(g.iter()) {
                *o = 10.0 * g.norm_sqr().max(ENVELOPE_FLOOR).log10();
            }
        }
    }

    /// Four *distinct* links sampled at four times in one pass —
    /// `envelope_db_x4(ls, ts)[l] == ls[l].envelope_db(ts[l])` bit for
    /// bit. The same-tick cohort prewarm is exactly this shape (one
    /// tick, four stations' links).
    pub fn envelope_db_x4(ls: [&StreamingLink; 4], ts: [f64; 4]) -> [f64; 4] {
        let g = JakesFading::gain_x4([&ls[0].jakes, &ls[1].jakes, &ls[2].jakes, &ls[3].jakes], ts);
        let mut out = [0.0f64; 4];
        for l in 0..4 {
            out[l] = 10.0 * g[l].norm_sqr().max(ENVELOPE_FLOOR).log10();
        }
        out
    }

    /// Consumes and returns the link's next fate coin (uniform `[0, 1)`).
    ///
    /// The fast path draws the coin itself so it can resolve the fate
    /// through [`fate_from_draw`] with a memoized envelope — one draw per
    /// attempt either way, so the coin sequence is unchanged.
    pub fn draw(&mut self) -> f64 {
        self.stream.next_f64()
    }

    /// Draws the interference-free fate of a `frame_bits`-bit frame sent at
    /// `t` and `rate_idx` on a link whose mean SNR is `mean_snr_db`.
    ///
    /// Consumes exactly one draw from the link's stream per call, so the
    /// sequence of fates is a deterministic function of the call order —
    /// which the single-threaded event loop makes deterministic in turn.
    pub fn fate(
        &mut self,
        mean_snr_db: f64,
        t: f64,
        rate_idx: usize,
        frame_bits: usize,
    ) -> FrameFate {
        let u = self.stream.next_f64();
        let snr = self.snr_db(mean_snr_db, t);
        fate_from_draw(u, snr, rate_idx, frame_bits)
    }
}

/// The undetectable-frame fate and the detected-frame assembly shared by
/// both fate resolvers below — one body, so the memoized and unmemoized
/// paths cannot drift apart.
fn fate_from_parts(u: f64, snr: f64, ber_and_p: Option<(f64, f64)>) -> FrameFate {
    let Some((ber, p)) = ber_and_p else {
        return FrameFate {
            detected: false,
            header_ok: false,
            delivered: false,
            ber_feedback: None,
            snr_feedback_db: None,
        };
    };
    let header_ok = ber < HEADER_FAIL_BER;
    FrameFate {
        detected: true,
        header_ok,
        delivered: header_ok && u < p,
        ber_feedback: header_ok.then_some(ber),
        snr_feedback_db: header_ok.then_some(snr),
    }
}

/// Resolves a frame fate from an already-drawn coin `u` and an
/// already-computed instantaneous SNR — the exact body
/// [`StreamingLink::fate`] has always applied, split out so the spatial
/// fast path can feed it a memoized envelope (and memoized BER/success
/// values that are themselves bit-identical to the kernels).
pub fn fate_from_draw(u: f64, snr: f64, rate_idx: usize, frame_bits: usize) -> FrameFate {
    let parts = (snr >= DETECT_SNR_DB).then(|| {
        let ber = analytic_ber(snr, rate_idx);
        (ber, frame_success_prob(ber, frame_bits))
    });
    fate_from_parts(u, snr, parts)
}

/// [`fate_from_draw`] with the BER/success pair served by a
/// [`FrameSuccessMemo`] — identical output (the memo returns the exact
/// kernel values), cheaper on exact-SNR repeats.
pub fn fate_from_draw_memo(
    u: f64,
    snr: f64,
    rate_idx: usize,
    frame_bits: usize,
    memo: &mut FrameSuccessMemo,
) -> FrameFate {
    let parts = (snr >= DETECT_SNR_DB).then(|| memo.ber_and_success(snr, rate_idx, frame_bits));
    fate_from_parts(u, snr, parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_snr_always_delivers() {
        let mut l = StreamingLink::new(1, 2, 0.0);
        // Mean 60 dB: even a deep fade leaves tens of dB of margin.
        for k in 0..50 {
            let f = l.fate(60.0, k as f64 * 0.01, 5, 11_520);
            assert!(f.detected && f.header_ok && f.delivered, "k={k}");
            assert!(f.ber_feedback.unwrap() <= 1e-9 * 1.001);
        }
    }

    #[test]
    fn deep_noise_is_silent() {
        let mut l = StreamingLink::new(3, 4, 0.0);
        let f = l.fate(-30.0, 0.0, 0, 8000);
        assert!(!f.detected && !f.delivered && f.ber_feedback.is_none());
    }

    #[test]
    fn fates_are_deterministic_and_stream_keyed() {
        let mut a = StreamingLink::new(9, 10, 40.0);
        let mut b = StreamingLink::new(9, 10, 40.0);
        for k in 0..100 {
            let t = k as f64 * 0.002;
            assert_eq!(a.fate(12.0, t, 3, 11_520), b.fate(12.0, t, 3, 11_520));
        }
        // A different stream seed re-flips the coins (same fading).
        let mut c = StreamingLink::new(9, 11, 40.0);
        let mut diff = 0;
        let mut a2 = StreamingLink::new(9, 10, 40.0);
        for k in 0..200 {
            let t = k as f64 * 0.002;
            if a2.fate(9.0, t, 2, 11_520).delivered != c.fate(9.0, t, 2, 11_520).delivered {
                diff += 1;
            }
        }
        assert!(diff > 0, "independent streams must diverge somewhere");
    }

    #[test]
    fn fading_modulates_fate_over_time() {
        let mut l = StreamingLink::new(21, 22, 100.0);
        let mut delivered = 0;
        let mut lost = 0;
        for k in 0..400 {
            let f = l.fate(12.0, k as f64 * 0.005, 3, 11_520);
            if f.delivered {
                delivered += 1;
            } else {
                lost += 1;
            }
        }
        assert!(delivered > 0 && lost > 0, "{delivered} / {lost}");
    }

    #[test]
    fn batched_envelopes_match_scalar_bit_for_bit() {
        let links: Vec<StreamingLink> = (0..4)
            .map(|k| StreamingLink::new(30 + k, 40 + k, 55.0))
            .collect();
        for n in [0usize, 1, 3, 4, 5, 9] {
            let ts: Vec<f64> = (0..n).map(|k| k as f64 * 0.0041).collect();
            let mut out = vec![0.0; n];
            links[0].envelope_db_many(&ts, &mut out);
            for (t, o) in ts.iter().zip(&out) {
                assert_eq!(o.to_bits(), links[0].envelope_db(*t).to_bits());
            }
        }
        let refs = [&links[0], &links[1], &links[2], &links[3]];
        let ts = [0.01, 0.21, 0.007, 1.33];
        let e = StreamingLink::envelope_db_x4(refs, ts);
        for l in 0..4 {
            assert_eq!(
                e[l].to_bits(),
                refs[l].envelope_db(ts[l]).to_bits(),
                "lane {l}"
            );
        }
    }

    #[test]
    fn envelope_matches_jakes_floor() {
        let l = StreamingLink::new(5, 6, 40.0);
        for k in 0..100 {
            let db = l.envelope_db(k as f64 * 0.003);
            assert!(db >= -40.0 - 1e-9);
            assert!(db < 15.0, "Rayleigh peaks are bounded in practice: {db}");
        }
    }
}
