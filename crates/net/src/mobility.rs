//! Station mobility models: position as a *pure function of time*.
//!
//! Every model computes `position_at(seed, t)` deterministically with no
//! retained state, which is what lets the streaming channel, the roaming
//! logic, and the omniscient oracle all agree on where a station is without
//! sharing mutable state — and what keeps multi-cell runs byte-identical
//! across thread counts.

use serde::{Deserialize, Serialize};

use crate::geometry::{Point, Rect};
use crate::stream::{mix_seed, SplitMix64};

/// How stations move. All speeds are meters/second.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MobilitySpec {
    /// Stations stay where they spawn.
    Static,
    /// Straight-line motion at constant speed along a common heading
    /// (degrees from the +x axis), bouncing off the area walls — the
    /// vehicular drive-by model.
    Linear {
        /// Speed, m/s.
        speed_mps: f64,
        /// Heading in degrees (0 = +x, 90 = +y).
        heading_deg: f64,
    },
    /// The random-waypoint model: pick a uniform waypoint, walk to it at
    /// constant speed, pause, repeat. Waypoints derive from the station
    /// seed, so the whole trajectory is a pure function of time.
    RandomWaypoint {
        /// Walking speed, m/s.
        speed_mps: f64,
        /// Pause at each waypoint, seconds.
        pause_s: f64,
    },
}

impl MobilitySpec {
    /// The model's nominal speed (0 for static).
    pub fn speed_mps(&self) -> f64 {
        match *self {
            MobilitySpec::Static => 0.0,
            MobilitySpec::Linear { speed_mps, .. }
            | MobilitySpec::RandomWaypoint { speed_mps, .. } => speed_mps,
        }
    }

    /// The station's spawn point: uniform in `bounds` from the seed.
    pub fn spawn(&self, bounds: &Rect, seed: u64) -> Point {
        let mut s = SplitMix64::new(mix_seed(seed, 0x5057_4E00));
        bounds.lerp(s.next_f64(), s.next_f64())
    }

    /// The station's position at absolute time `t` (seconds).
    pub fn position_at(&self, bounds: &Rect, seed: u64, t: f64) -> Point {
        let p0 = self.spawn(bounds, seed);
        match *self {
            MobilitySpec::Static => p0,
            MobilitySpec::Linear {
                speed_mps,
                heading_deg,
            } => {
                if speed_mps <= 0.0 {
                    return p0;
                }
                let h = heading_deg.to_radians();
                let dx = (p0.x - bounds.min.x) + speed_mps * h.cos() * t;
                let dy = (p0.y - bounds.min.y) + speed_mps * h.sin() * t;
                bounds.fold(dx, dy)
            }
            MobilitySpec::RandomWaypoint { speed_mps, pause_s } => {
                if speed_mps <= 0.0 {
                    return p0;
                }
                let mut pos = p0;
                let mut cursor = 0.0;
                let mut leg: u64 = 0;
                loop {
                    let mut draw = SplitMix64::new(mix_seed(seed, 0x5750_0000 | (leg + 1)));
                    let wp = bounds.lerp(draw.next_f64(), draw.next_f64());
                    // Minimum leg time guarantees progress even for a
                    // pathological zero-length leg with zero pause.
                    let travel = (pos.dist(wp) / speed_mps).max(1e-6);
                    if t < cursor + travel {
                        let f = (t - cursor) / travel;
                        return Point {
                            x: pos.x + (wp.x - pos.x) * f,
                            y: pos.y + (wp.y - pos.y) * f,
                        };
                    }
                    cursor += travel;
                    pos = wp;
                    if t < cursor + pause_s {
                        return pos;
                    }
                    cursor += pause_s;
                    leg += 1;
                }
            }
        }
    }
}

/// A resumable position cursor for non-decreasing query times.
///
/// [`MobilitySpec::position_at`] is pure but, for the random-waypoint
/// model, walks every leg from `t = 0` on each call — O(elapsed legs) per
/// query, which would make the spatial simulator's hot loops slow down as
/// sim time grows. A walker caches the current leg and resumes from it:
/// with the non-decreasing query times a discrete-event loop produces, a
/// whole run costs O(total legs) amortized. On top of the resume point,
/// the walker caches every value that is constant for the lifetime of a
/// leg (the spawn point, the current waypoint and travel time, the linear
/// model's velocity components), so the common query is a pure
/// interpolation with no RNG or trigonometric work. Positions are
/// identical to `position_at` (pinned by tests); an out-of-order query
/// falls back to the pure walk.
///
/// A walker is bound to one `(spec, bounds)` pair for its lifetime — the
/// caches assume the model never changes between queries (which is how
/// the simulator uses it: one walker per station per run).
#[derive(Debug, Clone)]
pub struct MobilityWalker {
    seed: u64,
    /// Random-waypoint resume state: the current leg, the time it starts,
    /// and the position at its start (`None` until first use).
    leg: u64,
    cursor: f64,
    pos: Option<Point>,
    /// Cached spawn point (identical to `spec.spawn`, computed once).
    spawn: Option<Point>,
    /// Current random-waypoint leg target and travel time, valid whenever
    /// `pos` is `Some` (recomputed at each leg advance, not per query).
    wp: Point,
    travel: f64,
    /// Cached linear-model velocity components `(speed·cos h, speed·sin h)`.
    vel: Option<(f64, f64)>,
}

impl MobilityWalker {
    /// A walker for the station with this mobility seed.
    pub fn new(seed: u64) -> Self {
        MobilityWalker {
            seed,
            leg: 0,
            cursor: 0.0,
            pos: None,
            spawn: None,
            wp: Point { x: 0.0, y: 0.0 },
            travel: 0.0,
            vel: None,
        }
    }

    /// The station's spawn point (cached; equals `spec.spawn`).
    fn spawn(&mut self, spec: &MobilitySpec, bounds: &Rect) -> Point {
        match self.spawn {
            Some(p) => p,
            None => {
                let p = spec.spawn(bounds, self.seed);
                self.spawn = Some(p);
                p
            }
        }
    }

    /// Position at time `t`; equals `spec.position_at(bounds, seed, t)`.
    pub fn position(&mut self, spec: &MobilitySpec, bounds: &Rect, t: f64) -> Point {
        let (speed_mps, pause_s) = match *spec {
            MobilitySpec::Static => return self.spawn(spec, bounds),
            MobilitySpec::Linear {
                speed_mps,
                heading_deg,
            } => {
                let p0 = self.spawn(spec, bounds);
                if speed_mps <= 0.0 {
                    return p0;
                }
                // `speed·cos h` / `speed·sin h` are cached; multiplying the
                // cached products by `t` performs the same operations in
                // the same order as the pure walk.
                let (vx, vy) = *self.vel.get_or_insert_with(|| {
                    let h = heading_deg.to_radians();
                    (speed_mps * h.cos(), speed_mps * h.sin())
                });
                let dx = (p0.x - bounds.min.x) + vx * t;
                let dy = (p0.y - bounds.min.y) + vy * t;
                return bounds.fold(dx, dy);
            }
            MobilitySpec::RandomWaypoint { speed_mps, pause_s } => (speed_mps, pause_s),
        };
        if speed_mps <= 0.0 {
            return spec.position_at(bounds, self.seed, t);
        }
        if t < self.cursor {
            return spec.position_at(bounds, self.seed, t); // out of order
        }
        let mut pos = match self.pos {
            Some(p) => p,
            None => {
                // First query: enter leg 0 and cache its target.
                let p = self.spawn(spec, bounds);
                self.pos = Some(p);
                let (wp, travel) = draw_leg(self.seed, self.leg, bounds, p, speed_mps);
                self.wp = wp;
                self.travel = travel;
                p
            }
        };
        loop {
            if t < self.cursor + self.travel {
                let f = (t - self.cursor) / self.travel;
                return Point {
                    x: pos.x + (self.wp.x - pos.x) * f,
                    y: pos.y + (self.wp.y - pos.y) * f,
                };
            }
            if t < self.cursor + self.travel + pause_s {
                return self.wp;
            }
            // Leg fully behind `t`: advance the resume point and cache the
            // next leg's target and travel time.
            self.cursor += self.travel + pause_s;
            self.leg += 1;
            self.pos = Some(self.wp);
            pos = self.wp;
            let (wp, travel) = draw_leg(self.seed, self.leg, bounds, pos, speed_mps);
            self.wp = wp;
            self.travel = travel;
        }
    }
}

/// Waypoint and travel time of random-waypoint leg `leg` starting at
/// `pos` — the identical draw `MobilitySpec::position_at` performs.
fn draw_leg(seed: u64, leg: u64, bounds: &Rect, pos: Point, speed_mps: f64) -> (Point, f64) {
    let mut draw = SplitMix64::new(mix_seed(seed, 0x5750_0000 | (leg + 1)));
    let wp = bounds.lerp(draw.next_f64(), draw.next_f64());
    let travel = (pos.dist(wp) / speed_mps).max(1e-6);
    (wp, travel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::grid_bounds;

    fn bounds() -> Rect {
        grid_bounds(2, 1, 30.0)
    }

    #[test]
    fn static_stations_do_not_move() {
        let b = bounds();
        let m = MobilitySpec::Static;
        let p = m.position_at(&b, 7, 0.0);
        for k in 1..10 {
            assert_eq!(m.position_at(&b, 7, k as f64 * 3.3), p);
        }
    }

    #[test]
    fn spawn_is_inside_and_seed_dependent() {
        let b = bounds();
        let m = MobilitySpec::Static;
        let mut distinct = 0;
        for s in 0..50u64 {
            let p = m.position_at(&b, s, 0.0);
            assert!(p.x >= b.min.x && p.x <= b.max.x);
            assert!(p.y >= b.min.y && p.y <= b.max.y);
            if p.dist(m.position_at(&b, (s + 1) % 50, 0.0)) > 1e-9 {
                distinct += 1;
            }
        }
        assert!(distinct > 40, "spawns must spread out");
    }

    #[test]
    fn linear_moves_at_speed_and_stays_in_bounds() {
        let b = bounds();
        let m = MobilitySpec::Linear {
            speed_mps: 10.0,
            heading_deg: 0.0,
        };
        let p0 = m.position_at(&b, 3, 0.0);
        let p1 = m.position_at(&b, 3, 1.0);
        // Along +x before any bounce the distance covered is exactly 10 m
        // (modulo a possible wall reflection, which preserves |dx| here
        // only if no bounce happened; allow either).
        assert!(p0.dist(p1) <= 10.0 + 1e-9);
        assert!(p0.dist(p1) > 0.0);
        for k in 0..200 {
            let p = m.position_at(&b, 3, k as f64 * 0.7);
            assert!(p.x >= b.min.x - 1e-9 && p.x <= b.max.x + 1e-9, "{p:?}");
        }
    }

    #[test]
    fn waypoint_walk_is_continuous_and_pure() {
        let b = bounds();
        let m = MobilitySpec::RandomWaypoint {
            speed_mps: 1.5,
            pause_s: 2.0,
        };
        let dt = 0.1;
        let mut prev = m.position_at(&b, 11, 0.0);
        for k in 1..600 {
            let t = k as f64 * dt;
            let p = m.position_at(&b, 11, t);
            assert!(
                prev.dist(p) <= 1.5 * dt + 1e-9,
                "speed violated at t={t}: {} m in {dt} s",
                prev.dist(p)
            );
            assert!(p.x >= b.min.x && p.x <= b.max.x);
            assert!(p.y >= b.min.y && p.y <= b.max.y);
            prev = p;
        }
        // Pure: same (seed, t) twice gives the identical point.
        assert_eq!(m.position_at(&b, 11, 17.3), m.position_at(&b, 11, 17.3));
        // And the station actually covers ground.
        let a = m.position_at(&b, 11, 0.0);
        let z = m.position_at(&b, 11, 60.0);
        assert!(
            a.dist(z) > 0.0 || {
                // Could coincidentally return near the start; displacement at
                // some sampled time must still be substantial.
                (1..60).any(|k| a.dist(m.position_at(&b, 11, k as f64)) > 3.0)
            }
        );
    }

    #[test]
    fn walker_matches_pure_walk_for_every_model() {
        let b = bounds();
        let models = [
            MobilitySpec::Static,
            MobilitySpec::Linear {
                speed_mps: 8.0,
                heading_deg: 30.0,
            },
            MobilitySpec::RandomWaypoint {
                speed_mps: 1.5,
                pause_s: 2.0,
            },
            MobilitySpec::RandomWaypoint {
                speed_mps: 12.0,
                pause_s: 0.0,
            },
        ];
        for m in models {
            let mut w = MobilityWalker::new(11);
            for k in 0..800 {
                // Irregular, non-decreasing times like an event loop's.
                let t = k as f64 * 0.173 + (k % 7) as f64 * 0.011;
                assert_eq!(w.position(&m, &b, t), m.position_at(&b, 11, t), "t={t}");
            }
        }
    }

    #[test]
    fn walker_survives_out_of_order_queries() {
        let b = bounds();
        let m = MobilitySpec::RandomWaypoint {
            speed_mps: 2.0,
            pause_s: 1.0,
        };
        let mut w = MobilityWalker::new(5);
        let late = w.position(&m, &b, 100.0);
        assert_eq!(late, m.position_at(&b, 5, 100.0));
        // A query before the resume point still answers correctly.
        assert_eq!(w.position(&m, &b, 3.0), m.position_at(&b, 5, 3.0));
        assert_eq!(w.position(&m, &b, 100.0), late);
    }
}
