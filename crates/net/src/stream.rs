//! SplitMix64: the per-link deterministic random stream.
//!
//! Each wireless link in the spatial simulator owns one of these, seeded
//! from `(run seed, station, AP, association epoch)`. Frame fates are drawn
//! from the stream at transmit time, so a link costs O(1) memory no matter
//! how long the simulation runs — the property that replaces precomputed
//! [`softrate_trace::schema::LinkTrace`]s at multi-cell scale. SplitMix64
//! passes BigCrush, never repeats within 2^64 draws, and every seed yields
//! an independent-looking stream, which is exactly what a hash-derived
//! per-link seed needs.

/// A SplitMix64 stream.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream over the given seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One SplitMix64 scramble of `a ^ f(b)` — the workspace-wide seed mixer
/// for deriving independent per-entity seeds from a master seed.
pub fn mix_seed(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_with_different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_draws_are_uniformish() {
        let mut s = SplitMix64::new(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| s.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let mut t = SplitMix64::new(7);
        assert!((0..1000).all(|_| {
            let v = t.next_f64();
            (0.0..1.0).contains(&v)
        }));
    }

    #[test]
    fn mix_seed_spreads() {
        let a = mix_seed(0, 1);
        let b = mix_seed(0, 2);
        let c = mix_seed(1, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
