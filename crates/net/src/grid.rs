//! A uniform spatial index over the transmissions currently on the air.
//!
//! The spatial medium's hot passes (carrier sense on every channel-access
//! attempt, interference marking on every transmission) only care about
//! active transmitters within a *provable* radius of a point — the
//! conservative inversion of the path-loss model
//! ([`crate::spatial::SpatialParams::range_for_threshold`]). This grid
//! keeps the active set bucketed by position so those passes visit only
//! the buckets a query disk overlaps, instead of every transmitter on the
//! floor.
//!
//! Exactness contract: the grid is a *candidate* filter, never a decision
//! maker. Entries carry the transmitter's position at insert time; a
//! station drifts while its frame is on the air, so every query radius
//! must be padded by the caller's drift bound (mobility speed × maximum
//! airtime) on top of the threshold radius. Callers then run the exact
//! SNR check on each candidate — pruned transmitters provably fail it, so
//! results are byte-identical to a full scan (pinned by the goldens and
//! by `grid_and_sorted_sense_plans_are_result_identical` in
//! `softrate-net::sim`).
//!
//! Cell sizing: cells are square with side ≈ the largest query radius
//! (clamped to at least 1 m and to at most [`MAX_CELLS`] total), so a
//! disk query touches at most ~9 buckets. Small active sets skip the
//! bucket walk entirely and scan a flat mirror of the entries — cheaper
//! than touching even a handful of empty buckets.

use crate::geometry::{Point, Rect};

/// Bucket walks are skipped below this many active entries (a flat scan
/// of so few entries is cheaper than visiting empty buckets).
const LINEAR_CUTOFF: usize = 8;

/// Upper bound on `cols × rows` (caps memory for huge, sparse floors).
const MAX_CELLS: usize = 4096;

/// One transmission on the air.
#[derive(Debug, Clone, Copy)]
pub struct TxEntry {
    /// Transmitting station.
    pub sender: usize,
    /// The station's position at transmit start (it may have drifted
    /// since — see the module docs for the padding contract).
    pub pos: Point,
    /// When the transmission leaves the air, seconds.
    pub end: f64,
}

/// A uniform grid of the active transmitter set.
#[derive(Debug)]
pub struct ActiveGrid {
    origin: Point,
    /// Square cell side, meters.
    cell: f64,
    cols: usize,
    rows: usize,
    cells: Vec<Vec<TxEntry>>,
    /// Flat mirror of every entry, for small-set linear scans.
    all: Vec<TxEntry>,
}

impl ActiveGrid {
    /// A grid over `bounds` sized for query disks of radius `radius_hint`
    /// meters (the largest threshold radius the caller will query).
    pub fn new(bounds: Rect, radius_hint: f64) -> Self {
        let width = bounds.width().max(1e-9);
        let height = bounds.height().max(1e-9);
        let mut cell = radius_hint.clamp(1.0, width.max(height));
        let dims = |cell: f64| {
            let cols = (width / cell).ceil().max(1.0) as usize;
            let rows = (height / cell).ceil().max(1.0) as usize;
            (cols, rows)
        };
        let (mut cols, mut rows) = dims(cell);
        while cols * rows > MAX_CELLS {
            cell *= 2.0;
            (cols, rows) = dims(cell);
        }
        ActiveGrid {
            origin: bounds.min,
            cell,
            cols,
            rows,
            cells: (0..cols * rows).map(|_| Vec::new()).collect(),
            all: Vec::new(),
        }
    }

    /// Number of active entries.
    pub fn len(&self) -> usize {
        self.all.len()
    }

    /// Whether no transmission is on the air.
    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }

    /// The cell side the grid settled on, meters.
    pub fn cell_m(&self) -> f64 {
        self.cell
    }

    fn axis_index(&self, coord: f64, origin: f64, n: usize) -> usize {
        let i = ((coord - origin) / self.cell).floor();
        (i.max(0.0) as usize).min(n - 1)
    }

    fn cell_of(&self, p: Point) -> usize {
        let cx = self.axis_index(p.x, self.origin.x, self.cols);
        let cy = self.axis_index(p.y, self.origin.y, self.rows);
        cy * self.cols + cx
    }

    /// Records a transmission starting at `pos`.
    pub fn insert(&mut self, entry: TxEntry) {
        let c = self.cell_of(entry.pos);
        self.cells[c].push(entry);
        self.all.push(entry);
    }

    /// Drops `sender`'s transmission (inserted at `pos`).
    pub fn remove(&mut self, sender: usize, pos: Point) {
        let c = self.cell_of(pos);
        if let Some(i) = self.cells[c].iter().position(|e| e.sender == sender) {
            self.cells[c].swap_remove(i);
        }
        if let Some(i) = self.all.iter().position(|e| e.sender == sender) {
            self.all.swap_remove(i);
        }
    }

    /// Visits every entry whose *insert-time* position lies within
    /// `radius` of `center` — plus possibly a few just outside (cell
    /// granularity); never fewer. Callers fold their drift bound into
    /// `radius` and run the exact check per candidate. Visit order is
    /// unspecified; callers must accumulate order-insensitively (min /
    /// max / any), which every fast-path consumer does.
    pub fn for_each_in_disk(&self, center: Point, radius: f64, mut f: impl FnMut(&TxEntry)) {
        if self.all.len() <= LINEAR_CUTOFF {
            let r2 = radius * radius;
            for e in &self.all {
                if dist2(e.pos, center) <= r2 {
                    f(e);
                }
            }
            return;
        }
        let ix0 = self.axis_index(center.x - radius, self.origin.x, self.cols);
        let ix1 = self.axis_index(center.x + radius, self.origin.x, self.cols);
        let iy0 = self.axis_index(center.y - radius, self.origin.y, self.rows);
        let iy1 = self.axis_index(center.y + radius, self.origin.y, self.rows);
        let r2 = radius * radius;
        for iy in iy0..=iy1 {
            for ix in ix0..=ix1 {
                for e in &self.cells[iy * self.cols + ix] {
                    if dist2(e.pos, center) <= r2 {
                        f(e);
                    }
                }
            }
        }
    }
}

/// Squared Euclidean distance (the pruning comparisons never need the
/// root).
pub fn dist2(a: Point, b: Point) -> f64 {
    let dx = a.x - b.x;
    let dy = a.y - b.y;
    dx * dx + dy * dy
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds() -> Rect {
        Rect {
            min: Point { x: -10.0, y: -10.0 },
            max: Point { x: 90.0, y: 40.0 },
        }
    }

    fn entry(sender: usize, x: f64, y: f64) -> TxEntry {
        TxEntry {
            sender,
            pos: Point { x, y },
            end: sender as f64,
        }
    }

    fn collect_disk(g: &ActiveGrid, center: Point, r: f64) -> Vec<usize> {
        let mut got = Vec::new();
        g.for_each_in_disk(center, r, |e| got.push(e.sender));
        got.sort_unstable();
        got
    }

    #[test]
    fn disk_query_is_a_superset_of_the_exact_disk_and_exact_on_distance() {
        let mut g = ActiveGrid::new(bounds(), 15.0);
        for (s, x, y) in [(0, 0.0, 0.0), (1, 30.0, 0.0), (2, 80.0, 30.0)] {
            g.insert(entry(s, x, y));
        }
        // Radius 31 around the origin: senders 0 and 1 are inside, 2 far.
        let got = collect_disk(&g, Point { x: 0.0, y: 0.0 }, 31.0);
        assert!(got.contains(&0) && got.contains(&1));
        assert!(!got.contains(&2), "85+ m away cannot appear at r=31");
    }

    #[test]
    fn bucket_and_linear_paths_agree() {
        // Push past LINEAR_CUTOFF so the bucket walk engages, then compare
        // against a brute-force filter at several centers and radii.
        let mut g = ActiveGrid::new(bounds(), 12.0);
        let mut pts = Vec::new();
        let mut u = crate::stream::SplitMix64::new(7);
        for s in 0..40 {
            let p = bounds().lerp(u.next_f64(), u.next_f64());
            pts.push((s, p));
            g.insert(TxEntry {
                sender: s,
                pos: p,
                end: 0.0,
            });
        }
        assert!(g.len() > LINEAR_CUTOFF);
        for (cx, cy, r) in [(0.0, 0.0, 20.0), (45.0, 15.0, 13.0), (88.0, 38.0, 5.0)] {
            let center = Point { x: cx, y: cy };
            let got = collect_disk(&g, center, r);
            let want: Vec<usize> = pts
                .iter()
                .filter(|(_, p)| dist2(*p, center) <= r * r)
                .map(|(s, _)| *s)
                .collect();
            for s in &want {
                assert!(got.contains(s), "in-disk sender {s} must be visited");
            }
            for s in &got {
                assert!(
                    dist2(pts[*s].1, center) <= r * r,
                    "distance filter is exact"
                );
            }
        }
    }

    #[test]
    fn remove_clears_both_views() {
        let mut g = ActiveGrid::new(bounds(), 10.0);
        let e = entry(3, 5.0, 5.0);
        g.insert(e);
        assert_eq!(g.len(), 1);
        g.remove(3, e.pos);
        assert!(g.is_empty());
        assert!(collect_disk(&g, e.pos, 50.0).is_empty());
    }

    #[test]
    fn cell_count_is_capped_for_huge_floors() {
        let huge = Rect {
            min: Point { x: 0.0, y: 0.0 },
            max: Point {
                x: 100_000.0,
                y: 100_000.0,
            },
        };
        let g = ActiveGrid::new(huge, 1.0);
        assert!(g.cols * g.rows <= MAX_CELLS);
        assert!(g.cell_m() >= 1.0);
    }

    #[test]
    fn queries_at_the_walls_stay_in_range() {
        let mut g = ActiveGrid::new(bounds(), 10.0);
        g.insert(entry(0, -10.0, -10.0));
        g.insert(entry(1, 90.0, 40.0));
        // Centers outside the bounds clamp to edge cells without panicking.
        let got = collect_disk(
            &g,
            Point {
                x: -500.0,
                y: -500.0,
            },
            1000.0,
        );
        assert_eq!(got, vec![0, 1]);
    }
}
