//! The multi-cell spatial network simulator.
//!
//! N stations spread over a grid of APs, each saturated with uplink UDP
//! traffic toward its associated AP. Every BSS runs the same 802.11-like
//! DCF as the single-cell simulator — literally: the backoff/feedback
//! state machine is the shared [`MacEngine`](softrate_sim::mac::MacEngine);
//! this module contributes [`SpatialMedium`], the environment where:
//!
//! * **Geometry decides everything.** Carrier sense is physical (a station
//!   defers when another transmitter is audible above a mean-SNR
//!   threshold), so hidden terminals and spatial reuse both *emerge* from
//!   positions rather than from a configured probability. A concurrent
//!   transmission corrupts a reception only when the
//!   signal-to-interference ratio at that receiver falls below the capture
//!   threshold — co-channel interference between overlapping cells, and
//!   clean parallel operation between distant ones.
//! * **Streaming channels.** Frame fates are drawn at transmit time from
//!   per-link [`StreamingLink`]s (Jakes fading + analytic SNR→BER + a
//!   SplitMix64 fate stream). No `LinkTrace` is ever materialized, so
//!   memory stays O(stations) regardless of duration.
//! * **Roaming.** Stations periodically re-evaluate mean RSSI and hand off
//!   to a stronger AP past a hysteresis, with the rate adapter's learned
//!   state either preserved or reset across the handoff (both policies are
//!   first-class, so their cost can be measured).
//!
//! The collision *feedback* semantics reproduce §6.4 exactly as the
//! single-cell simulator does — structurally, because both run the same
//! engine over `softrate_sim::feedback`.

use softrate_channel::analytic::best_rate_for_snr;
use softrate_core::adapter::{RateAdapter, TxAttempt};
use softrate_sim::config::AdapterKind;
use softrate_sim::mac::{
    ActiveTx, AttemptInfo, HandoffRecord, MacCore, MacEngine, MacEv, MacParams, Medium, Port,
    RunReport,
};
use softrate_sim::timing::IP_TCP_HEADER;
use softrate_trace::schema::FrameFate;

use crate::channel::StreamingLink;
use crate::geometry::Point;
use crate::mobility::MobilityWalker;
use crate::spatial::{HandoffPolicy, SpatialParams, SpatialSpec};
use crate::stream::mix_seed;

/// Configuration of one spatial simulation run.
#[derive(Debug, Clone)]
pub struct SpatialConfig {
    /// Simulated seconds.
    pub duration: f64,
    /// Rate-adaptation algorithm every station runs on its uplink.
    pub adapter: AdapterKind,
    /// On-air bytes per data frame (payload + IP/TCP-sized headers).
    pub payload_bytes: usize,
    /// Deployment seed: station spawns, trajectories, fading, and fate
    /// streams all derive from it.
    pub seed: u64,
    /// Seed for MAC-layer randomness (backoff draws, collision-detector
    /// verdicts, adapter tie-breaks). Defaults to `seed`; the scenario
    /// engine sets it to the per-run seed while `seed` stays per-spec, so
    /// every adapter in a matrix is compared over identical channel
    /// realizations (§6.1) with independent MAC randomness per run.
    pub mac_seed: u64,
    /// The deployment.
    pub spatial: SpatialSpec,
}

impl SpatialConfig {
    /// A default-duration run of `spatial` under `adapter`.
    pub fn new(adapter: AdapterKind, spatial: SpatialSpec) -> Self {
        SpatialConfig {
            duration: 10.0,
            adapter,
            payload_bytes: 1440,
            seed: 0x5A7A,
            mac_seed: 0x5A7A,
            spatial,
        }
    }

    /// Data-frame size on the air, bits.
    pub fn frame_bits(&self) -> usize {
        self.payload_bytes * 8
    }
}

/// One station's medium-side state (the rate adapter and retry/CW state
/// live in the engine's matching [`Port`]).
struct Station {
    /// Associated AP.
    ap: usize,
    /// Association epoch (increments on every handoff; keys fate streams).
    epoch: u64,
    /// Streaming channel to the current AP.
    link: StreamingLink,
    /// Handoff decided while a frame was in flight; applied at outcome.
    pending_handoff: Option<usize>,
    delivered: u64,
}

/// Per-attempt data: the receiver AP and the mean signal SNR at start.
#[derive(Debug, Clone, Copy)]
struct SpatialTx {
    /// Receiver AP.
    ap: usize,
    /// Mean (path-loss only) signal SNR at the receiver at start, dB.
    sig_snr_db: f64,
}

/// Medium-specific events: periodic association re-evaluation.
#[derive(Debug, Clone, Copy)]
struct Roam {
    st: usize,
}

type Core = MacCore<Roam, SpatialTx>;

/// Position of station `s` at time `t` via its resumable walker
/// (identical to `params.station_pos`, amortized O(1) per query).
fn walker_pos(walkers: &mut [MobilityWalker], params: &SpatialParams, s: usize, t: f64) -> Point {
    walkers[s].position(&params.mobility, &params.bounds, t)
}

/// The multi-cell geometric environment with streaming channels.
struct SpatialMedium {
    cfg: SpatialConfig,
    params: SpatialParams,
    stations: Vec<Station>,
    /// Per-station resumable mobility cursors (amortized O(1) positions).
    walkers: Vec<MobilityWalker>,
    /// Scratch: the sensing station's position this TxStart.
    sense_pos: Point,
    /// Scratch: positions of every active transmitter this TxStart
    /// (computed once by `carrier_sense`, reused by `mark_collisions`).
    tx_pos: Vec<Point>,
    // statistics
    inter_cell_corruptions: u64,
    handoffs: u64,
    initial_assoc: Vec<usize>,
    handoff_log: Vec<HandoffRecord>,
}

impl SpatialMedium {
    /// The link's fading process is keyed by its endpoints only (a
    /// physical field between two places); the fate stream additionally by
    /// the association epoch, so re-associating never replays coin flips.
    fn make_link(&self, st: usize, ap: usize, epoch: u64) -> StreamingLink {
        let pair = mix_seed(self.cfg.seed ^ 0x4C49_4E4B, ((st as u64) << 20) | ap as u64);
        StreamingLink::new(pair, mix_seed(pair, 0xFA7E ^ epoch), self.params.doppler_hz)
    }

    fn make_adapter(&self, st: usize) -> Box<dyn RateAdapter> {
        // The omniscient oracle needs the station's *current* link, which
        // changes at handoff; the medium injects the rate at transmit time
        // instead (see `begin_attempt`), so the closure here is never the
        // source of truth.
        self.cfg.adapter.build_with_oracle(
            self.cfg.frame_bits(),
            self.cfg.payload_bytes,
            mix_seed(self.cfg.mac_seed ^ 0xADA7, st as u64),
            Box::new(|_| 0),
        )
    }

    fn apply_handoff(&mut self, core: &mut Core, st: usize, to: usize, now: f64) {
        let from = self.stations[st].ap;
        if from == to {
            return;
        }
        let epoch = self.stations[st].epoch + 1;
        self.stations[st].ap = to;
        self.stations[st].epoch = epoch;
        self.stations[st].link = self.make_link(st, to, epoch);
        if matches!(self.params.roaming, Some((_, _, HandoffPolicy::Reset))) {
            core.ports[st].adapter = self.make_adapter(st);
        }
        core.ports[st].retries = 0;
        core.ports[st].cw = softrate_sim::timing::CW_MIN;
        self.handoffs += 1;
        self.handoff_log.push(HandoffRecord {
            t: now,
            station: st,
            from,
            to,
        });
    }
}

impl Medium for SpatialMedium {
    type Event = Roam;
    type TxInfo = SpatialTx;

    fn kickoff(&mut self, core: &mut Core) {
        let n = self.params.n_stations;
        for s in 0..n {
            // Slight stagger so the whole floor doesn't draw backoff at the
            // exact same instant.
            let cw = core.ports[s].cw;
            core.schedule_tx_start(s, Some(s as f64 * 2e-4), cw);
        }
        if let Some((_, interval, _)) = self.params.roaming {
            for s in 0..n {
                let first = interval * (1.0 + s as f64 / n as f64);
                core.events.schedule(first, MacEv::Medium(Roam { st: s }));
            }
        }
    }

    /// Saturated uplink: every station always has a frame for its AP.
    fn pick_port(&mut self, st: usize) -> Option<usize> {
        Some(st)
    }

    /// Physical carrier sense: defer while any foreign transmitter is
    /// audible above the sensing threshold.
    fn carrier_sense(&mut self, core: &Core, st: usize) -> Option<f64> {
        let now = core.now();
        self.sense_pos = walker_pos(&mut self.walkers, &self.params, st, now);

        // Positions of every active transmitter, computed once and shared
        // with the interference pass in `mark_collisions`.
        self.tx_pos.clear();
        for i in 0..core.active.len() {
            let s = core.active[i].sender;
            let p = walker_pos(&mut self.walkers, &self.params, s, now);
            self.tx_pos.push(p);
        }

        let mut sensed_until: Option<f64> = None;
        for (tx, &tpos) in core.active.iter().zip(&self.tx_pos) {
            if tx.sender == st {
                continue;
            }
            if self.params.snr_between(tpos, self.sense_pos) >= self.params.sense_snr_db {
                sensed_until = Some(sensed_until.map_or(tx.end, |u: f64| u.max(tx.end)));
            }
        }
        sensed_until
    }

    fn begin_attempt(
        &mut self,
        st: usize,
        _port: usize,
        now: f64,
        attempt: &mut TxAttempt,
    ) -> AttemptInfo<SpatialTx> {
        // Transmit toward the associated AP from the position the sensing
        // pass just computed.
        let ap = self.stations[st].ap;
        let ap_pos = self.params.aps[ap];
        let sig_snr_db = self.params.snr_between(self.sense_pos, ap_pos);
        let oracle_rate = best_rate_for_snr(
            self.stations[st].link.snr_db(sig_snr_db, now),
            self.cfg.frame_bits(),
        );
        if matches!(self.cfg.adapter, AdapterKind::Omniscient) {
            attempt.rate_idx = oracle_rate;
        }
        AttemptInfo {
            payload_bytes: self.cfg.payload_bytes,
            counts_as_data: true,
            // Audit against the instantaneous analytic oracle.
            audit_best: Some(oracle_rate),
            timeline: false,
            info: SpatialTx { ap, sig_snr_db },
        }
    }

    /// Interference bookkeeping: a concurrent transmission corrupts a
    /// reception only when the interferer's power at that receiver leaves
    /// less than `capture_sir_db` of margin. RTS-protected frames reserved
    /// the medium and neither corrupt nor get corrupted (as in the
    /// single-cell medium).
    fn mark_collisions(
        &mut self,
        tx: &mut ActiveTx<SpatialTx>,
        active: &mut [ActiveTx<SpatialTx>],
    ) {
        if tx.use_rts {
            return;
        }
        let ap_pos = self.params.aps[tx.info.ap];
        for (i, &o_pos) in self.tx_pos.iter().enumerate() {
            let o = active[i];
            if o.use_rts {
                continue;
            }
            // Does the new transmission corrupt `o` at `o`'s receiver?
            // Interference buried below the noise floor (mean SNR of the
            // interferer < 0 dB at the receiver) cannot corrupt anything
            // the noise wasn't already corrupting.
            let int_at_o = self
                .params
                .snr_between(self.sense_pos, self.params.aps[o.info.ap]);
            if int_at_o >= 0.0 && o.info.sig_snr_db - int_at_o < self.params.capture_sir_db {
                let om = &mut active[i];
                om.collided = true;
                om.first_other_start = om.first_other_start.min(tx.start);
                om.max_other_end = om.max_other_end.max(tx.end);
                if o.info.ap != tx.info.ap {
                    self.inter_cell_corruptions += 1;
                }
            }
            // Does `o` corrupt the new transmission at our AP?
            let int_at_mine = self.params.snr_between(o_pos, ap_pos);
            if int_at_mine >= 0.0 && tx.info.sig_snr_db - int_at_mine < self.params.capture_sir_db {
                tx.collided = true;
                tx.first_other_start = tx.first_other_start.min(o.start);
                tx.max_other_end = tx.max_other_end.max(o.end);
                if o.info.ap != tx.info.ap {
                    self.inter_cell_corruptions += 1;
                }
            }
        }
    }

    /// Interference-free fate from the streaming channel.
    fn fate(&mut self, tx: &ActiveTx<SpatialTx>) -> FrameFate {
        self.stations[tx.sender].link.fate(
            tx.info.sig_snr_db,
            tx.start,
            tx.rate_idx,
            tx.payload_bytes * 8,
        )
    }

    fn on_acked(&mut self, core: &mut Core, tx: &ActiveTx<SpatialTx>) {
        core.stats.frames_delivered += 1;
        self.stations[tx.sender].delivered += 1;
    }

    fn on_dropped(&mut self, _core: &mut Core, _tx: &ActiveTx<SpatialTx>) {
        // Frame dropped; the saturated source moves to the next.
    }

    fn after_outcome(&mut self, core: &mut Core, st: usize) {
        if let Some(to) = self.stations[st].pending_handoff.take() {
            let now = core.now();
            self.apply_handoff(core, st, to, now);
        }
        // Saturated uplink: there is always a next frame.
        if !core.senders[st].start_pending {
            let cw = core.ports[st].cw;
            core.schedule_tx_start(st, None, cw);
        }
    }

    /// Periodic association re-evaluation.
    fn on_event(&mut self, core: &mut Core, Roam { st }: Roam) {
        let Some((hysteresis, interval, _)) = self.params.roaming else {
            return;
        };
        let now = core.now();
        let pos = walker_pos(&mut self.walkers, &self.params, st, now);
        let cur = self.stations[st].ap;
        let (best, best_rssi) = self.params.best_ap(pos);
        let cur_rssi = self.params.snr_between(pos, self.params.aps[cur]);
        if best != cur && best_rssi >= cur_rssi + hysteresis {
            if core.senders[st].busy {
                self.stations[st].pending_handoff = Some(best);
            } else {
                self.apply_handoff(core, st, best, now);
            }
        }
        core.events
            .schedule(now + interval, MacEv::Medium(Roam { st }));
    }
}

/// The multi-cell simulator: a [`MacEngine`] configured with a
/// [`SpatialMedium`].
pub struct SpatialSim {
    engine: MacEngine<SpatialMedium>,
}

impl SpatialSim {
    /// Builds the deployment: lays out the grid, spawns stations, and
    /// associates each with its strongest AP.
    pub fn new(cfg: SpatialConfig) -> Result<Self, crate::spatial::SpatialError> {
        let params = cfg.spatial.resolve()?;
        let walkers = (0..params.n_stations)
            .map(|s| MobilityWalker::new(params.station_seed(cfg.seed, s)))
            .collect();
        let mac_params = MacParams {
            postambles: cfg.adapter.postambles(),
            detect_prob: cfg.adapter.detect_prob(),
            backoff_seed: cfg.mac_seed ^ 0x4E45_5453_5041,
            collision_seed: cfg.mac_seed,
        };
        let n = params.n_stations;
        let mut medium = SpatialMedium {
            stations: Vec::with_capacity(n),
            walkers,
            sense_pos: Point { x: 0.0, y: 0.0 },
            tx_pos: Vec::new(),
            inter_cell_corruptions: 0,
            handoffs: 0,
            initial_assoc: Vec::with_capacity(n),
            handoff_log: Vec::new(),
            params,
            cfg,
        };
        let mut ports = Vec::with_capacity(n);
        for s in 0..n {
            let pos = medium.params.station_pos(medium.cfg.seed, s, 0.0);
            let (ap, _) = medium.params.best_ap(pos);
            medium.initial_assoc.push(ap);
            let link = medium.make_link(s, ap, 0);
            ports.push(Port::new(medium.make_adapter(s)));
            medium.stations.push(Station {
                ap,
                epoch: 0,
                link,
                pending_handoff: None,
                delivered: 0,
            });
        }
        Ok(SpatialSim {
            engine: MacEngine::new(n, ports, mac_params, medium),
        })
    }

    /// Runs to `cfg.duration` and reports.
    pub fn run(mut self) -> RunReport {
        let duration = self.engine.medium.cfg.duration;
        self.engine.run(duration);

        let m = self.engine.medium;
        let stats = self.engine.core.stats;
        let useful_bits = (m.cfg.payload_bytes - IP_TCP_HEADER) as f64 * 8.0;
        let per_station: Vec<f64> = m
            .stations
            .iter()
            .map(|s| s.delivered as f64 * useful_bits / duration)
            .collect();
        RunReport {
            adapter_name: m.cfg.adapter.name().to_string(),
            aggregate_goodput_bps: per_station.iter().sum(),
            per_flow_goodput_bps: per_station,
            audit: stats.audit,
            frames_sent: stats.frames_sent,
            frames_delivered: stats.frames_delivered,
            collisions: stats.collisions,
            silent_losses: stats.silent_losses,
            rate_timeline: Vec::new(),
            inter_cell_corruptions: m.inter_cell_corruptions,
            handoffs: m.handoffs,
            initial_assoc: m.initial_assoc,
            handoff_log: m.handoff_log,
            events_processed: stats.events_processed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::MobilitySpec;
    use crate::spatial::RoamingSpec;

    fn small_spec(cols: usize, spacing: f64, n_stations: usize) -> SpatialSpec {
        SpatialSpec {
            ap_cols: cols,
            ap_rows: 1,
            ap_spacing_m: spacing,
            n_stations,
            snr_ref_db: None,
            path_loss_exp: None,
            sense_snr_db: None,
            capture_sir_db: None,
            doppler_hz: None,
            mobility: MobilitySpec::Static,
            roaming: None,
        }
    }

    fn run(cfg: SpatialConfig) -> RunReport {
        SpatialSim::new(cfg).expect("valid spec").run()
    }

    #[test]
    fn single_cell_moves_data() {
        let mut cfg = SpatialConfig::new(AdapterKind::Fixed(2), small_spec(1, 20.0, 3));
        cfg.duration = 2.0;
        let r = run(cfg);
        assert!(r.frames_sent > 100, "sent {}", r.frames_sent);
        assert!(
            r.aggregate_goodput_bps > 1e6,
            "goodput {}",
            r.aggregate_goodput_bps
        );
        assert_eq!(r.handoffs, 0);
        assert_eq!(r.initial_assoc, vec![0, 0, 0]);
    }

    #[test]
    fn far_cells_are_independent_collision_domains() {
        // Two cells 300 m apart: any cross-cell transmitter is >= 150 m
        // from the foreign AP, which at the default path loss puts its
        // interference below the noise floor — the domains cannot mix,
        // while stations near their own AP still deliver.
        let mut cfg = SpatialConfig::new(AdapterKind::Fixed(0), small_spec(2, 300.0, 24));
        cfg.duration = 1.5;
        let r = run(cfg);
        assert_eq!(r.inter_cell_corruptions, 0, "distant cells must not mix");
        // Both cells got stations (uniform spawn over a 2-cell strip) and
        // data moved.
        let aps: std::collections::HashSet<usize> = r.initial_assoc.iter().copied().collect();
        assert_eq!(aps.len(), 2, "spawn should cover both cells");
        assert!(r.frames_delivered > 0);
    }

    #[test]
    fn overlapping_cells_interfere() {
        // APs 12 m apart: heavy overlap. Sensing threshold raised so
        // cross-cell transmitters are *not* deferred to, forcing actual
        // concurrent transmissions.
        let mut spec = small_spec(3, 12.0, 12);
        spec.sense_snr_db = Some(100.0); // nobody ever defers
        let mut cfg = SpatialConfig::new(AdapterKind::Fixed(2), spec);
        cfg.duration = 1.0;
        let r = run(cfg);
        assert!(r.collisions > 0, "overlap with no sensing must collide");
        assert!(r.inter_cell_corruptions > 0);
    }

    #[test]
    fn report_is_deterministic() {
        let mk = || {
            let mut spec = small_spec(2, 25.0, 10);
            spec.mobility = MobilitySpec::RandomWaypoint {
                speed_mps: 1.5,
                pause_s: 1.0,
            };
            spec.roaming = Some(RoamingSpec {
                hysteresis_db: 2.0,
                check_interval_s: None,
                handoff: HandoffPolicy::Preserve,
            });
            let mut cfg = SpatialConfig::new(AdapterKind::SoftRate, spec);
            cfg.duration = 2.0;
            cfg
        };
        let a = run(mk());
        let b = run(mk());
        assert_eq!(a.aggregate_goodput_bps, b.aggregate_goodput_bps);
        assert_eq!(a.frames_sent, b.frames_sent);
        assert_eq!(a.handoffs, b.handoffs);
        assert_eq!(a.handoff_log, b.handoff_log);
    }

    #[test]
    fn roaming_walk_hands_off_and_stays_singly_associated() {
        let mut spec = small_spec(3, 24.0, 6);
        spec.mobility = MobilitySpec::RandomWaypoint {
            speed_mps: 12.0, // brisk, to force several cell crossings
            pause_s: 0.0,
        };
        spec.roaming = Some(RoamingSpec {
            hysteresis_db: 1.0,
            check_interval_s: Some(0.1),
            handoff: HandoffPolicy::Preserve,
        });
        let mut cfg = SpatialConfig::new(AdapterKind::SoftRate, spec);
        cfg.duration = 6.0;
        let r = run(cfg);
        assert!(r.handoffs > 0, "fast walkers across 3 cells must roam");
        // Invariant: the handoff log forms a consistent chain per station
        // (every `from` equals the previous association), which is exactly
        // the statement that a station is associated to one AP at a time.
        let mut assoc = r.initial_assoc.clone();
        for h in &r.handoff_log {
            assert_eq!(assoc[h.station], h.from, "log out of order");
            assert_ne!(h.from, h.to);
            assert!(h.to < 3);
            assoc[h.station] = h.to;
        }
        assert_eq!(r.handoffs as usize, r.handoff_log.len());
    }

    #[test]
    fn reset_and_preserve_policies_both_run_and_differ() {
        // Cells large enough that SNR swings decades between center and
        // edge: adapter state carried across a handoff is then *wrong*
        // state, and the two policies must measurably diverge.
        let mk = |policy| {
            let mut spec = small_spec(3, 70.0, 6);
            spec.mobility = MobilitySpec::RandomWaypoint {
                speed_mps: 12.0,
                pause_s: 0.0,
            };
            spec.roaming = Some(RoamingSpec {
                hysteresis_db: 1.0,
                check_interval_s: Some(0.1),
                handoff: policy,
            });
            let mut cfg = SpatialConfig::new(AdapterKind::SoftRate, spec);
            cfg.duration = 6.0;
            cfg
        };
        let preserve = run(mk(HandoffPolicy::Preserve));
        let reset = run(mk(HandoffPolicy::Reset));
        assert!(preserve.handoffs > 0 && reset.handoffs > 0);
        assert_ne!(
            (preserve.frames_sent, preserve.frames_delivered),
            (reset.frames_sent, reset.frames_delivered),
            "handoff policy must alter rate-adaptation behaviour"
        );
    }

    #[test]
    fn omniscient_tracks_the_oracle_exactly() {
        let mut cfg = SpatialConfig::new(AdapterKind::Omniscient, small_spec(2, 30.0, 4));
        cfg.duration = 1.0;
        let r = run(cfg);
        let (over, acc, under) = r.audit.fractions();
        assert_eq!(over, 0.0);
        assert_eq!(under, 0.0);
        assert_eq!(acc, 1.0);
        assert!(r.frames_delivered > 0);
    }

    #[test]
    fn softrate_adapts_across_the_cell() {
        // Over a cell whose SNR spans many rates, SoftRate must clearly
        // beat the most robust fixed rate and stay within reach of the
        // omniscient oracle.
        let mk = |adapter| {
            let mut cfg = SpatialConfig::new(adapter, small_spec(2, 60.0, 6));
            cfg.duration = 3.0;
            cfg
        };
        let sr = run(mk(AdapterKind::SoftRate));
        let slow = run(mk(AdapterKind::Fixed(0)));
        let omni = run(mk(AdapterKind::Omniscient));
        assert!(
            sr.aggregate_goodput_bps > 1.5 * slow.aggregate_goodput_bps,
            "SoftRate {} vs Fixed-0 {}",
            sr.aggregate_goodput_bps,
            slow.aggregate_goodput_bps
        );
        assert!(
            sr.aggregate_goodput_bps > 0.5 * omni.aggregate_goodput_bps,
            "SoftRate {} vs Omniscient {}",
            sr.aggregate_goodput_bps,
            omni.aggregate_goodput_bps
        );
    }

    #[test]
    fn hundred_stations_three_aps_runs_fast_and_streams() {
        // The acceptance-scale shape: >= 100 stations, >= 3 APs, no trace
        // materialization (structurally impossible here: SpatialSim never
        // touches LinkTrace).
        let mut spec = small_spec(3, 30.0, 120);
        spec.mobility = MobilitySpec::RandomWaypoint {
            speed_mps: 1.5,
            pause_s: 2.0,
        };
        spec.roaming = Some(RoamingSpec {
            hysteresis_db: 3.0,
            check_interval_s: None,
            handoff: HandoffPolicy::Preserve,
        });
        let mut cfg = SpatialConfig::new(AdapterKind::SoftRate, spec);
        cfg.duration = 1.0;
        let r = run(cfg);
        assert_eq!(r.per_flow_goodput_bps.len(), 120);
        assert!(r.frames_sent > 500, "sent {}", r.frames_sent);
        assert!(r.events_processed > 1000);
    }
}
